//! # pom-bank — polyhedral bank-conflict analysis
//!
//! Array partitioning (`hls.array_partition`) splits an array over
//! memory banks; each bank grants `ports_per_bank` accesses per cycle.
//! Whether a pipelined loop can actually sustain its initiation interval
//! therefore depends on *which banks* its per-iteration accesses land in,
//! not just on how many accesses there are. pom-sim measures this
//! dynamically through its port calendars; this crate derives the same
//! quantity *statically*:
//!
//! 1. Every access of one pipeline iteration is enumerated in program
//!    order — unrolled inner loops are expanded with concrete iterator
//!    values, while the pipeline iterator and enclosing sequential
//!    iterators stay symbolic ([`analyze_pipeline`]).
//! 2. Accesses are classified exactly as the simulator's `time_iteration`
//!    does: a load forwarded from an earlier same-iteration store costs no
//!    port, repeated reads of one element cost one port, and only the last
//!    writer of an element writes back. The aliasing questions this poses
//!    for symbolic iterators are answered by the congruence/FM layer in
//!    `pom_poly::congruence` — `false` answers are proofs.
//! 3. Surviving accesses are grouped into *bank classes*: residues of the
//!    index expressions modulo the cyclic partition factors (mixed-radix
//!    across dimensions, same combine as the simulator's `bank_of`). When
//!    every pair of accesses has congruent coefficients, class
//!    cardinalities are iteration-invariant and the per-bank demand is
//!    exact ([`BankProfile::max_demand`]).
//!
//! From the profile follow an exact bank-aware ResMII
//! ([`BankAnalysis::exact_res_mii`]), a conflict-freedom predicate
//! backing POM006 certificates ([`BankAnalysis::conflict_free`]), and a
//! minimal conflict-free partition search for DSE repair
//! ([`minimal_conflict_free_factors`]).
//!
//! Whenever the structure is not analyzable — guards inside the pipeline
//! body, non-constant inner-loop bounds, undecidable aliasing, or more
//! than [`INSTANCE_CAP`] instances — the analysis degrades to *inexact*
//! and claims nothing, so every exact verdict it does emit is sound.

#![warn(missing_docs)]

use pom_dsl::PartitionStyle;
use pom_ir::{AffineFunc, AffineOp, ForOp, MemRefDecl};
use pom_poly::{congruent_coeffs, fm, residue, Bound, Constraint, LinearExpr};
use std::collections::HashMap;

/// Upper bound on enumerated access instances per pipeline iteration;
/// beyond it the analysis reports inexact instead of grinding.
pub const INSTANCE_CAP: usize = 4096;

/// Upper bound on enumerated outer-iterator cases when inner-loop bounds
/// depend on enclosing iterators (non-rectangular tails from splits whose
/// factor does not divide the trip count).
pub const CASE_CAP: usize = 64;

/// Upper bound on Fourier–Motzkin feasibility queries per pipeline; the
/// quadratic aliasing pass falls back to inexact when it is exhausted.
const FM_BUDGET: usize = 20_000;

// ---------------------------------------------------------------------
// Bank mapping (shared semantics with pom-sim's port calendars)
// ---------------------------------------------------------------------

/// Bank mapping of one array dimension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankDim {
    /// Partition factor along this dimension (1 = unpartitioned).
    pub factor: i64,
    /// Elements per bank along this dimension (block style).
    pub chunk: i64,
    /// Cyclic (`i % factor`) vs. block (`i / chunk`) mapping.
    pub cyclic: bool,
}

/// The complete bank mapping of one array: per-dimension mappings
/// combined mixed-radix, exactly as the simulator's `bank_of`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayBanks {
    /// Array shape (row-major).
    pub shape: Vec<usize>,
    /// One mapping per dimension.
    pub dims: Vec<BankDim>,
}

impl ArrayBanks {
    /// Derives the bank mapping from a memref declaration. Complete
    /// partitioning is modeled as cyclic with the same factor; factors
    /// are clamped to `[1, dim size]`.
    pub fn of(m: &MemRefDecl) -> Self {
        let dims = match &m.partition {
            Some(p) => p
                .factors
                .iter()
                .zip(&m.shape)
                .map(|(&f, &n)| {
                    let f = f.max(1).min(n.max(1) as i64);
                    BankDim {
                        factor: f,
                        chunk: ((n as i64 + f - 1) / f).max(1),
                        cyclic: !matches!(p.style, PartitionStyle::Block),
                    }
                })
                .collect(),
            None => m
                .shape
                .iter()
                .map(|_| BankDim {
                    factor: 1,
                    chunk: 1,
                    cyclic: true,
                })
                .collect(),
        };
        ArrayBanks {
            shape: m.shape.clone(),
            dims,
        }
    }

    /// Total number of banks.
    pub fn banks(&self) -> u64 {
        self.dims
            .iter()
            .map(|d| d.factor as u64)
            .product::<u64>()
            .max(1)
    }

    /// The bank a per-dimension coordinate vector lives in.
    pub fn bank_of_coords(&self, coords: &[i64]) -> u32 {
        let mut bank = 0u64;
        for (bd, &c) in self.dims.iter().zip(coords) {
            let b = if bd.factor <= 1 {
                0
            } else if bd.cyclic {
                c.rem_euclid(bd.factor)
            } else {
                (c / bd.chunk).min(bd.factor - 1)
            };
            bank = bank * bd.factor as u64 + b as u64;
        }
        bank as u32
    }

    /// The bank a row-major flat element index lives in.
    ///
    /// # Panics
    ///
    /// Panics on arrays of rank > 8 (never produced by the DSL).
    pub fn bank_of_flat(&self, flat: usize) -> u32 {
        assert!(self.shape.len() <= 8, "arrays of rank > 8 are not banked");
        let mut coords = [0i64; 8];
        let mut rem = flat;
        for d in (0..self.shape.len()).rev() {
            let n = self.shape[d].max(1);
            coords[d] = (rem % n) as i64;
            rem /= n;
        }
        self.bank_of_coords(&coords[..self.shape.len()])
    }
}

// ---------------------------------------------------------------------
// Access instances of one pipeline iteration
// ---------------------------------------------------------------------

/// One access instance: array name plus index expressions in which
/// unrolled iterators have been replaced by their concrete values and
/// free iterators (pipeline + enclosing sequential) remain symbolic.
#[derive(Clone, Debug)]
struct Access {
    array: String,
    idx: Vec<LinearExpr>,
}

/// One store instance of a pipeline iteration, in program order.
struct Inst {
    loads: Vec<Access>,
    dest: Access,
}

/// Enumerates the store instances of one pipeline iteration.
struct Collector {
    /// Concrete values of unrolled (in-pipeline) iterators.
    env: HashMap<String, i64>,
    insts: Vec<Inst>,
    exact: bool,
    /// Set when inexactness came from an inner loop whose bounds mention
    /// a symbolic iterator — the one failure case enumeration repairs.
    symbolic_bounds: bool,
}

impl Collector {
    fn subst(&self, a: &pom_poly::AccessFn) -> Access {
        let idx = a
            .indices
            .iter()
            .map(|e| {
                let mut e = e.clone();
                for (iv, &v) in &self.env {
                    e = e.substituted(iv, &LinearExpr::constant_expr(v));
                }
                e
            })
            .collect();
        Access {
            array: a.array.clone(),
            idx,
        }
    }

    /// Bounds of an in-pipeline loop; `None` when they depend on a
    /// symbolic (free) iterator and the instance set varies per iteration.
    fn const_bounds(&self, l: &ForOp) -> Option<(i64, i64)> {
        let closed = |b: &Bound| b.expr.vars().all(|v| self.env.contains_key(v));
        if !l.lbs.iter().all(&closed) || !l.ubs.iter().all(&closed) {
            return None;
        }
        let lb = l.lbs.iter().map(|b| b.eval_lower(&self.env)).max()?;
        let ub = l.ubs.iter().map(|b| b.eval_upper(&self.env)).min()?;
        Some((lb, ub))
    }

    fn collect(&mut self, ops: &[AffineOp]) {
        for op in ops {
            if !self.exact {
                return;
            }
            match op {
                AffineOp::Store(s) => {
                    if self.insts.len() >= INSTANCE_CAP {
                        self.exact = false;
                        return;
                    }
                    let loads = s.value.loads().iter().map(|a| self.subst(a)).collect();
                    let dest = self.subst(&s.dest);
                    self.insts.push(Inst { loads, dest });
                }
                // A guard over symbolic iterators makes the instance set
                // iteration-dependent; claim nothing.
                AffineOp::If(_) => {
                    self.exact = false;
                    return;
                }
                AffineOp::For(l) => {
                    let Some((lb, ub)) = self.const_bounds(l) else {
                        self.exact = false;
                        self.symbolic_bounds = true;
                        return;
                    };
                    for v in lb..=ub {
                        self.env.insert(l.iv.clone(), v);
                        self.collect(&l.body);
                    }
                    self.env.remove(&l.iv);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Symbolic aliasing
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Alias {
    /// Provably the same element at every iteration.
    Same,
    /// Provably never the same element.
    Never,
    /// Undecidable — the analysis must degrade to inexact.
    Unknown,
}

/// Decides whether two accesses of the same array refer to the same
/// element, over the free-iterator `domain`.
fn alias(a: &Access, b: &Access, domain: &[Constraint], fm_budget: &mut usize) -> Alias {
    if a.idx.len() != b.idx.len() {
        return Alias::Unknown;
    }
    let mut eqs: Vec<Constraint> = Vec::new();
    for (x, y) in a.idx.iter().zip(&b.idx) {
        let delta = x.clone() - y.clone();
        if delta.is_constant() {
            if delta.constant() != 0 {
                return Alias::Never;
            }
        } else {
            eqs.push(Constraint::eq_zero(delta));
        }
    }
    if eqs.is_empty() {
        return Alias::Same;
    }
    // Some dimension differs symbolically: equal only where the equality
    // system is feasible. Rational FM over-approximates the integers, so
    // `Never` is sound and `Unknown` is the honest remainder.
    if *fm_budget == 0 {
        return Alias::Unknown;
    }
    *fm_budget -= 1;
    let mut cs = domain.to_vec();
    cs.extend(eqs);
    if fm::feasible(&cs) {
        Alias::Unknown
    } else {
        Alias::Never
    }
}

// ---------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------

/// Per-array access-multiplicity profile of one pipeline iteration.
#[derive(Clone, Debug)]
pub struct BankProfile {
    /// Array name.
    pub array: String,
    /// Total number of banks the array is split into.
    pub banks: u64,
    /// Memory reads per iteration (forwarding- and dedup-aware).
    pub reads: u64,
    /// Write-backs per iteration (last-writer per element).
    pub writes: u64,
    /// Whether the bank-class decomposition below is exact.
    pub exact: bool,
    /// Number of distinct occupied bank classes (when exact).
    pub classes: u64,
    /// Largest per-bank demand, reads + writes (when exact).
    pub max_demand: u64,
    /// Largest per-bank *read* demand (when exact). The simulator's
    /// calendars grant all of an iteration's memory reads at the issue
    /// cycle, so reads alone determine the per-iteration issue slide;
    /// write-backs land at result time and only lengthen the drain.
    pub max_read_demand: u64,
}

/// The bank analysis of one pipelined loop.
#[derive(Clone, Debug, Default)]
pub struct BankAnalysis {
    /// Whether instance enumeration and read/write classification were
    /// exact. When `false`, `profiles` is empty and nothing is claimed.
    pub exact: bool,
    /// One profile per accessed array.
    pub profiles: Vec<BankProfile>,
}

impl BankAnalysis {
    /// An inexact analysis claiming nothing.
    fn inexact() -> Self {
        BankAnalysis::default()
    }

    /// The exact bank-aware ResMII contribution: the largest
    /// `ceil(demand / ports)` over exactly-profiled arrays. `None` when
    /// the analysis has no exact profile to offer.
    pub fn exact_res_mii(&self, ports_per_bank: u64) -> Option<u64> {
        if !self.exact {
            return None;
        }
        self.profiles
            .iter()
            .filter(|p| p.exact)
            .map(|p| p.max_demand.div_ceil(ports_per_bank.max(1)).max(1))
            .max()
    }

    /// True when the loop is provably conflict-free: every array's
    /// per-bank demand fits in one cycle's ports, so the simulator's
    /// calendars never slide a request and the loop sustains any II its
    /// dependences allow. Requires full exactness.
    pub fn conflict_free(&self, ports_per_bank: u64) -> bool {
        self.exact
            && self
                .profiles
                .iter()
                .all(|p| p.exact && p.max_demand <= ports_per_bank.max(1))
    }

    /// The per-iteration issue slide the port calendars impose (`None`
    /// when inexact): the simulator grants every memory read of an
    /// iteration at its issue cycle, so a bank with read demand `d`
    /// pushes the issue `ceil(d / ports) - 1` cycles past the declared
    /// II — on *every* iteration, independent of the II itself.
    pub fn port_slide(&self, ports_per_bank: u64) -> Option<u64> {
        if !self.exact || self.profiles.iter().any(|p| !p.exact) {
            return None;
        }
        Some(
            self.profiles
                .iter()
                .map(|p| {
                    p.max_read_demand
                        .div_ceil(ports_per_bank.max(1))
                        .saturating_sub(1)
                })
                .max()
                .unwrap_or(0),
        )
    }

    /// The smallest II the bank demand admits (`None` when inexact):
    /// `max(1, max_b ceil(demand_b / ports))` over all arrays. A declared
    /// II below this provably incurs port stalls — the POM006 condition.
    /// This is the charitable window model (demand spread over II
    /// cycles); the simulator's cycle-accurate figure is
    /// [`BankAnalysis::port_slide`], which no II absorbs.
    pub fn min_feasible_ii(&self, ports_per_bank: u64) -> Option<u64> {
        if !self.exact || self.profiles.iter().any(|p| !p.exact) {
            return None;
        }
        Some(
            self.profiles
                .iter()
                .map(|p| p.max_demand.div_ceil(ports_per_bank.max(1)))
                .max()
                .unwrap_or(1)
                .max(1),
        )
    }
}

/// Analyzes one pipelined loop body.
///
/// `pipe` is the pipelined loop; `outer` lists the enclosing sequential
/// iterators with constant bounds `(iv, lb, ub)` — they constrain the
/// aliasing domain and bound the case enumeration below. The pipeline's
/// own iterator is added to the domain when its bounds are constant.
///
/// When an inner loop's bounds mention an enclosing iterator (the
/// non-rectangular tail a split with a non-dividing factor leaves), the
/// per-iteration instance set varies, and the analysis enumerates one
/// *case* per assignment of the mentioned iterators (capped at
/// [`CASE_CAP`]), merging per-bank demand as the maximum over cases.
/// Every assignment within the bounds is executed, so the merged figures
/// stay exact worst-iteration values — unless the pipeline sits under a
/// sequential guard (`guarded`), which may skip assignments; then the
/// analysis claims nothing.
pub fn analyze_pipeline(
    memrefs: &[MemRefDecl],
    pipe: &ForOp,
    outer: &[(String, i64, i64)],
    guarded: bool,
) -> BankAnalysis {
    let mut dom = Vec::new();
    for (iv, lb, ub) in outer {
        dom.push(Constraint::ge(
            LinearExpr::var(iv),
            LinearExpr::constant_expr(*lb),
        ));
        dom.push(Constraint::le(
            LinearExpr::var(iv),
            LinearExpr::constant_expr(*ub),
        ));
    }
    push_iv_bounds(&mut dom, pipe);

    let mut col = Collector {
        env: HashMap::new(),
        insts: Vec::new(),
        exact: true,
        symbolic_bounds: false,
    };
    col.collect(&pipe.body);
    if col.exact {
        return profiles_of(memrefs, &col.insts, &dom);
    }
    if !col.symbolic_bounds || guarded {
        return BankAnalysis::inexact();
    }

    // Ranges of the iterators a case assignment may pin: the enclosing
    // sequential iterators plus the pipeline's own (all executed in full).
    let mut ranges: HashMap<&str, (i64, i64)> = outer
        .iter()
        .map(|(iv, lb, ub)| (iv.as_str(), (*lb, *ub)))
        .collect();
    if let Some((lb, ub)) = const_range(pipe) {
        ranges.insert(&pipe.iv, (lb, ub));
    }
    let mut inner = Vec::new();
    let mut mentioned = std::collections::BTreeSet::new();
    bound_vars(&pipe.body, &mut inner, &mut mentioned);
    let case_vars: Vec<&str> = mentioned
        .iter()
        .map(String::as_str)
        .filter(|v| !inner.iter().any(|iv| iv == v))
        .collect();
    let mut cases = 1usize;
    for v in &case_vars {
        let Some((lb, ub)) = ranges.get(v) else {
            return BankAnalysis::inexact();
        };
        let n = (ub - lb + 1).max(0) as usize;
        cases = cases.saturating_mul(n);
        if cases == 0 || cases > CASE_CAP {
            return BankAnalysis::inexact();
        }
    }

    let mut envs: Vec<HashMap<String, i64>> = vec![HashMap::new()];
    for v in &case_vars {
        let (lb, ub) = ranges[v];
        envs = envs
            .into_iter()
            .flat_map(|e| {
                (lb..=ub).map(move |val| {
                    let mut e = e.clone();
                    e.insert(v.to_string(), val);
                    e
                })
            })
            .collect();
    }

    let mut merged: Vec<BankProfile> = Vec::new();
    for env in envs {
        let mut col = Collector {
            env,
            insts: Vec::new(),
            exact: true,
            symbolic_bounds: false,
        };
        col.collect(&pipe.body);
        if !col.exact {
            return BankAnalysis::inexact();
        }
        let an = profiles_of(memrefs, &col.insts, &dom);
        if !an.exact {
            return BankAnalysis::inexact();
        }
        for p in an.profiles {
            match merged.iter_mut().find(|m| m.array == p.array) {
                Some(m) => {
                    m.exact &= p.exact;
                    if p.max_demand > m.max_demand {
                        m.classes = p.classes;
                    }
                    m.reads = m.reads.max(p.reads);
                    m.writes = m.writes.max(p.writes);
                    m.max_demand = m.max_demand.max(p.max_demand);
                    m.max_read_demand = m.max_read_demand.max(p.max_read_demand);
                }
                None => merged.push(p),
            }
        }
    }
    BankAnalysis {
        exact: true,
        profiles: merged,
    }
}

/// Constant bounds of a loop, when both sides are constant.
fn const_range(l: &ForOp) -> Option<(i64, i64)> {
    let env = HashMap::new();
    if !l.lbs.iter().all(|b| b.expr.is_constant()) || !l.ubs.iter().all(|b| b.expr.is_constant()) {
        return None;
    }
    Some((
        l.lbs.iter().map(|b| b.eval_lower(&env)).max()?,
        l.ubs.iter().map(|b| b.eval_upper(&env)).min()?,
    ))
}

/// Collects every iterator mentioned by an in-pipeline loop bound
/// (`mentioned`) and every in-pipeline loop iv (`inner`).
fn bound_vars(
    ops: &[AffineOp],
    inner: &mut Vec<String>,
    mentioned: &mut std::collections::BTreeSet<String>,
) {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                for b in l.lbs.iter().chain(l.ubs.iter()) {
                    for v in b.expr.vars() {
                        mentioned.insert(v.to_string());
                    }
                }
                inner.push(l.iv.clone());
                bound_vars(&l.body, inner, mentioned);
            }
            AffineOp::If(i) => bound_vars(&i.body, inner, mentioned),
            AffineOp::Store(_) => {}
        }
    }
}

/// Adds `lb <= iv <= ub` to `dom` when the loop's bounds are constant.
fn push_iv_bounds(dom: &mut Vec<Constraint>, l: &ForOp) {
    let env = HashMap::new();
    if l.lbs.iter().all(|b| b.expr.is_constant()) && l.ubs.iter().all(|b| b.expr.is_constant()) {
        if let (Some(lb), Some(ub)) = (
            l.lbs.iter().map(|b| b.eval_lower(&env)).max(),
            l.ubs.iter().map(|b| b.eval_upper(&env)).min(),
        ) {
            dom.push(Constraint::ge(
                LinearExpr::var(&l.iv),
                LinearExpr::constant_expr(lb),
            ));
            dom.push(Constraint::le(
                LinearExpr::var(&l.iv),
                LinearExpr::constant_expr(ub),
            ));
        }
    }
}

/// Classifies the collected instances (simulator semantics: forwarding,
/// read dedupe, last-writer write-back) and groups the surviving
/// accesses into bank classes.
fn profiles_of(memrefs: &[MemRefDecl], insts: &[Inst], domain: &[Constraint]) -> BankAnalysis {
    let mut fm_budget = FM_BUDGET;

    // Memory reads: an element read before any same-iteration write comes
    // from memory; repeated reads of one element cost one port.
    let mut written: Vec<&Access> = Vec::new();
    let mut mem_reads: Vec<&Access> = Vec::new();
    for inst in insts {
        'load: for a in &inst.loads {
            for w in written.iter().filter(|w| w.array == a.array) {
                match alias(a, w, domain, &mut fm_budget) {
                    Alias::Same => continue 'load,
                    Alias::Never => {}
                    Alias::Unknown => return BankAnalysis::inexact(),
                }
            }
            for r in mem_reads.iter().filter(|r| r.array == a.array) {
                match alias(a, r, domain, &mut fm_budget) {
                    Alias::Same => continue 'load,
                    Alias::Never => {}
                    Alias::Unknown => return BankAnalysis::inexact(),
                }
            }
            mem_reads.push(a);
        }
        written.push(&inst.dest);
    }

    // Write-backs: only the last writer of each element touches memory.
    let mut writes: Vec<&Access> = Vec::new();
    for (i, inst) in insts.iter().enumerate() {
        let mut dead = false;
        for later in &insts[i + 1..] {
            if later.dest.array != inst.dest.array {
                continue;
            }
            match alias(&inst.dest, &later.dest, domain, &mut fm_budget) {
                Alias::Same => {
                    dead = true;
                    break;
                }
                Alias::Never => {}
                Alias::Unknown => return BankAnalysis::inexact(),
            }
        }
        if !dead {
            writes.push(&inst.dest);
        }
    }

    let mut profiles = Vec::new();
    for m in memrefs {
        let reads: Vec<&&Access> = mem_reads.iter().filter(|a| a.array == m.name).collect();
        let wr: Vec<&&Access> = writes.iter().filter(|a| a.array == m.name).collect();
        if reads.is_empty() && wr.is_empty() {
            continue;
        }
        let ab = ArrayBanks::of(m);
        let mut demand: HashMap<Vec<i64>, (u64, u64)> = HashMap::new();
        let mut key_ok = true;
        let reference = reads.first().or(wr.first()).expect("non-empty");
        'acc: for (a, is_write) in reads
            .iter()
            .map(|a| (**a, false))
            .chain(wr.iter().map(|a| (**a, true)))
        {
            if a.idx.len() != ab.dims.len() {
                key_ok = false;
                break;
            }
            let mut key = Vec::with_capacity(ab.dims.len());
            for (d, bd) in ab.dims.iter().enumerate() {
                if bd.factor <= 1 {
                    key.push(0);
                    continue;
                }
                let e = &a.idx[d];
                if bd.cyclic {
                    // Classes are iteration-invariant exactly when every
                    // access is congruent (mod factor) to the reference.
                    let r = &reference.idx[d];
                    if !congruent_coeffs(e, r, bd.factor) {
                        key_ok = false;
                        break 'acc;
                    }
                    let delta = e.clone() - r.clone();
                    key.push(residue(delta.constant(), bd.factor));
                } else {
                    // Block mapping: exact only for constant indices.
                    if !e.is_constant() {
                        key_ok = false;
                        break 'acc;
                    }
                    key.push((e.constant().max(0) / bd.chunk).min(bd.factor - 1));
                }
            }
            let slot = demand.entry(key).or_insert((0, 0));
            if is_write {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
        let max_demand = demand.values().map(|&(r, w)| r + w).max().unwrap_or(0);
        let max_read_demand = demand.values().map(|&(r, _)| r).max().unwrap_or(0);
        profiles.push(BankProfile {
            array: m.name.clone(),
            banks: ab.banks(),
            reads: reads.len() as u64,
            writes: wr.len() as u64,
            exact: key_ok,
            classes: if key_ok { demand.len() as u64 } else { 0 },
            max_demand: if key_ok { max_demand } else { 0 },
            max_read_demand: if key_ok { max_read_demand } else { 0 },
        });
    }
    BankAnalysis {
        exact: true,
        profiles,
    }
}

// ---------------------------------------------------------------------
// Whole-function walk
// ---------------------------------------------------------------------

/// The analysis of one pipelined loop found in a function.
#[derive(Clone, Debug)]
pub struct LoopBankReport {
    /// Induction variable of the pipelined loop.
    pub iv: String,
    /// Statements stored inside the loop body, in program order. Sibling
    /// nests reuse iv names (every stage of a fused image pipeline
    /// pipelines an `i`), so per-loop consumers key on these.
    pub stmts: Vec<String>,
    /// Declared initiation interval (`hls.pipeline_ii`, min 1).
    pub declared_ii: u64,
    /// The bank analysis of the loop body.
    pub analysis: BankAnalysis,
}

/// Analyzes every outermost pipelined loop of `func`. Enclosing
/// sequential loops contribute symbolic free iterators (with constant
/// bounds as domain constraints when available); loops inside a pipeline
/// are fully unrolled into it, mirroring both the estimator and the
/// simulator.
pub fn analyze_func(func: &AffineFunc) -> Vec<LoopBankReport> {
    let mut out = Vec::new();
    let mut outer = Vec::new();
    walk(func, &func.body, &mut outer, false, &mut out);
    out
}

fn walk(
    func: &AffineFunc,
    ops: &[AffineOp],
    outer: &mut Vec<(String, i64, i64)>,
    guarded: bool,
    out: &mut Vec<LoopBankReport>,
) {
    for op in ops {
        match op {
            AffineOp::For(l) if l.attrs.pipeline_ii.is_some() => {
                let mut stmts = Vec::new();
                stored_stmts(&l.body, &mut stmts);
                out.push(LoopBankReport {
                    iv: l.iv.clone(),
                    stmts,
                    declared_ii: l.attrs.pipeline_ii.unwrap_or(1).max(1) as u64,
                    analysis: analyze_pipeline(&func.memrefs, l, outer, guarded),
                });
            }
            AffineOp::For(l) => {
                let pushed = const_range(l).map(|(lb, ub)| {
                    outer.push((l.iv.clone(), lb, ub));
                });
                walk(func, &l.body, outer, guarded, out);
                if pushed.is_some() {
                    outer.pop();
                }
            }
            // A sequential-level guard selects whole pipeline executions;
            // it does not make the per-iteration instance set vary, but it
            // may skip outer-iterator cases — remember it.
            AffineOp::If(i) => walk(func, &i.body, outer, true, out),
            AffineOp::Store(_) => {}
        }
    }
}

/// Statement names stored anywhere under `ops`, in program order.
fn stored_stmts(ops: &[AffineOp], out: &mut Vec<String>) {
    for op in ops {
        match op {
            AffineOp::Store(s) => {
                if !out.contains(&s.stmt) {
                    out.push(s.stmt.clone());
                }
            }
            AffineOp::For(l) => stored_stmts(&l.body, out),
            AffineOp::If(i) => stored_stmts(&i.body, out),
        }
    }
}

// ---------------------------------------------------------------------
// Minimal conflict-free partitioning (DSE repair)
// ---------------------------------------------------------------------

/// Searches the smallest factor vector (by doubling, clamped to the
/// shape) that makes every *exactly analyzed* pipelined loop of `func`
/// conflict-free on `array` — loops the analysis cannot enumerate carry
/// no certificate and are left out of the demand measure. Returns
/// `None` when the array is already conflict-free or no factor
/// assignment helps (e.g. the demand comes from repeated same-bank
/// accesses no split separates).
pub fn minimal_conflict_free_factors(
    func: &AffineFunc,
    array: &str,
    ports_per_bank: u64,
) -> Option<Vec<i64>> {
    let mid = func.memrefs.iter().position(|m| m.name == array)?;
    let worst = |f: &AffineFunc| -> Option<u64> {
        let mut worst = 0u64;
        for rep in analyze_func(f) {
            if !rep.analysis.exact {
                continue;
            }
            for p in &rep.analysis.profiles {
                if p.array == array && p.exact {
                    worst = worst.max(p.max_demand);
                }
            }
        }
        Some(worst)
    };
    let mut cur = func.clone();
    let mut demand = worst(&cur)?;
    if demand <= ports_per_bank.max(1) {
        return None; // already conflict-free: nothing to repair
    }
    loop {
        // Try doubling each dimension's factor; keep the best reducer.
        let shape = cur.memrefs[mid].shape.clone();
        let base: Vec<i64> = match &cur.memrefs[mid].partition {
            Some(p) => p.factors.clone(),
            None => vec![1; shape.len()],
        };
        let mut best: Option<(u64, Vec<i64>)> = None;
        for d in 0..shape.len() {
            let cap = shape[d].max(1) as i64;
            let f = (base[d].max(1) * 2).min(cap);
            if f <= base[d].max(1) {
                continue;
            }
            let mut factors = base.clone();
            factors[d] = f;
            let mut trial = cur.clone();
            set_partition(&mut trial.memrefs[mid], &factors);
            if let Some(w) = worst(&trial) {
                if best.as_ref().is_none_or(|(bw, _)| w < *bw) {
                    best = Some((w, factors));
                }
            }
        }
        let (w, factors) = best?;
        if w >= demand {
            return None; // no dimension split reduces the demand
        }
        set_partition(&mut cur.memrefs[mid], &factors);
        demand = w;
        if demand <= ports_per_bank.max(1) {
            return Some(factors);
        }
    }
}

fn set_partition(m: &mut MemRefDecl, factors: &[i64]) {
    let style = m
        .partition
        .as_ref()
        .map_or(PartitionStyle::Cyclic, |p| p.style);
    m.partition = Some(pom_ir::PartitionInfo {
        factors: factors.to_vec(),
        style,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{DataType, Expr};
    use pom_ir::{HlsAttrs, PartitionInfo, StoreOp};
    use pom_poly::AccessFn;

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn load(array: &str, idx: Vec<LinearExpr>) -> Expr {
        Expr::Load(AccessFn::new(array, idx))
    }

    fn store(dest: &str, idx: Vec<LinearExpr>, value: Expr) -> AffineOp {
        AffineOp::Store(StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new(dest, idx),
            value,
        })
    }

    fn pipe_loop(iv: &str, n: i64, ii: i64, body: Vec<AffineOp>) -> ForOp {
        ForOp {
            iv: iv.into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(n - 1)],
            attrs: HlsAttrs {
                pipeline_ii: Some(ii),
                ..Default::default()
            },
            extra: Vec::new(),
            body,
        }
    }

    fn memref(name: &str, shape: &[usize], factors: Option<&[i64]>) -> MemRefDecl {
        let mut m = MemRefDecl::new(name, shape, DataType::F32);
        if let Some(f) = factors {
            m.partition = Some(PartitionInfo {
                factors: f.to_vec(),
                style: pom_dsl::PartitionStyle::Cyclic,
            });
        }
        m
    }

    #[test]
    fn bank_mapping_matches_cyclic_and_block_semantics() {
        let mut m = memref("a", &[8], Some(&[4]));
        let ab = ArrayBanks::of(&m);
        assert_eq!(ab.banks(), 4);
        assert_eq!(ab.bank_of_flat(5), 1);
        assert_eq!(ab.bank_of_flat(7), 3);
        m.partition.as_mut().unwrap().style = pom_dsl::PartitionStyle::Block;
        let ab = ArrayBanks::of(&m);
        assert_eq!(ab.bank_of_flat(0), 0);
        assert_eq!(ab.bank_of_flat(1), 0);
        assert_eq!(ab.bank_of_flat(7), 3);
        // Mixed-radix combine over two dimensions.
        let m = memref("b", &[4, 4], Some(&[2, 2]));
        let ab = ArrayBanks::of(&m);
        assert_eq!(ab.banks(), 4);
        // element (1, 3): bank = (1 % 2) * 2 + (3 % 2) = 3.
        assert_eq!(ab.bank_of_flat(7), 3);
    }

    #[test]
    fn stencil_window_collides_in_one_bank_without_partitioning() {
        // b[i] = a[i] + a[i+1] + a[i+2], a unpartitioned: three reads,
        // one bank, demand 3.
        let v = LinearExpr::var("i");
        let body = load("a", vec![v.clone()])
            + load("a", vec![v.clone() + 1])
            + load("a", vec![v.clone() + 2]);
        let l = pipe_loop("i", 16, 1, vec![store("b", vec![v.clone()], body)]);
        let mem = vec![memref("a", &[32], None), memref("b", &[32], None)];
        let an = analyze_pipeline(&mem, &l, &[], false);
        assert!(an.exact);
        let a = an.profiles.iter().find(|p| p.array == "a").unwrap();
        assert!(a.exact);
        assert_eq!((a.reads, a.writes, a.max_demand), (3, 0, 3));
        assert_eq!(an.exact_res_mii(2), Some(2));
        assert!(!an.conflict_free(2));
        assert_eq!(an.min_feasible_ii(2), Some(2));
    }

    #[test]
    fn cyclic_partition_separates_the_window() {
        // Same stencil, a partitioned cyclic factor 3: the three reads
        // land in distinct residue classes, demand 1 each.
        let v = LinearExpr::var("i");
        let body = load("a", vec![v.clone()])
            + load("a", vec![v.clone() + 1])
            + load("a", vec![v.clone() + 2]);
        let l = pipe_loop("i", 16, 1, vec![store("b", vec![v.clone()], body)]);
        let mem = vec![memref("a", &[32], Some(&[3])), memref("b", &[32], None)];
        let an = analyze_pipeline(&mem, &l, &[], false);
        let a = an.profiles.iter().find(|p| p.array == "a").unwrap();
        assert_eq!((a.classes, a.max_demand), (3, 1));
        assert!(an.conflict_free(2));
        assert_eq!(an.min_feasible_ii(2), Some(1));
    }

    #[test]
    fn forwarded_reads_and_dead_writes_cost_no_ports() {
        // acc[0] read+written by 4 unrolled instances: first read comes
        // from memory, the rest are forwarded; only the last write lands.
        let acc = || vec![LinearExpr::zero()];
        let inner = ForOp {
            iv: "k".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs::default(),
            extra: Vec::new(),
            body: vec![store(
                "acc",
                acc(),
                load("acc", acc()) + load("x", vec![LinearExpr::var("k")]),
            )],
        };
        let l = pipe_loop("i", 16, 1, vec![AffineOp::For(inner)]);
        let mem = vec![memref("acc", &[1], None), memref("x", &[4], Some(&[4]))];
        let an = analyze_pipeline(&mem, &l, &[], false);
        assert!(an.exact);
        let a = an.profiles.iter().find(|p| p.array == "acc").unwrap();
        assert_eq!((a.reads, a.writes, a.max_demand), (1, 1, 2));
        let x = an.profiles.iter().find(|p| p.array == "x").unwrap();
        assert_eq!((x.reads, x.max_demand), (4, 1));
        assert!(an.conflict_free(2));
    }

    #[test]
    fn guards_and_symbolic_inner_bounds_degrade_to_inexact() {
        let v = LinearExpr::var("i");
        let guarded = AffineOp::If(pom_ir::IfOp {
            conds: vec![Constraint::ge(v.clone(), LinearExpr::zero())],
            body: vec![store("b", vec![v.clone()], load("a", vec![v.clone()]))],
        });
        let l = pipe_loop("i", 16, 1, vec![guarded]);
        let mem = vec![memref("a", &[32], None), memref("b", &[32], None)];
        let an = analyze_pipeline(&mem, &l, &[], false);
        assert!(!an.exact);
        assert!(!an.conflict_free(2));
        assert_eq!(an.exact_res_mii(2), None);
    }

    #[test]
    fn congruence_failure_marks_only_that_array_inexact() {
        // a[2i+1] and a[i] never alias over i in [0, 3] (their difference
        // i+1 is strictly positive), but coefficients 2 and 1 are not
        // congruent mod 2 — the class decomposition for `a` is not
        // iteration-invariant.
        let v = LinearExpr::var("i");
        let body = load("a", vec![v.clone() * 2 + 1]) + load("a", vec![v.clone()]);
        let l = pipe_loop("i", 4, 1, vec![store("b", vec![v.clone()], body)]);
        let mem = vec![memref("a", &[32], Some(&[2])), memref("b", &[32], None)];
        let an = analyze_pipeline(&mem, &l, &[], false);
        assert!(an.exact);
        let a = an.profiles.iter().find(|p| p.array == "a").unwrap();
        assert!(!a.exact);
        let b = an.profiles.iter().find(|p| p.array == "b").unwrap();
        assert!(b.exact);
        assert!(!an.conflict_free(2));
        assert_eq!(an.min_feasible_ii(2), None);
    }

    #[test]
    fn analyze_func_walks_nests_and_reports_declared_ii() {
        // for j (seq) { for i (pipe II=1) { b[j][i] = a[j][i] + a[j][i+1] } }
        let (i, j) = (LinearExpr::var("i"), LinearExpr::var("j"));
        let body =
            load("a", vec![j.clone(), i.clone()]) + load("a", vec![j.clone(), i.clone() + 1]);
        let pipe = pipe_loop(
            "i",
            8,
            1,
            vec![store("b", vec![j.clone(), i.clone()], body)],
        );
        let outer = ForOp {
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::default(),
            extra: Vec::new(),
            body: vec![AffineOp::For(pipe)],
        };
        let mut f = AffineFunc::new("st");
        f.memrefs.push(memref("a", &[8, 16], Some(&[1, 2])));
        f.memrefs.push(memref("b", &[8, 16], None));
        f.body.push(AffineOp::For(outer));
        let reps = analyze_func(&f);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].iv, "i");
        assert_eq!(reps[0].declared_ii, 1);
        let a = reps[0]
            .analysis
            .profiles
            .iter()
            .find(|p| p.array == "a")
            .unwrap();
        // i and i+1 fall in distinct classes mod 2.
        assert_eq!((a.classes, a.max_demand), (2, 1));
        assert!(reps[0].analysis.conflict_free(2));
    }

    #[test]
    fn repair_finds_minimal_conflict_free_factor() {
        // b[i] = a[i] + a[i+1] + a[i+2] + a[i+3], ports = 2: factor 2
        // (demand 2) is the minimal conflict-free cyclic split.
        let v = LinearExpr::var("i");
        let body = load("a", vec![v.clone()])
            + load("a", vec![v.clone() + 1])
            + load("a", vec![v.clone() + 2])
            + load("a", vec![v.clone() + 3]);
        let l = pipe_loop("i", 16, 1, vec![store("b", vec![v.clone()], body)]);
        let mut f = AffineFunc::new("st");
        f.memrefs.push(memref("a", &[32], None));
        f.memrefs.push(memref("b", &[32], None));
        f.body.push(AffineOp::For(l));
        assert_eq!(minimal_conflict_free_factors(&f, "a", 2), Some(vec![2]));
        assert_eq!(minimal_conflict_free_factors(&f, "a", 1), Some(vec![4]));
        // b has demand 1: already conflict-free, nothing to repair.
        assert_eq!(minimal_conflict_free_factors(&f, "b", 2), None);
        // acc-style same-element demand is not separable by splitting.
        let acc = || vec![LinearExpr::zero()];
        let l2 = pipe_loop(
            "i",
            16,
            1,
            vec![
                store("c", acc(), load("c", acc()) + load("a", vec![v.clone()])),
                store("c", vec![LinearExpr::zero() + 0], load("c", acc())),
            ],
        );
        let mut g = AffineFunc::new("acc");
        g.memrefs.push(memref("a", &[32], None));
        g.memrefs.push(memref("c", &[1], None));
        g.body.push(AffineOp::For(l2));
        assert_eq!(minimal_conflict_free_factors(&g, "c", 1), None);
    }
}
