//! Bench target regenerating the paper's "Fig. 14 primitive ablation" exhibit: prints the
//! reproduced rows/series, then times the underlying machinery.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;

fn timed(c: &mut Criterion) {
    c.bench_function("fig14_ablation", |b| {
        b.iter(|| {
            black_box(pom_bench::experiments::fig14::ablate(
                "2MM",
                &pom_bench::kernels::mm2(128),
            ))
        })
    });
}

fn main() {
    // Regenerate the exhibit (the actual reproduction output).
    println!("{}", pom_bench::experiments::fig14::run());
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .configure_from_args();
    timed(&mut criterion);
    criterion.final_summary();
}
