//! Bench target regenerating the paper's "Fig. 15 lines of code" exhibit: prints the
//! reproduced rows/series, then times the underlying machinery.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;

fn timed(c: &mut Criterion) {
    let opts = pom::CompileOptions::default();
    c.bench_function("fig15_loc", |b| {
        b.iter(|| {
            black_box(pom::hls::hls_c_loc(
                &pom::auto_dse(&pom_bench::kernels::gemm(128), &opts)
                    .expect("DSE compiles")
                    .compiled
                    .affine,
            ))
        })
    });
    let _ = &opts;
}

fn main() {
    // Regenerate the exhibit (the actual reproduction output).
    println!("{}", pom_bench::experiments::fig15::run());
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .configure_from_args();
    timed(&mut criterion);
    criterion.final_summary();
}
