//! Bench target regenerating the paper's "Table IV manual vs DSE" exhibit: prints the
//! reproduced rows/series, then times the underlying machinery.

use criterion::Criterion;
use std::hint::black_box;
use std::time::Duration;

fn timed(c: &mut Criterion) {
    let opts = pom::CompileOptions::default();
    c.bench_function("tab04_manual", |b| {
        b.iter(|| {
            black_box(pom::compile(
                &pom_bench::experiments::tab04::manual_schedule(1024),
                &opts,
            ))
        })
    });
    let _ = &opts;
}

fn main() {
    // Regenerate the exhibit (the actual reproduction output).
    println!("{}", pom_bench::experiments::tab04::run());
    let mut criterion = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
        .configure_from_args();
    timed(&mut criterion);
    criterion.final_summary();
}
