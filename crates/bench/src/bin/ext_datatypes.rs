//! Prints the data-type customization extension table.

fn main() {
    println!("{}", pom_bench::experiments::ext_dtypes::run());
}
