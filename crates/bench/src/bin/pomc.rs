//! `pomc` — the POM command-line driver.
//!
//! Compiles a built-in benchmark kernel through the full flow and prints
//! the requested artefact:
//!
//! ```text
//! pomc <kernel> [--size N] [--emit dsl|graph|ir|c|tb|report|schedule|lint|verify|sim|live|dataflow|cache]
//!               [--no-dse] [--dataflow] [--store DIR] [--store-max-bytes BYTES] [--daemon SOCKET]
//! pomc bench-dse [--size N] [--out PATH] [--ceiling SECS]
//! pomc bench-sim [--size N] [--out PATH]
//! pomc bench-dataflow [--size N] [--out PATH]
//! pomc bench-live [--size N] [--out PATH]
//! pomc bench-serve [--size N] [--repeat N] [--clients N] [--out PATH]
//! pomc verify-all [--size N] [--sample-every K] [--out PATH]
//! ```
//!
//! `--store DIR` backs the DSE cache with the persistent artifact store
//! rooted at `DIR` (shared across processes; see `pom_dse::store`), and
//! `--emit cache` prints the cache + store statistics of the run.
//! `--store-max-bytes BYTES` sweeps the store's shard down to the given
//! disk budget on open, oldest artifacts first (skipped when another
//! process holds the store open).
//! `--daemon SOCKET` sends the request to a running `pomd` instead of
//! compiling locally and prints the daemon's serving payload (schedule +
//! QoR + HLS C); other emit modes don't apply over the daemon.
//!
//! `bench-serve` replays the duplicate-heavy serving traffic mix against
//! cold-process, warm-store, and daemon configurations, writes
//! `BENCH_serve.json`, and exits nonzero when the warm-vs-cold speedup,
//! cross-process hit rate, or byte-identity gates fail.
//!
//! `--emit lint` runs the `pom-lint` diagnostics suite (POM001–POM010)
//! over the compiled design and exits nonzero when any error-severity
//! diagnostic fires. On multi-nest kernels the run includes a dataflow
//! co-simulation so the measured channel-pressure check (POM010) has
//! per-channel stall figures to judge.
//!
//! `--emit dataflow` partitions the compiled design into dataflow
//! stages (`pom-dataflow`), replays every channel-sizing certificate,
//! co-simulates the stage processes over bounded channels, and prints
//! the dataflow-vs-sequential cycle comparison. Exits nonzero on memory
//! divergence, deadlock, or a failed certificate. `--dataflow` turns on
//! the rate-matching DSE refinement (beam searches only) so the winner
//! is picked by simulated dataflow cycles. `bench-dataflow` runs the
//! audit over the whole 14-kernel suite and writes
//! `BENCH_dataflow.json`; it fails unless memory is bit-identical and
//! deadlock-free everywhere, every certificate replays, and the
//! dataflow winner strictly beats the sequential winner's simulated
//! cycles on vgg16 and resnet18 at an equal resource envelope.
//!
//! `--emit live` runs `pom-live`'s whole-function liveness analysis over
//! the compiled design: per-array live windows, contraction candidates
//! (each replayed through its certificate on the spot), flow-depth rows,
//! and dead stores. Exits nonzero on any dead store (POM008 is an error)
//! or failed contraction replay. `bench-live` runs the liveness audit
//! over the whole 14-kernel suite (seed + DSE schedules): every array's
//! static live bound must dominate the simulator's measured per-array
//! high-water occupancy, and every claimed contraction must replay
//! bit-identically; measurements are written to `LIVE_report.json`.
//!
//! `--emit verify` replays the schedule through `pom-verify`'s
//! translation validation and exits nonzero when any certificate is
//! rejected. `verify-all` runs the certificate sweep over the Table
//! III + Table V suite (winner + sampled candidate validation), writes
//! `VERIFY_certificates.json`, and exits nonzero on any rejection.
//!
//! `bench-dse` runs the Table III + Table V suite with the serial seed
//! profile and with the parallel + memoized search, checks the outputs
//! are identical, writes `BENCH_dse.json`, and exits nonzero when any
//! kernel's fast-mode DSE exceeds `--ceiling` seconds or diverges from
//! the serial search.
//!
//! `--emit sim` runs the cycle-approximate simulator (`pom-sim`) over
//! the compiled design and prints the measured cycle report next to the
//! analytical estimate. `bench-sim` runs the differential audit over
//! the whole 14-kernel suite (seed + DSE schedules): simulator memory
//! must match the affine interpreter bit for bit on every kernel, the
//! analytical latency must stay within ±15% of the simulated cycles on
//! the Table III and image kernels, every loop pom-bank certifies
//! conflict-free must simulate with zero port stalls, and the
//! measurements are written to `BENCH_sim.json`.
//!
//! Kernels: gemm, bicg, gesummv, 2mm, 3mm, jacobi1d, jacobi2d, heat1d,
//! seidel, edge_detect, gaussian, blur, vgg16, resnet18.

use pom::{
    auto_dse_with, baselines, ArtifactStore, CompileOptions, DseConfig, MemoryState, Pom,
    SearchMode,
};
use pom_bench::experiments::{
    bench_dataflow, bench_dse, bench_live, bench_poly, bench_serve, bench_sim, verify_suite,
};
use pom_bench::serve::kernel_by_name;

/// The artefacts `--emit` can produce, validated before any compilation.
const EMIT_MODES: &[&str] = &[
    "dsl", "graph", "ir", "c", "tb", "report", "schedule", "lint", "verify", "sim", "live",
    "dataflow", "cache",
];

const USAGE: &str = "usage: pomc <kernel> [--size N] [--emit dsl|graph|ir|c|tb|report|schedule|lint|verify|sim|live|dataflow|cache] [--search greedy|beam|portfolio] [--budget-ms MS] [--no-dse] [--dataflow] [--store DIR] [--store-max-bytes BYTES] [--daemon SOCKET]\n       pomc bench-dse [--size N] [--out PATH] [--ceiling SECS] [--beam]\n       pomc bench-poly [--iters N] [--out PATH] [--baseline PATH]\n       pomc bench-sim [--size N] [--out PATH]\n       pomc bench-dataflow [--size N] [--out PATH]\n       pomc bench-live [--size N] [--out PATH]\n       pomc bench-serve [--size N] [--repeat N] [--clients N] [--out PATH]\n       pomc verify-all [--size N] [--sample-every K] [--out PATH]";

fn bench_poly_main(args: &[String]) -> ! {
    let mut iters = 200usize;
    let mut out = "BENCH_poly.json".to_string();
    let mut baseline_path = "BENCH_poly_baseline.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--iters expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--baseline" => {
                baseline_path = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--baseline expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = bench_poly::run_suite(iters);
    print!("{}", bench_poly::render(&report));
    if let Err(e) = std::fs::write(&out, bench_poly::to_json(&report)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match bench_poly::parse_baseline(&text) {
            Some(b) => Some(b),
            None => {
                eprintln!("FAIL: {baseline_path} exists but does not parse");
                std::process::exit(1);
            }
        },
        Err(_) => {
            println!("no baseline at {baseline_path}; gating on floors only");
            None
        }
    };
    let fails = bench_poly::gate(&report, baseline.as_ref());
    for f in &fails {
        eprintln!("FAIL: {f}");
    }
    std::process::exit(if fails.is_empty() { 0 } else { 1 });
}

fn verify_all_main(args: &[String]) -> ! {
    let mut size = 32usize;
    let mut sample_every = 4usize;
    let mut out = "VERIFY_certificates.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--sample-every" => {
                sample_every = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--sample-every expects a number (0 disables sampling)");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = verify_suite::run_suite(size, sample_every);
    print!("{}", verify_suite::render(&report));
    if let Err(e) = std::fs::write(&out, verify_suite::to_json(&report)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    std::process::exit(if report.all_passed() { 0 } else { 1 });
}

fn bench_dse_main(args: &[String]) -> ! {
    let mut size = 64usize;
    let mut out = "BENCH_dse.json".to_string();
    let mut ceiling = f64::INFINITY;
    let mut beam = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--ceiling" => {
                ceiling = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--ceiling expects seconds");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--beam" => {
                beam = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = bench_dse::run_suite(size);
    print!("{}", bench_dse::render(&report));
    let beam_report = beam.then(|| bench_dse::run_beam_suite(size));
    if let Some(b) = &beam_report {
        print!("{}", bench_dse::render_beam(b));
    }
    if let Err(e) = std::fs::write(
        &out,
        bench_dse::to_json_with_beam(&report, beam_report.as_ref()),
    ) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    let mut failed = false;
    for k in &report.rows {
        if !k.identical {
            eprintln!("FAIL: {} parallel search diverged from serial", k.kernel);
            failed = true;
        }
        if k.fast_s > ceiling {
            eprintln!(
                "FAIL: {} DSE took {:.3} s (> ceiling {:.3} s)",
                k.kernel, k.fast_s, ceiling
            );
            failed = true;
        }
    }
    if let Some(b) = &beam_report {
        // Beam gates: (a) the portfolio never regresses any kernel's
        // simulated QoR, (b) it strictly beats greedy somewhere, (c) the
        // anytime curves honor their strictly-decreasing contract.
        for k in &b.rows {
            if k.regression {
                eprintln!(
                    "FAIL: {} portfolio regressed vs greedy ({} > {} simulated cycles)",
                    k.kernel, k.beam_cycles, k.greedy_cycles
                );
                failed = true;
            }
            if !k.both_fit {
                eprintln!("FAIL: {} winner exceeds the device envelope", k.kernel);
                failed = true;
            }
            if !k.anytime_monotonic {
                eprintln!(
                    "FAIL: {} anytime curve is not strictly decreasing",
                    k.kernel
                );
                failed = true;
            }
        }
        if b.strict_wins == 0 {
            eprintln!("FAIL: portfolio strictly beat greedy on no kernel");
            failed = true;
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn bench_serve_main(args: &[String]) -> ! {
    let mut size = 32usize;
    let mut repeat = 2usize;
    let mut clients = 4usize;
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--repeat" => {
                repeat = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--repeat expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--clients" => {
                clients = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--clients expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = bench_serve::run(&bench_serve::traffic(size, repeat), clients);
    print!("{}", bench_serve::render(&report));
    if let Err(e) = std::fs::write(&out, bench_serve::to_json(&report)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    let fails = bench_serve::gate(&report);
    for f in &fails {
        eprintln!("FAIL: {f}");
    }
    std::process::exit(if fails.is_empty() { 0 } else { 1 });
}

fn bench_sim_main(args: &[String]) -> ! {
    let mut size = 32usize;
    let mut out = "BENCH_sim.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = bench_sim::run_suite(size);
    print!("{}", bench_sim::render(&report));
    if let Err(e) = std::fs::write(&out, bench_sim::to_json(&report)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    let fails = bench_sim::gate(&report);
    for f in &fails {
        eprintln!("FAIL: {f}");
    }
    std::process::exit(if fails.is_empty() { 0 } else { 1 });
}

fn bench_dataflow_main(args: &[String]) -> ! {
    let mut size = 64usize;
    let mut out = "BENCH_dataflow.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = bench_dataflow::run_suite(size);
    print!("{}", bench_dataflow::render(&report));
    if let Err(e) = std::fs::write(&out, bench_dataflow::to_json(&report)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    let fails = bench_dataflow::gate(&report);
    for f in &fails {
        eprintln!("FAIL: {f}");
    }
    std::process::exit(if fails.is_empty() { 0 } else { 1 });
}

fn bench_live_main(args: &[String]) -> ! {
    let mut size = 32usize;
    let mut out = "LIVE_report.json".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--out" => {
                out = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let report = bench_live::run_suite(size);
    print!("{}", bench_live::render(&report));
    if let Err(e) = std::fs::write(&out, bench_live::to_json(&report)) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    let fails = bench_live::gate(&report);
    for f in &fails {
        eprintln!("FAIL: {f}");
    }
    std::process::exit(if fails.is_empty() { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(kernel) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    if kernel == "bench-dse" {
        bench_dse_main(&args[1..]);
    }
    if kernel == "bench-live" {
        bench_live_main(&args[1..]);
    }
    if kernel == "bench-poly" {
        bench_poly_main(&args[1..]);
    }
    if kernel == "bench-sim" {
        bench_sim_main(&args[1..]);
    }
    if kernel == "bench-dataflow" {
        bench_dataflow_main(&args[1..]);
    }
    if kernel == "bench-serve" {
        bench_serve_main(&args[1..]);
    }
    if kernel == "verify-all" {
        verify_all_main(&args[1..]);
    }
    let mut size = 256usize;
    let mut emit = "report".to_string();
    let mut use_dse = true;
    let mut dataflow = false;
    let mut search = "greedy".to_string();
    let mut budget_ms: Option<u64> = None;
    let mut store: Option<std::path::PathBuf> = None;
    let mut store_max_bytes: Option<u64> = None;
    let mut daemon: Option<std::path::PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--size" => {
                size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--size expects a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--emit" => {
                emit = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--emit expects a mode: {}", EMIT_MODES.join("|"));
                    std::process::exit(2);
                });
                i += 2;
            }
            "--no-dse" => {
                use_dse = false;
                i += 1;
            }
            "--dataflow" => {
                dataflow = true;
                i += 1;
            }
            "--search" => {
                search = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--search expects a mode: {}", SearchMode::MODES.join("|"));
                    std::process::exit(2);
                });
                i += 2;
            }
            "--budget-ms" => {
                budget_ms = args.get(i + 1).and_then(|v| v.parse().ok());
                if budget_ms.is_none() {
                    eprintln!("--budget-ms expects a millisecond count");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--store" => {
                store = args.get(i + 1).map(std::path::PathBuf::from);
                if store.is_none() {
                    eprintln!("--store expects a directory");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--store-max-bytes" => {
                store_max_bytes = args.get(i + 1).and_then(|v| v.parse().ok());
                if store_max_bytes.is_none() {
                    eprintln!("--store-max-bytes expects a byte count");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--daemon" => {
                daemon = args.get(i + 1).map(std::path::PathBuf::from);
                if daemon.is_none() {
                    eprintln!("--daemon expects a socket path");
                    std::process::exit(2);
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    // Daemon mode: hand the request to a running pomd and print its
    // serving payload (schedule + QoR + HLS C) — no local compile.
    if let Some(socket) = daemon {
        match pom_bench::serve::client_request(&socket, &format!("compile {kernel} {size}")) {
            Ok(Ok(payload)) => {
                print!("{payload}");
                std::process::exit(0);
            }
            Ok(Err(msg)) => {
                eprintln!("pomd: {msg}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("cannot reach pomd at {}: {e}", socket.display());
                std::process::exit(1);
            }
        }
    }

    // Validate the emit mode *before* compiling anything: a typo should
    // fail fast, not after a full DSE run.
    if !EMIT_MODES.contains(&emit.as_str()) {
        eprintln!(
            "unknown --emit {emit}; valid modes: {}\n{USAGE}",
            EMIT_MODES.join(", ")
        );
        std::process::exit(2);
    }

    if emit == "cache" && !use_dse {
        eprintln!("--emit cache reports the DSE cache; it cannot be combined with --no-dse");
        std::process::exit(2);
    }

    // Same fail-fast contract for the search flags: a bad mode name or a
    // meaningless budget is a usage error, caught before any compilation.
    let Some(search) = SearchMode::parse(&search) else {
        eprintln!(
            "unknown --search {search}; valid modes: {}\n{USAGE}",
            SearchMode::MODES.join(", ")
        );
        std::process::exit(2);
    };
    if budget_ms == Some(0) {
        eprintln!("--budget-ms expects a positive budget (0 would return the untuned seed)");
        std::process::exit(2);
    }
    if budget_ms.is_some() && search == SearchMode::Greedy {
        eprintln!("--budget-ms only applies to the beam searches; pass --search beam|portfolio");
        std::process::exit(2);
    }
    if search != SearchMode::Greedy && !use_dse {
        eprintln!("--search {search} runs inside the DSE; it cannot be combined with --no-dse");
        std::process::exit(2);
    }
    if dataflow && !use_dse {
        eprintln!("--dataflow runs inside the DSE; it cannot be combined with --no-dse");
        std::process::exit(2);
    }
    if dataflow && search == SearchMode::Greedy {
        eprintln!(
            "--dataflow rate-matching rides on the bounded searches; pass --search beam|portfolio"
        );
        std::process::exit(2);
    }

    let Some(f) = kernel_by_name(kernel, size) else {
        eprintln!("unknown kernel {kernel}\n{USAGE}");
        std::process::exit(2);
    };

    let driver = Pom::new();
    let opts = CompileOptions::default();
    let cfg = DseConfig {
        store: store.clone(),
        store_max_bytes,
        search,
        budget_ms,
        dataflow,
        ..DseConfig::default()
    };
    let dse = if use_dse {
        match auto_dse_with(&f, &opts, &cfg) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("DSE failed: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };
    let scheduled = dse
        .as_ref()
        .map(|r| r.function.clone())
        .unwrap_or_else(|| f.clone());

    match emit.as_str() {
        "dsl" => println!("{f}"),
        "schedule" => {
            for p in scheduled.schedule() {
                println!("{p};");
            }
        }
        "graph" => println!("{}", driver.analyze(&f)),
        "ir" => println!("{}", driver.compile(&scheduled).affine),
        "c" => println!("{}", driver.compile(&scheduled).hls_c()),
        "tb" => println!("{}", driver.testbench(&scheduled, 42)),
        "report" => {
            let base = baselines::baseline_compiled(&f, &opts);
            let report = driver.report(&scheduled);
            println!("{}", report.render());
            println!(
                "Speedup over unoptimized baseline: {:.1}x",
                report.qor.speedup_over(&base.qor)
            );
            if let Some(r) = &dse {
                if search != SearchMode::Greedy {
                    println!(
                        "Search ({search}): {} wave(s), {} expanded, {} simulated \
                         ({} band-pruned), winner {} simulated cycle(s){}",
                        r.stats.beam_depth,
                        r.stats.beam_expanded,
                        r.stats.sim_admitted,
                        r.stats.sim_pruned,
                        r.stats.sim_cycles,
                        if r.stats.budget_expired {
                            "; budget expired (anytime best-so-far)"
                        } else {
                            ""
                        }
                    );
                }
            }
        }
        "lint" => {
            let report = driver.lint(&scheduled);
            println!("{}", report.render(scheduled.name()));
            if let Some(r) = &dse {
                println!(
                    "DSE: {} candidate(s) estimated, {} lint-pruned before estimation",
                    r.stats.estimated, r.stats.lint_pruned
                );
                println!(
                    "DSE cache: {} hit(s), {} miss(es); {} candidate(s) evaluated in parallel",
                    r.stats.cache_hits, r.stats.cache_misses, r.stats.parallel_evaluated
                );
                println!(
                    "DSE phases: stage1 {:.3} s, stage2 {:.3} s (lowering {:.3} s, estimation {:.3} s)",
                    r.stats.stage1_time.as_secs_f64(),
                    r.stats.stage2_time.as_secs_f64(),
                    r.stats.lowering_time.as_secs_f64(),
                    r.stats.estimation_time.as_secs_f64()
                );
                println!("DSE poly kernel: {}", r.stats.poly);
                if r.stats.sim_reranked > 0 {
                    println!(
                        "DSE sim re-rank: {} finalist(s) measured, winner {} cycle(s) \
                         (dep {}, port {}, drain {}) in {:.3} s",
                        r.stats.sim_reranked,
                        r.stats.sim_cycles,
                        r.stats.sim_stall_dep,
                        r.stats.sim_stall_port,
                        r.stats.sim_stall_drain,
                        r.stats.sim_time.as_secs_f64()
                    );
                }
            }
            if report.has_errors() {
                std::process::exit(1);
            }
        }
        "verify" => {
            let report = driver.verify(&scheduled);
            print!("{}", report.render());
            if let Some(r) = &dse {
                println!(
                    "DSE validation: {} certificate(s) checked ({} passed, {} sampled \
                     candidates), {} dataflow fixpoint iteration(s)",
                    r.stats.certificates_checked,
                    r.stats.certificates_passed,
                    r.stats.certificates_sampled,
                    r.stats.dataflow_iterations
                );
            }
            if !report.passed() {
                std::process::exit(1);
            }
        }
        "sim" => {
            let compiled = driver.compile(&scheduled);
            let mut interp_mem = MemoryState::for_function_seeded(&scheduled, 42);
            pom::execute_func(&compiled.affine, &mut interp_mem);
            let mut sim_mem = MemoryState::for_function_seeded(&scheduled, 42);
            let report = pom::simulate(
                &compiled.affine,
                &compiled.deps,
                &mut sim_mem,
                &driver.options.model,
            );
            print!("{}", report.render());
            println!(
                "estimated cycles: {} ({:.3}x the simulated {})",
                compiled.qor.latency,
                compiled.qor.latency as f64 / report.cycles.max(1) as f64,
                report.cycles
            );
            println!(
                "memory vs interpreter: {}",
                if sim_mem == interp_mem {
                    "bit-identical"
                } else {
                    "DIVERGED"
                }
            );
            if let Some(r) = &dse {
                if r.stats.sim_reranked > 0 {
                    println!(
                        "DSE sim re-rank: {} finalist(s) measured, winner {} cycle(s)",
                        r.stats.sim_reranked, r.stats.sim_cycles
                    );
                }
                if search != SearchMode::Greedy {
                    println!(
                        "DSE {search} search: {} wave(s), width {}, {} state(s) expanded",
                        r.stats.beam_depth, r.stats.beam_width, r.stats.beam_expanded
                    );
                    println!(
                        "DSE sim admission: {} state(s) simulated, {} pruned by the \
                         admission band, {:.3} s in the simulator{}",
                        r.stats.sim_admitted,
                        r.stats.sim_pruned,
                        r.stats.sim_time.as_secs_f64(),
                        if r.stats.budget_expired {
                            " (budget expired: anytime best-so-far)"
                        } else {
                            ""
                        }
                    );
                    println!(
                        "DSE winner (simulated): {} cycle(s) (dep {}, port {}, drain {}; \
                         {} port conflict(s))",
                        r.stats.sim_cycles,
                        r.stats.sim_stall_dep,
                        r.stats.sim_stall_port,
                        r.stats.sim_stall_drain,
                        r.stats.sim_port_conflicts
                    );
                }
            }
            if sim_mem != interp_mem {
                std::process::exit(1);
            }
        }
        "dataflow" => {
            let compiled = driver.compile(&scheduled);
            let live = pom::live::analyze_func(&compiled.affine);
            let plan = pom::partition_dataflow(&scheduled, &compiled.affine, &live);
            print!("{}", plan.render());
            // Replay every channel-sizing certificate on the spot: the
            // printed depths are never a static-only claim.
            let mem0 = pom::seeded_memory(&compiled.affine, 42);
            let certs = pom::channel_certificates(&compiled.affine, &plan, &mem0);
            let mut cert_failed = false;
            for c in &certs {
                for o in &c.obligations {
                    let ok = o.status == pom::verify::ObligationStatus::Passed;
                    cert_failed |= !ok;
                    println!(
                        "certificate {}: {} — {}",
                        if ok { "passed" } else { "FAILED" },
                        c.rewrite,
                        o.detail
                    );
                }
            }
            let mut df_mem = pom::seeded_memory(&compiled.affine, 42);
            let report = pom::simulate_dataflow(
                &compiled.affine,
                &compiled.deps,
                &plan.stages,
                &plan.channel_specs(),
                &mut df_mem,
                &driver.options.model,
            );
            print!("{}", report.render());
            let mut seq_mem = pom::seeded_memory(&compiled.affine, 42);
            let seq = pom::simulate(
                &compiled.affine,
                &compiled.deps,
                &mut seq_mem,
                &driver.options.model,
            );
            println!(
                "sequential cycles: {} ({:.3}x the dataflow {})",
                seq.cycles,
                seq.cycles as f64 / report.cycles.max(1) as f64,
                report.cycles
            );
            let mut interp_mem = pom::seeded_memory(&compiled.affine, 42);
            pom::execute_func(&compiled.affine, &mut interp_mem);
            println!(
                "memory vs interpreter: {}",
                if df_mem == interp_mem {
                    "bit-identical"
                } else {
                    "DIVERGED"
                }
            );
            if let Some(r) = &dse {
                if dataflow {
                    println!(
                        "DSE dataflow: {} rate-matching round(s) over {} stage(s) and \
                         {} channel(s), winner {} dataflow cycle(s) vs {} sequential, \
                         {:.3} s refining",
                        r.stats.dataflow_rounds,
                        r.stats.dataflow_stages,
                        r.stats.dataflow_channels,
                        r.stats.dataflow_cycles,
                        r.stats.dataflow_seq_cycles,
                        r.stats.dataflow_time.as_secs_f64()
                    );
                }
            }
            if df_mem != interp_mem || report.deadlock || cert_failed {
                std::process::exit(1);
            }
        }
        "live" => {
            let compiled = driver.compile(&scheduled);
            let report = pom::live::analyze_func(&compiled.affine);
            print!("{}", pom::live::render(&report));
            // Replay every claimed contraction's certificate on the spot:
            // the printed windows are never a static-only claim.
            let contractible: Vec<_> = report.arrays.iter().filter(|a| a.contracted()).collect();
            if !contractible.is_empty() {
                let mem0 = pom::seeded_memory(&compiled.affine, 42);
                for al in contractible {
                    match pom::replay_contraction(&compiled.affine, &mem0, &al.array, &al.windows)
                    {
                        Ok(stores) => println!(
                            "contraction `{}` -> [{}]: certificate passed ({stores} store(s) replayed)",
                            al.array,
                            al.windows
                                .iter()
                                .map(i64::to_string)
                                .collect::<Vec<_>>()
                                .join("x"),
                        ),
                        Err(e) => {
                            eprintln!("contraction `{}` FAILED replay: {e}", al.array);
                            std::process::exit(1);
                        }
                    }
                }
            }
            if !report.dead_stores.is_empty() {
                eprintln!(
                    "{} dead store(s) found (POM008 is error-severity)",
                    report.dead_stores.len()
                );
                std::process::exit(1);
            }
        }
        "cache" => {
            let r = dse.as_ref().expect("--emit cache implies DSE");
            let s = &r.stats;
            let looked_up = s.cache_hits + s.cache_misses;
            let rate = if looked_up > 0 {
                s.cache_hits as f64 / looked_up as f64 * 100.0
            } else {
                0.0
            };
            println!(
                "cache: {} hit(s), {} miss(es) ({rate:.0}% hit rate), {} eviction(s), {} live entr(ies)",
                s.cache_hits, s.cache_misses, s.cache_evictions, s.cache_entries
            );
            match &store {
                Some(root) => {
                    println!(
                        "store: {} hit(s), {} miss(es), {} write(s) this run",
                        s.store_hits, s.store_misses, s.store_writes
                    );
                    // Re-open the shard to walk what is on disk now (the
                    // search's own handle is gone with its cache).
                    match ArtifactStore::open(root, &opts) {
                        Ok(st) => {
                            let usage = st.disk_usage();
                            let entries: usize = usage.values().map(|v| v.0).sum();
                            let bytes: u64 = usage.values().map(|v| v.1).sum();
                            println!(
                                "store-disk: {entries} artifact(s), {bytes} byte(s) in {}",
                                st.shard_dir().display()
                            );
                            for (kind, (count, kbytes)) in usage {
                                println!(
                                    "store-kind {kind}: {count} artifact(s), {kbytes} byte(s)"
                                );
                            }
                        }
                        Err(e) => println!("store-disk: unavailable ({e})"),
                    }
                }
                None => println!("store: none (pass --store DIR to persist the cache)"),
            }
        }
        other => unreachable!("--emit {other} was validated against EMIT_MODES"),
    }
}
