//! `pomd` — the POM compile daemon.
//!
//! A long-running compile service over a Unix domain socket: requests
//! name a built-in kernel (or a `conv<ci>x<co>x<size>` DNN layer), the
//! daemon runs the full two-stage DSE, and repeated or concurrent
//! duplicates are answered from the shared cache / coalesced into one
//! compile (batch admission). With `--store` the cache persists across
//! daemon restarts and is shared with `pomc --store` processes;
//! `--store-max-bytes` sweeps the store down to a byte budget (oldest
//! artifacts first) when the daemon opens it, so `pomd stats` reports
//! post-GC per-kind disk usage.
//!
//! ```text
//! pomd serve --socket PATH [--store DIR] [--store-max-bytes BYTES]
//! pomd stats --socket PATH
//! pomd shutdown --socket PATH
//! ```
//!
//! Wire protocol and semantics: see `pom_bench::serve`.

use pom_bench::serve;
use pom_dse::{CompileOptions, DseConfig};
use std::path::PathBuf;
use std::sync::Arc;

const USAGE: &str = "usage: pomd serve --socket PATH [--store DIR] [--store-max-bytes BYTES]\n       pomd stats --socket PATH\n       pomd shutdown --socket PATH";

struct Flags {
    socket: Option<PathBuf>,
    store: Option<PathBuf>,
    store_max_bytes: Option<u64>,
}

fn parse_flags(args: &[String]) -> Flags {
    let mut flags = Flags {
        socket: None,
        store: None,
        store_max_bytes: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--socket" => {
                flags.socket = args.get(i + 1).map(PathBuf::from);
                if flags.socket.is_none() {
                    eprintln!("--socket expects a path");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--store" => {
                flags.store = args.get(i + 1).map(PathBuf::from);
                if flags.store.is_none() {
                    eprintln!("--store expects a directory");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--store-max-bytes" => {
                flags.store_max_bytes = args.get(i + 1).and_then(|v| v.parse().ok());
                if flags.store_max_bytes.is_none() {
                    eprintln!("--store-max-bytes expects a byte count");
                    std::process::exit(2);
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    flags
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(verb) = args.first().map(String::as_str) else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let flags = parse_flags(&args[1..]);
    let Some(socket) = flags.socket else {
        eprintln!("--socket is required\n{USAGE}");
        std::process::exit(2);
    };
    let store = flags.store;
    match verb {
        "serve" => {
            let cfg = DseConfig {
                store_max_bytes: flags.store_max_bytes,
                ..DseConfig::default()
            };
            let engine = Arc::new(serve::ServeEngine::new(
                CompileOptions::default(),
                cfg,
                store.as_deref(),
            ));
            eprintln!("pomd: serving on {}", socket.display());
            if let Err(e) = serve::run_server(engine, &socket) {
                eprintln!("pomd: server error: {e}");
                std::process::exit(1);
            }
        }
        "stats" | "shutdown" => {
            if store.is_some() || flags.store_max_bytes.is_some() {
                eprintln!("--store/--store-max-bytes only apply to serve\n{USAGE}");
                std::process::exit(2);
            }
            match serve::client_request(&socket, verb) {
                Ok(Ok(payload)) => print!("{payload}"),
                Ok(Err(msg)) => {
                    eprintln!("pomd: {msg}");
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("pomd: cannot reach daemon at {}: {e}", socket.display());
                    std::process::exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown command {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
