//! Prints the reproduction of the paper exhibit (see pom-bench docs).

fn main() {
    println!("{}", pom_bench::experiments::tab06::run());
}
