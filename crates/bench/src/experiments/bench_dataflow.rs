//! `bench-dataflow` — the whole-suite dataflow pipelining audit.
//!
//! Runs the full 14-kernel suite through two DSE configurations — the
//! sequential default and the dataflow rate-matched mode — and audits
//! the dataflow execution three ways per kernel:
//!
//! 1. **Functional equivalence** — the concurrent-process dataflow
//!    simulation's final memory must be bit-identical to the affine
//!    interpreter's on the same seeded inputs, and no schedule may
//!    deadlock. The channels are bounded and blocking, so this is the
//!    end-to-end proof that every channel is sized soundly.
//! 2. **Certificate replay** — every `ChannelSized` obligation the
//!    partitioner emits must replay: the recorded element streams are
//!    pushed through the bounded channel model and checked for
//!    deadlock-freedom and bit-identical values.
//! 3. **Throughput gate** — on the multi-nest DNNs (`vgg16`,
//!    `resnet18`) the dataflow winner must *strictly* beat the
//!    sequential winner's simulated cycles while staying within the
//!    sequential winner's resource envelope (the refinement only trades
//!    resources between stages, never grows the total).
//!
//! Results render as a table and serialize as `BENCH_dataflow.json` so
//! the dataflow-overlap trajectory is tracked across PRs.

use crate::experiments::bench_dse::pool_run;
use crate::experiments::bench_sim::{suite, SIM_SEED};
use crate::experiments::common::{paper_options, Table};
use pom::{
    auto_dse_with, channel_certificates, execute_func, partition_dataflow, seeded_memory, simulate,
    simulate_dataflow, CompileOptions, DseConfig, Function,
};
use std::fmt::Write as _;

/// Kernels the strict dataflow-vs-sequential throughput gate applies to:
/// the whole-model DNN chains whose layer nests the partitioner overlaps.
pub const THROUGHPUT_GATED: &[&str] = &["vgg16", "resnet18"];

/// One kernel's dataflow measurement.
#[derive(Clone, Debug)]
pub struct KernelDataflow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Dataflow stages the partitioner cut.
    pub stages: usize,
    /// Sized inter-stage channels.
    pub channels: usize,
    /// Channels sized as streaming FIFOs (the rest are ping-pong).
    pub fifos: usize,
    /// Simulated cycles of the *sequential* DSE winner.
    pub seq_cycles: u64,
    /// Simulated dataflow cycles of the dataflow DSE winner.
    pub df_cycles: u64,
    /// `seq_cycles / df_cycles`.
    pub speedup: f64,
    /// Dataflow memory is bit-identical to the affine interpreter's.
    pub identical: bool,
    /// The bounded channels deadlocked (must never happen).
    pub deadlock: bool,
    /// Cycles stalled on channel push/pop across all stages.
    pub stall_channel: u64,
    /// ChannelSized obligations emitted.
    pub certs_checked: usize,
    /// ChannelSized obligations that replayed successfully.
    pub certs_passed: usize,
    /// Dataflow winner's resources fit inside the sequential winner's.
    pub within_envelope: bool,
    /// This row participates in the strict throughput gate.
    pub gated: bool,
}

impl KernelDataflow {
    /// True when the row violates no gate it participates in.
    pub fn passes(&self) -> bool {
        self.identical
            && !self.deadlock
            && self.certs_passed == self.certs_checked
            && (!self.gated || (self.df_cycles < self.seq_cycles && self.within_envelope))
    }
}

/// The whole suite's measurements.
#[derive(Clone, Debug)]
pub struct DataflowBenchReport {
    /// One row per kernel, in suite order.
    pub rows: Vec<KernelDataflow>,
    /// Problem size the suite ran at.
    pub size: usize,
    /// Worker threads used by the cross-kernel pool.
    pub pool_workers: usize,
}

/// Measures one kernel: sequential winner simulated sequentially,
/// dataflow winner partitioned, certified, and co-simulated.
pub fn measure(kernel: &'static str, f: &Function, opts: &CompileOptions) -> KernelDataflow {
    let seq = auto_dse_with(f, opts, &DseConfig::default()).expect("sequential DSE compiles");
    let df_cfg = DseConfig {
        dataflow: true,
        ..DseConfig::default()
    };
    let df = auto_dse_with(f, opts, &df_cfg).expect("dataflow DSE compiles");

    // Sequential reference: the sequential winner, simulated in order.
    let mut seq_mem = seeded_memory(&seq.compiled.affine, SIM_SEED);
    let seq_report = simulate(
        &seq.compiled.affine,
        &seq.compiled.deps,
        &mut seq_mem,
        &opts.model,
    );

    // Dataflow execution of the dataflow winner.
    let live = pom::live::analyze_func(&df.compiled.affine);
    let plan = partition_dataflow(&df.function, &df.compiled.affine, &live);
    let mut df_mem = seeded_memory(&df.compiled.affine, SIM_SEED);
    let report = simulate_dataflow(
        &df.compiled.affine,
        &df.compiled.deps,
        &plan.stages,
        &plan.channel_specs(),
        &mut df_mem,
        &opts.model,
    );
    let mut interp_mem = seeded_memory(&df.compiled.affine, SIM_SEED);
    execute_func(&df.compiled.affine, &mut interp_mem);

    // Replay every channel-sizing certificate.
    let mem0 = seeded_memory(&df.compiled.affine, SIM_SEED);
    let certs = channel_certificates(&df.compiled.affine, &plan, &mem0);
    let certs_checked: usize = certs.iter().map(|c| c.obligations.len()).sum();
    let certs_passed: usize = certs
        .iter()
        .flat_map(|c| &c.obligations)
        .filter(|o| o.status == pom::verify::ObligationStatus::Passed)
        .count();

    KernelDataflow {
        kernel,
        stages: plan.stages.len(),
        channels: plan.channels.len(),
        fifos: plan.channels.iter().filter(|c| !c.spec.pingpong).count(),
        seq_cycles: seq_report.cycles,
        df_cycles: report.cycles,
        speedup: seq_report.cycles as f64 / report.cycles.max(1) as f64,
        identical: df_mem == interp_mem,
        deadlock: report.deadlock,
        stall_channel: report.stall_channel,
        certs_checked,
        certs_passed,
        within_envelope: df
            .compiled
            .qor
            .resources
            .within(&seq.compiled.qor.resources),
        gated: THROUGHPUT_GATED.contains(&kernel),
    }
}

/// Runs the suite at `size` and returns the full report.
pub fn run_suite(size: usize) -> DataflowBenchReport {
    let opts = paper_options();
    let suite = suite(size);
    let pool_workers = DseConfig::default().effective_workers();
    let rows: Vec<KernelDataflow> = pool_run(suite.len(), pool_workers, |i| {
        let (name, f) = &suite[i];
        measure(name, f, &opts)
    });
    DataflowBenchReport {
        rows,
        size,
        pool_workers,
    }
}

/// The gates: bit-identical memory and zero deadlocks everywhere, every
/// channel certificate replayed, and a strict simulated-cycles win at an
/// equal resource envelope on the DNN chains. Returns human-readable
/// failures (empty = pass).
pub fn gate(r: &DataflowBenchReport) -> Vec<String> {
    let mut fails = Vec::new();
    for k in &r.rows {
        if !k.identical {
            fails.push(format!(
                "{}: dataflow memory diverged from the interpreter",
                k.kernel
            ));
        }
        if k.deadlock {
            fails.push(format!("{}: dataflow execution deadlocked", k.kernel));
        }
        if k.certs_passed != k.certs_checked {
            fails.push(format!(
                "{}: {} of {} channel certificate(s) failed replay",
                k.kernel,
                k.certs_checked - k.certs_passed,
                k.certs_checked
            ));
        }
        if k.gated && k.df_cycles >= k.seq_cycles {
            fails.push(format!(
                "{}: dataflow {} cycle(s) does not strictly beat sequential {}",
                k.kernel, k.df_cycles, k.seq_cycles
            ));
        }
        if k.gated && !k.within_envelope {
            fails.push(format!(
                "{}: dataflow winner exceeds the sequential winner's resource envelope",
                k.kernel
            ));
        }
    }
    fails
}

/// Serializes the report as `BENCH_dataflow.json` (hand-rolled, no deps).
pub fn to_json(r: &DataflowBenchReport) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, k) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"stages\": {}, \"channels\": {}, \"fifos\": {}, \
             \"seq_cycles\": {}, \"df_cycles\": {}, \"speedup\": {:.6}, \"identical\": {}, \
             \"deadlock\": {}, \"stall_channel\": {}, \"certs_checked\": {}, \
             \"certs_passed\": {}, \"within_envelope\": {}, \"gated\": {}}}",
            k.kernel,
            k.stages,
            k.channels,
            k.fifos,
            k.seq_cycles,
            k.df_cycles,
            k.speedup,
            k.identical,
            k.deadlock,
            k.stall_channel,
            k.certs_checked,
            k.certs_passed,
            k.within_envelope,
            k.gated,
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"size\": {},\n  \"pool_workers\": {},\n  \"all_passed\": {}\n}}\n",
        r.size,
        r.pool_workers,
        gate(r).is_empty(),
    );
    s
}

/// Renders the report as an aligned table (the human-readable view).
pub fn render(r: &DataflowBenchReport) -> String {
    let mut t = Table::new(
        "Dataflow vs sequential simulated cycles — DSE winners",
        &[
            "Kernel",
            "Stages",
            "Channels",
            "FIFOs",
            "Sequential",
            "Dataflow",
            "Speedup",
            "Identical",
            "ChanStall",
            "Certs",
            "Envelope",
            "Gated",
        ],
    );
    for k in &r.rows {
        t.row(&[
            k.kernel.to_string(),
            k.stages.to_string(),
            k.channels.to_string(),
            k.fifos.to_string(),
            k.seq_cycles.to_string(),
            k.df_cycles.to_string(),
            format!("{:.3}", k.speedup),
            k.identical.to_string(),
            k.stall_channel.to_string(),
            format!("{}/{}", k.certs_passed, k.certs_checked),
            k.within_envelope.to_string(),
            k.gated.to_string(),
        ]);
    }
    let mut out = t.render();
    let overlapped = r.rows.iter().filter(|k| k.stages > 1).count();
    let _ = writeln!(
        out,
        "size {}: {} kernel(s), {} with a multi-stage pipeline, {} pool worker(s)",
        r.size,
        r.rows.len(),
        overlapped,
        r.pool_workers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn two_mm_row_pipelines_and_json_well_formed() {
        // One small multi-nest kernel keeps the debug-mode test fast; the
        // full suite runs in release via `pomc bench-dataflow`.
        let opts = paper_options();
        let f = kernels::mm2(8);
        let row = measure("2mm", &f, &opts);
        assert!(row.identical, "dataflow memory diverged");
        assert!(!row.deadlock);
        assert!(row.stages > 1, "2mm should partition into stages");
        assert!(row.channels >= 1);
        assert_eq!(row.certs_passed, row.certs_checked);
        assert!(row.certs_checked >= 1);
        let report = DataflowBenchReport {
            rows: vec![row],
            size: 8,
            pool_workers: 1,
        };
        let json = to_json(&report);
        assert!(json.contains("\"kernel\": \"2mm\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        let text = render(&report);
        assert!(text.contains("2mm"));
        assert!(text.contains("Speedup"));
    }
}
