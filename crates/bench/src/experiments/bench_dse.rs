//! `bench-dse` — the machine-readable DSE performance harness.
//!
//! Runs the Table III + Table V kernel suite twice: once with the seed's
//! serial, uncached cost profile (`DseConfig::serial_uncached`) and once
//! with the performance layer on (compile/estimate cache + parallel
//! candidate evaluation + a cross-kernel worker pool). Verifies that both
//! runs produce byte-identical schedules/QoR, and renders the results as
//! a table and as `BENCH_dse.json`, so the DSE-time trajectory (the
//! paper's "DSE Time(s)" column) is tracked across PRs.

use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::{auto_dse_with, DseConfig, DseResult, Function};
use std::fmt::Write as _;
use std::time::Instant;

/// One kernel's before/after measurements.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Kernel name.
    pub kernel: &'static str,
    /// Wall seconds of the serial, uncached search (seed profile).
    pub serial_s: f64,
    /// Wall seconds of the cached, parallel search.
    pub fast_s: f64,
    /// `serial_s / fast_s`.
    pub speedup: f64,
    /// Schedules, groups, and QoR of both searches are byte-identical.
    pub identical: bool,
    /// Candidates fully estimated by the fast search.
    pub estimated: usize,
    /// Candidates discarded by the lint prescreen.
    pub lint_pruned: usize,
    /// Cache lookups answered from memory.
    pub cache_hits: usize,
    /// Cache lookups that computed their value.
    pub cache_misses: usize,
    /// Candidates evaluated inside concurrent batches.
    pub parallel_evaluated: usize,
    /// Fast-search phase breakdown, in seconds.
    pub stage1_s: f64,
    /// Stage-2 search wall seconds.
    pub stage2_s: f64,
    /// Seconds inside schedule replay + dependence analysis + lowering.
    pub lowering_s: f64,
    /// Seconds inside QoR estimation.
    pub estimation_s: f64,
}

/// The whole suite's measurements.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Per-kernel rows, in suite order.
    pub rows: Vec<KernelBench>,
    /// Sum of the serial runs' wall seconds.
    pub serial_total_s: f64,
    /// Wall seconds of the fast runs dispatched across the worker pool.
    pub fast_wall_s: f64,
    /// `serial_total_s / fast_wall_s` — the headline number.
    pub total_speedup: f64,
    /// Worker threads used by the cross-kernel pool.
    pub pool_workers: usize,
}

/// The Table III (typical HLS) + Table V (image + DNN) kernel suite.
/// `size` scales the polyhedral problem sizes; the DNN models always run
/// at scale 1 (their cost is in statement count, not extents).
pub fn suite(size: usize) -> Vec<(&'static str, Function)> {
    vec![
        ("gemm", kernels::gemm(size)),
        ("bicg", kernels::bicg(size)),
        ("gesummv", kernels::gesummv(size)),
        ("2mm", kernels::mm2(size)),
        ("3mm", kernels::mm3(size)),
        ("edge_detect", kernels::edge_detect(size)),
        ("gaussian", kernels::gaussian(size)),
        ("blur", kernels::blur(size)),
        ("vgg16", kernels::vgg16(1)),
        ("resnet18", kernels::resnet18(1)),
    ]
}

/// True when two DSE results are byte-identical where it matters: the
/// emitted schedule, the group configurations, and the QoR.
pub fn results_identical(a: &DseResult, b: &DseResult) -> bool {
    a.function.to_string() == b.function.to_string()
        && a.groups == b.groups
        && a.compiled.qor == b.compiled.qor
}

/// Dispatches `jobs` across up to `workers` scoped threads, returning
/// results in job order.
pub(crate) fn pool_run<T: Send>(n: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("slot") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("worker filled slot"))
        .collect()
}

/// Runs the suite at `size` and returns the full report.
pub fn run_suite(size: usize) -> BenchReport {
    let opts = paper_options();
    let suite = suite(size);
    let serial_cfg = DseConfig::serial_uncached();
    let fast_cfg = DseConfig::default();
    let pool_workers = fast_cfg.effective_workers();

    // Serial baseline: one kernel at a time, seed cost profile.
    let serial: Vec<(f64, DseResult)> = suite
        .iter()
        .map(|(_, f)| {
            let t = Instant::now();
            let r = auto_dse_with(f, &opts, &serial_cfg).expect("DSE compiles");
            (t.elapsed().as_secs_f64(), r)
        })
        .collect();

    // Fast mode: per-kernel DSE dispatched across the worker pool, each
    // search caching + evaluating candidates in parallel.
    let t_pool = Instant::now();
    let fast: Vec<(f64, DseResult)> = pool_run(suite.len(), pool_workers, |i| {
        let t = Instant::now();
        let r = auto_dse_with(&suite[i].1, &opts, &fast_cfg).expect("DSE compiles");
        (t.elapsed().as_secs_f64(), r)
    });
    let fast_wall_s = t_pool.elapsed().as_secs_f64();

    let rows: Vec<KernelBench> = suite
        .iter()
        .zip(serial.iter())
        .zip(fast.iter())
        .map(|(((name, _), (ss, sr)), (fs, fr))| KernelBench {
            kernel: name,
            serial_s: *ss,
            fast_s: *fs,
            speedup: ss / fs.max(1e-9),
            identical: results_identical(sr, fr),
            estimated: fr.stats.estimated,
            lint_pruned: fr.stats.lint_pruned,
            cache_hits: fr.stats.cache_hits,
            cache_misses: fr.stats.cache_misses,
            parallel_evaluated: fr.stats.parallel_evaluated,
            stage1_s: fr.stats.stage1_time.as_secs_f64(),
            stage2_s: fr.stats.stage2_time.as_secs_f64(),
            lowering_s: fr.stats.lowering_time.as_secs_f64(),
            estimation_s: fr.stats.estimation_time.as_secs_f64(),
        })
        .collect();

    let serial_total_s: f64 = rows.iter().map(|r| r.serial_s).sum();
    BenchReport {
        total_speedup: serial_total_s / fast_wall_s.max(1e-9),
        rows,
        serial_total_s,
        fast_wall_s,
        pool_workers,
    }
}

fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes the report as `BENCH_dse.json` (no external deps; the
/// format is flat enough to hand-roll).
pub fn to_json(r: &BenchReport) -> String {
    let mut s = String::from("{\n  \"kernels\": [\n");
    for (i, k) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"serial_s\": {}, \"fast_s\": {}, \"speedup\": {}, \
             \"identical\": {}, \"estimated\": {}, \"lint_pruned\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"parallel_evaluated\": {}, \"stage1_s\": {}, \
             \"stage2_s\": {}, \"lowering_s\": {}, \"estimation_s\": {}}}",
            k.kernel,
            json_f(k.serial_s),
            json_f(k.fast_s),
            json_f(k.speedup),
            k.identical,
            k.estimated,
            k.lint_pruned,
            k.cache_hits,
            k.cache_misses,
            k.parallel_evaluated,
            json_f(k.stage1_s),
            json_f(k.stage2_s),
            json_f(k.lowering_s),
            json_f(k.estimation_s),
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"serial_total_s\": {},\n  \"fast_wall_s\": {},\n  \"total_speedup\": {},\n  \
         \"pool_workers\": {}\n}}\n",
        json_f(r.serial_total_s),
        json_f(r.fast_wall_s),
        json_f(r.total_speedup),
        r.pool_workers,
    );
    s
}

/// Renders the report as an aligned table (the human-readable view).
pub fn render(r: &BenchReport) -> String {
    let mut t = Table::new(
        "DSE performance — serial seed vs parallel + memoized",
        &[
            "Kernel",
            "Serial (s)",
            "Fast (s)",
            "Speedup",
            "Identical",
            "Estimated",
            "Pruned",
            "Hits",
            "Misses",
        ],
    );
    for k in &r.rows {
        t.row(&[
            k.kernel.to_string(),
            format!("{:.3}", k.serial_s),
            format!("{:.3}", k.fast_s),
            format!("{:.2}x", k.speedup),
            k.identical.to_string(),
            k.estimated.to_string(),
            k.lint_pruned.to_string(),
            k.cache_hits.to_string(),
            k.cache_misses.to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "total: serial {:.3} s, fast wall {:.3} s, speedup {:.2}x ({} pool worker(s))",
        r.serial_total_s, r.fast_wall_s, r.total_speedup, r.pool_workers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_is_identical_and_json_well_formed() {
        // A 2-kernel slice of the suite at a tiny size keeps this fast.
        let opts = paper_options();
        let serial_cfg = DseConfig::serial_uncached();
        let fast_cfg = DseConfig::default();
        for f in [kernels::gemm(32), kernels::bicg(32)] {
            let a = auto_dse_with(&f, &opts, &serial_cfg).expect("DSE compiles");
            let b = auto_dse_with(&f, &opts, &fast_cfg).expect("DSE compiles");
            assert!(results_identical(&a, &b), "{} diverged", f.name());
            assert!(b.stats.cache_hits > 0, "cache never hit");
        }
        let report = BenchReport {
            rows: vec![],
            serial_total_s: 1.0,
            fast_wall_s: 0.5,
            total_speedup: 2.0,
            pool_workers: 4,
        };
        let json = to_json(&report);
        assert!(json.contains("\"total_speedup\": 2.000000"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
