//! `bench-dse` — the machine-readable DSE performance harness.
//!
//! Runs the Table III + Table V kernel suite twice: once with the seed's
//! serial, uncached cost profile (`DseConfig::serial_uncached`) and once
//! with the performance layer on (compile/estimate cache + parallel
//! candidate evaluation + a cross-kernel worker pool). Verifies that both
//! runs produce byte-identical schedules/QoR, and renders the results as
//! a table and as `BENCH_dse.json`, so the DSE-time trajectory (the
//! paper's "DSE Time(s)" column) is tracked across PRs.

use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::{auto_dse_with, DseConfig, DseResult, Function, MemoryState, SearchMode};
use std::fmt::Write as _;
use std::time::Instant;

/// One kernel's before/after measurements.
#[derive(Clone, Debug)]
pub struct KernelBench {
    /// Kernel name.
    pub kernel: &'static str,
    /// Wall seconds of the serial, uncached search (seed profile).
    pub serial_s: f64,
    /// Wall seconds of the cached, parallel search.
    pub fast_s: f64,
    /// `serial_s / fast_s`.
    pub speedup: f64,
    /// Schedules, groups, and QoR of both searches are byte-identical.
    pub identical: bool,
    /// Candidates fully estimated by the fast search.
    pub estimated: usize,
    /// Candidates discarded by the lint prescreen.
    pub lint_pruned: usize,
    /// Cache lookups answered from memory.
    pub cache_hits: usize,
    /// Cache lookups that computed their value.
    pub cache_misses: usize,
    /// Candidates evaluated inside concurrent batches.
    pub parallel_evaluated: usize,
    /// Fast-search phase breakdown, in seconds.
    pub stage1_s: f64,
    /// Stage-2 search wall seconds.
    pub stage2_s: f64,
    /// Seconds inside schedule replay + dependence analysis + lowering.
    pub lowering_s: f64,
    /// Seconds inside QoR estimation.
    pub estimation_s: f64,
}

/// The whole suite's measurements.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Per-kernel rows, in suite order.
    pub rows: Vec<KernelBench>,
    /// Sum of the serial runs' wall seconds.
    pub serial_total_s: f64,
    /// Wall seconds of the fast runs dispatched across the worker pool.
    pub fast_wall_s: f64,
    /// `serial_total_s / fast_wall_s` — the headline number.
    pub total_speedup: f64,
    /// Worker threads used by the cross-kernel pool.
    pub pool_workers: usize,
}

/// The Table III (typical HLS) + Table V (image + DNN) kernel suite.
/// `size` scales the polyhedral problem sizes; the DNN models always run
/// at scale 1 (their cost is in statement count, not extents).
pub fn suite(size: usize) -> Vec<(&'static str, Function)> {
    vec![
        ("gemm", kernels::gemm(size)),
        ("bicg", kernels::bicg(size)),
        ("gesummv", kernels::gesummv(size)),
        ("2mm", kernels::mm2(size)),
        ("3mm", kernels::mm3(size)),
        ("edge_detect", kernels::edge_detect(size)),
        ("gaussian", kernels::gaussian(size)),
        ("blur", kernels::blur(size)),
        ("vgg16", kernels::vgg16(1)),
        ("resnet18", kernels::resnet18(1)),
    ]
}

/// True when two DSE results are byte-identical where it matters: the
/// emitted schedule, the group configurations, and the QoR.
pub fn results_identical(a: &DseResult, b: &DseResult) -> bool {
    a.function.to_string() == b.function.to_string()
        && a.groups == b.groups
        && a.compiled.qor == b.compiled.qor
}

/// Dispatches `jobs` across up to `workers` scoped threads, returning
/// results in job order.
pub(crate) fn pool_run<T: Send>(n: usize, workers: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("slot") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("worker filled slot"))
        .collect()
}

/// Runs the suite at `size` and returns the full report.
pub fn run_suite(size: usize) -> BenchReport {
    let opts = paper_options();
    let suite = suite(size);
    let serial_cfg = DseConfig::serial_uncached();
    let fast_cfg = DseConfig::default();
    let pool_workers = fast_cfg.effective_workers();

    // Serial baseline: one kernel at a time, seed cost profile.
    let serial: Vec<(f64, DseResult)> = suite
        .iter()
        .map(|(_, f)| {
            let t = Instant::now();
            let r = auto_dse_with(f, &opts, &serial_cfg).expect("DSE compiles");
            (t.elapsed().as_secs_f64(), r)
        })
        .collect();

    // Fast mode: per-kernel DSE dispatched across the worker pool, each
    // search caching + evaluating candidates in parallel.
    let t_pool = Instant::now();
    let fast: Vec<(f64, DseResult)> = pool_run(suite.len(), pool_workers, |i| {
        let t = Instant::now();
        let r = auto_dse_with(&suite[i].1, &opts, &fast_cfg).expect("DSE compiles");
        (t.elapsed().as_secs_f64(), r)
    });
    let fast_wall_s = t_pool.elapsed().as_secs_f64();

    let rows: Vec<KernelBench> = suite
        .iter()
        .zip(serial.iter())
        .zip(fast.iter())
        .map(|(((name, _), (ss, sr)), (fs, fr))| KernelBench {
            kernel: name,
            serial_s: *ss,
            fast_s: *fs,
            speedup: ss / fs.max(1e-9),
            identical: results_identical(sr, fr),
            estimated: fr.stats.estimated,
            lint_pruned: fr.stats.lint_pruned,
            cache_hits: fr.stats.cache_hits,
            cache_misses: fr.stats.cache_misses,
            parallel_evaluated: fr.stats.parallel_evaluated,
            stage1_s: fr.stats.stage1_time.as_secs_f64(),
            stage2_s: fr.stats.stage2_time.as_secs_f64(),
            lowering_s: fr.stats.lowering_time.as_secs_f64(),
            estimation_s: fr.stats.estimation_time.as_secs_f64(),
        })
        .collect();

    let serial_total_s: f64 = rows.iter().map(|r| r.serial_s).sum();
    BenchReport {
        total_speedup: serial_total_s / fast_wall_s.max(1e-9),
        rows,
        serial_total_s,
        fast_wall_s,
        pool_workers,
    }
}

/// One kernel's greedy-vs-portfolio comparison: both winners simulated
/// with identically seeded memory, so the cycle counts are the same
/// metric the beam's sim-admission loop optimizes.
#[derive(Clone, Debug)]
pub struct BeamBench {
    /// Kernel name.
    pub kernel: &'static str,
    /// Simulated cycles of the greedy winner's final design.
    pub greedy_cycles: u64,
    /// Simulated cycles of the portfolio winner's final design.
    pub beam_cycles: u64,
    /// Analytical latency estimates of the two final designs.
    pub greedy_est: u64,
    /// Portfolio winner's analytical latency estimate.
    pub beam_est: u64,
    /// Both final designs fit the device (equal resource envelope).
    pub both_fit: bool,
    /// `beam_cycles < greedy_cycles` — a strict simulated-cycles win.
    pub strict_win: bool,
    /// `beam_cycles > greedy_cycles` — a QoR regression (the portfolio
    /// guarantee makes this structurally impossible; the gate checks it
    /// anyway).
    pub regression: bool,
    /// Wall seconds of the greedy search.
    pub greedy_s: f64,
    /// Wall seconds of the portfolio search.
    pub beam_s: f64,
    /// The anytime incumbent curve: `(elapsed_s, sim_cycles)` per strict
    /// improvement, in time order.
    pub anytime: Vec<(f64, u64)>,
    /// The curve's cycle counts are strictly decreasing (the anytime
    /// contract).
    pub anytime_monotonic: bool,
    /// Frontier states the portfolio search simulated.
    pub sim_admitted: usize,
    /// Frontier survivors pruned by the sim-admission band.
    pub sim_pruned: usize,
    /// Successor states expanded across all beam waves.
    pub beam_expanded: usize,
}

/// The whole beam-vs-greedy comparison.
#[derive(Clone, Debug)]
pub struct BeamReport {
    /// Per-kernel rows, in suite order.
    pub rows: Vec<BeamBench>,
    /// Kernels where the portfolio strictly beat greedy (simulated).
    pub strict_wins: usize,
    /// Kernels where the portfolio regressed vs greedy (simulated).
    pub regressions: usize,
    /// Every kernel's anytime curve was strictly decreasing.
    pub all_monotonic: bool,
}

/// The deterministic seed both measurements share — the same one the
/// searches themselves use, so the harness's counts match the DSE's.
const SIM_SEED: u64 = 0x5EED;

/// Simulated cycles of a DSE winner's final compiled design.
fn measure(f: &Function, r: &DseResult, opts: &pom::CompileOptions) -> u64 {
    let mut mem = MemoryState::for_function_seeded(f, SIM_SEED);
    pom::simulate(&r.compiled.affine, &r.compiled.deps, &mut mem, &opts.model).cycles
}

/// Runs the greedy-vs-portfolio comparison over the suite at `size`.
pub fn run_beam_suite(size: usize) -> BeamReport {
    let opts = paper_options();
    let suite = suite(size);
    let greedy_cfg = DseConfig::default();
    let beam_cfg = DseConfig {
        search: SearchMode::Portfolio,
        ..DseConfig::default()
    };
    let device = &opts.device;
    let rows: Vec<BeamBench> = suite
        .iter()
        .map(|(name, f)| {
            let t = Instant::now();
            let greedy = auto_dse_with(f, &opts, &greedy_cfg).expect("DSE compiles");
            let greedy_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let beam = auto_dse_with(f, &opts, &beam_cfg).expect("DSE compiles");
            let beam_s = t.elapsed().as_secs_f64();
            let greedy_cycles = measure(f, &greedy, &opts);
            let beam_cycles = measure(f, &beam, &opts);
            let fits = |r: &DseResult| {
                let u = &r.compiled.qor.resources;
                u.dsp <= device.dsp && u.ff <= device.ff && u.lut <= device.lut
            };
            let anytime: Vec<(f64, u64)> = beam
                .anytime
                .iter()
                .map(|p| (p.elapsed.as_secs_f64(), p.sim_cycles))
                .collect();
            BeamBench {
                kernel: name,
                greedy_cycles,
                beam_cycles,
                greedy_est: greedy.compiled.qor.latency,
                beam_est: beam.compiled.qor.latency,
                both_fit: fits(&greedy) && fits(&beam),
                strict_win: beam_cycles < greedy_cycles,
                regression: beam_cycles > greedy_cycles,
                greedy_s,
                beam_s,
                anytime_monotonic: anytime.windows(2).all(|w| w[1].1 < w[0].1),
                anytime,
                sim_admitted: beam.stats.sim_admitted,
                sim_pruned: beam.stats.sim_pruned,
                beam_expanded: beam.stats.beam_expanded,
            }
        })
        .collect();
    BeamReport {
        strict_wins: rows.iter().filter(|r| r.strict_win).count(),
        regressions: rows.iter().filter(|r| r.regression).count(),
        all_monotonic: rows.iter().all(|r| r.anytime_monotonic),
        rows,
    }
}

/// Serializes the beam comparison as the `"beam"` section appended to
/// `BENCH_dse.json` by `pomc bench-dse --beam`.
pub fn beam_to_json(r: &BeamReport) -> String {
    let mut s = String::from("  \"beam\": {\n    \"kernels\": [\n");
    for (i, k) in r.rows.iter().enumerate() {
        let curve = k
            .anytime
            .iter()
            .map(|(t, c)| format!("[{}, {c}]", json_f(*t)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            s,
            "      {{\"kernel\": \"{}\", \"greedy_cycles\": {}, \"beam_cycles\": {}, \
             \"greedy_est\": {}, \"beam_est\": {}, \"both_fit\": {}, \"strict_win\": {}, \
             \"regression\": {}, \"greedy_s\": {}, \"beam_s\": {}, \"sim_admitted\": {}, \
             \"sim_pruned\": {}, \"beam_expanded\": {}, \"anytime_monotonic\": {}, \
             \"anytime\": [{curve}]}}",
            k.kernel,
            k.greedy_cycles,
            k.beam_cycles,
            k.greedy_est,
            k.beam_est,
            k.both_fit,
            k.strict_win,
            k.regression,
            json_f(k.greedy_s),
            json_f(k.beam_s),
            k.sim_admitted,
            k.sim_pruned,
            k.beam_expanded,
            k.anytime_monotonic,
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "    ],\n    \"strict_wins\": {},\n    \"regressions\": {},\n    \
         \"all_monotonic\": {}\n  }}",
        r.strict_wins, r.regressions, r.all_monotonic,
    );
    s
}

/// Renders the beam comparison as an aligned table.
pub fn render_beam(r: &BeamReport) -> String {
    let mut t = Table::new(
        "DSE search QoR — greedy vs portfolio beam (simulated cycles)",
        &[
            "Kernel",
            "Greedy",
            "Beam",
            "Win",
            "Greedy (s)",
            "Beam (s)",
            "Simmed",
            "Pruned",
        ],
    );
    for k in &r.rows {
        t.row(&[
            k.kernel.to_string(),
            k.greedy_cycles.to_string(),
            k.beam_cycles.to_string(),
            if k.strict_win {
                "strict".into()
            } else if k.regression {
                "REGRESSED".into()
            } else {
                "tie".into()
            },
            format!("{:.3}", k.greedy_s),
            format!("{:.3}", k.beam_s),
            k.sim_admitted.to_string(),
            k.sim_pruned.to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "beam: {} strict win(s), {} regression(s), anytime curves {}",
        r.strict_wins,
        r.regressions,
        if r.all_monotonic {
            "monotonic"
        } else {
            "NON-MONOTONIC"
        }
    );
    out
}

fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes the report as `BENCH_dse.json` (no external deps; the
/// format is flat enough to hand-roll).
pub fn to_json(r: &BenchReport) -> String {
    to_json_with_beam(r, None)
}

/// [`to_json`] with the optional greedy-vs-beam comparison appended as a
/// `"beam"` object (`pomc bench-dse --beam`).
pub fn to_json_with_beam(r: &BenchReport, beam: Option<&BeamReport>) -> String {
    let mut s = String::from("{\n  \"kernels\": [\n");
    for (i, k) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"serial_s\": {}, \"fast_s\": {}, \"speedup\": {}, \
             \"identical\": {}, \"estimated\": {}, \"lint_pruned\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"parallel_evaluated\": {}, \"stage1_s\": {}, \
             \"stage2_s\": {}, \"lowering_s\": {}, \"estimation_s\": {}}}",
            k.kernel,
            json_f(k.serial_s),
            json_f(k.fast_s),
            json_f(k.speedup),
            k.identical,
            k.estimated,
            k.lint_pruned,
            k.cache_hits,
            k.cache_misses,
            k.parallel_evaluated,
            json_f(k.stage1_s),
            json_f(k.stage2_s),
            json_f(k.lowering_s),
            json_f(k.estimation_s),
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"serial_total_s\": {},\n  \"fast_wall_s\": {},\n  \"total_speedup\": {},\n  \
         \"pool_workers\": {}",
        json_f(r.serial_total_s),
        json_f(r.fast_wall_s),
        json_f(r.total_speedup),
        r.pool_workers,
    );
    if let Some(b) = beam {
        s.push_str(",\n");
        s.push_str(&beam_to_json(b));
        s.push('\n');
    } else {
        s.push('\n');
    }
    s.push_str("}\n");
    s
}

/// Renders the report as an aligned table (the human-readable view).
pub fn render(r: &BenchReport) -> String {
    let mut t = Table::new(
        "DSE performance — serial seed vs parallel + memoized",
        &[
            "Kernel",
            "Serial (s)",
            "Fast (s)",
            "Speedup",
            "Identical",
            "Estimated",
            "Pruned",
            "Hits",
            "Misses",
        ],
    );
    for k in &r.rows {
        t.row(&[
            k.kernel.to_string(),
            format!("{:.3}", k.serial_s),
            format!("{:.3}", k.fast_s),
            format!("{:.2}x", k.speedup),
            k.identical.to_string(),
            k.estimated.to_string(),
            k.lint_pruned.to_string(),
            k.cache_hits.to_string(),
            k.cache_misses.to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "total: serial {:.3} s, fast wall {:.3} s, speedup {:.2}x ({} pool worker(s))",
        r.serial_total_s, r.fast_wall_s, r.total_speedup, r.pool_workers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_is_identical_and_json_well_formed() {
        // A 2-kernel slice of the suite at a tiny size keeps this fast.
        let opts = paper_options();
        let serial_cfg = DseConfig::serial_uncached();
        let fast_cfg = DseConfig::default();
        for f in [kernels::gemm(32), kernels::bicg(32)] {
            let a = auto_dse_with(&f, &opts, &serial_cfg).expect("DSE compiles");
            let b = auto_dse_with(&f, &opts, &fast_cfg).expect("DSE compiles");
            assert!(results_identical(&a, &b), "{} diverged", f.name());
            assert!(b.stats.cache_hits > 0, "cache never hit");
        }
        let report = BenchReport {
            rows: vec![],
            serial_total_s: 1.0,
            fast_wall_s: 0.5,
            total_speedup: 2.0,
            pool_workers: 4,
        };
        let json = to_json(&report);
        assert!(json.contains("\"total_speedup\": 2.000000"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}
