//! `bench-live` — the liveness/contraction differential audit harness.
//!
//! Runs the full 14-kernel suite (Table III + image + DNN) twice per
//! kernel — seed schedule and auto-DSE winner — through `pom-live`'s
//! whole-function liveness analysis, and audits every claim against the
//! simulator:
//!
//! 1. **High-water cross-check** — for every array, the static bound on
//!    simultaneously-live elements (`∏ windows`, or the declared size
//!    when the analysis degrades to inexact) must be ≥ the simulator's
//!    measured per-array live high-water ([`SimReport::occupancy`]
//!    (pom::SimReport)). The two derive liveness independently (FM
//!    projection vs per-element last-read intervals), so a violation
//!    means one of them is wrong.
//! 2. **Certificate replay** — every array the analysis claims
//!    contractible must pass [`pom::replay_contraction`]: the whole
//!    store stream replayed through the folded buffer bit-identically.
//! 3. **Dead stores** — POM008 findings are reported per kernel; the
//!    suite's kernels are expected to have none.
//!
//! Results render as a table and serialize as `LIVE_report.json` so the
//! contraction coverage trajectory is tracked across PRs.

use crate::experiments::bench_dse::pool_run;
use crate::experiments::bench_sim::{suite, SIM_SEED};
use crate::experiments::common::{paper_options, Table};
use pom::{
    auto_dse_with, compile, replay_contraction, seeded_memory, simulate, CompileOptions, Compiled,
    DseConfig, Function, MemoryState,
};
use std::fmt::Write as _;

/// One (kernel, schedule) liveness audit.
#[derive(Clone, Debug)]
pub struct KernelLive {
    /// Kernel name.
    pub kernel: &'static str,
    /// Which schedule ran: `"seed"` (recorded) or `"dse"` (auto winner).
    pub schedule: &'static str,
    /// Arrays analyzed.
    pub arrays: usize,
    /// Arrays with an exact (claim-backing) analysis.
    pub exact: usize,
    /// Arrays whose live window strictly beats their declared size.
    pub contracted: usize,
    /// Total declared storage bits across all arrays.
    pub declared_bits: u64,
    /// Total storage bits at contracted footprints (equal to
    /// `declared_bits` when nothing contracts).
    pub contracted_bits: u64,
    /// Inter-statement flow edges (POM009 rows).
    pub flow_edges: usize,
    /// Dead stores found (POM008 rows) — expected 0 on the suite.
    pub dead_stores: usize,
    /// Arrays whose simulated live high-water exceeded the static bound
    /// (must be 0 — the cross-check gate).
    pub bound_violations: usize,
    /// Contraction certificates whose replay failed (must be 0).
    pub cert_failures: usize,
    /// Contraction certificates replayed.
    pub certs_replayed: usize,
}

/// The whole suite's audits.
#[derive(Clone, Debug)]
pub struct LiveBenchReport {
    /// Two rows per kernel (seed, dse), in suite order.
    pub rows: Vec<KernelLive>,
    /// Problem size the suite ran at.
    pub size: usize,
    /// Worker threads used by the cross-kernel pool.
    pub pool_workers: usize,
}

/// Audits one compiled design's liveness claims against the simulator.
pub fn measure(
    kernel: &'static str,
    schedule: &'static str,
    f: &Function,
    compiled: &Compiled,
    opts: &CompileOptions,
) -> KernelLive {
    let live = pom::live::analyze_func(&compiled.affine);
    let mut sim_mem = MemoryState::for_function_seeded(f, SIM_SEED);
    let report = simulate(&compiled.affine, &compiled.deps, &mut sim_mem, &opts.model);
    let sim_hw = |array: &str| {
        report
            .occupancy
            .iter()
            .find(|o| o.array == array)
            .map(|o| o.high_water)
            .unwrap_or(0)
    };
    let mut row = KernelLive {
        kernel,
        schedule,
        arrays: live.arrays.len(),
        exact: live.arrays.iter().filter(|a| a.exact).count(),
        contracted: live.arrays.iter().filter(|a| a.contracted()).count(),
        declared_bits: live.arrays.iter().map(|a| a.declared_bits()).sum(),
        contracted_bits: live.arrays.iter().map(|a| a.contracted_bits()).sum(),
        flow_edges: live.depths.len(),
        dead_stores: live.dead_stores.len(),
        bound_violations: 0,
        cert_failures: 0,
        certs_replayed: 0,
    };
    // The static bound is ∏ windows (== declared cells when the
    // analysis degrades to inexact or the array is write-only).
    row.bound_violations = live
        .arrays
        .iter()
        .filter(|al| sim_hw(&al.array) > al.high_water_cells)
        .count();
    let contractible: Vec<_> = live.arrays.iter().filter(|a| a.contracted()).collect();
    if !contractible.is_empty() {
        let mem0 = seeded_memory(&compiled.affine, SIM_SEED);
        for al in contractible {
            row.certs_replayed += 1;
            if replay_contraction(&compiled.affine, &mem0, &al.array, &al.windows).is_err() {
                row.cert_failures += 1;
            }
        }
    }
    row
}

/// Runs the suite at `size` and returns the full report.
pub fn run_suite(size: usize) -> LiveBenchReport {
    let opts = paper_options();
    let suite = suite(size);
    let cfg = DseConfig::default();
    let pool_workers = cfg.effective_workers();
    let rows: Vec<Vec<KernelLive>> = pool_run(suite.len(), pool_workers, |i| {
        let (name, f) = &suite[i];
        let seed = compile(f, &opts).expect("seed schedule compiles");
        let dse = auto_dse_with(f, &opts, &cfg).expect("DSE compiles");
        vec![
            measure(name, "seed", f, &seed, &opts),
            measure(name, "dse", &dse.function, &dse.compiled, &opts),
        ]
    });
    LiveBenchReport {
        rows: rows.into_iter().flatten().collect(),
        size,
        pool_workers,
    }
}

/// The gate: no array's simulated high-water may exceed its static
/// bound, and every claimed contraction must replay. Returns
/// human-readable failures (empty = pass).
pub fn gate(r: &LiveBenchReport) -> Vec<String> {
    let mut fails = Vec::new();
    for k in &r.rows {
        if k.bound_violations > 0 {
            fails.push(format!(
                "{} ({}): {} array(s) simulated more live elements than the static bound",
                k.kernel, k.schedule, k.bound_violations
            ));
        }
        if k.cert_failures > 0 {
            fails.push(format!(
                "{} ({}): {} contraction certificate(s) failed replay",
                k.kernel, k.schedule, k.cert_failures
            ));
        }
    }
    fails
}

/// Serializes the report as `LIVE_report.json` (hand-rolled, no deps).
pub fn to_json(r: &LiveBenchReport) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, k) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"schedule\": \"{}\", \"arrays\": {}, \
             \"exact\": {}, \"contracted\": {}, \"declared_bits\": {}, \
             \"contracted_bits\": {}, \"flow_edges\": {}, \"dead_stores\": {}, \
             \"bound_violations\": {}, \"certs_replayed\": {}, \"cert_failures\": {}}}",
            k.kernel,
            k.schedule,
            k.arrays,
            k.exact,
            k.contracted,
            k.declared_bits,
            k.contracted_bits,
            k.flow_edges,
            k.dead_stores,
            k.bound_violations,
            k.certs_replayed,
            k.cert_failures,
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"size\": {},\n  \"pool_workers\": {},\n  \"all_passed\": {}\n}}\n",
        r.size,
        r.pool_workers,
        gate(r).is_empty(),
    );
    s
}

/// Renders the report as an aligned table (the human-readable view).
pub fn render(r: &LiveBenchReport) -> String {
    let mut t = Table::new(
        "Liveness audit — static windows vs simulated high-water",
        &[
            "Kernel",
            "Schedule",
            "Arrays",
            "Exact",
            "Contracted",
            "DeclaredKb",
            "ContractedKb",
            "Flows",
            "Dead",
            "Violations",
            "Certs",
        ],
    );
    for k in &r.rows {
        t.row(&[
            k.kernel.to_string(),
            k.schedule.to_string(),
            k.arrays.to_string(),
            k.exact.to_string(),
            k.contracted.to_string(),
            format!("{:.1}", k.declared_bits as f64 / 8192.0),
            format!("{:.1}", k.contracted_bits as f64 / 8192.0),
            k.flow_edges.to_string(),
            k.dead_stores.to_string(),
            k.bound_violations.to_string(),
            format!(
                "{}/{}",
                k.certs_replayed - k.cert_failures,
                k.certs_replayed
            ),
        ]);
    }
    let mut out = t.render();
    let declared: u64 = r.rows.iter().map(|k| k.declared_bits).sum();
    let contracted: u64 = r.rows.iter().map(|k| k.contracted_bits).sum();
    let _ = writeln!(
        out,
        "size {}: {} row(s), suite storage {:.1} KiB declared -> {:.1} KiB contracted, {} pool worker(s)",
        r.size,
        r.rows.len(),
        declared as f64 / 8192.0,
        contracted as f64 / 8192.0,
        r.pool_workers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    #[test]
    fn jacobi1d_seed_row_contracts_and_passes_the_cross_check() {
        // One stencil kernel keeps the debug-mode test fast; the full
        // suite runs in release via `pomc bench-live`.
        let opts = paper_options();
        let f = kernels::jacobi1d(4, 18);
        let compiled = compile(&f, &opts).expect("compiles");
        let row = measure("jacobi1d", "seed", &f, &compiled, &opts);
        assert_eq!(row.bound_violations, 0, "static bound below simulated");
        assert_eq!(row.cert_failures, 0, "contraction failed replay");
        assert!(
            row.contracted >= 1,
            "the time-expanded stencil buffer should contract"
        );
        assert!(row.contracted_bits < row.declared_bits);
        assert_eq!(row.dead_stores, 0);
        let report = LiveBenchReport {
            rows: vec![row],
            size: 18,
            pool_workers: 1,
        };
        assert!(gate(&report).is_empty());
        let json = to_json(&report);
        assert!(json.contains("\"kernel\": \"jacobi1d\""));
        assert!(json.contains("\"all_passed\": true"));
        let text = render(&report);
        assert!(text.contains("jacobi1d"));
        assert!(text.contains("Contracted"));
    }
}
