//! `bench-poly` — microbenchmarks for the dense polyhedral kernel.
//!
//! Times the interned dense kernel (`pom_poly`) against the preserved
//! name-keyed seed implementation (`pom_poly::reference`) on identical
//! inputs, over two workloads modeled on the Table III suite:
//!
//! * **FM projection** — Fourier–Motzkin elimination over iteration
//!   domains and dependence systems (boxes, tiled nests, skewed stencils,
//!   wavefronts), with the size constant cycled per iteration so the
//!   projection memo sees a realistic hit/miss mix.
//! * **Dependence sweep** — full `analyze_pair` runs (distance vectors,
//!   direction vectors, carried levels) for the suite's access patterns.
//!
//! Wall-clock numbers do not travel between machines, but the *ratio*
//! dense-vs-reference does, so CI gates on the speedup and on FNV-1a
//! fingerprints of end-to-end DSE results (schedule + QoR) against the
//! committed `BENCH_poly_baseline.json` — any schedule or QoR divergence
//! fails the job even when the timings are fine.

use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::{auto_dse_with, DseConfig, Function};
use pom_poly::reference;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One microbenchmark's measurements.
#[derive(Clone, Debug)]
pub struct PolyBenchRow {
    /// Workload name (`fm_*` or `dep_*`).
    pub name: &'static str,
    /// Wall seconds of the reference (seed) kernel.
    pub ref_s: f64,
    /// Wall seconds of the dense kernel.
    pub dense_s: f64,
    /// `ref_s / dense_s`.
    pub speedup: f64,
    /// Dense and reference results agree (on integer points for
    /// projections, on rendered dependences for sweeps).
    pub identical: bool,
}

/// The whole report: microbench rows plus end-to-end DSE fingerprints.
#[derive(Clone, Debug)]
pub struct PolyBenchReport {
    /// Per-workload rows, FM projections first.
    pub rows: Vec<PolyBenchRow>,
    /// Aggregate FM speedup (total reference seconds / total dense).
    pub fm_speedup: f64,
    /// Aggregate dependence-sweep speedup.
    pub dep_speedup: f64,
    /// FNV-1a fingerprints of `(schedule, QoR, groups)` per DSE kernel.
    pub fingerprints: Vec<(&'static str, u64)>,
    /// Dense-kernel counters accumulated over the benchmark's dense runs.
    pub stats: pom_poly::PolyStats,
}

/// FNV-1a over a byte string; the fingerprint primitive (deterministic
/// across processes, unlike `DefaultHasher`).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One abstract constraint row: equality flag, `(dim index, coeff)`
/// terms, constant. Materialized into both representations.
type RowSpec = (bool, Vec<(usize, i64)>, i64);

/// An FM workload: a constraint system over `dims`, with `elim` the
/// dimensions to project out (in order).
struct FmSpec {
    name: &'static str,
    dims: &'static [&'static str],
    elim: &'static [&'static str],
    rows: Vec<RowSpec>,
    /// Largest extent, for the sampled identity check.
    extent: i64,
}

/// `lo <= dims[d] < hi` as two inequality rows.
fn bound(rows: &mut Vec<RowSpec>, d: usize, lo: i64, hi: i64) {
    rows.push((false, vec![(d, 1)], -lo));
    rows.push((false, vec![(d, -1)], hi - 1));
}

/// The FM workloads at size `n`, modeled on the Table III kernels.
fn fm_suite(n: i64) -> Vec<FmSpec> {
    let t = n / 4 + 1;
    let mut suite = Vec::new();

    // GEMM dependence system: source (i,j,k) and target (i',j',k') both
    // in the box, related by the reduction distance (0, 0, 1).
    let mut rows = Vec::new();
    for d in 0..6 {
        bound(&mut rows, d, 0, n);
    }
    rows.push((true, vec![(0, 1), (3, -1)], 0));
    rows.push((true, vec![(1, 1), (4, -1)], 0));
    rows.push((true, vec![(2, 1), (5, -1)], -1));
    suite.push(FmSpec {
        name: "fm_gemm_dep",
        dims: &["i", "j", "k", "ip", "jp", "kp"],
        elim: &["ip", "jp", "kp", "k"],
        rows,
        extent: n,
    });

    // Tiled GEMM: three 16-wide tile loops around three point loops.
    let mut rows = Vec::new();
    for d in 0..3 {
        // 0 <= i0 and 16*i0 <= i < min(16*i0 + 16, n)
        rows.push((false, vec![(d, 1)], 0));
        rows.push((false, vec![(d + 3, 1), (d, -16)], 0));
        rows.push((false, vec![(d + 3, -1), (d, 16)], 15));
        rows.push((false, vec![(d + 3, -1)], n - 1));
    }
    suite.push(FmSpec {
        name: "fm_gemm_tiled",
        dims: &["i0", "j0", "k0", "i", "j", "k"],
        elim: &["k", "j", "i"],
        rows,
        extent: n,
    });

    // BICG dependence on the row-sum: j = j', i' = i + 1.
    let mut rows = Vec::new();
    for d in 0..4 {
        bound(&mut rows, d, 0, n);
    }
    rows.push((true, vec![(1, 1), (3, -1)], 0));
    rows.push((true, vec![(0, 1), (2, -1)], -1));
    suite.push(FmSpec {
        name: "fm_bicg_dep",
        dims: &["i", "j", "ip", "jp"],
        elim: &["ip", "jp", "j"],
        rows,
        extent: n,
    });

    // Jacobi-2d after time skewing: t <= i < t + n, t + i <= j < t + i + n.
    let mut rows = Vec::new();
    bound(&mut rows, 0, 0, t);
    rows.push((false, vec![(1, 1), (0, -1)], 0));
    rows.push((false, vec![(1, -1), (0, 1)], n - 1));
    rows.push((false, vec![(2, 1), (0, -1), (1, -1)], 0));
    rows.push((false, vec![(2, -1), (0, 1), (1, 1)], n - 1));
    suite.push(FmSpec {
        name: "fm_jacobi2d_skew",
        dims: &["t", "i", "j"],
        elim: &["j", "i"],
        rows,
        extent: n + t + n,
    });

    // Seidel wavefront: box plus t <= i + j <= t + 2n.
    let mut rows = Vec::new();
    bound(&mut rows, 0, 0, t);
    bound(&mut rows, 1, 1, n - 1);
    bound(&mut rows, 2, 1, n - 1);
    rows.push((false, vec![(1, 1), (2, 1), (0, -1)], 0));
    rows.push((false, vec![(1, -1), (2, -1), (0, 1)], 2 * n));
    suite.push(FmSpec {
        name: "fm_seidel_wavefront",
        dims: &["t", "i", "j"],
        elim: &["j", "t"],
        rows,
        extent: n,
    });

    suite
}

fn dense_system(spec: &FmSpec) -> Vec<pom_poly::Constraint> {
    spec.rows
        .iter()
        .map(|(eq, terms, c)| {
            let mut e = pom_poly::LinearExpr::constant_expr(*c);
            for (d, k) in terms {
                e.set_coeff(spec.dims[*d], *k);
            }
            if *eq {
                pom_poly::Constraint::eq_zero(e)
            } else {
                pom_poly::Constraint::ge_zero(e)
            }
        })
        .collect()
}

fn ref_system(spec: &FmSpec) -> Vec<reference::Constraint> {
    spec.rows
        .iter()
        .map(|(eq, terms, c)| {
            let mut e = reference::LinearExpr::constant_expr(*c);
            for (d, k) in terms {
                e.set_coeff(spec.dims[*d], *k);
            }
            if *eq {
                reference::Constraint::eq_zero(e)
            } else {
                reference::Constraint::ge_zero(e)
            }
        })
        .collect()
}

/// Projections agree on integer points sampled over a small grid of the
/// surviving dimensions (the dense kernel may drop redundant rows, so
/// the constraint lists are compared semantically, not syntactically).
fn projections_agree(spec: &FmSpec) -> bool {
    let dense = match pom_poly::fm::eliminate_all(&dense_system(spec), spec.elim) {
        pom_poly::fm::Projection::Feasible(cs) => Some(cs),
        pom_poly::fm::Projection::Infeasible => None,
    };
    let named = match reference::fm::eliminate_all(&ref_system(spec), spec.elim) {
        reference::fm::Projection::Feasible(cs) => Some(cs),
        reference::fm::Projection::Infeasible => None,
    };
    let (Some(dense), Some(named)) = (&dense, &named) else {
        return dense.is_none() == named.is_none();
    };
    let rem: Vec<&str> = spec
        .dims
        .iter()
        .filter(|d| !spec.elim.contains(d))
        .copied()
        .collect();
    let samples = [-1, 0, 1, spec.extent / 2, spec.extent - 1, spec.extent];
    let mut points: Vec<HashMap<String, i64>> = vec![HashMap::new()];
    for d in &rem {
        points = points
            .into_iter()
            .flat_map(|p| {
                samples.iter().map(move |v| {
                    let mut q = p.clone();
                    q.insert(d.to_string(), *v);
                    q
                })
            })
            .collect();
    }
    points
        .iter()
        .all(|p| dense.iter().all(|c| c.satisfied(p)) == named.iter().all(|c| c.satisfied(p)))
}

/// A dependence workload: one closure per size variant per
/// representation, each running the full analysis and returning rendered
/// results for the identity check. The uniform-access box workload covers
/// the constant-time fast path (representation-independent arithmetic);
/// the remaining workloads drive the FM-backed dependence paths the dense
/// kernel accelerates: skewed non-rectangular domains (per-dimension
/// bound projection), non-uniform access pairs (feasibility over doubled
/// dimensions), and exact realizability checks.
struct DepWork {
    name: &'static str,
    dense: Vec<Box<dyn Fn() -> Vec<String>>>,
    named: Vec<Box<dyn Fn() -> Vec<String>>>,
}

fn dexpr(terms: &[(&str, i64)], c: i64) -> pom_poly::LinearExpr {
    let mut e = pom_poly::LinearExpr::constant_expr(c);
    for (d, k) in terms {
        e.set_coeff(*d, *k);
    }
    e
}

fn rexpr(terms: &[(&str, i64)], c: i64) -> reference::LinearExpr {
    let mut e = reference::LinearExpr::constant_expr(c);
    for (d, k) in terms {
        e.set_coeff(*d, *k);
    }
    e
}

fn dense_analyze(
    dims: &[&str],
    domain: pom_poly::BasicSet,
    write: pom_poly::AccessFn,
    reads: Vec<pom_poly::AccessFn>,
) -> Box<dyn Fn() -> Vec<String>> {
    let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    Box::new(move || {
        let analysis = pom_poly::DependenceAnalysis::new();
        let mut out = Vec::new();
        for read in &reads {
            for d in analysis.analyze_pair(&write, read, pom_poly::DepKind::Flow, &dims, &domain) {
                out.push(d.to_string());
            }
        }
        out
    })
}

fn ref_analyze(
    dims: &[&str],
    domain: reference::BasicSet,
    write: reference::AccessFn,
    reads: Vec<reference::AccessFn>,
) -> Box<dyn Fn() -> Vec<String>> {
    let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    Box::new(move || {
        let analysis = reference::DependenceAnalysis::new();
        let mut out = Vec::new();
        for read in &reads {
            for d in analysis.analyze_pair(
                &write,
                read,
                reference::dependence::DepKind::Flow,
                &dims,
                &domain,
            ) {
                out.push(d.to_string());
            }
        }
        out
    })
}

fn dense_realizable(
    dims: &[&str],
    domain: pom_poly::BasicSet,
    vecs: Vec<Vec<i64>>,
) -> Box<dyn Fn() -> Vec<String>> {
    let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    Box::new(move || {
        let analysis = pom_poly::DependenceAnalysis::new();
        vecs.iter()
            .map(|v| format!("{v:?}={}", analysis.distance_realizable(v, &dims, &domain)))
            .collect()
    })
}

fn ref_realizable(
    dims: &[&str],
    domain: reference::BasicSet,
    vecs: Vec<Vec<i64>>,
) -> Box<dyn Fn() -> Vec<String>> {
    let dims: Vec<String> = dims.iter().map(|d| d.to_string()).collect();
    Box::new(move || {
        let analysis = reference::DependenceAnalysis::new();
        vecs.iter()
            .map(|v| format!("{v:?}={}", analysis.distance_realizable(v, &dims, &domain)))
            .collect()
    })
}

/// Inequality rows of the time-skewed Jacobi-2d domain: `0 <= t < T`,
/// `t <= i < t + n`, `t <= j < t + n` — non-rectangular, so realizability
/// falls back to per-dimension Fourier–Motzkin bound projection.
fn skew_rows(n: i64) -> Vec<(Vec<(&'static str, i64)>, i64)> {
    let t = n / 4 + 1;
    vec![
        (vec![("t", 1)], 0),
        (vec![("t", -1)], t - 1),
        (vec![("i", 1), ("t", -1)], 0),
        (vec![("i", -1), ("t", 1)], n - 1),
        (vec![("j", 1), ("t", -1)], 0),
        (vec![("j", -1), ("t", 1)], n - 1),
    ]
}

/// Inequality rows of the Seidel wavefront domain: the box plus
/// `t <= i + j <= t + 2n`.
fn wavefront_rows(n: i64) -> Vec<(Vec<(&'static str, i64)>, i64)> {
    let t = n / 4 + 1;
    vec![
        (vec![("t", 1)], 0),
        (vec![("t", -1)], t - 1),
        (vec![("i", 1)], -1),
        (vec![("i", -1)], n - 2),
        (vec![("j", 1)], -1),
        (vec![("j", -1)], n - 2),
        (vec![("i", 1), ("j", 1), ("t", -1)], 0),
        (vec![("i", -1), ("j", -1), ("t", 1)], 2 * n),
    ]
}

fn dense_domain(dims: &[&str], rows: &[(Vec<(&'static str, i64)>, i64)]) -> pom_poly::BasicSet {
    let mut s = pom_poly::BasicSet::universe(dims);
    for (terms, c) in rows {
        s.add_constraint(pom_poly::Constraint::ge_zero(dexpr(terms, *c)));
    }
    s
}

fn ref_domain(dims: &[&str], rows: &[(Vec<(&'static str, i64)>, i64)]) -> reference::BasicSet {
    let mut s = reference::BasicSet::universe(dims);
    for (terms, c) in rows {
        s.add_constraint(reference::Constraint::ge_zero(rexpr(terms, *c)));
    }
    s
}

fn dep_works() -> Vec<DepWork> {
    let mut works = Vec::new();

    // GEMM reduction: uniform accesses over a rectangular box — the
    // constant-time fast path, representation-independent by design;
    // kept for coverage of the common case.
    let mut dense = Vec::new();
    let mut named = Vec::new();
    for &n in &SIZES {
        let dims = ["i", "j", "k"];
        let bounds = [("i", 0, n - 1), ("j", 0, n - 1), ("k", 0, n - 1)];
        dense.push(dense_analyze(
            &dims,
            pom_poly::BasicSet::from_bounds(&bounds),
            pom_poly::AccessFn::new("C", vec![dexpr(&[("i", 1)], 0), dexpr(&[("j", 1)], 0)]),
            vec![pom_poly::AccessFn::new(
                "C",
                vec![dexpr(&[("i", 1)], 0), dexpr(&[("j", 1)], 0)],
            )],
        ));
        named.push(ref_analyze(
            &dims,
            reference::BasicSet::from_bounds(&bounds),
            reference::AccessFn::new("C", vec![rexpr(&[("i", 1)], 0), rexpr(&[("j", 1)], 0)]),
            vec![reference::AccessFn::new(
                "C",
                vec![rexpr(&[("i", 1)], 0), rexpr(&[("j", 1)], 0)],
            )],
        ));
    }
    works.push(DepWork {
        name: "dep_gemm_uniform",
        dense,
        named,
    });

    // Time-skewed Jacobi-2d: uniform t-1 neighbor reads of A[t][i-t][j-t],
    // but the skewed domain is non-rectangular, so every `analyze_pair`
    // projects per-dimension bounds through FM.
    let mut dense = Vec::new();
    let mut named = Vec::new();
    for &n in &SIZES {
        let dims = ["t", "i", "j"];
        let rows = skew_rows(n);
        let dense_reads = [0i64, -1, 1]
            .iter()
            .map(|&di| {
                pom_poly::AccessFn::new(
                    "A",
                    vec![
                        dexpr(&[("t", 1)], -1),
                        dexpr(&[("i", 1), ("t", -1)], di),
                        dexpr(&[("j", 1), ("t", -1)], 0),
                    ],
                )
            })
            .collect();
        let named_reads = [0i64, -1, 1]
            .iter()
            .map(|&di| {
                reference::AccessFn::new(
                    "A",
                    vec![
                        rexpr(&[("t", 1)], -1),
                        rexpr(&[("i", 1), ("t", -1)], di),
                        rexpr(&[("j", 1), ("t", -1)], 0),
                    ],
                )
            })
            .collect();
        dense.push(dense_analyze(
            &dims,
            dense_domain(&dims, &rows),
            pom_poly::AccessFn::new(
                "A",
                vec![
                    dexpr(&[("t", 1)], 0),
                    dexpr(&[("i", 1), ("t", -1)], 0),
                    dexpr(&[("j", 1), ("t", -1)], 0),
                ],
            ),
            dense_reads,
        ));
        named.push(ref_analyze(
            &dims,
            ref_domain(&dims, &rows),
            reference::AccessFn::new(
                "A",
                vec![
                    rexpr(&[("t", 1)], 0),
                    rexpr(&[("i", 1), ("t", -1)], 0),
                    rexpr(&[("j", 1), ("t", -1)], 0),
                ],
            ),
            named_reads,
        ));
    }
    works.push(DepWork {
        name: "dep_jacobi2d_skew",
        dense,
        named,
    });

    // Non-uniform access pair: A[2i] written, A[i+j] read — the
    // conservative path builds a doubled-dimension system and decides it
    // with FM feasibility.
    let mut dense = Vec::new();
    let mut named = Vec::new();
    for &n in &SIZES {
        let dims = ["i", "j"];
        let bounds = [("i", 0, n - 1), ("j", 0, n - 1)];
        dense.push(dense_analyze(
            &dims,
            pom_poly::BasicSet::from_bounds(&bounds),
            pom_poly::AccessFn::new("A", vec![dexpr(&[("i", 2)], 0)]),
            vec![pom_poly::AccessFn::new(
                "A",
                vec![dexpr(&[("i", 1), ("j", 1)], 0)],
            )],
        ));
        named.push(ref_analyze(
            &dims,
            reference::BasicSet::from_bounds(&bounds),
            reference::AccessFn::new("A", vec![rexpr(&[("i", 2)], 0)]),
            vec![reference::AccessFn::new(
                "A",
                vec![rexpr(&[("i", 1), ("j", 1)], 0)],
            )],
        ));
    }
    works.push(DepWork {
        name: "dep_nonuniform",
        dense,
        named,
    });

    // Exact realizability on the Seidel wavefront: each candidate vector
    // is one shifted-system FM feasibility check.
    let mut dense = Vec::new();
    let mut named = Vec::new();
    let candidates = || -> Vec<Vec<i64>> {
        vec![
            vec![1, 0, 0],
            vec![1, 1, 0],
            vec![0, 1, 1],
            vec![1, -1, 0],
            vec![2, 0, -1],
        ]
    };
    for &n in &SIZES {
        let dims = ["t", "i", "j"];
        let rows = wavefront_rows(n);
        dense.push(dense_realizable(
            &dims,
            dense_domain(&dims, &rows),
            candidates(),
        ));
        named.push(ref_realizable(
            &dims,
            ref_domain(&dims, &rows),
            candidates(),
        ));
    }
    works.push(DepWork {
        name: "dep_realizable",
        dense,
        named,
    });

    works
}

/// Size constants cycled through the timed loops: each iteration sees a
/// different variant, so the projection memo gets a realistic mix of
/// first-time misses and repeat hits instead of one key hit forever.
const SIZES: [i64; 4] = [31, 63, 127, 255];

/// The e2e fingerprint kernels: small enough for CI, spanning dense
/// linear algebra and both stencil schedules.
fn fingerprint_suite() -> Vec<(&'static str, Function)> {
    vec![
        ("gemm", kernels::gemm(32)),
        ("bicg", kernels::bicg(32)),
        ("seidel", kernels::seidel(8)),
    ]
}

/// Runs the full benchmark: `iters` timed iterations per workload.
pub fn run_suite(iters: usize) -> PolyBenchReport {
    let stats_before = pom_poly::PolyStats::snapshot();
    let mut rows = Vec::new();

    // FM projection: materialize every (workload, size) variant up front
    // so the timed loops measure elimination, not system construction.
    let fm_specs: Vec<Vec<FmSpec>> = SIZES.iter().map(|n| fm_suite(*n)).collect();
    let workloads = fm_specs[0].len();
    for w in 0..workloads {
        let dense_variants: Vec<Vec<pom_poly::Constraint>> =
            fm_specs.iter().map(|s| dense_system(&s[w])).collect();
        let ref_variants: Vec<Vec<reference::Constraint>> =
            fm_specs.iter().map(|s| ref_system(&s[w])).collect();
        let elim = fm_specs[0][w].elim;

        let identical = fm_specs.iter().all(|s| projections_agree(&s[w]));

        let t = Instant::now();
        for it in 0..iters {
            let cs = &dense_variants[it % dense_variants.len()];
            std::hint::black_box(pom_poly::fm::eliminate_all(cs, elim));
        }
        let dense_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        for it in 0..iters {
            let cs = &ref_variants[it % ref_variants.len()];
            std::hint::black_box(reference::fm::eliminate_all(cs, elim));
        }
        let ref_s = t.elapsed().as_secs_f64();

        rows.push(PolyBenchRow {
            name: fm_specs[0][w].name,
            ref_s,
            dense_s,
            speedup: ref_s / dense_s.max(1e-9),
            identical,
        });
    }
    let fm_ref: f64 = rows.iter().map(|r| r.ref_s).sum();
    let fm_dense: f64 = rows.iter().map(|r| r.dense_s).sum();

    // Dependence sweep: domains and accesses materialized up front inside
    // the closures, so the timed loops run analysis only.
    for work in dep_works() {
        let identical = work.dense.iter().zip(&work.named).all(|(d, r)| d() == r());

        let t = Instant::now();
        for it in 0..iters {
            std::hint::black_box(work.dense[it % work.dense.len()]());
        }
        let dense_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        for it in 0..iters {
            std::hint::black_box(work.named[it % work.named.len()]());
        }
        let ref_s = t.elapsed().as_secs_f64();

        rows.push(PolyBenchRow {
            name: work.name,
            ref_s,
            dense_s,
            speedup: ref_s / dense_s.max(1e-9),
            identical,
        });
    }
    let dep_ref: f64 = rows.iter().map(|r| r.ref_s).sum::<f64>() - fm_ref;
    let dep_dense: f64 = rows.iter().map(|r| r.dense_s).sum::<f64>() - fm_dense;

    // End-to-end fingerprints: the schedule, QoR, and group configs of a
    // default DSE run, hashed deterministically. A dense-kernel change
    // that shifts any schedule or QoR shows up here as a new fingerprint.
    let opts = paper_options();
    let cfg = DseConfig::default();
    let fingerprints = fingerprint_suite()
        .into_iter()
        .map(|(name, f)| {
            let r = auto_dse_with(&f, &opts, &cfg).expect("DSE compiles");
            let mut blob = r.function.to_string();
            let _ = write!(blob, "\n{:?}\n{:?}", r.compiled.qor, r.groups);
            (name, fnv1a64(blob.as_bytes()))
        })
        .collect();

    PolyBenchReport {
        fm_speedup: fm_ref / fm_dense.max(1e-9),
        dep_speedup: dep_ref / dep_dense.max(1e-9),
        rows,
        fingerprints,
        stats: pom_poly::PolyStats::snapshot().delta(&stats_before),
    }
}

fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes the report as `BENCH_poly.json` (hand-rolled, like the
/// other harnesses; fingerprints as hex strings to dodge JSON's 53-bit
/// integer ceiling).
pub fn to_json(r: &PolyBenchReport) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"ref_s\": {}, \"dense_s\": {}, \"speedup\": {}, \
             \"identical\": {}}}",
            row.name,
            json_f(row.ref_s),
            json_f(row.dense_s),
            json_f(row.speedup),
            row.identical,
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"fm_speedup\": {},\n  \"dep_speedup\": {},\n  \"fingerprints\": [\n",
        json_f(r.fm_speedup),
        json_f(r.dep_speedup),
    );
    for (i, (k, fp)) in r.fingerprints.iter().enumerate() {
        let _ = write!(s, "    {{\"kernel\": \"{k}\", \"fp\": \"{fp:016x}\"}}");
        s.push_str(if i + 1 < r.fingerprints.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let st = &r.stats;
    let _ = write!(
        s,
        "  ],\n  \"poly_stats\": {{\"eliminations\": {}, \"combinations_generated\": {}, \
         \"combinations_dropped\": {}, \"memo_hits\": {}, \"memo_misses\": {}, \
         \"peak_constraints\": {}}}\n}}\n",
        st.eliminations,
        st.combinations_generated,
        st.combinations_dropped,
        st.memo_hits,
        st.memo_misses,
        st.peak_constraints,
    );
    s
}

/// Renders the report as an aligned table.
pub fn render(r: &PolyBenchReport) -> String {
    let mut t = Table::new(
        "Polyhedral kernel — dense interned vs name-keyed reference",
        &[
            "Workload",
            "Reference (s)",
            "Dense (s)",
            "Speedup",
            "Identical",
        ],
    );
    for row in &r.rows {
        t.row(&[
            row.name.to_string(),
            format!("{:.4}", row.ref_s),
            format!("{:.4}", row.dense_s),
            format!("{:.1}x", row.speedup),
            row.identical.to_string(),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "aggregate: FM projection {:.1}x, dependence sweep {:.1}x",
        r.fm_speedup, r.dep_speedup
    );
    let _ = writeln!(out, "dense kernel: {}", r.stats);
    for (k, fp) in &r.fingerprints {
        let _ = writeln!(out, "fingerprint {k}: {fp:016x}");
    }
    out
}

/// The committed baseline: aggregate speedups plus per-kernel
/// fingerprints. Parsed with plain string search — the file is flat and
/// the repo has no JSON dependency.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Aggregate FM speedup recorded when the baseline was committed.
    pub fm_speedup: f64,
    /// Aggregate dependence-sweep speedup at baseline time.
    pub dep_speedup: f64,
    /// `(kernel, fingerprint)` pairs that must match exactly.
    pub fingerprints: Vec<(String, u64)>,
}

/// Extracts `"key": <number>` from flat JSON.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a committed baseline file.
pub fn parse_baseline(text: &str) -> Option<Baseline> {
    let fm_speedup = json_number(text, "fm_speedup")?;
    let dep_speedup = json_number(text, "dep_speedup")?;
    let mut fingerprints = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"kernel\":") {
        rest = &rest[at + 9..];
        let name_start = rest.find('"')? + 1;
        let name_end = name_start + rest[name_start..].find('"')?;
        let name = rest[name_start..name_end].to_string();
        let fp_at = rest.find("\"fp\":")? + 5;
        let fp_rest = rest[fp_at..].trim_start();
        let fp_start = 1; // skip opening quote
        let fp_end = fp_start + fp_rest[fp_start..].find('"')?;
        let fp = u64::from_str_radix(&fp_rest[fp_start..fp_end], 16).ok()?;
        fingerprints.push((name, fp));
        rest = &rest[fp_at..];
    }
    Some(Baseline {
        fm_speedup,
        dep_speedup,
        fingerprints,
    })
}

/// Gate failures against a baseline, as printable messages (empty = pass).
pub fn gate(report: &PolyBenchReport, baseline: Option<&Baseline>) -> Vec<String> {
    let mut fails = Vec::new();
    for row in &report.rows {
        if !row.identical {
            fails.push(format!(
                "{}: dense kernel diverged from the reference semantics",
                row.name
            ));
        }
    }
    if report.fm_speedup < 5.0 {
        fails.push(format!(
            "FM projection speedup {:.2}x below the 5x floor",
            report.fm_speedup
        ));
    }
    if report.dep_speedup < 5.0 {
        fails.push(format!(
            "dependence sweep speedup {:.2}x below the 5x floor",
            report.dep_speedup
        ));
    }
    if let Some(b) = baseline {
        // The >10% regression gate, in machine-portable form: a dense
        // slowdown shows up as a drop in the dense-vs-reference ratio.
        if report.fm_speedup < 0.9 * b.fm_speedup {
            fails.push(format!(
                "FM speedup {:.2}x regressed >10% vs baseline {:.2}x",
                report.fm_speedup, b.fm_speedup
            ));
        }
        if report.dep_speedup < 0.9 * b.dep_speedup {
            fails.push(format!(
                "dependence speedup {:.2}x regressed >10% vs baseline {:.2}x",
                report.dep_speedup, b.dep_speedup
            ));
        }
        for (kernel, want) in &b.fingerprints {
            match report.fingerprints.iter().find(|(k, _)| k == kernel) {
                Some((_, got)) if got == want => {}
                Some((_, got)) => fails.push(format!(
                    "{kernel}: DSE fingerprint {got:016x} != baseline {want:016x} \
                     (schedule or QoR changed)"
                )),
                None => fails.push(format!("{kernel}: fingerprint missing from report")),
            }
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projections_and_dependences_agree_at_all_sizes() {
        for n in SIZES {
            for spec in fm_suite(n) {
                assert!(projections_agree(&spec), "{} at {n}", spec.name);
            }
        }
        for work in dep_works() {
            for (d, r) in work.dense.iter().zip(&work.named) {
                assert_eq!(d(), r(), "{}", work.name);
            }
        }
    }

    #[test]
    fn json_and_baseline_round_trip() {
        let report = PolyBenchReport {
            rows: vec![PolyBenchRow {
                name: "fm_gemm_dep",
                ref_s: 1.0,
                dense_s: 0.1,
                speedup: 10.0,
                identical: true,
            }],
            fm_speedup: 10.0,
            dep_speedup: 8.0,
            fingerprints: vec![("gemm", 0xdead_beef_1234_5678)],
            stats: pom_poly::PolyStats::default(),
        };
        let json = to_json(&report);
        assert!(json.contains("\"fm_speedup\": 10.000000"));
        assert!(json.contains("\"fp\": \"deadbeef12345678\""));
        let b = parse_baseline(&json).expect("parses");
        assert_eq!(b.fm_speedup, 10.0);
        assert_eq!(
            b.fingerprints,
            vec![("gemm".to_string(), 0xdead_beef_1234_5678)]
        );
        // A matching baseline gates clean; a shifted fingerprint fails.
        assert!(gate(&report, Some(&b)).is_empty());
        let mut bad = b.clone();
        bad.fingerprints[0].1 ^= 1;
        assert!(!gate(&report, Some(&bad)).is_empty());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned value: the fingerprint primitive must never drift, or
        // every committed baseline silently invalidates.
        assert_eq!(fnv1a64(b"pom"), 0x779b_5519_564f_2a37);
    }
}
