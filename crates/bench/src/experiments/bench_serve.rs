//! `bench-serve` — the heavy-traffic serving benchmark.
//!
//! Replays a synthetic duplicate-heavy request mix — every built-in
//! kernel plus the VGG-16 and ResNet-18 layer streams as standalone
//! `conv<ci>x<co>x<size>` kernels, repeated and deterministically
//! shuffled — against three serving configurations:
//!
//! * **cold** — a fresh, store-less engine per request: the per-process
//!   `pomc` status quo. Every duplicate pays the full DSE again.
//! * **warm** — a fresh engine per request, all sharing one persistent
//!   artifact store primed by an unmeasured pass: the `pomc --store`
//!   cross-process story. Every hit travels through the filesystem.
//! * **daemon** — a real `pomd` server on a Unix domain socket with its
//!   own cold store, hammered by concurrent clients: in-memory response
//!   cache + batch admission + store spill, end to end.
//!
//! Reports kernels/sec, end-to-end latency percentiles, and cache hit
//! rates per configuration into `BENCH_serve.json`, and gates on the
//! ISSUE floors: warm throughput ≥ 5x cold, warm cross-process hit rate
//! ≥ 50%, and byte-identical payloads for every unique request across
//! all three configurations.

use crate::experiments::bench_dse::pool_run;
use crate::experiments::common::Table;
use crate::kernels;
use crate::serve::{client_request, run_server, ServeEngine};
use pom::{CompileOptions, DseConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// One serving configuration's measurements.
#[derive(Clone, Debug)]
pub struct ConfigStats {
    /// Configuration name: `cold`, `warm`, or `daemon`.
    pub config: &'static str,
    /// Requests replayed.
    pub requests: usize,
    /// Wall seconds for the whole replay.
    pub wall_s: f64,
    /// Throughput: `requests / wall_s`.
    pub kernels_per_s: f64,
    /// End-to-end latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency.
    pub p95_ms: f64,
    /// 99th percentile latency.
    pub p99_ms: f64,
    /// Requests that ran a full DSE compile.
    pub compiles: usize,
    /// Requests answered from the persistent store (cross-process hits).
    pub store_hits: usize,
    /// Requests answered from an engine's in-memory response cache.
    pub memory_hits: usize,
    /// Requests that coalesced into another request's in-flight compile.
    pub batch_merged: usize,
    /// Fraction of requests answered without a fresh compile.
    pub hit_rate: f64,
}

/// The whole benchmark's measurements.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-configuration rows: cold, warm, daemon.
    pub rows: Vec<ConfigStats>,
    /// Distinct request fingerprints in the stream.
    pub unique_requests: usize,
    /// Total requests in the stream.
    pub total_requests: usize,
    /// `1 - unique/total` — how duplicate-heavy the traffic is.
    pub duplicate_fraction: f64,
    /// Warm throughput over cold throughput — the headline number.
    pub warm_speedup: f64,
    /// Daemon throughput over cold throughput.
    pub daemon_speedup: f64,
    /// Wall seconds of the unmeasured store-priming pass.
    pub prime_s: f64,
    /// Every unique request's payload is byte-identical across cold,
    /// warm, and daemon.
    pub identical: bool,
    /// Concurrent client threads used against the daemon.
    pub clients: usize,
}

/// The synthetic traffic mix: all 14 built-in kernels at `size` plus the
/// VGG-16 and ResNet-18 convolution layer streams (scale 1), the whole
/// set repeated `repeat` times and shuffled by a fixed-seed LCG — so the
/// stream is duplicate-heavy, interleaved, and identical on every run.
pub fn traffic(size: usize, repeat: usize) -> Vec<(String, usize)> {
    let kernels14 = [
        "gemm",
        "bicg",
        "gesummv",
        "2mm",
        "3mm",
        "jacobi1d",
        "jacobi2d",
        "heat1d",
        "seidel",
        "edge_detect",
        "gaussian",
        "blur",
        "vgg16",
        "resnet18",
    ];
    let mut stream = Vec::new();
    for _ in 0..repeat.max(1) {
        for k in kernels14 {
            stream.push((k.to_string(), size));
        }
        for (ci, co, sz) in kernels::vgg16_layer_shapes(1) {
            stream.push((format!("conv{ci}x{co}x{sz}"), sz));
        }
        for (ci, co, sz) in kernels::resnet18_layer_shapes(1) {
            stream.push((format!("conv{ci}x{co}x{sz}"), sz));
        }
    }
    // Fisher–Yates with a fixed-seed LCG: deterministic, dependency-free.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 33
    };
    for i in (1..stream.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        stream.swap(i, j);
    }
    stream
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn stats_row(
    config: &'static str,
    wall_s: f64,
    mut latencies_ms: Vec<f64>,
    compiles: usize,
    store_hits: usize,
    memory_hits: usize,
    batch_merged: usize,
) -> ConfigStats {
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies_ms.len();
    ConfigStats {
        config,
        requests,
        wall_s,
        kernels_per_s: requests as f64 / wall_s.max(1e-9),
        p50_ms: percentile(&latencies_ms, 50.0),
        p95_ms: percentile(&latencies_ms, 95.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        compiles,
        store_hits,
        memory_hits,
        batch_merged,
        hit_rate: (requests.saturating_sub(compiles)) as f64 / requests.max(1) as f64,
    }
}

/// Runs one replay with a fresh engine per request (cold when `store` is
/// `None`, warm-store otherwise), returning the row and each unique
/// request's first payload.
fn replay_per_process(
    config: &'static str,
    stream: &[(String, usize)],
    store: Option<&Path>,
) -> (ConfigStats, BTreeMap<String, String>) {
    let mut latencies = Vec::with_capacity(stream.len());
    let mut payloads = BTreeMap::new();
    let (mut compiles, mut store_hits, mut memory_hits, mut merged) = (0, 0, 0, 0);
    let t0 = Instant::now();
    for (name, size) in stream {
        let t = Instant::now();
        // A fresh engine per request simulates one process per request —
        // nothing survives in memory, only the store carries state over.
        let engine = ServeEngine::new(CompileOptions::default(), DseConfig::default(), store);
        let payload = engine.submit(name, *size).expect("kernel compiles");
        latencies.push(t.elapsed().as_secs_f64() * 1e3);
        compiles += engine.compiles();
        store_hits += engine.store_hits();
        memory_hits += engine.memory_hits();
        merged += engine.batch_merged();
        payloads
            .entry(format!("{name}@{size}"))
            .or_insert_with(|| payload.as_ref().clone());
    }
    let wall = t0.elapsed().as_secs_f64();
    (
        stats_row(
            config,
            wall,
            latencies,
            compiles,
            store_hits,
            memory_hits,
            merged,
        ),
        payloads,
    )
}

/// Runs the replay against a real `pomd` server over a Unix socket with
/// `clients` concurrent client threads and a cold store of its own.
fn replay_daemon(
    stream: &[(String, usize)],
    store: &Path,
    socket: &Path,
    clients: usize,
) -> (ConfigStats, BTreeMap<String, String>) {
    let engine = Arc::new(ServeEngine::new(
        CompileOptions::default(),
        DseConfig::default(),
        Some(store),
    ));
    let server = {
        let engine = Arc::clone(&engine);
        let socket = socket.to_path_buf();
        std::thread::spawn(move || run_server(engine, &socket))
    };
    for _ in 0..500 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let t0 = Instant::now();
    let results: Vec<(f64, String, String)> = pool_run(stream.len(), clients.max(1), |i| {
        let (name, size) = &stream[i];
        let t = Instant::now();
        let payload = client_request(socket, &format!("compile {name} {size}"))
            .expect("daemon reachable")
            .expect("kernel compiles");
        (
            t.elapsed().as_secs_f64() * 1e3,
            format!("{name}@{size}"),
            payload,
        )
    });
    let wall = t0.elapsed().as_secs_f64();
    client_request(socket, "shutdown")
        .expect("daemon reachable")
        .expect("shuts down");
    server.join().expect("server thread").expect("clean exit");
    let mut latencies = Vec::with_capacity(results.len());
    let mut payloads = BTreeMap::new();
    for (ms, key, payload) in results {
        latencies.push(ms);
        payloads.entry(key).or_insert(payload);
    }
    (
        stats_row(
            "daemon",
            wall,
            latencies,
            engine.compiles(),
            engine.store_hits(),
            engine.memory_hits(),
            engine.batch_merged(),
        ),
        payloads,
    )
}

/// Removes the scratch directory on every exit path — normal return,
/// a gate failure that makes the caller `exit(1)`, or a panic partway
/// through a replay. Without it a failed run leaves store directories
/// behind under the system temp dir.
struct ScratchGuard(std::path::PathBuf);

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Replays `stream` through all three configurations and assembles the
/// report. Temp store directories and the daemon socket live under the
/// system temp dir, keyed by PID, and are removed afterwards.
pub fn run(stream: &[(String, usize)], clients: usize) -> ServeReport {
    let scratch = std::env::temp_dir().join(format!("pom-bench-serve-{}", std::process::id()));
    run_in(&scratch, stream, clients)
}

/// [`run`] with an explicit scratch directory (tests give each replay
/// its own so parallel tests never sweep each other's stores).
fn run_in(scratch: &Path, stream: &[(String, usize)], clients: usize) -> ServeReport {
    let _ = std::fs::remove_dir_all(scratch);
    std::fs::create_dir_all(scratch).expect("scratch dir");
    let _guard = ScratchGuard(scratch.to_path_buf());
    let warm_store = scratch.join("warm-store");
    let daemon_store = scratch.join("daemon-store");
    let socket = scratch.join("pomd.sock");

    let mut unique: Vec<&(String, usize)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for req in stream {
        if seen.insert(req.clone()) {
            unique.push(req);
        }
    }

    // Cold: the per-process status quo.
    let (cold, cold_payloads) = replay_per_process("cold", stream, None);

    // Prime the warm store (unmeasured): one pass over the unique
    // requests populates every artifact the measured replay will hit.
    let t_prime = Instant::now();
    for (name, size) in unique.iter().map(|r| (&r.0, r.1)) {
        let engine = ServeEngine::new(
            CompileOptions::default(),
            DseConfig::default(),
            Some(&warm_store),
        );
        engine.submit(name, size).expect("kernel compiles");
    }
    let prime_s = t_prime.elapsed().as_secs_f64();

    // Warm: fresh process per request, shared persistent store.
    let (warm, warm_payloads) = replay_per_process("warm", stream, Some(&warm_store));

    // Daemon: real server, concurrent clients, its own cold store.
    let (daemon, daemon_payloads) = replay_daemon(stream, &daemon_store, &socket, clients);

    let identical = cold_payloads == warm_payloads && cold_payloads == daemon_payloads;
    ServeReport {
        unique_requests: unique.len(),
        total_requests: stream.len(),
        duplicate_fraction: 1.0 - unique.len() as f64 / stream.len().max(1) as f64,
        warm_speedup: warm.kernels_per_s / cold.kernels_per_s.max(1e-9),
        daemon_speedup: daemon.kernels_per_s / cold.kernels_per_s.max(1e-9),
        prime_s,
        identical,
        clients,
        rows: vec![cold, warm, daemon],
    }
}

/// Runs the standard traffic mix at `size`, repeated `repeat` times.
pub fn run_suite(size: usize, repeat: usize) -> ServeReport {
    run(&traffic(size, repeat), 4)
}

fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes the report as `BENCH_serve.json` (hand-rolled, flat).
pub fn to_json(r: &ServeReport) -> String {
    let mut s = String::from("{\n  \"configs\": [\n");
    for (i, c) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"config\": \"{}\", \"requests\": {}, \"wall_s\": {}, \
             \"kernels_per_s\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
             \"compiles\": {}, \"store_hits\": {}, \"memory_hits\": {}, \
             \"batch_merged\": {}, \"hit_rate\": {}}}",
            c.config,
            c.requests,
            json_f(c.wall_s),
            json_f(c.kernels_per_s),
            json_f(c.p50_ms),
            json_f(c.p95_ms),
            json_f(c.p99_ms),
            c.compiles,
            c.store_hits,
            c.memory_hits,
            c.batch_merged,
            json_f(c.hit_rate),
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"unique_requests\": {},\n  \"total_requests\": {},\n  \
         \"duplicate_fraction\": {},\n  \"warm_speedup\": {},\n  \"daemon_speedup\": {},\n  \
         \"prime_s\": {},\n  \"identical\": {},\n  \"clients\": {}\n}}\n",
        r.unique_requests,
        r.total_requests,
        json_f(r.duplicate_fraction),
        json_f(r.warm_speedup),
        json_f(r.daemon_speedup),
        json_f(r.prime_s),
        r.identical,
        r.clients,
    );
    s
}

/// Renders the report as an aligned table.
pub fn render(r: &ServeReport) -> String {
    let mut t = Table::new(
        "Serving throughput — cold process vs warm store vs daemon",
        &[
            "Config",
            "Requests",
            "Wall (s)",
            "Kernels/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "Compiles",
            "Hit rate",
        ],
    );
    for c in &r.rows {
        t.row(&[
            c.config.to_string(),
            c.requests.to_string(),
            format!("{:.3}", c.wall_s),
            format!("{:.2}", c.kernels_per_s),
            format!("{:.2}", c.p50_ms),
            format!("{:.2}", c.p95_ms),
            format!("{:.2}", c.p99_ms),
            c.compiles.to_string(),
            format!("{:.0}%", c.hit_rate * 100.0),
        ]);
    }
    let mut out = t.render();
    let _ = writeln!(
        out,
        "traffic: {} request(s), {} unique ({:.0}% duplicates); prime {:.3} s; \
         warm {:.2}x cold, daemon {:.2}x cold ({} client(s)); payloads identical: {}",
        r.total_requests,
        r.unique_requests,
        r.duplicate_fraction * 100.0,
        r.prime_s,
        r.warm_speedup,
        r.daemon_speedup,
        r.clients,
        r.identical
    );
    out
}

/// The ISSUE's acceptance floors. Empty = pass.
pub fn gate(r: &ServeReport) -> Vec<String> {
    let mut fails = Vec::new();
    if r.warm_speedup < 5.0 {
        fails.push(format!(
            "warm-store throughput is {:.2}x cold (floor: 5x)",
            r.warm_speedup
        ));
    }
    if let Some(warm) = r.rows.iter().find(|c| c.config == "warm") {
        if warm.hit_rate < 0.5 {
            fails.push(format!(
                "warm cross-process hit rate is {:.0}% (floor: 50%)",
                warm.hit_rate * 100.0
            ));
        }
    }
    if !r.identical {
        fails.push("payloads diverge across cold/warm/daemon".to_string());
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic_and_duplicate_heavy() {
        let a = traffic(24, 2);
        let b = traffic(24, 2);
        assert_eq!(a, b, "fixed-seed shuffle is deterministic");
        assert_eq!(a.len(), 2 * (14 + 13 + 17));
        let unique: std::collections::HashSet<_> = a.iter().collect();
        assert!(
            (unique.len() as f64) < 0.5 * a.len() as f64,
            "{} unique of {} — the stream must be duplicate-heavy",
            unique.len(),
            a.len()
        );
    }

    #[test]
    fn tiny_replay_gates_identical_and_warm_hits() {
        // A 6-request stream with duplicates keeps this fast while still
        // exercising all three configurations end to end.
        let stream: Vec<(String, usize)> = [
            ("gemm", 16),
            ("bicg", 16),
            ("gemm", 16),
            ("conv2x2x4", 4),
            ("conv2x2x4", 4),
            ("gemm", 16),
        ]
        .iter()
        .map(|(n, s)| (n.to_string(), *s))
        .collect();
        let report = run(&stream, 2);
        assert!(report.identical, "payloads must match across configs");
        let warm = &report.rows[1];
        assert_eq!(warm.config, "warm");
        assert_eq!(warm.compiles, 0, "a primed store answers everything");
        assert!(warm.hit_rate >= 0.99);
        assert!(report.warm_speedup > 1.0, "warm beats cold");
        let daemon = &report.rows[2];
        assert!(
            daemon.compiles <= report.unique_requests,
            "daemon compiles each unique kernel at most once"
        );
        let json = to_json(&report);
        assert!(json.contains("\"config\": \"daemon\""));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        assert!(render(&report).contains("Kernels/s"));
    }

    #[test]
    fn scratch_dir_is_removed_even_when_a_replay_panics() {
        // An unknown kernel makes the cold replay panic mid-stream; the
        // drop guard must still sweep the scratch directory so a failed
        // `pomc bench-serve` never leaves store dirs behind.
        let scratch =
            std::env::temp_dir().join(format!("pom-bench-serve-panic-test-{}", std::process::id()));
        let stream = vec![("no-such-kernel".to_string(), 8)];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_in(&scratch, &stream, 1)
        }));
        assert!(result.is_err(), "the unknown kernel must panic the replay");
        assert!(
            !scratch.exists(),
            "scratch dir {} survived the panic",
            scratch.display()
        );
    }

    #[test]
    fn gate_fires_on_misses() {
        let row = |config, kps, hit_rate| ConfigStats {
            config,
            requests: 10,
            wall_s: 1.0,
            kernels_per_s: kps,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            compiles: 5,
            store_hits: 0,
            memory_hits: 0,
            batch_merged: 0,
            hit_rate,
        };
        let bad = ServeReport {
            rows: vec![row("cold", 10.0, 0.0), row("warm", 20.0, 0.2)],
            unique_requests: 5,
            total_requests: 10,
            duplicate_fraction: 0.5,
            warm_speedup: 2.0,
            daemon_speedup: 1.0,
            prime_s: 0.1,
            identical: false,
            clients: 2,
        };
        let fails = gate(&bad);
        assert_eq!(fails.len(), 3, "{fails:?}");
        let good = ServeReport {
            rows: vec![row("cold", 10.0, 0.0), row("warm", 100.0, 1.0)],
            warm_speedup: 10.0,
            identical: true,
            ..bad
        };
        assert!(gate(&good).is_empty());
    }
}
