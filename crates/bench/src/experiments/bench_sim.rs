//! `bench-sim` — the differential simulation audit harness.
//!
//! Runs the full 14-kernel suite twice per kernel — once with the seed
//! (recorded) schedule and once with the auto-DSE winner — through the
//! cycle-approximate simulator (`pom-sim`). Each run is checked two
//! ways:
//!
//! 1. **Functional equivalence** — the simulator's final memory state
//!    must be bit-identical to the affine interpreter's
//!    ([`pom::execute_func`]) on the same seeded inputs. The simulator
//!    executes the program in interpreter order, so any divergence is a
//!    bug, not a tolerance.
//! 2. **Model audit** — the analytical QoR latency is compared against
//!    the simulated cycle count. On the Table III and image kernels the
//!    ratio must stay within ±15%; the remaining kernels are reported
//!    but not gated (their sequential outer structure is where the
//!    analytical model is deliberately coarser — see DESIGN.md §11).
//! 3. **Conflict-freedom cross-check** — every pipelined loop that
//!    pom-bank certifies conflict-free (`pom_verify::bank_report`) must
//!    show *zero* simulated port-stall cycles. A violation means either
//!    the static bank analysis or the simulator's port calendars model
//!    partitioning wrongly — the two derive bank mappings independently
//!    from the same declarations.
//!
//! Results render as a table and serialize as `BENCH_sim.json` so the
//! estimator-vs-measurement trajectory is tracked across PRs.

use crate::experiments::bench_dse::pool_run;
use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::{
    auto_dse_with, bank_report, compile, execute_func, simulate, CompileOptions, Compiled,
    DseConfig, Function, MemoryState,
};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Seed for the deterministic pseudo-random array contents.
pub const SIM_SEED: u64 = 42;

/// Relative tolerance of the analytical model on the gated kernels.
pub const TOLERANCE: f64 = 0.15;

/// Kernels whose estimate-vs-simulation ratio is gated: the Table III
/// typical-HLS set plus the image pipelines (gated since pom-bank's
/// port-slide model closed their stencil-conflict undershoot — see
/// DESIGN.md §12). The DNN apps are audited but reported only.
pub const GATED: &[&str] = &[
    "gemm",
    "bicg",
    "gesummv",
    "2mm",
    "3mm",
    "jacobi1d",
    "jacobi2d",
    "heat1d",
    "seidel",
    "edge_detect",
    "gaussian",
    "blur",
];

/// The full 14-kernel suite under `pomc`'s per-kernel size conventions.
pub fn suite(size: usize) -> Vec<(&'static str, Function)> {
    vec![
        ("gemm", kernels::gemm(size)),
        ("bicg", kernels::bicg(size)),
        ("gesummv", kernels::gesummv(size)),
        ("2mm", kernels::mm2(size)),
        ("3mm", kernels::mm3(size)),
        ("jacobi1d", kernels::jacobi1d(size / 16, size)),
        ("jacobi2d", kernels::jacobi2d(size / 16, size / 8)),
        ("heat1d", kernels::heat1d(size / 16, size)),
        ("seidel", kernels::seidel(size / 4)),
        ("edge_detect", kernels::edge_detect(size)),
        ("gaussian", kernels::gaussian(size)),
        ("blur", kernels::blur(size)),
        ("vgg16", kernels::vgg16(1)),
        ("resnet18", kernels::resnet18(1)),
    ]
}

/// One (kernel, schedule) measurement.
#[derive(Clone, Debug)]
pub struct KernelSim {
    /// Kernel name.
    pub kernel: &'static str,
    /// Which schedule ran: `"seed"` (recorded) or `"dse"` (auto winner).
    pub schedule: &'static str,
    /// Analytical latency from the QoR estimator.
    pub est_cycles: u64,
    /// Measured latency from the simulator.
    pub sim_cycles: u64,
    /// `est_cycles / sim_cycles`.
    pub ratio: f64,
    /// Simulator memory state is bit-identical to the interpreter's.
    pub identical: bool,
    /// Issue cycles lost to loop-carried dependences.
    pub stall_dep: u64,
    /// Issue cycles lost to memory-port contention.
    pub stall_port: u64,
    /// Pipeline drain cycles.
    pub stall_drain: u64,
    /// Memory accesses whose port grant slid past the requested cycle.
    pub port_conflicts: u64,
    /// Pipeline iterations issued.
    pub pipeline_iterations: u64,
    /// This row participates in the ±15% tolerance gate.
    pub gated: bool,
    /// Pipelined loops pom-bank certified conflict-free.
    pub certified_free: usize,
    /// Simulated port-stall cycles inside those certified loops (must be
    /// zero — the cross-check gate).
    pub certified_stall_port: u64,
    /// Simulator wall seconds.
    pub sim_s: f64,
}

impl KernelSim {
    /// True when the row violates neither the equivalence nor (when
    /// gated) the tolerance requirement.
    pub fn passes(&self) -> bool {
        self.identical
            && self.certified_stall_port == 0
            && (!self.gated || (self.ratio - 1.0).abs() <= TOLERANCE)
    }
}

/// The whole suite's measurements.
#[derive(Clone, Debug)]
pub struct SimBenchReport {
    /// Two rows per kernel (seed, dse), in suite order.
    pub rows: Vec<KernelSim>,
    /// Problem size the suite ran at.
    pub size: usize,
    /// Worker threads used by the cross-kernel pool.
    pub pool_workers: usize,
}

/// Simulates one compiled design and checks it against the interpreter.
pub fn measure(
    kernel: &'static str,
    schedule: &'static str,
    f: &Function,
    compiled: &Compiled,
    opts: &CompileOptions,
) -> KernelSim {
    let mut interp_mem = MemoryState::for_function_seeded(f, SIM_SEED);
    execute_func(&compiled.affine, &mut interp_mem);
    let mut sim_mem = MemoryState::for_function_seeded(f, SIM_SEED);
    let report = simulate(&compiled.affine, &compiled.deps, &mut sim_mem, &opts.model);
    let est = compiled.qor.latency;
    // Conflict-freedom cross-check: loops the static analysis certifies
    // conflict-free must simulate with zero port stalls.
    let certs = bank_report(&compiled.affine, opts.model.ports_per_bank);
    // Sibling nests reuse iv names and the simulator aggregates its loop
    // rows per iv, so an iv only counts as certified when *every* loop of
    // that name holds a passing certificate.
    let stained: BTreeSet<&str> = certs
        .certificates
        .iter()
        .filter(|c| !c.passed())
        .map(|c| c.stmt.as_str())
        .collect();
    let free_ivs: BTreeSet<&str> = certs
        .certificates
        .iter()
        .filter(|c| c.passed() && !stained.contains(c.stmt.as_str()))
        .map(|c| c.stmt.as_str())
        .collect();
    let certified_stall_port = report
        .loops
        .iter()
        .filter(|l| free_ivs.contains(l.iv.as_str()))
        .map(|l| l.stall_port)
        .sum();
    KernelSim {
        kernel,
        schedule,
        est_cycles: est,
        sim_cycles: report.cycles,
        ratio: est as f64 / report.cycles.max(1) as f64,
        identical: sim_mem == interp_mem,
        stall_dep: report.stall_dep,
        stall_port: report.stall_port,
        stall_drain: report.stall_drain,
        port_conflicts: report.port_conflicts,
        pipeline_iterations: report.pipeline_iterations,
        gated: GATED.contains(&kernel),
        certified_free: free_ivs.len(),
        certified_stall_port,
        sim_s: report.sim_time.as_secs_f64(),
    }
}

/// Runs the suite at `size` and returns the full report.
pub fn run_suite(size: usize) -> SimBenchReport {
    let opts = paper_options();
    let suite = suite(size);
    let cfg = DseConfig::default();
    let pool_workers = cfg.effective_workers();
    let rows: Vec<Vec<KernelSim>> = pool_run(suite.len(), pool_workers, |i| {
        let (name, f) = &suite[i];
        let seed = compile(f, &opts).expect("seed schedule compiles");
        let dse = auto_dse_with(f, &opts, &cfg).expect("DSE compiles");
        vec![
            measure(name, "seed", f, &seed, &opts),
            measure(name, "dse", &dse.function, &dse.compiled, &opts),
        ]
    });
    SimBenchReport {
        rows: rows.into_iter().flatten().collect(),
        size,
        pool_workers,
    }
}

/// The gate: every row must be functionally identical; gated rows must
/// additionally keep the analytical estimate within ±15% of the
/// simulated cycles. Returns human-readable failures (empty = pass).
pub fn gate(r: &SimBenchReport) -> Vec<String> {
    let mut fails = Vec::new();
    for k in &r.rows {
        if !k.identical {
            fails.push(format!(
                "{} ({}): simulator memory diverged from the interpreter",
                k.kernel, k.schedule
            ));
        }
        if k.gated && (k.ratio - 1.0).abs() > TOLERANCE {
            fails.push(format!(
                "{} ({}): estimate {} vs simulated {} cycles (ratio {:.3} outside ±{:.0}%)",
                k.kernel,
                k.schedule,
                k.est_cycles,
                k.sim_cycles,
                k.ratio,
                100.0 * TOLERANCE
            ));
        }
        if k.certified_stall_port > 0 {
            fails.push(format!(
                "{} ({}): {} port-stall cycle(s) inside {} loop(s) certified conflict-free",
                k.kernel, k.schedule, k.certified_stall_port, k.certified_free
            ));
        }
    }
    fails
}

fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

/// Serializes the report as `BENCH_sim.json` (hand-rolled, no deps).
pub fn to_json(r: &SimBenchReport) -> String {
    let mut s = String::from("{\n  \"rows\": [\n");
    for (i, k) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"schedule\": \"{}\", \"est_cycles\": {}, \
             \"sim_cycles\": {}, \"ratio\": {}, \"identical\": {}, \"stall_dep\": {}, \
             \"stall_port\": {}, \"stall_drain\": {}, \"port_conflicts\": {}, \
             \"pipeline_iterations\": {}, \"gated\": {}, \"certified_free\": {}, \
             \"certified_stall_port\": {}, \"sim_s\": {}}}",
            k.kernel,
            k.schedule,
            k.est_cycles,
            k.sim_cycles,
            json_f(k.ratio),
            k.identical,
            k.stall_dep,
            k.stall_port,
            k.stall_drain,
            k.port_conflicts,
            k.pipeline_iterations,
            k.gated,
            k.certified_free,
            k.certified_stall_port,
            json_f(k.sim_s),
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        s,
        "  ],\n  \"size\": {},\n  \"pool_workers\": {},\n  \"all_passed\": {}\n}}\n",
        r.size,
        r.pool_workers,
        gate(r).is_empty(),
    );
    s
}

/// Renders the report as an aligned table (the human-readable view).
pub fn render(r: &SimBenchReport) -> String {
    let mut t = Table::new(
        "Simulated vs estimated cycles — seed and DSE schedules",
        &[
            "Kernel",
            "Schedule",
            "Estimated",
            "Simulated",
            "Est/Sim",
            "Identical",
            "Dep",
            "Port",
            "Drain",
            "Gated",
            "CertFree",
        ],
    );
    for k in &r.rows {
        t.row(&[
            k.kernel.to_string(),
            k.schedule.to_string(),
            k.est_cycles.to_string(),
            k.sim_cycles.to_string(),
            format!("{:.3}", k.ratio),
            k.identical.to_string(),
            k.stall_dep.to_string(),
            k.stall_port.to_string(),
            k.stall_drain.to_string(),
            k.gated.to_string(),
            k.certified_free.to_string(),
        ]);
    }
    let mut out = t.render();
    let worst = r
        .rows
        .iter()
        .filter(|k| k.gated)
        .map(|k| (k.ratio - 1.0).abs())
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "size {}: {} row(s), worst gated deviation {:.1}% (tolerance {:.0}%), {} pool worker(s)",
        r.size,
        r.rows.len(),
        100.0 * worst,
        100.0 * TOLERANCE,
        r.pool_workers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_gemm_row_is_identical_and_json_well_formed() {
        // One tiny kernel keeps the debug-mode test fast; the full suite
        // runs in release via `pomc bench-sim`.
        let opts = paper_options();
        let f = kernels::gemm(8);
        let compiled = compile(&f, &opts).expect("compiles");
        let row = measure("gemm", "seed", &f, &compiled, &opts);
        assert!(row.identical, "sim diverged from interpreter");
        assert!(row.sim_cycles > 0);
        assert!(row.gated);
        assert_eq!(row.certified_stall_port, 0, "certified loops stalled");
        let report = SimBenchReport {
            rows: vec![row],
            size: 8,
            pool_workers: 1,
        };
        let json = to_json(&report);
        assert!(json.contains("\"kernel\": \"gemm\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
        let text = render(&report);
        assert!(text.contains("gemm"));
        assert!(text.contains("Est/Sim"));
    }
}
