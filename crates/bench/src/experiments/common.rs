//! Shared experiment machinery: framework evaluation and table rendering.

use pom::baselines::{self, BaselineResult};
use pom::{auto_dse, CompileOptions, DeviceSpec, Function, GroupConfig};
use std::fmt::Write as _;

/// One framework's results on one benchmark — the columns of Table III.
#[derive(Clone, Debug)]
pub struct FrameworkRow {
    /// Framework name.
    pub framework: String,
    /// Latency in cycles.
    pub latency: u64,
    /// Speedup over the unoptimized baseline.
    pub speedup: f64,
    /// DSP usage.
    pub dsp: u64,
    /// FF usage.
    pub ff: u64,
    /// LUT usage.
    pub lut: u64,
    /// Power proxy (W).
    pub power: f64,
    /// Achieved initiation interval (max over pipelined loops; 0 = none).
    pub ii: u64,
    /// Achieved tile sizes / unroll factors per nest.
    pub tiles: String,
    /// Parallelism degree (tile product / II).
    pub parallelism: f64,
    /// Strategy/DSE wall-clock seconds.
    pub time_s: f64,
}

fn row_from_baseline(b: &BaselineResult, baseline_latency: u64) -> FrameworkRow {
    let q = &b.compiled.qor;
    let ii = b.achieved_ii();
    FrameworkRow {
        framework: b.name.to_string(),
        latency: q.latency,
        speedup: baseline_latency as f64 / q.latency.max(1) as f64,
        dsp: q.resources.dsp,
        ff: q.resources.ff,
        lut: q.resources.lut,
        power: q.power,
        ii,
        tiles: "-".into(),
        parallelism: 0.0,
        time_s: b.time.as_secs_f64(),
    }
}

fn tiles_string(groups: &[GroupConfig]) -> String {
    groups
        .iter()
        .map(|g| {
            let ts: Vec<String> = g.tiles.iter().map(|t| t.to_string()).collect();
            format!("[{}]", ts.join(", "))
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Evaluates POM on a kernel.
pub fn run_pom(f: &Function, opts: &CompileOptions) -> FrameworkRow {
    let base = baselines::baseline_compiled(f, opts);
    let r = auto_dse(f, opts).expect("DSE compiles");
    let q = &r.compiled.qor;
    FrameworkRow {
        framework: "POM".into(),
        latency: q.latency,
        speedup: q.speedup_over(&base.qor),
        dsp: q.resources.dsp,
        ff: q.resources.ff,
        lut: q.resources.lut,
        power: q.power,
        ii: r.achieved_iis().into_iter().max().unwrap_or(0),
        tiles: tiles_string(&r.groups),
        parallelism: r.parallelism(),
        time_s: r.dse_time.as_secs_f64(),
    }
}

/// Evaluates the ScaleHLS-like baseline on a kernel.
pub fn run_scalehls(f: &Function, opts: &CompileOptions, size: usize) -> FrameworkRow {
    let base = baselines::baseline_compiled(f, opts);
    let b = baselines::scalehls_like(f, opts, size);
    row_from_baseline(&b, base.qor.latency)
}

/// Evaluates the POLSCA-like baseline on a kernel.
pub fn run_polsca(f: &Function, opts: &CompileOptions) -> FrameworkRow {
    let base = baselines::baseline_compiled(f, opts);
    let b = baselines::polsca_like(f, opts);
    row_from_baseline(&b, base.qor.latency)
}

/// Evaluates the Pluto-like baseline on a kernel.
pub fn run_pluto(f: &Function, opts: &CompileOptions) -> FrameworkRow {
    let base = baselines::baseline_compiled(f, opts);
    let b = baselines::pluto_like(f, opts);
    row_from_baseline(&b, base.qor.latency)
}

/// Default options on the paper's device.
pub fn paper_options() -> CompileOptions {
    CompileOptions {
        device: DeviceSpec::xc7z020(),
        ..Default::default()
    }
}

/// A plain-text aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }
}

/// Formats a speedup like the paper ("575.9x").
pub fn fmt_speedup(s: f64) -> String {
    format!("{s:.1}x")
}

/// Formats a resource count with its utilization percentage.
pub fn fmt_util(v: u64, total: u64) -> String {
    format!("{v} ({:.0}%)", 100.0 * v as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_speedup(575.93), "575.9x");
        assert_eq!(fmt_util(166, 220), "166 (75%)");
    }
}
