//! Extension experiment — data-type customization (Table I lists it as a
//! POM capability; Section IV-A: "algorithms implemented with different
//! data types vary in performance on FPGAs").
//!
//! Runs GEMM through the same auto-DSE with the kernel declared in `i8`,
//! `i16`, `i32`, `f32`, and `f64`: narrower arithmetic buys more parallel
//! units under the same DSP/LUT budget, so the parallelism degree (and
//! speedup) rises as the type shrinks.

use crate::experiments::common::{fmt_speedup, Table};
use pom::{auto_dse, baselines, CompileOptions, DataType, Function};

/// GEMM with a configurable element type.
pub fn gemm_typed(n: usize, dtype: DataType) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("gemm");
    let k = f.var("k", 0, n_);
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], dtype);
    let b = f.placeholder("B", &[n, n], dtype);
    let c = f.placeholder("C", &[n, n], dtype);
    f.compute(
        "s",
        &[k.clone(), i.clone(), j.clone()],
        a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
        a.access(&[&i, &j]),
    );
    f
}

/// One measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Element type.
    pub dtype: DataType,
    /// Speedup over the same-type unoptimized baseline.
    pub speedup: f64,
    /// Parallelism degree reached by the DSE.
    pub parallelism: f64,
    /// DSP usage.
    pub dsp: u64,
    /// LUT usage.
    pub lut: u64,
}

/// Runs the sweep.
pub fn results(n: usize) -> Vec<Row> {
    [
        DataType::I8,
        DataType::I16,
        DataType::I32,
        DataType::F32,
        DataType::F64,
    ]
    .into_iter()
    .map(|dtype| {
        let f = gemm_typed(n, dtype);
        let opts = CompileOptions::for_function(&f);
        let base = baselines::baseline_compiled(&f, &opts);
        let r = auto_dse(&f, &opts).expect("DSE compiles");
        Row {
            dtype,
            speedup: r.compiled.qor.speedup_over(&base.qor),
            parallelism: r.parallelism(),
            dsp: r.compiled.qor.resources.dsp,
            lut: r.compiled.qor.resources.lut,
        }
    })
    .collect()
}

/// Renders the extension table.
pub fn run() -> String {
    let mut t = Table::new(
        "Extension — data-type customization on GEMM (size 1024)",
        &["Type", "Speedup", "Parallelism", "DSP", "LUT"],
    );
    for r in results(1024) {
        t.row(&[
            r.dtype.to_string(),
            fmt_speedup(r.speedup),
            format!("{:.0}", r.parallelism),
            r.dsp.to_string(),
            r.lut.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrower_types_reach_at_least_as_much_parallelism() {
        let rows = results(256);
        let par = |d: DataType| {
            rows.iter()
                .find(|r| r.dtype == d)
                .map(|r| r.parallelism)
                .unwrap()
        };
        assert!(par(DataType::I16) >= par(DataType::F32));
        assert!(par(DataType::F32) >= par(DataType::F64));
        assert!(par(DataType::I8) >= par(DataType::I32));
    }

    #[test]
    fn every_type_fits_the_device() {
        for r in results(256) {
            assert!(r.dsp <= 220, "{}: {} DSPs", r.dtype, r.dsp);
            assert!(r.lut <= 53_200, "{}: {} LUTs", r.dtype, r.lut);
        }
    }
}
