//! Fig. 2 — the motivating example: BICG latency and speedup across the
//! baseline, Pluto, POLSCA, ScaleHLS, and POM (plus the achieved IIs that
//! drive the schedules of Fig. 2(c)(d)(e)).

use crate::experiments::common::{
    fmt_speedup, paper_options, run_pluto, run_polsca, run_pom, run_scalehls, FrameworkRow, Table,
};
use crate::kernels;

/// Problem size used by the paper's motivating example.
pub const SIZE: usize = 4096;

/// Runs the experiment, returning all framework rows (baseline first).
pub fn results(size: usize) -> Vec<FrameworkRow> {
    let opts = paper_options();
    let f = kernels::bicg(size);
    let base = pom::baselines::baseline_compiled(&f, &opts);
    let baseline_row = FrameworkRow {
        framework: "Baseline".into(),
        latency: base.qor.latency,
        speedup: 1.0,
        dsp: base.qor.resources.dsp,
        ff: base.qor.resources.ff,
        lut: base.qor.resources.lut,
        power: base.qor.power,
        ii: 0,
        tiles: "-".into(),
        parallelism: 1.0,
        time_s: 0.0,
    };
    vec![
        baseline_row,
        run_pluto(&f, &opts),
        run_polsca(&f, &opts),
        run_scalehls(&f, &opts, size),
        run_pom(&f, &opts),
    ]
}

/// Renders the Fig. 2(b) reproduction.
pub fn run() -> String {
    let rows = results(SIZE);
    let mut t = Table::new(
        "Fig. 2(b) — Motivating example: BICG latency and speedup",
        &["Framework", "Latency (cycles)", "Speedup", "Achieved II"],
    );
    for r in &rows {
        t.row(&[
            r.framework.clone(),
            r.latency.to_string(),
            fmt_speedup(r.speedup),
            if r.ii == 0 {
                "-".into()
            } else {
                r.ii.to_string()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        // Paper Fig. 2(b): POM > ScaleHLS > POLSCA ~ Pluto ~ baseline.
        let rows = results(256);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.framework == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .speedup
        };
        assert!(get("POM") > get("ScaleHLS"), "POM must win");
        assert!(get("ScaleHLS") > get("POLSCA"));
        assert!(get("POM") > 10.0 * get("Pluto"));
    }

    #[test]
    fn pom_ii_is_small() {
        let rows = results(256);
        let pom = rows.iter().find(|r| r.framework == "POM").unwrap();
        assert!(pom.ii <= 2, "paper reports II = 2, got {}", pom.ii);
    }

    #[test]
    fn render_contains_all_frameworks() {
        let s = run();
        for name in ["Baseline", "Pluto", "POLSCA", "ScaleHLS", "POM"] {
            assert!(s.contains(name), "missing {name} in:\n{s}");
        }
    }
}
