//! Fig. 11 — speedup and resource utilization of 2MM under varying
//! resource constraints (percentages of the XC7Z020's resources).

use crate::experiments::common::{fmt_speedup, Table};
use crate::kernels;
use pom::{auto_dse, baselines, CompileOptions, DeviceSpec};

/// The constraint sweep of the figure.
pub const CONSTRAINTS: [u64; 4] = [25, 50, 75, 100];

/// One point of the sweep.
#[derive(Clone, Debug)]
pub struct Point {
    /// Framework name.
    pub framework: &'static str,
    /// Resource constraint (% of the device).
    pub constraint: u64,
    /// Speedup over the unoptimized baseline.
    pub speedup: f64,
    /// DSP utilization (% of the *constrained* device).
    pub dsp_util: f64,
}

/// Runs the sweep at the given problem size.
pub fn results(size: usize) -> Vec<Point> {
    let mut out = Vec::new();
    let f = kernels::mm2(size);
    for pct in CONSTRAINTS {
        let device = DeviceSpec::xc7z020().scaled_to(pct);
        let opts = CompileOptions {
            device: device.clone(),
            ..Default::default()
        };
        let base = baselines::baseline_compiled(&f, &opts);
        let pom = auto_dse(&f, &opts).expect("DSE compiles");
        out.push(Point {
            framework: "POM",
            constraint: pct,
            speedup: pom.compiled.qor.speedup_over(&base.qor),
            dsp_util: 100.0 * pom.compiled.qor.resources.dsp as f64 / device.dsp.max(1) as f64,
        });
        let sh = baselines::scalehls_like(&f, &opts, size);
        out.push(Point {
            framework: "ScaleHLS",
            constraint: pct,
            speedup: sh.compiled.qor.speedup_over(&base.qor),
            dsp_util: 100.0 * sh.compiled.qor.resources.dsp as f64 / device.dsp.max(1) as f64,
        });
    }
    out
}

/// Renders the Fig. 11 reproduction.
pub fn run() -> String {
    let pts = results(4096);
    let mut t = Table::new(
        "Fig. 11 — 2MM speedup and DSP utilization vs resource constraint",
        &["Constraint", "Framework", "Speedup", "DSP util. of budget"],
    );
    for p in &pts {
        t.row(&[
            format!("{}%", p.constraint),
            p.framework.to_string(),
            fmt_speedup(p.speedup),
            format!("{:.0}%", p.dsp_util),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_speedup_grows_with_budget() {
        let pts = results(256);
        let pom: Vec<&Point> = pts.iter().filter(|p| p.framework == "POM").collect();
        assert!(pom.last().unwrap().speedup >= pom.first().unwrap().speedup);
    }

    #[test]
    fn pom_wins_at_every_constraint() {
        let pts = results(256);
        for pct in CONSTRAINTS {
            let pom = pts
                .iter()
                .find(|p| p.framework == "POM" && p.constraint == pct)
                .unwrap();
            let sh = pts
                .iter()
                .find(|p| p.framework == "ScaleHLS" && p.constraint == pct)
                .unwrap();
            assert!(
                pom.speedup >= sh.speedup,
                "at {pct}%: POM {} vs ScaleHLS {}",
                pom.speedup,
                sh.speedup
            );
        }
    }
}
