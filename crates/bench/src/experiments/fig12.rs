//! Fig. 12 — scalability across problem sizes (32 … 8192) on the typical
//! HLS benchmarks, POM vs ScaleHLS.

use crate::experiments::common::{paper_options, run_pom, run_scalehls, Table};
use crate::experiments::tab03::benchmarks;

/// The paper's problem-size sweep.
pub const SIZES: [usize; 6] = [32, 128, 512, 2048, 4096, 8192];

/// One series point.
#[derive(Clone, Debug)]
pub struct Point {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Problem size.
    pub size: usize,
    /// Framework name.
    pub framework: &'static str,
    /// Speedup over the unoptimized baseline at that size.
    pub speedup: f64,
}

/// Runs the sweep over the given sizes.
pub fn results(sizes: &[usize]) -> Vec<Point> {
    let opts = paper_options();
    let mut out = Vec::new();
    for &size in sizes {
        for (name, f) in benchmarks(size) {
            let pom = run_pom(&f, &opts);
            out.push(Point {
                benchmark: name,
                size,
                framework: "POM",
                speedup: pom.speedup,
            });
            let sh = run_scalehls(&f, &opts, size);
            out.push(Point {
                benchmark: name,
                size,
                framework: "ScaleHLS",
                speedup: sh.speedup,
            });
        }
    }
    out
}

/// Renders the Fig. 12 reproduction (one row per benchmark/framework,
/// one column per size).
pub fn run() -> String {
    let pts = results(&SIZES);
    let mut headers = vec!["Benchmark".to_string(), "Framework".to_string()];
    headers.extend(SIZES.iter().map(|s| s.to_string()));
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig. 12 — Speedup vs problem size", &hdr_refs);
    for (bench, _) in benchmarks(32) {
        for fw in ["ScaleHLS", "POM"] {
            let mut cells = vec![bench.to_string(), fw.to_string()];
            for &s in &SIZES {
                let p = pts
                    .iter()
                    .find(|p| p.benchmark == bench && p.size == s && p.framework == fw)
                    .expect("point computed");
                cells.push(format!("{:.1}x", p.speedup));
            }
            t.row(&cells);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalehls_declines_at_8192() {
        // Paper: at 8192 ScaleHLS provides only basic pipelining for
        // GEMM/2MM/3MM while POM keeps generating high-quality designs.
        let pts = results(&[2048, 8192]);
        for b in ["GEMM", "2MM", "3MM"] {
            let sh_2048 = pts
                .iter()
                .find(|p| p.benchmark == b && p.size == 2048 && p.framework == "ScaleHLS")
                .unwrap()
                .speedup;
            let sh_8192 = pts
                .iter()
                .find(|p| p.benchmark == b && p.size == 8192 && p.framework == "ScaleHLS")
                .unwrap()
                .speedup;
            let pom_8192 = pts
                .iter()
                .find(|p| p.benchmark == b && p.size == 8192 && p.framework == "POM")
                .unwrap()
                .speedup;
            assert!(sh_8192 < sh_2048 / 2.0, "{b}: ScaleHLS declines at 8192");
            assert!(pom_8192 > 5.0 * sh_8192, "{b}: POM keeps scaling");
        }
    }

    #[test]
    fn both_stable_at_moderate_sizes() {
        let pts = results(&[128, 512]);
        for p in &pts {
            if p.framework == "POM" {
                assert!(p.speedup > 2.0, "{}@{}: {}", p.benchmark, p.size, p.speedup);
            }
        }
    }
}
