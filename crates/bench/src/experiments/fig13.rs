//! Fig. 13 — accumulated resource usage for the DNN workloads' critical
//! loops: POM executes layers sequentially with *resource reuse* (the
//! accumulated usage is a running max, and each layer gets high
//! parallelism), while ScaleHLS maps layers to a *dataflow* pipeline
//! whose resources add up, starving each layer.

use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::dse::stage2::group_compile;
use pom::{auto_dse, baselines, CompileOptions, Function};

/// Per-layer accumulated statistics.
#[derive(Clone, Debug)]
pub struct LayerPoint {
    /// Framework.
    pub framework: &'static str,
    /// Layer (critical-loop) index.
    pub layer: usize,
    /// This layer's DSP usage.
    pub layer_dsp: u64,
    /// Accumulated DSP usage up to this layer (max for POM's reuse, sum
    /// for ScaleHLS's dataflow).
    pub accumulated_dsp: u64,
    /// The layer's parallelism degree (tile product).
    pub parallelism: i64,
    /// Loop depth of the nest (6 for convolutions).
    pub depth: usize,
}

fn layer_points(
    f: &Function,
    opts: &CompileOptions,
    network_size: usize,
) -> (Vec<LayerPoint>, Vec<LayerPoint>) {
    // POM: auto-DSE, reuse composition. Per-layer resources are
    // recomputed on the stage-1-transformed function the groups were
    // planned on.
    let pom = auto_dse(f, opts).expect("DSE compiles");
    let stage1 = pom::dse::stage1::dependence_aware_transform(f, 8);
    let mut pom_points = Vec::new();
    let mut acc = 0u64;
    for (i, g) in pom.groups.iter().enumerate() {
        let (_, r) = group_compile(&stage1, g, opts);
        acc = acc.max(r.dsp);
        pom_points.push(LayerPoint {
            framework: "POM",
            layer: i,
            layer_dsp: r.dsp,
            accumulated_dsp: acc,
            parallelism: g.parallelism(),
            depth: g.dims.len(),
        });
    }

    // ScaleHLS: dataflow composition.
    let sh = baselines::scalehls_like(f, opts, network_size);
    let mut sh_points = Vec::new();
    let mut acc = 0u64;
    for (i, g) in sh.groups.iter().enumerate() {
        let mut sh_opts = opts.clone();
        sh_opts.sharing = pom::hls::estimate::Sharing::Dataflow;
        // ScaleHLS's groups are planned on its fused/reordered function.
        let (_, r) = group_compile(&sh.prepared, g, &sh_opts);
        acc += r.dsp;
        sh_points.push(LayerPoint {
            framework: "ScaleHLS",
            layer: i,
            layer_dsp: r.dsp,
            accumulated_dsp: acc,
            parallelism: g.parallelism(),
            depth: g.dims.len(),
        });
    }
    (pom_points, sh_points)
}

/// Runs both networks at the given scale.
pub fn results(scale: usize) -> Vec<(&'static str, Vec<LayerPoint>, Vec<LayerPoint>)> {
    let opts = paper_options();
    let mut out = Vec::new();
    for (name, f) in [
        ("VGG-16", kernels::vgg16(scale)),
        ("ResNet-18", kernels::resnet18(scale)),
    ] {
        let (p, s) = layer_points(&f, &opts, 512);
        out.push((name, p, s));
    }
    out
}

/// Renders the Fig. 13 reproduction.
pub fn run() -> String {
    let mut out = String::new();
    for (net, pom_pts, sh_pts) in results(1) {
        let mut t = Table::new(
            &format!("Fig. 13 — Accumulated DSP usage, {net} critical loops"),
            &[
                "Layer",
                "POM DSP",
                "POM accum (reuse)",
                "POM parallelism",
                "ScaleHLS DSP",
                "ScaleHLS accum (dataflow)",
                "ScaleHLS parallelism",
            ],
        );
        let n = pom_pts.len().max(sh_pts.len());
        for i in 0..n {
            let p = pom_pts.get(i);
            let s = sh_pts.get(i);
            t.row(&[
                i.to_string(),
                p.map(|x| x.layer_dsp.to_string()).unwrap_or_default(),
                p.map(|x| x.accumulated_dsp.to_string()).unwrap_or_default(),
                p.map(|x| x.parallelism.to_string()).unwrap_or_default(),
                s.map(|x| x.layer_dsp.to_string()).unwrap_or_default(),
                s.map(|x| x.accumulated_dsp.to_string()).unwrap_or_default(),
                s.map(|x| x.parallelism.to_string()).unwrap_or_default(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_accumulates_flat_dataflow_accumulates_linearly() {
        let rows = results(1);
        for (net, pom_pts, sh_pts) in rows {
            let pom_final = pom_pts.last().unwrap().accumulated_dsp;
            let pom_max_layer = pom_pts.iter().map(|p| p.layer_dsp).max().unwrap();
            assert_eq!(
                pom_final, pom_max_layer,
                "{net}: POM accumulated = max layer (reuse)"
            );
            let sh_final = sh_pts.last().unwrap().accumulated_dsp;
            let sh_sum: u64 = sh_pts.iter().map(|p| p.layer_dsp).sum();
            assert_eq!(sh_final, sh_sum, "{net}: ScaleHLS accumulated = sum");
            // POM gives each conv layer more parallelism than ScaleHLS
            // could afford for its convs (copy/pool nests are excluded:
            // they consume no DSPs, so their unrolling is not the point).
            let pom_conv_par = pom_pts
                .iter()
                .filter(|p| p.depth >= 6)
                .map(|p| p.parallelism)
                .max()
                .unwrap();
            let sh_conv_par = sh_pts
                .iter()
                .filter(|p| p.depth >= 6)
                .map(|p| p.parallelism)
                .max()
                .unwrap();
            assert!(
                pom_conv_par >= sh_conv_par,
                "{net}: POM parallelism {pom_conv_par} vs ScaleHLS {sh_conv_par}"
            );
        }
    }
}
