//! Fig. 14 — impact analysis of scheduling primitives: incremental
//! configurations from bare pipelining to the full POM schedule, on the
//! representative benchmarks (EdgeDetect, Seidel, 2MM).
//!
//! Legend (paper): LP = loop pipelining, LU = loop unrolling, LT = loop
//! tiling, AP = array partitioning, LI/LS/LF/LSK = interchange / split /
//! fusion / skewing (the stage-1 dependence-aware transformations).

use crate::experiments::common::{fmt_speedup, paper_options, Table};
use crate::kernels;
use pom::dse::stage2::{bottleneck_optimize, plan_groups, schedule_for};
use pom::{auto_dse, baselines, compile, Function, Primitive};

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct Point {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// Speedup over the unoptimized baseline.
    pub speedup: f64,
    /// DSP usage.
    pub dsp: u64,
}

/// The configuration ladder.
pub const CONFIGS: [&str; 4] = ["LP", "LP+LT/LU", "LP+LT/LU+AP", "full POM (+LI/LS/LF/LSK)"];

fn strip_partitions(f: &Function) -> Function {
    let mut g = baselines::unoptimized(f);
    for p in f.schedule() {
        if !matches!(p, Primitive::Partition { .. }) {
            g.record(p.clone());
        }
    }
    g
}

/// Evaluates the ladder on one kernel.
pub fn ablate(name: &'static str, f: &Function) -> Vec<Point> {
    let opts = paper_options();
    let base = baselines::baseline_compiled(f, &opts);
    let mut out = Vec::new();
    let mut push = |config, q: &pom::QoR| {
        out.push(Point {
            benchmark: name,
            config,
            speedup: q.speedup_over(&base.qor),
            dsp: q.resources.dsp,
        });
    };

    // LP: pipeline the innermost loops only (tiles = 1 everywhere).
    let groups = plan_groups(f);
    let lp = schedule_for(f, &groups);
    push(
        "LP",
        &compile(&lp, &opts).expect("LP schedule compiles").qor,
    );

    // LP+LT/LU: stage-2 tiling DSE without array partitioning.
    let tiled = bottleneck_optimize(f, &opts).function;
    let no_ap = strip_partitions(&tiled);
    push(
        "LP+LT/LU",
        &compile(&no_ap, &opts)
            .expect("unpartitioned schedule compiles")
            .qor,
    );

    // LP+LT/LU+AP: full stage 2 (no dependence-aware restructuring).
    push(
        "LP+LT/LU+AP",
        &compile(&tiled, &opts).expect("tiled schedule compiles").qor,
    );

    // Full POM: stage 1 + stage 2.
    let full = auto_dse(f, &opts).expect("DSE compiles");
    push("full POM (+LI/LS/LF/LSK)", &full.compiled.qor);
    out
}

/// Runs the ablation on the representative benchmarks.
pub fn results(size: usize) -> Vec<Point> {
    let mut out = Vec::new();
    out.extend(ablate("EdgeDetect", &kernels::edge_detect(size)));
    out.extend(ablate("Seidel", &kernels::seidel(size)));
    out.extend(ablate("2MM", &kernels::mm2(size)));
    out
}

/// Renders the Fig. 14 reproduction.
pub fn run() -> String {
    let mut t = Table::new(
        "Fig. 14 — Impact analysis of scheduling primitives",
        &["Benchmark", "Configuration", "Speedup", "DSP"],
    );
    for p in results(1024) {
        t.row(&[
            p.benchmark.to_string(),
            p.config.to_string(),
            fmt_speedup(p.speedup),
            p.dsp.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup(pts: &[Point], b: &str, c: &str) -> f64 {
        pts.iter()
            .find(|p| p.benchmark == b && p.config == c)
            .unwrap_or_else(|| panic!("missing {b}/{c}"))
            .speedup
    }

    #[test]
    fn ladder_is_monotone_enough() {
        let pts = results(128);
        for b in ["EdgeDetect", "Seidel", "2MM"] {
            let lp = speedup(&pts, b, "LP");
            let full = speedup(&pts, b, "full POM (+LI/LS/LF/LSK)");
            assert!(full >= lp, "{b}: full {full} >= LP {lp}");
        }
    }

    #[test]
    fn seidel_needs_skewing() {
        // Paper: Seidel's improvement from pipelining alone is limited —
        // the overall performance jumps only once skewing is applied.
        let pts = results(128);
        let without = speedup(&pts, "Seidel", "LP+LT/LU+AP");
        let with = speedup(&pts, "Seidel", "full POM (+LI/LS/LF/LSK)");
        assert!(
            with > 1.5 * without,
            "skewing must unlock Seidel: {with} vs {without}"
        );
    }

    #[test]
    fn partitioning_matters_for_2mm() {
        let pts = results(128);
        let without = speedup(&pts, "2MM", "LP+LT/LU");
        let with = speedup(&pts, "2MM", "LP+LT/LU+AP");
        assert!(
            with > without,
            "array partitioning must help 2MM: {with} vs {without}"
        );
    }
}
