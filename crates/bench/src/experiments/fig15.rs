//! Fig. 15 — lines-of-code comparison: POM DSL with autoDSE, POM DSL
//! with manually specified primitives, and the generated HLS C.

use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::{auto_dse, Function};

/// One LoC measurement.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// DSL statements with `auto_DSE()`.
    pub dsl_auto: usize,
    /// DSL statements with the manual primitives the DSE found.
    pub dsl_manual: usize,
    /// Non-empty lines of the generated HLS C.
    pub hls_c: usize,
}

/// Measures the benchmarks of the figure.
pub fn results(size: usize) -> Vec<Row> {
    let opts = paper_options();
    let cases: Vec<(&str, Function)> = vec![
        ("GEMM", kernels::gemm(size)),
        ("BICG", kernels::bicg(size)),
        ("GESUMMV", kernels::gesummv(size)),
        ("2MM", kernels::mm2(size)),
        ("3MM", kernels::mm3(size)),
        ("Jacobi-1d", kernels::jacobi1d(size / 8, size)),
    ];
    let mut out = Vec::new();
    for (name, f) in cases {
        let r = auto_dse(&f, &opts).expect("DSE compiles");
        let mut auto_fn = f.clone();
        auto_fn.auto_dse();
        out.push(Row {
            benchmark: match name {
                "GEMM" => "GEMM",
                "BICG" => "BICG",
                "GESUMMV" => "GESUMMV",
                "2MM" => "2MM",
                "3MM" => "3MM",
                _ => "Jacobi-1d",
            },
            dsl_auto: auto_fn.dsl_loc(),
            dsl_manual: r.function.dsl_loc(),
            hls_c: pom::hls::hls_c_loc(&r.compiled.affine),
        });
    }
    out
}

/// Renders the Fig. 15 reproduction.
pub fn run() -> String {
    let mut t = Table::new(
        "Fig. 15 — Lines of code: DSL (autoDSE) vs DSL (manual) vs HLS C",
        &[
            "Benchmark",
            "DSL + autoDSE",
            "DSL + manual primitives",
            "Generated HLS C",
        ],
    );
    for r in results(256) {
        t.row(&[
            r.benchmark.to_string(),
            r.dsl_auto.to_string(),
            r.dsl_manual.to_string(),
            r.hls_c.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsl_is_shorter_than_hls_c() {
        for r in results(64) {
            // Our C emitter is compact (the paper's Vitis-ready C carries
            // more boilerplate), so the honest invariant is strictly
            // fewer DSL statements, with the gap widening on multi-loop
            // benchmarks.
            assert!(
                r.dsl_auto < r.hls_c,
                "{}: DSL {} vs C {}",
                r.benchmark,
                r.dsl_auto,
                r.hls_c
            );
            if ["2MM", "3MM"].contains(&r.benchmark) {
                assert!(
                    r.dsl_auto * 2 <= r.hls_c,
                    "{}: {} vs {}",
                    r.benchmark,
                    r.dsl_auto,
                    r.hls_c
                );
            }
            assert!(
                r.dsl_auto <= r.dsl_manual,
                "autoDSE never longer than manual"
            );
        }
    }
}
