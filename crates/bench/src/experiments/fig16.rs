//! Fig. 16 — the Jacobi-1d DSL walkthrough: the kernel description, the
//! expert's manual schedule (skew + pipeline + unroll + partition), and
//! the `auto_DSE()` design — the paper's point being that autoDSE
//! generates the same design as the expert schedule.

use crate::experiments::common::{fmt_speedup, paper_options, Table};
use crate::kernels;
use pom::{auto_dse, baselines, compile, Function, PartitionStyle};

/// The expert schedule of Fig. 16③: skew the space loop by the time
/// loop, strip the (now parallel) skewed loop, pipeline, unroll, and
/// partition the state array.
pub fn manual_schedule(t: usize, n: usize) -> Function {
    let mut f = kernels::jacobi1d(t, n);
    f.skew("s", "t", "i", 1, "t2", "i2");
    f.split("s", "i2", 8, "i2_0", "i2_1");
    f.pipeline("s", "i2_0", 1);
    f.unroll("s", "i2_1", 8);
    f.partition("B", &[1, 8], PartitionStyle::Cyclic);
    f
}

/// Comparison result.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Manual design speedup.
    pub manual_speedup: f64,
    /// autoDSE design speedup.
    pub auto_speedup: f64,
    /// Whether autoDSE applied a skew (the restructuring of ③).
    pub auto_used_skew: bool,
}

/// Runs the comparison.
pub fn results(t: usize, n: usize) -> Comparison {
    let opts = paper_options();
    let f = kernels::jacobi1d(t, n);
    let base = baselines::baseline_compiled(&f, &opts);
    let manual = compile(&manual_schedule(t, n), &opts).expect("manual schedule compiles");
    let auto = auto_dse(&f, &opts).expect("DSE compiles");
    Comparison {
        manual_speedup: manual.qor.speedup_over(&base.qor),
        auto_speedup: auto.compiled.qor.speedup_over(&base.qor),
        auto_used_skew: auto
            .function
            .schedule()
            .iter()
            .any(|p| matches!(p, pom::Primitive::Skew { .. })),
    }
}

/// Renders the Fig. 16 reproduction, including the DSL listing.
pub fn run() -> String {
    let t_steps = 128;
    let n = 4096;
    let f = kernels::jacobi1d(t_steps, n);
    let c = results(t_steps, n);
    let mut out = String::new();
    out.push_str("== Fig. 16 — Jacobi-1d described with POM DSL ==\n");
    out.push_str(&f.to_string());
    out.push_str("\n\nManual schedule (③):\n");
    for p in manual_schedule(t_steps, n).schedule() {
        out.push_str(&format!("  {p};\n"));
    }
    let mut t = Table::new(
        "Fig. 16 — manual schedule vs autoDSE (④)",
        &["Design", "Speedup", "Uses skew"],
    );
    t.row(&[
        "Manual (③)".into(),
        fmt_speedup(c.manual_speedup),
        "yes".into(),
    ]);
    t.row(&[
        "autoDSE (④)".into(),
        fmt_speedup(c.auto_speedup),
        if c.auto_used_skew { "yes" } else { "no" }.into(),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_dse_matches_manual_design() {
        let c = results(16, 256);
        // Paper: "the autoDSE primitive in ④ is able to generate the same
        // design as ③" — same ballpark performance without hand-tuning.
        // (In our cost model the unskewed inner-parallel design is already
        // equivalent for Jacobi-1d, so autoDSE may legitimately skip the
        // skew; the Seidel tests cover the mandatory-skew case.)
        let ratio = c.auto_speedup / c.manual_speedup;
        assert!(
            ratio >= 0.9,
            "autoDSE {} must match manual {}",
            c.auto_speedup,
            c.manual_speedup
        );
    }

    #[test]
    fn manual_schedule_preserves_semantics() {
        use pom::{execute_func, reference_execute, MemoryState};
        let f = kernels::jacobi1d(6, 24);
        let m = manual_schedule(6, 24);
        let opts = paper_options();
        let compiled = compile(&m, &opts).expect("manual schedule compiles");
        let mut r1 = MemoryState::for_function_seeded(&f, 9);
        reference_execute(&f, &mut r1);
        let mut r2 = MemoryState::for_function_seeded(&f, 9);
        execute_func(&compiled.affine, &mut r2);
        assert_eq!(r1.array("B").unwrap().data(), r2.array("B").unwrap().data());
    }
}
