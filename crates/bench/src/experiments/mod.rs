//! Experiment harnesses, one module per paper exhibit (see DESIGN.md §4).
//!
//! | Module | Paper exhibit |
//! |---|---|
//! | [`fig02`] | Fig. 2 — motivating example (BICG) |
//! | [`tab03`] | Table III — typical HLS benchmarks |
//! | [`fig11`] | Fig. 11 — 2MM under resource constraints |
//! | [`tab04`] | Table IV — manual vs DSE on BICG |
//! | [`fig12`] | Fig. 12 — scalability over problem sizes |
//! | [`tab05`] | Table V — image + DNN applications |
//! | [`fig13`] | Fig. 13 — DNN accumulated resources |
//! | [`tab06`] | Table VI — image critical loops |
//! | [`tab07`] | Table VII — complicated access patterns |
//! | [`fig14`] | Fig. 14 — scheduling-primitive ablation |
//! | [`fig15`] | Fig. 15 — lines-of-code comparison |
//! | [`fig16`] | Fig. 16 — Jacobi-1d DSL walkthrough |
//! | [`ext_dtypes`] | Extension — data-type customization (Table I capability) |
//! | [`bench_dse`] | DSE perf harness — serial seed vs parallel + memoized |
//! | [`bench_poly`] | Polyhedral kernel microbench — dense vs reference |
//! | [`bench_live`] | Liveness audit — static windows vs simulated high-water |
//! | [`bench_serve`] | Serving benchmark — cold vs warm store vs daemon |
//! | [`bench_sim`] | Simulation audit — measured vs estimated cycles |
//! | [`bench_dataflow`] | Dataflow audit — pipelined vs sequential winners |
//! | [`verify_suite`] | Certificate sweep — `pomc verify-all` over the suite |

pub mod bench_dataflow;
pub mod bench_dse;
pub mod bench_live;
pub mod bench_poly;
pub mod bench_serve;
pub mod bench_sim;
pub mod common;
pub mod ext_dtypes;
pub mod fig02;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod tab03;
pub mod tab04;
pub mod tab05;
pub mod tab06;
pub mod tab07;
pub mod verify_suite;
