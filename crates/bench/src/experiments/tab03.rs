//! Table III — evaluation on typical HLS benchmarks (GEMM, BICG,
//! GESUMMV, 2MM, 3MM at problem size 4096): speedup, resources, power,
//! achieved II, tile sizes, parallelism, and DSE time for POLSCA,
//! ScaleHLS, and POM.

use crate::experiments::common::{
    fmt_speedup, fmt_util, paper_options, run_polsca, run_pom, run_scalehls, FrameworkRow, Table,
};
use crate::kernels;
use pom::{DeviceSpec, Function};

/// Problem size of Table III.
pub const SIZE: usize = 4096;

/// The five typical benchmarks.
pub fn benchmarks(size: usize) -> Vec<(&'static str, Function)> {
    vec![
        ("GEMM", kernels::gemm(size)),
        ("BICG", kernels::bicg(size)),
        ("GESUMMV", kernels::gesummv(size)),
        ("2MM", kernels::mm2(size)),
        ("3MM", kernels::mm3(size)),
    ]
}

/// All rows: `(benchmark, framework_row)`.
pub fn results(size: usize) -> Vec<(&'static str, FrameworkRow)> {
    let opts = paper_options();
    let mut out = Vec::new();
    for (name, f) in benchmarks(size) {
        out.push((name, run_polsca(&f, &opts)));
        out.push((name, run_scalehls(&f, &opts, size)));
        out.push((name, run_pom(&f, &opts)));
    }
    out
}

/// Renders the Table III reproduction.
pub fn run() -> String {
    render(results(SIZE))
}

/// Renders rows computed at any size.
pub fn render(rows: Vec<(&'static str, FrameworkRow)>) -> String {
    let d = DeviceSpec::xc7z020();
    let mut t = Table::new(
        "Table III — Typical HLS benchmarks (problem size 4096)",
        &[
            "Benchmark",
            "Framework",
            "Speedup",
            "DSP (Util.%)",
            "FF (Util.%)",
            "LUT (Util.%)",
            "Power (W)",
            "Achieved II",
            "Tiles",
            "Parallelism",
            "DSE Time(s)",
        ],
    );
    for (bench, r) in &rows {
        t.row(&[
            bench.to_string(),
            r.framework.clone(),
            fmt_speedup(r.speedup),
            fmt_util(r.dsp, d.dsp),
            fmt_util(r.ff, d.ff),
            fmt_util(r.lut, d.lut),
            format!("{:.3}", r.power),
            if r.ii == 0 {
                "-".into()
            } else {
                r.ii.to_string()
            },
            r.tiles.clone(),
            if r.parallelism > 0.0 {
                format!("{:.1}", r.parallelism)
            } else {
                "-".into()
            },
            format!("{:.2}", r.time_s),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speedup_of(rows: &[(&str, FrameworkRow)], bench: &str, fw: &str) -> f64 {
        rows.iter()
            .find(|(b, r)| *b == bench && r.framework == fw)
            .map(|(_, r)| r.speedup)
            .unwrap_or_else(|| panic!("missing {bench}/{fw}"))
    }

    #[test]
    fn table_shape_holds_at_paper_size() {
        let rows: Vec<(&str, FrameworkRow)> = results(SIZE).into_iter().collect();
        // POM always beats POLSCA, by a lot.
        for b in ["GEMM", "BICG", "GESUMMV", "2MM", "3MM"] {
            let pom = speedup_of(&rows, b, "POM");
            let polsca = speedup_of(&rows, b, "POLSCA");
            assert!(pom > 5.0 * polsca, "{b}: POM {pom} vs POLSCA {polsca}");
        }
        // Paper: POM >> ScaleHLS on BICG and 2MM; near-parity on GEMM.
        assert!(speedup_of(&rows, "BICG", "POM") > 2.0 * speedup_of(&rows, "BICG", "ScaleHLS"));
        assert!(speedup_of(&rows, "2MM", "POM") > 1.5 * speedup_of(&rows, "2MM", "ScaleHLS"));
        let gemm_ratio = speedup_of(&rows, "GEMM", "POM") / speedup_of(&rows, "GEMM", "ScaleHLS");
        assert!((0.5..=4.0).contains(&gemm_ratio), "GEMM ratio {gemm_ratio}");
    }

    #[test]
    fn pom_resources_fit_device() {
        for (b, r) in results(256) {
            if r.framework == "POM" {
                assert!(r.dsp <= 220, "{b} uses {} DSPs", r.dsp);
            }
        }
    }

    #[test]
    fn render_mentions_all_benchmarks() {
        let s = render(results(128));
        for b in ["GEMM", "BICG", "GESUMMV", "2MM", "3MM"] {
            assert!(s.contains(b));
        }
    }
}
