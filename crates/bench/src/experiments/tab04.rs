//! Table IV — comparison with manual optimization on BICG: the
//! unoptimized design, a hand-scheduled design (expert primitives in the
//! POM DSL), and the auto-DSE design.

use crate::experiments::common::{fmt_speedup, fmt_util, paper_options, Table};
use crate::kernels;
use pom::{auto_dse, baselines, compile, DeviceSpec, Function, PartitionStyle};

/// One row of Table IV.
#[derive(Clone, Debug)]
pub struct Row {
    /// Design name.
    pub design: &'static str,
    /// Latency in cycles.
    pub cycles: u64,
    /// Speedup over unoptimized.
    pub speedup: f64,
    /// DSP / FF / LUT.
    pub dsp: u64,
    /// FF usage.
    pub ff: u64,
    /// LUT usage.
    pub lut: u64,
}

/// The expert's manual schedule: interchange the q-statement, fuse, strip
/// the parallel loop by 8, pipeline and unroll, partition the vectors.
/// (A competent design — the paper's point is that the DSE matches or
/// beats hand-tuning while using fewer resources.)
pub fn manual_schedule(size: usize) -> Function {
    let mut f = kernels::bicg(size);
    f.interchange("S2", "i", "j");
    f.after("S2", "S1", "j");
    for stmt in ["S1", "S2"] {
        f.split(stmt, "j", 8, "j0", "j1");
    }
    f.pipeline("S1", "j0", 1);
    f.unroll("S1", "j1", 8);
    f.partition("s", &[8], PartitionStyle::Cyclic);
    f.partition("q", &[8], PartitionStyle::Cyclic);
    f.partition("r", &[8], PartitionStyle::Cyclic);
    f.partition("p", &[8], PartitionStyle::Cyclic);
    f.partition("A", &[1, 8], PartitionStyle::Cyclic);
    f
}

/// Runs the comparison at the given size.
pub fn results(size: usize) -> Vec<Row> {
    let opts = paper_options();
    let f = kernels::bicg(size);
    let base = baselines::baseline_compiled(&f, &opts);
    let manual = compile(&manual_schedule(size), &opts).expect("manual schedule compiles");
    let dse = auto_dse(&f, &opts).expect("DSE compiles");
    let row = |design, q: &pom::QoR| Row {
        design,
        cycles: q.latency,
        speedup: base.qor.latency as f64 / q.latency.max(1) as f64,
        dsp: q.resources.dsp,
        ff: q.resources.ff,
        lut: q.resources.lut,
    };
    vec![
        row("Unoptimized", &base.qor),
        row("Manual opt.", &manual.qor),
        row("DSE opt.", &dse.compiled.qor),
    ]
}

/// Renders the Table IV reproduction.
pub fn run() -> String {
    let d = DeviceSpec::xc7z020();
    let mut t = Table::new(
        "Table IV — Manual vs automatic optimization on BICG (size 4096)",
        &[
            "Design",
            "Cycles",
            "Speedup",
            "DSP(Util.%)",
            "FF(Util.%)",
            "LUT(Util.%)",
        ],
    );
    for r in results(4096) {
        t.row(&[
            r.design.to_string(),
            r.cycles.to_string(),
            fmt_speedup(r.speedup),
            fmt_util(r.dsp, d.dsp),
            fmt_util(r.ff, d.ff),
            fmt_util(r.lut, d.lut),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dse_beats_or_matches_manual() {
        let rows = results(256);
        let manual = rows.iter().find(|r| r.design == "Manual opt.").unwrap();
        let dse = rows.iter().find(|r| r.design == "DSE opt.").unwrap();
        // Paper: DSE achieves 1.39x over manual.
        assert!(
            dse.speedup >= manual.speedup,
            "DSE {} must match/beat manual {}",
            dse.speedup,
            manual.speedup
        );
        assert!(manual.speedup > 10.0, "manual design is competent");
    }

    #[test]
    fn manual_schedule_is_semantically_correct() {
        use pom::{execute_func, reference_execute, MemoryState};
        let f = kernels::bicg(12);
        let m = manual_schedule(12);
        let opts = paper_options();
        let compiled = compile(&m, &opts).expect("manual schedule compiles");
        let mut r1 = MemoryState::for_function_seeded(&f, 5);
        reference_execute(&f, &mut r1);
        let mut r2 = MemoryState::for_function_seeded(&f, 5);
        execute_func(&compiled.affine, &mut r2);
        for arr in ["s", "q"] {
            assert_eq!(r1.array(arr).unwrap().data(), r2.array(arr).unwrap().data());
        }
    }
}
