//! Table V — image processing and DNN applications: speedup and resource
//! usage for ScaleHLS and POM, with the P/S ratio columns.

use crate::experiments::common::{
    fmt_speedup, fmt_util, paper_options, run_pom, run_scalehls, FrameworkRow, Table,
};
use crate::kernels;
use pom::{DeviceSpec, Function};

/// The application set: `(domain, name, function, reported size)`.
pub fn applications(
    image_size: usize,
    dnn_scale: usize,
) -> Vec<(&'static str, &'static str, Function, usize)> {
    vec![
        (
            "Image",
            "EdgeDetect",
            kernels::edge_detect(image_size),
            image_size,
        ),
        (
            "Image",
            "Gaussian",
            kernels::gaussian(image_size),
            image_size,
        ),
        ("Image", "Blur", kernels::blur(image_size), image_size),
        ("DNN", "VGG-16", kernels::vgg16(dnn_scale), 512),
        ("DNN", "ResNet-18", kernels::resnet18(dnn_scale), 512),
    ]
}

/// Rows: `(domain, app, scalehls_row, pom_row)`.
pub fn results(
    image_size: usize,
    dnn_scale: usize,
) -> Vec<(&'static str, &'static str, FrameworkRow, FrameworkRow)> {
    let opts = paper_options();
    let mut out = Vec::new();
    for (domain, name, f, size) in applications(image_size, dnn_scale) {
        let sh = run_scalehls(&f, &opts, size);
        let pom = run_pom(&f, &opts);
        out.push((domain, name, sh, pom));
    }
    out
}

/// Renders the Table V reproduction.
pub fn run() -> String {
    let d = DeviceSpec::xc7z020();
    let mut t = Table::new(
        "Table V — Image processing and DNN applications",
        &[
            "Domain",
            "Application",
            "Speedup (ScaleHLS)",
            "Speedup (POM)",
            "P/S",
            "DSP S",
            "DSP P",
            "FF S",
            "FF P",
            "LUT S",
            "LUT P",
        ],
    );
    for (domain, name, sh, pom) in results(4096, 1) {
        t.row(&[
            domain.to_string(),
            name.to_string(),
            fmt_speedup(sh.speedup),
            fmt_speedup(pom.speedup),
            format!("{:.1}", pom.speedup / sh.speedup.max(1e-9)),
            fmt_util(sh.dsp, d.dsp),
            fmt_util(pom.dsp, d.dsp),
            fmt_util(sh.ff, d.ff),
            fmt_util(pom.ff, d.ff),
            fmt_util(sh.lut, d.lut),
            fmt_util(pom.lut, d.lut),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_wins_on_image_apps() {
        for (domain, name, sh, pom) in results(256, 1) {
            if domain == "Image" {
                assert!(
                    pom.speedup > sh.speedup,
                    "{name}: POM {} vs ScaleHLS {}",
                    pom.speedup,
                    sh.speedup
                );
            }
        }
    }

    #[test]
    fn pom_dnn_fits_device_while_dataflow_overflows_or_underperforms() {
        // Paper: ScaleHLS's ResNet-18 design exceeds the device; POM's
        // fits. In our harness ScaleHLS's greedy respects the cap, so the
        // observable is POM winning on latency on VGG while staying within
        // resources.
        for (domain, name, sh, pom) in results(128, 1) {
            if domain == "DNN" {
                assert!(pom.dsp <= 220, "{name} POM DSPs {}", pom.dsp);
                assert!(pom.lut <= 53_200, "{name} POM LUTs {}", pom.lut);
                assert!(pom.ff <= 106_400, "{name} POM FFs {}", pom.ff);
                if name == "VGG-16" {
                    assert!(
                        pom.speedup > sh.speedup,
                        "VGG-16: POM {} vs ScaleHLS {}",
                        pom.speedup,
                        sh.speedup
                    );
                }
            }
        }
    }
}
