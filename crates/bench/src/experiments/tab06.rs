//! Table VI — optimization of the critical loops of the image apps:
//! achieved tile sizes, II, and parallelism, ScaleHLS vs POM.

use crate::experiments::common::{paper_options, Table};
use crate::kernels;
use pom::{auto_dse, baselines, Function};

/// One row.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Framework name.
    pub framework: &'static str,
    /// The critical (bottleneck) nest's tile vector.
    pub tiles: Vec<i64>,
    /// Achieved II of that nest's pipelined loop.
    pub ii: u64,
    /// Parallelism = tile product / II.
    pub parallelism: f64,
}

/// Runs the comparison at the given image size.
pub fn results(size: usize) -> Vec<Row> {
    let opts = paper_options();
    let apps: Vec<(&str, Function)> = vec![
        ("EdgeDetect", kernels::edge_detect(size)),
        ("Gaussian", kernels::gaussian(size)),
        ("Blur", kernels::blur(size)),
    ];
    let mut out = Vec::new();
    for (name, f) in apps {
        let pom = auto_dse(&f, &opts).expect("DSE compiles");
        let pom_tiles = pom
            .groups
            .iter()
            .max_by_key(|g| g.parallelism())
            .map(|g| g.tiles.clone())
            .unwrap_or_default();
        let pom_ii = pom.achieved_iis().into_iter().max().unwrap_or(1);
        out.push(Row {
            benchmark: name,
            framework: "POM",
            parallelism: pom_tiles.iter().product::<i64>() as f64 / pom_ii.max(1) as f64,
            tiles: pom_tiles,
            ii: pom_ii,
        });
        let sh = baselines::scalehls_like(&f, &opts, size);
        let sh_tiles = sh
            .groups
            .iter()
            .max_by_key(|g| g.parallelism())
            .map(|g| g.tiles.clone())
            .unwrap_or_default();
        let sh_ii = sh.achieved_ii().max(1);
        out.push(Row {
            benchmark: name,
            framework: "ScaleHLS",
            parallelism: sh_tiles.iter().product::<i64>() as f64 / sh_ii as f64,
            tiles: sh_tiles,
            ii: sh_ii,
        });
    }
    out
}

/// Renders the Table VI reproduction.
pub fn run() -> String {
    let mut t = Table::new(
        "Table VI — Critical-loop optimization on image apps",
        &[
            "Benchmark",
            "Framework",
            "Tile sizes",
            "Achieved II",
            "Parallelism",
        ],
    );
    for r in results(4096) {
        let tiles: Vec<String> = r.tiles.iter().map(|x| x.to_string()).collect();
        t.row(&[
            r.benchmark.to_string(),
            r.framework.to_string(),
            format!("[{}]", tiles.join(", ")),
            r.ii.to_string(),
            format!("{:.2}", r.parallelism),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_parallelism_dominates() {
        let rows = results(256);
        for b in ["EdgeDetect", "Gaussian", "Blur"] {
            let pom = rows
                .iter()
                .find(|r| r.benchmark == b && r.framework == "POM")
                .unwrap();
            let sh = rows
                .iter()
                .find(|r| r.benchmark == b && r.framework == "ScaleHLS")
                .unwrap();
            assert!(
                pom.parallelism >= sh.parallelism,
                "{b}: POM {} vs ScaleHLS {}",
                pom.parallelism,
                sh.parallelism
            );
            assert!(
                pom.ii <= sh.ii,
                "{b}: POM II {} vs ScaleHLS {}",
                pom.ii,
                sh.ii
            );
        }
    }
}
