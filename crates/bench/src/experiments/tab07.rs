//! Table VII — evaluation on complicated data access patterns:
//! Jacobi-1d, Jacobi-2d, Heat-1d, and Seidel. POM's loop skewing unlocks
//! these stencils; ScaleHLS/POLSCA cannot improve them much.

use crate::experiments::common::{fmt_speedup, fmt_util, paper_options, Table};
use crate::kernels;
use pom::{auto_dse, baselines, DeviceSpec, Function};

/// One row of Table VII.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark.
    pub benchmark: &'static str,
    /// POM speedup over the unoptimized baseline.
    pub speedup: f64,
    /// ScaleHLS speedup (for the shape check; the paper reports prose).
    pub scalehls_speedup: f64,
    /// Resources.
    pub dsp: u64,
    /// FF.
    pub ff: u64,
    /// LUT.
    pub lut: u64,
    /// Whether POM's schedule used skewing.
    pub used_skew: bool,
}

/// The stencil set at a given scale (time steps, spatial size).
pub fn stencils(t: usize, n: usize) -> Vec<(&'static str, Function)> {
    vec![
        ("Jacobi-1d", kernels::jacobi1d(t, n)),
        ("Jacobi-2d", kernels::jacobi2d(t, n / 8)),
        ("Heat-1d", kernels::heat1d(t, n)),
        ("Seidel", kernels::seidel(n / 4)),
    ]
}

/// Runs the stencil evaluation.
pub fn results(t: usize, n: usize) -> Vec<Row> {
    let opts = paper_options();
    let mut out = Vec::new();
    for (name, f) in stencils(t, n) {
        let base = baselines::baseline_compiled(&f, &opts);
        let pom = auto_dse(&f, &opts).expect("DSE compiles");
        let sh = baselines::scalehls_like(&f, &opts, n);
        let used_skew = pom
            .function
            .schedule()
            .iter()
            .any(|p| matches!(p, pom::Primitive::Skew { .. }));
        out.push(Row {
            benchmark: name,
            speedup: pom.compiled.qor.speedup_over(&base.qor),
            scalehls_speedup: sh.compiled.qor.speedup_over(&base.qor),
            dsp: pom.compiled.qor.resources.dsp,
            ff: pom.compiled.qor.resources.ff,
            lut: pom.compiled.qor.resources.lut,
            used_skew,
        });
    }
    out
}

/// Renders the Table VII reproduction.
pub fn run() -> String {
    let d = DeviceSpec::xc7z020();
    let mut t = Table::new(
        "Table VII — Complicated code patterns (POM; ScaleHLS for reference)",
        &[
            "Benchmark",
            "Speedup",
            "ScaleHLS speedup",
            "DSP(Util.%)",
            "FF(Util.%)",
            "LUT(Util.%)",
            "Skew used",
        ],
    );
    for r in results(128, 4096) {
        t.row(&[
            r.benchmark.to_string(),
            fmt_speedup(r.speedup),
            fmt_speedup(r.scalehls_speedup),
            fmt_util(r.dsp, d.dsp),
            fmt_util(r.ff, d.ff),
            fmt_util(r.lut, d.lut),
            if r.used_skew {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pom_improves_all_stencils() {
        for r in results(16, 256) {
            assert!(
                r.speedup > 5.0,
                "{}: POM speedup {} too low",
                r.benchmark,
                r.speedup
            );
            // On stencils whose dependences are carried by the time loop
            // alone (Jacobi/Heat), a dependence-unaware tiler can find an
            // equivalent design; POM must never be meaningfully worse and
            // must dominate when skewing is required (see the Seidel
            // test).
            assert!(
                r.speedup >= 0.9 * r.scalehls_speedup,
                "{}: POM {} vs ScaleHLS {}",
                r.benchmark,
                r.speedup,
                r.scalehls_speedup
            );
        }
    }

    #[test]
    fn skewing_is_used_where_needed() {
        let rows = results(16, 256);
        // Jacobi-style time stencils and Seidel all need restructuring;
        // at minimum Seidel (carried in both dims) must skew — and it must
        // clearly beat the skew-less ScaleHLS there.
        let seidel = rows.iter().find(|r| r.benchmark == "Seidel").unwrap();
        assert!(seidel.used_skew, "Seidel requires loop skewing");
        assert!(
            seidel.speedup > 1.5 * seidel.scalehls_speedup,
            "Seidel: POM {} vs ScaleHLS {}",
            seidel.speedup,
            seidel.scalehls_speedup
        );
    }

    #[test]
    fn resource_use_is_moderate() {
        // Paper: stencils show comparatively low utilization because the
        // carried dependences bound the profitable parallelism.
        for r in results(16, 256) {
            assert!(r.dsp <= 220, "{}: {}", r.benchmark, r.dsp);
        }
    }
}
