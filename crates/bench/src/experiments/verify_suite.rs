//! Certificate sweep over the DSE candidate corpus (`pomc verify-all`).
//!
//! Replays the Table III + Table V suite through `auto_dse` with winner
//! validation *and* sampled candidate validation enabled, then replays
//! each winning schedule once more through `pom-verify` to record the
//! per-obligation certificate chain. The result is a machine-readable
//! summary (`VERIFY_certificates.json`) consumed by the
//! `verify-all-kernels` CI job, which fails when any kernel's winning
//! schedule is rejected.

use crate::experiments::bench_dse::suite;
use pom::verify;
use pom::{auto_dse_with, CompileOptions, DseConfig};
use std::fmt::Write;

/// One kernel's certificate summary.
#[derive(Clone, Debug)]
pub struct VerifyRow {
    /// Kernel name (suite order).
    pub kernel: &'static str,
    /// Primitives the winning schedule carries.
    pub primitives: usize,
    /// Obligations discharged on the winning schedule.
    pub obligations: usize,
    /// Certificates checked across the search (winner + sampled).
    pub certificates_checked: usize,
    /// Certificates that passed.
    pub certificates_passed: usize,
    /// Candidate schedules picked up by sampled validation.
    pub certificates_sampled: usize,
    /// Fixpoint iterations of the value-range analysis on the winner.
    pub dataflow_iterations: usize,
    /// Rendered rejection report, when the winner failed validation.
    pub rejection: Option<String>,
}

/// The whole sweep.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Per-kernel rows, in suite order.
    pub rows: Vec<VerifyRow>,
}

impl VerifyReport {
    /// True when every kernel's winning schedule carries a passing
    /// certificate chain.
    pub fn all_passed(&self) -> bool {
        self.rows.iter().all(|r| r.rejection.is_none())
    }
}

/// Runs the sweep over the full Table III + Table V suite.
/// `sample_every` enables sampled candidate validation inside the
/// stage-2 search (0 disables it; the winner is always validated).
pub fn run_suite(size: usize, sample_every: usize) -> VerifyReport {
    run_on(suite(size), sample_every)
}

/// [`run_suite`] over an explicit kernel list.
pub fn run_on(kernels: Vec<(&'static str, pom::Function)>, sample_every: usize) -> VerifyReport {
    let opts = CompileOptions::default();
    let cfg = DseConfig {
        validate_winner: true,
        validate_sample_every: sample_every,
        ..DseConfig::default()
    };
    let mut rows = Vec::new();
    for (name, f) in kernels {
        let row = match auto_dse_with(&f, &opts, &cfg) {
            Ok(r) => {
                // Replay the winner once more to count its obligations.
                let report = verify::validate(&r.function);
                VerifyRow {
                    kernel: name,
                    primitives: r.function.schedule().len(),
                    obligations: report
                        .certificates
                        .iter()
                        .map(|c| c.obligations.len())
                        .sum(),
                    certificates_checked: r.stats.certificates_checked,
                    certificates_passed: r.stats.certificates_passed,
                    certificates_sampled: r.stats.certificates_sampled,
                    dataflow_iterations: r.stats.dataflow_iterations,
                    rejection: None,
                }
            }
            Err(pom::CompileError::Rejected(report)) => VerifyRow {
                kernel: name,
                primitives: 0,
                obligations: 0,
                certificates_checked: 0,
                certificates_passed: 0,
                certificates_sampled: 0,
                dataflow_iterations: 0,
                rejection: Some(report),
            },
            Err(e) => VerifyRow {
                kernel: name,
                primitives: 0,
                obligations: 0,
                certificates_checked: 0,
                certificates_passed: 0,
                certificates_sampled: 0,
                dataflow_iterations: 0,
                rejection: Some(format!("compile error: {e}")),
            },
        };
        rows.push(row);
    }
    VerifyReport { rows }
}

/// Human-readable table.
pub fn render(r: &VerifyReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<12} {:>5} {:>6} {:>8} {:>7} {:>8} {:>6}  status",
        "kernel", "prims", "oblig", "checked", "passed", "sampled", "iters"
    );
    for row in &r.rows {
        let status = if row.rejection.is_none() {
            "ok"
        } else {
            "REJECTED"
        };
        let _ = writeln!(
            s,
            "{:<12} {:>5} {:>6} {:>8} {:>7} {:>8} {:>6}  {status}",
            row.kernel,
            row.primitives,
            row.obligations,
            row.certificates_checked,
            row.certificates_passed,
            row.certificates_sampled,
            row.dataflow_iterations,
        );
    }
    for row in &r.rows {
        if let Some(rej) = &row.rejection {
            let _ = writeln!(s, "\n--- {} ---\n{rej}", row.kernel);
        }
    }
    s
}

/// Serializes the sweep as `VERIFY_certificates.json` (hand-rolled, no
/// external deps — same convention as `bench_dse::to_json`).
pub fn to_json(r: &VerifyReport) -> String {
    let mut s = String::from("{\n  \"kernels\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"primitives\": {}, \"obligations\": {}, \
             \"certificates_checked\": {}, \"certificates_passed\": {}, \
             \"certificates_sampled\": {}, \"dataflow_iterations\": {}, \"passed\": {}}}",
            row.kernel,
            row.primitives,
            row.obligations,
            row.certificates_checked,
            row.certificates_passed,
            row.certificates_sampled,
            row.dataflow_iterations,
            row.rejection.is_none(),
        );
        s.push_str(if i + 1 < r.rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(s, "  ],\n  \"all_passed\": {}\n}}\n", r.all_passed());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_passes_and_serializes() {
        // A two-kernel subset keeps this fast in debug builds; the full
        // suite runs in CI via `pomc verify-all` (release profile).
        let r = run_on(
            vec![
                ("gemm", crate::kernels::gemm(8)),
                ("gesummv", crate::kernels::gesummv(8)),
            ],
            2,
        );
        assert!(r.all_passed(), "{}", render(&r));
        assert!(r.rows.iter().all(|k| k.certificates_checked > 0));
        assert!(r.rows.iter().any(|k| k.certificates_sampled > 0));
        let json = to_json(&r);
        assert!(json.contains("\"all_passed\": true"));
        assert!(json.contains("\"kernel\": \"gemm\""));
    }
}
