//! DNN workloads (Table V / Fig. 13): VGG-16 and ResNet-18 as chains of
//! convolution computes.
//!
//! The paper evaluates the *critical loops* — nested loops deeper than
//! four levels — of each network: 13 convolution loops for VGG-16 and 20
//! critical loops (17 convolutions + 3 residual additions) for ResNet-18.
//! We instantiate each critical loop as one 6-level convolution compute
//! `out[co][y][x] += w[co][ci][kh][kw] * in[ci][y+kh][x+kw]` chained
//! through feature-map arrays, with channel/spatial shapes scaled down by
//! a constant factor so the whole network stays tractable for repeated
//! DSE estimation (documented substitution — the scheduling decisions
//! depend on the loop *structure*, not on the absolute extents).

use pom_dsl::{DataType, Function, Placeholder};

/// One convolution layer: returns the output feature-map placeholder.
fn conv_layer(
    f: &mut Function,
    name: &str,
    input: &Placeholder,
    ci: usize,
    co: usize,
    size: usize,
) -> Placeholder {
    let ksize = 3usize;
    let out = f.placeholder(&format!("{name}_out"), &[co, size, size], DataType::F32);
    let w = f.placeholder(&format!("{name}_w"), &[co, ci, ksize, ksize], DataType::F32);
    let vco = f.var(&format!("{name}_co"), 0, co as i64);
    let vy = f.var(&format!("{name}_y"), 0, size as i64);
    let vx = f.var(&format!("{name}_x"), 0, size as i64);
    let vci = f.var(&format!("{name}_ci"), 0, ci as i64);
    let vkh = f.var(&format!("{name}_kh"), 0, ksize as i64);
    let vkw = f.var(&format!("{name}_kw"), 0, ksize as i64);
    let in_y = vy.expr() + vkh.expr();
    let in_x = vx.expr() + vkw.expr();
    let body = out.at(&[&vco.expr(), &vy.expr(), &vx.expr()])
        + w.at(&[vco.expr(), vci.expr(), vkh.expr(), vkw.expr()])
            * input.at(&[vci.expr(), in_y, in_x]);
    f.compute(
        name,
        &[
            vco.clone(),
            vy.clone(),
            vx.clone(),
            vci.clone(),
            vkh.clone(),
            vkw.clone(),
        ],
        body,
        out.access(&[&vco.expr(), &vy.expr(), &vx.expr()]),
    );
    out
}

/// A residual addition: `out = a + b`, element-wise over a feature map.
fn residual_add(
    f: &mut Function,
    name: &str,
    a: &Placeholder,
    b: &Placeholder,
    c_: usize,
    size: usize,
) -> Placeholder {
    let out = f.placeholder(&format!("{name}_out"), &[c_, size, size], DataType::F32);
    let vc = f.var(&format!("{name}_c"), 0, c_ as i64);
    let vy = f.var(&format!("{name}_y"), 0, size as i64);
    let vx = f.var(&format!("{name}_x"), 0, size as i64);
    let idx = [vc.expr(), vy.expr(), vx.expr()];
    f.compute(
        name,
        &[vc.clone(), vy.clone(), vx.clone()],
        a.at(&idx) + b.at(&idx),
        out.access(&idx),
    );
    out
}

/// A padded input feature map for a convolution of the given spatial size.
fn feature_input(f: &mut Function, name: &str, c: usize, size: usize) -> Placeholder {
    f.placeholder(name, &[c, size + 2, size + 2], DataType::F32)
}

/// The `(channels_out, spatial)` plan of VGG-16's 13 convolution layers,
/// divided by 16 — the single source [`vgg16`] and
/// [`vgg16_layer_shapes`] both derive from.
const VGG16_PLAN: [(usize, usize); 13] = [
    (4, 16),
    (4, 16),
    (8, 8),
    (8, 8),
    (16, 4),
    (16, 4),
    (16, 4),
    (32, 2),
    (32, 2),
    (32, 2),
    (32, 2),
    (32, 2),
    (32, 2),
];

/// VGG-16: the 13 convolution critical loops, channels scaled by `scale`
/// (1 = a tiny instance; the paper's channel plan divided by 16 at
/// `scale = 1`).
pub fn vgg16(scale: usize) -> Function {
    let mut f = Function::new("vgg16");
    let shapes = vgg16_layer_shapes(scale);
    let input = feature_input(&mut f, "input", shapes[0].0, shapes[0].2);
    let mut cur = input;
    for (l, &(ci, co, size)) in shapes.iter().enumerate() {
        // Note: pooling between stages is modelled by the shrinking
        // spatial size; the conv input is re-padded implicitly by shape.
        let needs_repad = cur.shape()[1] != size + 2;
        let inp = if needs_repad {
            let repad = f.placeholder(
                &format!("pool{l}"),
                &[cur.shape()[0], size + 2, size + 2],
                DataType::F32,
            );
            // The 2x strided read below must stay inside the source
            // feature map, so the copy loop covers min(dst, src/2) rows;
            // the remaining padding rows are never read strided.
            let ny = (size + 2).min(cur.shape()[1] / 2);
            let nx = (size + 2).min(cur.shape()[2] / 2);
            let vc = f.var(&format!("pl{l}_c"), 0, cur.shape()[0] as i64);
            let vy = f.var(&format!("pl{l}_y"), 0, ny as i64);
            let vx = f.var(&format!("pl{l}_x"), 0, nx as i64);
            // 2x2 subsampling read (max-pool approximated by strided copy:
            // same loop structure and data movement, cheaper expression).
            let sy = vy.expr() * 2;
            let sx = vx.expr() * 2;
            f.compute(
                &format!("pool{l}_c"),
                &[vc.clone(), vy.clone(), vx.clone()],
                cur.at(&[vc.expr(), sy, sx]),
                repad.access(&[vc.expr(), vy.expr(), vx.expr()]),
            );
            repad
        } else {
            cur
        };
        cur = conv_layer(&mut f, &format!("conv{l}"), &inp, ci, co, size);
    }
    f
}

/// ResNet-18: 17 convolution critical loops + 3 residual additions
/// (20 critical loops, as the paper counts), channels scaled by `scale`.
pub fn resnet18(scale: usize) -> Function {
    let mut f = Function::new("resnet18");
    let shapes = resnet18_layer_shapes(scale);
    let (ci0, c0, size0) = shapes[0];
    let input = feature_input(&mut f, "input", ci0, size0);
    // Initial conv.
    let mut cur = conv_layer(&mut f, "conv0", &input, ci0, c0, size0);
    let mut conv_idx = 1;
    let mut res_idx = 0;
    // 4 stages x 2 basic blocks x 2 convs = 16 convs; residual adds on the
    // first block of stages 2..4 (3 residual critical loops).
    for stage in 0..4 {
        for block in 0..2 {
            let (ci, co, size) = shapes[conv_idx];
            let pad_in = repad(&mut f, &cur, size, &format!("rp{conv_idx}"));
            let c1 = conv_layer(&mut f, &format!("conv{conv_idx}"), &pad_in, ci, co, size);
            conv_idx += 1;
            let pad_mid = repad(&mut f, &c1, size, &format!("rp{conv_idx}"));
            let c2 = conv_layer(&mut f, &format!("conv{conv_idx}"), &pad_mid, co, co, size);
            conv_idx += 1;
            if stage > 0 && block == 0 && res_idx < 3 {
                cur = residual_add(&mut f, &format!("res{res_idx}"), &c2, &c1, co, size);
                res_idx += 1;
            } else {
                cur = c2;
            }
        }
    }
    f
}

/// Copies a feature map into a padded buffer of the next layer's input
/// shape (boundary handling for the affine conv accesses).
fn repad(f: &mut Function, cur: &Placeholder, size: usize, name: &str) -> Placeholder {
    let c = cur.shape()[0];
    let out = f.placeholder(
        &format!("{name}_buf"),
        &[c, size + 2, size + 2],
        DataType::F32,
    );
    let vc = f.var(&format!("{name}_c"), 0, c as i64);
    let vy = f.var(&format!("{name}_y"), 0, cur.shape()[1].min(size + 2) as i64);
    let vx = f.var(&format!("{name}_x"), 0, cur.shape()[2].min(size + 2) as i64);
    let idx = [vc.expr(), vy.expr(), vx.expr()];
    f.compute(
        name,
        &[vc.clone(), vy.clone(), vx.clone()],
        cur.at(&idx),
        out.access(&idx),
    );
    out
}

/// One standalone convolution layer `conv<ci>x<co>x<size>` — the unit of
/// DNN traffic the serving layer replays. The function name is derived
/// from the shape, so two layers with equal shapes are *exact* duplicates
/// (equal plain fingerprints), while differently-shaped layers of the
/// same network still merge under the canonical fingerprint's
/// alpha-renaming only when structurally identical.
pub fn conv_layer_kernel(ci: usize, co: usize, size: usize) -> Function {
    let mut f = Function::new(format!("conv{ci}x{co}x{size}"));
    let input = feature_input(&mut f, "input", ci, size);
    let _ = conv_layer(&mut f, "conv", &input, ci, co, size);
    f
}

/// The `(ci, co, spatial)` shapes of [`vgg16`]'s convolution layers in
/// network order, for layer-stream traffic generation.
pub fn vgg16_layer_shapes(scale: usize) -> Vec<(usize, usize, usize)> {
    let mut ci = 3usize.max(scale);
    let mut shapes = Vec::with_capacity(VGG16_PLAN.len());
    for &(co_base, sz_base) in &VGG16_PLAN {
        let co = co_base * scale;
        shapes.push((ci, co, sz_base * scale));
        ci = co;
    }
    shapes
}

/// The `(ci, co, spatial)` shapes of [`resnet18`]'s convolution layers in
/// network order (initial conv + 4 stages x 2 blocks x 2 convs).
pub fn resnet18_layer_shapes(scale: usize) -> Vec<(usize, usize, usize)> {
    let c0 = 4 * scale;
    let size0 = 8 * scale;
    let mut shapes = vec![(3usize.max(scale), c0, size0)];
    let mut ci = c0;
    let mut size = size0;
    for stage in 0..4 {
        let co = c0 << stage.min(3);
        for _block in 0..2 {
            shapes.push((ci, co, size));
            shapes.push((co, co, size));
            ci = co;
        }
        if stage < 3 {
            size = (size / 2).max(2);
        }
    }
    shapes
}

/// Number of *critical loops* (nests deeper than four levels, plus the
/// residual loops the paper counts) in a function — convolutions here.
pub fn critical_loop_count(f: &Function) -> usize {
    f.computes()
        .iter()
        .filter(|c| c.iters().len() > 4 || c.name().starts_with("res"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_critical_loops() {
        let f = vgg16(1);
        assert_eq!(critical_loop_count(&f), 13);
    }

    #[test]
    fn resnet18_has_20_critical_loops() {
        let f = resnet18(1);
        // Paper: 17 convolution loops + 3 residual loops.
        let convs = f.computes().iter().filter(|c| c.iters().len() > 4).count();
        let residuals = f
            .computes()
            .iter()
            .filter(|c| c.name().starts_with("res"))
            .count();
        assert_eq!(convs, 17);
        assert_eq!(residuals, 3);
        assert_eq!(critical_loop_count(&f), 20);
    }

    #[test]
    fn conv_layers_chain_through_feature_maps() {
        let f = vgg16(1);
        let g = pom_graph::DepGraph::build(&f);
        // The layer chain forms one long path.
        let longest = g.data_paths().iter().map(Vec::len).max().unwrap();
        assert!(longest >= 13, "longest path {longest}");
    }

    #[test]
    fn layer_shapes_match_the_networks() {
        assert_eq!(vgg16_layer_shapes(1).len(), 13, "13 VGG-16 convs");
        assert_eq!(resnet18_layer_shapes(1).len(), 17, "17 ResNet-18 convs");
        // The streams are duplicate-heavy by construction: repeated
        // shapes within each network are what the serving cache feeds on.
        let shapes = vgg16_layer_shapes(1);
        let unique: std::collections::HashSet<_> = shapes.iter().collect();
        assert!(unique.len() < shapes.len(), "vgg16 repeats layer shapes");
        let f = conv_layer_kernel(4, 16, 4);
        assert_eq!(f.name(), "conv4x16x4");
        assert_eq!(critical_loop_count(&f), 1);
    }

    #[test]
    fn conv_reduction_dims_detected() {
        let f = vgg16(1);
        let c = f.find_compute("conv0").unwrap();
        // Reductions: ci, kh, kw (levels 3, 4, 5).
        assert_eq!(c.reduction_dims(), vec![3, 4, 5]);
    }
}
