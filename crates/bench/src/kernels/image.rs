//! Image-processing applications (Table V): EdgeDetect, Gaussian, Blur.
//!
//! Each is a multi-stage pipeline of 2-D convolutions with constant
//! kernels, written — as in Halide-derived DSLs — as fully unrolled
//! neighborhood sums (no reduction loops), so every loop level is
//! parallel and the contest is purely about tiling/partitioning quality.

use pom_dsl::{DataType, Expr, Function, Placeholder, Var};
use pom_poly::LinearExpr;

/// A 3×3 convolution expression around `(i, j)` with the given constant
/// kernel (row-major).
fn conv3x3(input: &Placeholder, i: &Var, j: &Var, kernel: [f64; 9]) -> Expr {
    let mut acc: Option<Expr> = None;
    for (idx, &w) in kernel.iter().enumerate() {
        if w == 0.0 {
            continue;
        }
        let di = (idx / 3) as i64 - 1;
        let dj = (idx % 3) as i64 - 1;
        let e = input.at(&[i.expr() + di, j.expr() + dj]) * w;
        acc = Some(match acc {
            Some(a) => a + e,
            None => e,
        });
    }
    acc.expect("kernel has at least one non-zero tap")
}

/// `EdgeDetect` (from Tiramisu's suite): grayscale smoothing followed by
/// a gradient-magnitude stage built from horizontal/vertical Sobel taps.
pub fn edge_detect(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("edge_detect");
    let i = f.var("i", 1, n_ - 1);
    let j = f.var("j", 1, n_ - 1);
    let input = f.placeholder("img", &[n, n], DataType::F32);
    let smooth = f.placeholder("smooth", &[n, n], DataType::F32);
    let gx = f.placeholder("gx", &[n, n], DataType::F32);
    let gy = f.placeholder("gy", &[n, n], DataType::F32);
    let out = f.placeholder("edges", &[n, n], DataType::F32);

    let box_k = [1.0 / 9.0; 9];
    f.compute(
        "smooth",
        &[i.clone(), j.clone()],
        conv3x3(&input, &i, &j, box_k),
        smooth.access(&[&i, &j]),
    );
    let sobel_x = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0];
    let sobel_y = [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0];
    f.compute(
        "gradx",
        &[i.clone(), j.clone()],
        conv3x3(&smooth, &i, &j, sobel_x),
        gx.access(&[&i, &j]),
    );
    f.compute(
        "grady",
        &[i.clone(), j.clone()],
        conv3x3(&smooth, &i, &j, sobel_y),
        gy.access(&[&i, &j]),
    );
    f.compute(
        "mag",
        &[i.clone(), j.clone()],
        gx.at(&[&i, &j]) * gx.at(&[&i, &j]) + gy.at(&[&i, &j]) * gy.at(&[&i, &j]),
        out.access(&[&i, &j]),
    );
    f
}

/// `Gaussian` (from Tiramisu's suite): a 3×3 Gaussian smoothing kernel
/// applied twice.
pub fn gaussian(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("gaussian");
    let i = f.var("i", 1, n_ - 1);
    let j = f.var("j", 1, n_ - 1);
    let input = f.placeholder("img", &[n, n], DataType::F32);
    let tmp = f.placeholder("tmp", &[n, n], DataType::F32);
    let out = f.placeholder("out", &[n, n], DataType::F32);
    let g = [
        1.0 / 16.0,
        2.0 / 16.0,
        1.0 / 16.0,
        2.0 / 16.0,
        4.0 / 16.0,
        2.0 / 16.0,
        1.0 / 16.0,
        2.0 / 16.0,
        1.0 / 16.0,
    ];
    f.compute(
        "g1",
        &[i.clone(), j.clone()],
        conv3x3(&input, &i, &j, g),
        tmp.access(&[&i, &j]),
    );
    f.compute(
        "g2",
        &[i.clone(), j.clone()],
        conv3x3(&tmp, &i, &j, g),
        out.access(&[&i, &j]),
    );
    f
}

/// `Blur` (Halide's two-stage separable box blur): horizontal then
/// vertical 1×3 averaging.
pub fn blur(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("blur");
    let i = f.var("i", 1, n_ - 1);
    let j = f.var("j", 1, n_ - 1);
    let input = f.placeholder("img", &[n, n], DataType::F32);
    let bx = f.placeholder("blurx", &[n, n], DataType::F32);
    let out = f.placeholder("blury", &[n, n], DataType::F32);
    let jm1: LinearExpr = j.expr() - 1;
    let jp1: LinearExpr = j.expr() + 1;
    let im1: LinearExpr = i.expr() - 1;
    let ip1: LinearExpr = i.expr() + 1;
    f.compute(
        "blurx",
        &[i.clone(), j.clone()],
        (input.at(&[i.expr(), jm1.clone()])
            + input.at(&[&i, &j])
            + input.at(&[i.expr(), jp1.clone()]))
            / 3.0,
        bx.access(&[&i, &j]),
    );
    f.compute(
        "blury",
        &[i.clone(), j.clone()],
        (bx.at(&[im1.clone(), j.expr()]) + bx.at(&[&i, &j]) + bx.at(&[ip1.clone(), j.expr()]))
            / 3.0,
        out.access(&[&i, &j]),
    );
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_graph::DepGraph;

    #[test]
    fn pipelines_have_expected_stage_counts() {
        assert_eq!(edge_detect(64).computes().len(), 4);
        assert_eq!(gaussian(64).computes().len(), 2);
        assert_eq!(blur(64).computes().len(), 2);
    }

    #[test]
    fn stages_are_fully_parallel() {
        for f in [edge_detect(64), gaussian(64), blur(64)] {
            let g = DepGraph::build(&f);
            for n in g.nodes() {
                assert!(
                    !n.analysis.has_carried_dependence(),
                    "{} stage {} unexpectedly carried",
                    f.name(),
                    n.name
                );
            }
        }
    }

    #[test]
    fn edge_detect_paths_run_through_gradients() {
        let g = DepGraph::build(&edge_detect(64));
        let paths: Vec<Vec<&str>> = g.data_paths().iter().map(|p| g.path_names(p)).collect();
        assert!(paths.contains(&vec!["smooth", "gradx", "mag"]));
        assert!(paths.contains(&vec!["smooth", "grady", "mag"]));
    }

    #[test]
    fn conv3x3_drops_zero_taps() {
        let f = edge_detect(64);
        let gradx = f.find_compute("gradx").unwrap();
        // Sobel X has 6 non-zero taps.
        assert_eq!(gradx.loads().len(), 6);
    }
}
