//! Benchmark kernels in the POM DSL.

pub mod dnn;
pub mod image;
pub mod polybench;

pub use dnn::{conv_layer_kernel, resnet18, resnet18_layer_shapes, vgg16, vgg16_layer_shapes};
pub use image::{blur, edge_detect, gaussian};
pub use polybench::{
    atax, bicg, doitgen, gemm, gesummv, heat1d, jacobi1d, jacobi2d, mm2, mm3, mvt, seidel,
};
