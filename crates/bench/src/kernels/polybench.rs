//! PolyBench kernels in the POM DSL — the paper's typical HLS benchmarks
//! (GEMM, BICG, GESUMMV, 2MM, 3MM) and the complicated-pattern stencils
//! (Jacobi-1d, Jacobi-2d, Heat-1d, Seidel).
//!
//! Time-iterated stencils are written with a time-expanded state array
//! (`B[t][i]` instead of PolyBench's double-buffer pair), which preserves
//! the dependence structure — the (1, ·) time-carried distances — while
//! staying a single affine compute.

use pom_dsl::{DataType, Function};
use pom_poly::LinearExpr;

/// `GEMM`: `A[i][j] += B[i][k] * C[k][j]`, written as the paper's Fig. 4
/// with the reduction loop `k` outermost.
pub fn gemm(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("gemm");
    let k = f.var("k", 0, n_);
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let b = f.placeholder("B", &[n, n], DataType::F32);
    let c = f.placeholder("C", &[n, n], DataType::F32);
    f.compute(
        "s",
        &[k.clone(), i.clone(), j.clone()],
        a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
        a.access(&[&i, &j]),
    );
    f
}

/// `BICG`: the motivating example (Fig. 2): `s[j] += r[i]*A[i][j]` and
/// `q[i] += A[i][j]*p[j]` sharing one iteration space.
pub fn bicg(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("bicg");
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let s = f.placeholder("s", &[n], DataType::F32);
    let q = f.placeholder("q", &[n], DataType::F32);
    let p = f.placeholder("p", &[n], DataType::F32);
    let r = f.placeholder("r", &[n], DataType::F32);
    f.compute(
        "S1",
        &[i.clone(), j.clone()],
        s.at(&[&j]) + r.at(&[&i]) * a.at(&[&i, &j]),
        s.access(&[&j]),
    );
    f.compute(
        "S2",
        &[i.clone(), j.clone()],
        q.at(&[&i]) + a.at(&[&i, &j]) * p.at(&[&j]),
        q.access(&[&i]),
    );
    f
}

/// `GESUMMV`: `tmp = A·x`, `y = B·x`, then `y = alpha*tmp + beta*y`.
pub fn gesummv(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("gesummv");
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let b = f.placeholder("B", &[n, n], DataType::F32);
    let x = f.placeholder("x", &[n], DataType::F32);
    let tmp = f.placeholder("tmp", &[n], DataType::F32);
    let y = f.placeholder("y", &[n], DataType::F32);
    f.compute(
        "S1",
        &[i.clone(), j.clone()],
        tmp.at(&[&i]) + a.at(&[&i, &j]) * x.at(&[&j]),
        tmp.access(&[&i]),
    );
    f.compute(
        "S2",
        &[i.clone(), j.clone()],
        y.at(&[&i]) + b.at(&[&i, &j]) * x.at(&[&j]),
        y.access(&[&i]),
    );
    f.compute(
        "S3",
        std::slice::from_ref(&i),
        1.5 * tmp.at(&[&i]) + 1.2 * y.at(&[&i]),
        y.access(&[&i]),
    );
    f
}

/// `2MM`: `tmp = A·B`, `D += tmp·C` — two chained matrix products.
pub fn mm2(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("mm2");
    let k = f.var("k", 0, n_);
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let b = f.placeholder("B", &[n, n], DataType::F32);
    let c = f.placeholder("C", &[n, n], DataType::F32);
    let tmp = f.placeholder("tmp", &[n, n], DataType::F32);
    let d = f.placeholder("D", &[n, n], DataType::F32);
    f.compute(
        "mm1",
        &[k.clone(), i.clone(), j.clone()],
        tmp.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
        tmp.access(&[&i, &j]),
    );
    f.compute(
        "mm2",
        &[k.clone(), i.clone(), j.clone()],
        d.at(&[&i, &j]) + tmp.at(&[&i, &k]) * c.at(&[&k, &j]),
        d.access(&[&i, &j]),
    );
    f
}

/// `3MM`: `E = A·B`, `F = C·D`, `G = E·F`.
pub fn mm3(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("mm3");
    let k = f.var("k", 0, n_);
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let b = f.placeholder("B", &[n, n], DataType::F32);
    let c = f.placeholder("C", &[n, n], DataType::F32);
    let d = f.placeholder("D", &[n, n], DataType::F32);
    let e = f.placeholder("E", &[n, n], DataType::F32);
    let g = f.placeholder("Fm", &[n, n], DataType::F32);
    let out = f.placeholder("G", &[n, n], DataType::F32);
    f.compute(
        "mm1",
        &[k.clone(), i.clone(), j.clone()],
        e.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
        e.access(&[&i, &j]),
    );
    f.compute(
        "mm2",
        &[k.clone(), i.clone(), j.clone()],
        g.at(&[&i, &j]) + c.at(&[&i, &k]) * d.at(&[&k, &j]),
        g.access(&[&i, &j]),
    );
    f.compute(
        "mm3",
        &[k.clone(), i.clone(), j.clone()],
        out.at(&[&i, &j]) + e.at(&[&i, &k]) * g.at(&[&k, &j]),
        out.access(&[&i, &j]),
    );
    f
}

/// `Jacobi-1d`: `B[t][i] = (B[t-1][i-1] + B[t-1][i] + B[t-1][i+1]) / 3`
/// over `tsteps` time iterations (Fig. 16 of the paper).
///
/// The Dirichlet boundary columns are carried forward by the `sb0`/`sb1`
/// propagation statements sharing the time loop, so every cell of row
/// `t-1` is defined by the time row `t` is computed. That makes the
/// time-expanded state a genuine two-row buffer: `pom-live` proves the
/// `[2, n]` live window and certifies the contraction (POM007). The
/// boundary statements precede `s` in program order, so every reachable
/// schedule — fused (default), unfused by per-statement transforms, or
/// sequential baselines — executes producers at or before consumers.
pub fn jacobi1d(tsteps: usize, n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("jacobi1d");
    let t = f.var("t", 1, tsteps as i64);
    let i = f.var("i", 1, n_ - 1);
    let b = f.placeholder("B", &[tsteps, n], DataType::F32);
    let tm1 = t.expr() - 1;
    let zero = LinearExpr::constant_expr(0);
    let last = LinearExpr::constant_expr(n_ - 1);
    f.compute(
        "sb0",
        std::slice::from_ref(&t),
        b.at(&[tm1.clone(), zero.clone()]),
        b.access(&[t.expr(), zero]),
    );
    f.compute(
        "sb1",
        std::slice::from_ref(&t),
        b.at(&[tm1.clone(), last.clone()]),
        b.access(&[t.expr(), last]),
    );
    let im1 = i.expr() - 1;
    let ip1 = i.expr() + 1;
    f.compute(
        "s",
        &[t.clone(), i.clone()],
        (b.at(&[tm1.clone(), im1.clone()])
            + b.at(&[tm1.clone(), i.expr()])
            + b.at(&[tm1.clone(), ip1.clone()]))
            / 3.0,
        b.access(&[&t, &i]),
    );
    f.after("sb1", "sb0", "t");
    f.after("s", "sb1", "t");
    f
}

/// `Jacobi-2d`: the 5-point time-iterated 2-D stencil.
pub fn jacobi2d(tsteps: usize, n: usize) -> Function {
    let mut f = Function::new("jacobi2d");
    let t = f.var("t", 1, tsteps as i64);
    let i = f.var("i", 1, n as i64 - 1);
    let j = f.var("j", 1, n as i64 - 1);
    let b = f.placeholder("B", &[tsteps, n, n], DataType::F32);
    let tm1 = t.expr() - 1;
    let im1 = i.expr() - 1;
    let ip1 = i.expr() + 1;
    let jm1 = j.expr() - 1;
    let jp1 = j.expr() + 1;
    f.compute(
        "s",
        &[t.clone(), i.clone(), j.clone()],
        (b.at(&[tm1.clone(), i.expr(), j.expr()])
            + b.at(&[tm1.clone(), im1.clone(), j.expr()])
            + b.at(&[tm1.clone(), ip1.clone(), j.expr()])
            + b.at(&[tm1.clone(), i.expr(), jm1.clone()])
            + b.at(&[tm1.clone(), i.expr(), jp1.clone()]))
            * 0.2,
        b.access(&[&t, &i, &j]),
    );
    f
}

/// `Heat-1d`: explicit finite-difference heat equation.
pub fn heat1d(tsteps: usize, n: usize) -> Function {
    let mut f = Function::new("heat1d");
    let t = f.var("t", 1, tsteps as i64);
    let i = f.var("i", 1, n as i64 - 1);
    let b = f.placeholder("B", &[tsteps, n], DataType::F32);
    let tm1 = t.expr() - 1;
    let im1 = i.expr() - 1;
    let ip1 = i.expr() + 1;
    f.compute(
        "s",
        &[t.clone(), i.clone()],
        b.at(&[tm1.clone(), i.expr()])
            + 0.125
                * (b.at(&[tm1.clone(), ip1.clone()]) - 2.0 * b.at(&[tm1.clone(), i.expr()])
                    + b.at(&[tm1.clone(), im1.clone()])),
        b.access(&[&t, &i]),
    );
    f
}

/// `Seidel`: the in-place Gauss–Seidel sweep with tight loop-carried
/// dependences in *both* spatial dimensions — the stencil the paper uses
/// to show PolySA/AutoSA-style tools degrading (Section II-C) and loop
/// skewing paying off (Fig. 14).
pub fn seidel(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("seidel");
    let i = f.var("i", 1, n_ - 1);
    let j = f.var("j", 1, n_ - 1);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let im1 = i.expr() - 1;
    let jm1 = j.expr() - 1;
    let ip1 = i.expr() + 1;
    let jp1 = j.expr() + 1;
    f.compute(
        "s",
        &[i.clone(), j.clone()],
        (a.at(&[im1.clone(), j.expr()])
            + a.at(&[i.expr(), jm1.clone()])
            + a.at(&[&i, &j])
            + a.at(&[i.expr(), jp1.clone()])
            + a.at(&[ip1.clone(), j.expr()]))
            * 0.2,
        a.access(&[&i, &j]),
    );
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_build() {
        assert_eq!(gemm(32).computes().len(), 1);
        assert_eq!(bicg(32).computes().len(), 2);
        assert_eq!(gesummv(32).computes().len(), 3);
        assert_eq!(mm2(32).computes().len(), 2);
        assert_eq!(mm3(32).computes().len(), 3);
        assert_eq!(jacobi1d(8, 32).computes().len(), 3);
        assert_eq!(jacobi2d(4, 16).computes().len(), 1);
        assert_eq!(heat1d(8, 32).computes().len(), 1);
        assert_eq!(seidel(16).computes().len(), 1);
    }

    #[test]
    fn gemm_matches_fig4_structure() {
        let f = gemm(32);
        let s = f.find_compute("s").unwrap();
        assert_eq!(s.iter_names(), ["k", "i", "j"]);
        assert_eq!(s.reduction_dims(), vec![0]);
        assert!(s.is_update());
    }

    #[test]
    fn stencils_have_time_carried_deps() {
        let f = jacobi1d(8, 32);
        let g = pom_graph::DepGraph::build(&f);
        let n = g.node("s").unwrap();
        assert_eq!(n.analysis.carried_by_level[0], Some(1));
    }

    #[test]
    fn seidel_is_carried_in_both_dims() {
        let f = seidel(16);
        let g = pom_graph::DepGraph::build(&f);
        let n = g.node("s").unwrap();
        assert!(n.analysis.carried_by_level.iter().all(Option::is_some));
    }
}

/// `ATAX`: `y = Aᵀ(Ax)` — two chained matrix-vector products, the second
/// through the transposed access `A[i][j]` indexed as `A(i, j)` with roles
/// swapped.
pub fn atax(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("atax");
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let x = f.placeholder("x", &[n], DataType::F32);
    let tmp = f.placeholder("tmp", &[n], DataType::F32);
    let y = f.placeholder("y", &[n], DataType::F32);
    f.compute(
        "S1",
        &[i.clone(), j.clone()],
        tmp.at(&[&i]) + a.at(&[&i, &j]) * x.at(&[&j]),
        tmp.access(&[&i]),
    );
    // y[j] += A[i][j] * tmp[i]: the transposed product.
    f.compute(
        "S2",
        &[i.clone(), j.clone()],
        y.at(&[&j]) + a.at(&[&i, &j]) * tmp.at(&[&i]),
        y.access(&[&j]),
    );
    f
}

/// `MVT`: two independent matrix-vector products `x1 += A·y1`,
/// `x2 += Aᵀ·y2` — fusable like BICG but with disjoint outputs.
pub fn mvt(n: usize) -> Function {
    let n_ = n as i64;
    let mut f = Function::new("mvt");
    let i = f.var("i", 0, n_);
    let j = f.var("j", 0, n_);
    let a = f.placeholder("A", &[n, n], DataType::F32);
    let x1 = f.placeholder("x1", &[n], DataType::F32);
    let x2 = f.placeholder("x2", &[n], DataType::F32);
    let y1 = f.placeholder("y1", &[n], DataType::F32);
    let y2 = f.placeholder("y2", &[n], DataType::F32);
    f.compute(
        "S1",
        &[i.clone(), j.clone()],
        x1.at(&[&i]) + a.at(&[&i, &j]) * y1.at(&[&j]),
        x1.access(&[&i]),
    );
    f.compute(
        "S2",
        &[i.clone(), j.clone()],
        x2.at(&[&i]) + a.at(&[&j, &i]) * y2.at(&[&j]),
        x2.access(&[&i]),
    );
    f
}

/// `DOITGEN`: the multi-resolution analysis kernel — a 4-level nest with
/// the reduction innermost as written in PolyBench.
pub fn doitgen(nr: usize, nq: usize, np: usize) -> Function {
    let mut f = Function::new("doitgen");
    let r = f.var("r", 0, nr as i64);
    let q = f.var("q", 0, nq as i64);
    let p = f.var("p", 0, np as i64);
    let s = f.var("s", 0, np as i64);
    let a = f.placeholder("A", &[nr, nq, np], DataType::F32);
    let c4 = f.placeholder("C4", &[np, np], DataType::F32);
    let sum = f.placeholder("sum", &[nr, nq, np], DataType::F32);
    f.compute(
        "S1",
        &[r.clone(), q.clone(), p.clone(), s.clone()],
        sum.at(&[&r.expr(), &q.expr(), &p.expr()])
            + a.at(&[r.expr(), q.expr(), s.expr()]) * c4.at(&[s.expr(), p.expr()]),
        sum.access(&[&r.expr(), &q.expr(), &p.expr()]),
    );
    f
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use pom_dse::{auto_dse, baselines, CompileOptions};

    #[test]
    fn atax_mvt_doitgen_build_and_optimize() {
        let opts = CompileOptions::default();
        for f in [atax(64), mvt(64), doitgen(8, 8, 8)] {
            let base = baselines::baseline_compiled(&f, &opts);
            let r = auto_dse(&f, &opts).expect("DSE compiles");
            let s = r.compiled.qor.speedup_over(&base.qor);
            assert!(s > 5.0, "{}: speedup {s}", f.name());
            assert!(r.compiled.qor.resources.dsp <= 220, "{}", f.name());
        }
    }

    #[test]
    fn doitgen_reduction_moves_outward() {
        // Written (r, q, p, s) with reduction s innermost; stage 1 must
        // reorder so the carried level is no longer below a parallel one.
        let f = doitgen(8, 8, 8);
        let g = pom_dse::dependence_aware_transform(&f, 8);
        assert!(g
            .schedule()
            .iter()
            .any(|p| matches!(p, pom_dsl::Primitive::Interchange { .. })));
    }

    #[test]
    fn atax_semantics_preserved_through_dse() {
        use pom_dsl::{reference_execute, MemoryState};
        let f = atax(10);
        let opts = CompileOptions::default();
        let r = auto_dse(&f, &opts).expect("DSE compiles");
        let compiled = pom_dse::compile(&r.function, &opts).expect("DSE schedule compiles");
        let mut m1 = MemoryState::for_function_seeded(&f, 3);
        reference_execute(&f, &mut m1);
        let mut m2 = MemoryState::for_function_seeded(&f, 3);
        pom_ir::execute_func(&compiled.affine, &mut m2);
        for arr in ["tmp", "y"] {
            assert_eq!(m1.array(arr).unwrap().data(), m2.array(arr).unwrap().data());
        }
    }
}
