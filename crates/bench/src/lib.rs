//! # pom-bench — benchmark kernels and the experiment harness
//!
//! Everything needed to regenerate the paper's evaluation (Section VII):
//! the benchmark suites expressed in the POM DSL ([`kernels`]) and one
//! harness module per table/figure ([`experiments`]). Each experiment is
//! exposed both as a binary (`cargo run -p pom-bench --bin tab03_typical`)
//! and as a Criterion bench target (`cargo bench -p pom-bench`).

pub mod experiments;
pub mod kernels;
pub mod serve;
