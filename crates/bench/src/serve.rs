//! The POM compile service: a long-lived engine that answers
//! compile+DSE requests from a persistent, shared cache, plus the Unix
//! domain socket server `pomd` wraps around it.
//!
//! ## Why a service
//!
//! Every `pomc` invocation is a cold process: the `DseCache` memos die at
//! exit, so repeated layers across runs and users pay full price again.
//! The [`ServeEngine`] keeps one store-backed [`DseCache`] alive across
//! requests and adds two layers on top:
//!
//! 1. **Response cache** — the fully rendered response text of each
//!    compiled kernel, keyed by the input function's plain fingerprint,
//!    held in a bounded in-memory map and persisted through the store's
//!    `full` artifacts. A duplicate request is answered with zero
//!    compiles, byte-identical to the original *by construction* (it is
//!    the same bytes).
//! 2. **Batch admission** — concurrent requests that share a fingerprint
//!    coalesce: the first becomes the *leader* and compiles, the rest
//!    become *followers* that park on a channel and receive the leader's
//!    response when it fans out. A queue of 50 identical VGG-16 layers
//!    compiles once.
//!
//! The engine itself is transport-free; [`run_server`] binds it to a
//! local socket with a line protocol (see below), and `bench-serve`
//! drives it in-process for the cold/warm configurations.
//!
//! ## Wire protocol
//!
//! One request per line; length-framed responses so payloads can contain
//! anything:
//!
//! ```text
//! -> compile <kernel> <size>\n
//! <- ok <byte-len>\n<payload>          | err <message>\n
//! -> stats\n
//! <- ok <byte-len>\n<stats text>
//! -> shutdown\n
//! <- ok 0\n                            (server exits after replying)
//! ```
//!
//! `<kernel>` is any built-in kernel name ([`kernel_by_name`]) or a
//! standalone convolution layer `conv<ci>x<co>x<size>` (the DNN layer
//! streams' vocabulary); for `conv...` kernels the shape in the name
//! wins and `<size>` is ignored.

use pom_dse::{
    auto_dse_with_cache, fingerprint, ArtifactStore, CompileOptions, DseCache, DseConfig, DseResult,
};
use pom_dsl::Function;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::kernels as k;

/// Maps a kernel name (+ default size) to its DSL function — the same
/// vocabulary `pomc` exposes, plus the `conv<ci>x<co>x<size>` layer
/// pattern. Size transforms mirror `pomc`: time-iterated stencils take
/// fewer timesteps than their spatial extent, seidel shrinks, and the
/// DNNs ignore `size` (scale 1). Derived extents are clamped to their
/// smallest non-degenerate values, so an arbitrary wire-supplied size
/// can never build an empty iteration space (which would panic a daemon
/// worker).
pub fn kernel_by_name(name: &str, size: usize) -> Option<Function> {
    if let Some(shape) = name.strip_prefix("conv") {
        if let Some((ci, co, sz)) = parse_conv_shape(shape) {
            return Some(k::conv_layer_kernel(ci, co, sz));
        }
    }
    let tsteps = (size / 16).max(2);
    Some(match name {
        "gemm" => k::gemm(size),
        "bicg" => k::bicg(size),
        "gesummv" => k::gesummv(size),
        "2mm" | "mm2" => k::mm2(size),
        "3mm" | "mm3" => k::mm3(size),
        "jacobi1d" => k::jacobi1d(tsteps, size.max(4)),
        "jacobi2d" => k::jacobi2d(tsteps, (size / 8).max(4)),
        "heat1d" => k::heat1d(tsteps, size.max(4)),
        "seidel" => k::seidel((size / 4).max(4)),
        "edge_detect" => k::edge_detect(size),
        "gaussian" => k::gaussian(size),
        "blur" => k::blur(size),
        "vgg16" => k::vgg16(1),
        "resnet18" => k::resnet18(1),
        _ => return None,
    })
}

/// Parses `<ci>x<co>x<size>` (the tail of a `conv...` kernel name).
fn parse_conv_shape(s: &str) -> Option<(usize, usize, usize)> {
    let mut it = s.split('x');
    let (a, b, c) = (it.next()?, it.next()?, it.next()?);
    if it.next().is_some() {
        return None;
    }
    let (ci, co, sz) = (a.parse().ok()?, b.parse().ok()?, c.parse().ok()?);
    if ci == 0 || co == 0 || sz == 0 {
        return None;
    }
    Some((ci, co, sz))
}

/// Renders a DSE result as the canonical serving payload: schedule,
/// QoR, and the emitted HLS C. Deterministic — no wall-clock times — so
/// cold, warm, and daemon paths can be gated byte-for-byte.
pub fn render_response(kernel: &str, size: usize, r: &DseResult) -> String {
    let mut out = String::new();
    out.push_str(&format!("pom-serve kernel {kernel} size {size}\n"));
    out.push_str("schedule:\n");
    for p in r.function.schedule() {
        out.push_str(&format!("  {p};\n"));
    }
    let q = &r.compiled.qor;
    out.push_str(&format!(
        "qor: latency {} dsp {} ff {} lut {} bram18k {}\n",
        q.latency, q.resources.dsp, q.resources.ff, q.resources.lut, q.resources.bram18k
    ));
    let iis: Vec<String> = q.loops.iter().map(|l| l.achieved_ii.to_string()).collect();
    out.push_str(&format!("iis: {}\n", iis.join(" ")));
    out.push_str("---- hls c ----\n");
    out.push_str(&r.compiled.hls_c());
    out
}

fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// FIFO-bounded response map (mirrors the cache's eviction policy).
struct Responses {
    map: HashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
    cap: usize,
}

impl Responses {
    fn insert(&mut self, fp: u64, r: Arc<String>) {
        if self.map.insert(fp, r).is_none() {
            self.order.push_back(fp);
        }
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    self.map.remove(&old);
                }
                None => break,
            }
        }
    }
}

type Outcome = Result<Arc<String>, String>;

/// What a request found when it reached batch admission.
enum Role {
    /// First request for this fingerprint: compile and fan out.
    Leader,
    /// A leader is already compiling this fingerprint: park here.
    Follower(mpsc::Receiver<Outcome>),
}

/// The long-lived serving engine: one store-backed [`DseCache`], a
/// bounded response cache, and batch admission (see module docs).
/// Shareable across threads behind an `Arc`.
pub struct ServeEngine {
    opts: CompileOptions,
    cfg: DseConfig,
    cache: DseCache,
    responses: Mutex<Responses>,
    /// In-flight compiles: fingerprint → the followers waiting on it.
    pending: Mutex<HashMap<u64, Vec<mpsc::Sender<Outcome>>>>,
    requests: AtomicUsize,
    /// Requests answered from the in-memory response cache.
    memory_hits: AtomicUsize,
    /// Requests answered from the store's persisted response artifact.
    store_hits: AtomicUsize,
    /// Requests answered by another request's in-flight compile.
    batch_merged: AtomicUsize,
    /// Requests that ran a full DSE compile.
    compiles: AtomicUsize,
    errors: AtomicUsize,
}

impl ServeEngine {
    /// An engine over `opts`/`cfg`, optionally backed by the persistent
    /// store rooted at `store`. A store that fails to open degrades to
    /// memory-only serving (the store accelerates, it never gates).
    /// When `cfg.store_max_bytes` is set, the store is swept down to
    /// that budget (oldest artifacts first) right after opening, so
    /// `stats` reports post-GC disk usage.
    pub fn new(opts: CompileOptions, cfg: DseConfig, store: Option<&Path>) -> ServeEngine {
        let cache = match store {
            Some(root) => match ArtifactStore::open(root, &opts) {
                Ok(s) => {
                    if let Some(max) = cfg.store_max_bytes {
                        let _ = s.gc(max);
                    }
                    DseCache::with_store(Arc::new(s))
                }
                Err(_) => DseCache::new(),
            },
            None => DseCache::new(),
        };
        ServeEngine {
            opts,
            cfg,
            cache,
            responses: Mutex::new(Responses {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap: pom_dse::cache::DEFAULT_CAPACITY,
            }),
            pending: Mutex::new(HashMap::new()),
            requests: AtomicUsize::new(0),
            memory_hits: AtomicUsize::new(0),
            store_hits: AtomicUsize::new(0),
            batch_merged: AtomicUsize::new(0),
            compiles: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
        }
    }

    /// Total requests submitted.
    pub fn requests(&self) -> usize {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered from the in-memory response cache.
    pub fn memory_hits(&self) -> usize {
        self.memory_hits.load(Ordering::Relaxed)
    }

    /// Requests answered from a persisted response artifact — the
    /// cross-process hits.
    pub fn store_hits(&self) -> usize {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Requests that attached to another request's in-flight compile.
    pub fn batch_merged(&self) -> usize {
        self.batch_merged.load(Ordering::Relaxed)
    }

    /// Requests that paid for a full DSE compile.
    pub fn compiles(&self) -> usize {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Requests that failed (unknown kernel or compile error).
    pub fn errors(&self) -> usize {
        self.errors.load(Ordering::Relaxed)
    }

    /// The engine's DSE cache (for stats rendering).
    pub fn cache(&self) -> &DseCache {
        &self.cache
    }

    /// Compiles `kernel` at `size` (or returns the cached/coalesced
    /// response — see module docs for the admission order).
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown kernels and compile failures.
    /// Errors are never cached and never fan out as successes.
    pub fn submit(&self, kernel: &str, size: usize) -> Outcome {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let Some(f) = kernel_by_name(kernel, size) else {
            self.errors.fetch_add(1, Ordering::Relaxed);
            return Err(format!("unknown kernel {kernel}"));
        };
        let fp = fingerprint(&f);
        if let Some(r) = locked(&self.responses).map.get(&fp).cloned() {
            self.memory_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        if let Some(text) = self.cache.store().and_then(|s| s.load_full(fp)) {
            self.store_hits.fetch_add(1, Ordering::Relaxed);
            let r = Arc::new(text);
            locked(&self.responses).insert(fp, Arc::clone(&r));
            return Ok(r);
        }
        // Batch admission: exactly one leader per in-flight fingerprint.
        let role = {
            let mut pending = locked(&self.pending);
            match pending.get_mut(&fp) {
                Some(waiters) => {
                    let (tx, rx) = mpsc::channel();
                    waiters.push(tx);
                    Role::Follower(rx)
                }
                None => {
                    pending.insert(fp, Vec::new());
                    Role::Leader
                }
            }
        };
        match role {
            Role::Follower(rx) => {
                self.batch_merged.fetch_add(1, Ordering::Relaxed);
                match rx.recv() {
                    Ok(outcome) => outcome,
                    // The leader died without fanning out (panicked
                    // worker); recompute rather than wedge.
                    Err(_) => self.compile_as_leader(kernel, size, &f, fp),
                }
            }
            Role::Leader => self.compile_as_leader(kernel, size, &f, fp),
        }
    }

    fn compile_as_leader(&self, kernel: &str, size: usize, f: &Function, fp: u64) -> Outcome {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let outcome = match auto_dse_with_cache(f, &self.opts, &self.cfg, &self.cache) {
            Ok(r) => {
                let text = Arc::new(render_response(kernel, size, &r));
                // Publish to the response cache *before* draining the
                // pending entry: a request that misses `pending` right
                // after the drain must still hit the response cache.
                locked(&self.responses).insert(fp, Arc::clone(&text));
                if let Some(s) = self.cache.store() {
                    s.save_full(fp, &text);
                }
                Ok(text)
            }
            Err(e) => {
                self.errors.fetch_add(1, Ordering::Relaxed);
                Err(format!("DSE failed: {e}"))
            }
        };
        let waiters = locked(&self.pending).remove(&fp).unwrap_or_default();
        for w in waiters {
            // A follower that gave up (disconnected client) is fine.
            let _ = w.send(outcome.clone());
        }
        outcome
    }

    /// Human-readable engine + cache + store statistics (`stats` verb,
    /// `pomc --emit cache`).
    pub fn stats_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests {}\nmemory-hits {}\nstore-hits {}\nbatch-merged {}\ncompiles {}\nerrors {}\n",
            self.requests(),
            self.memory_hits(),
            self.store_hits(),
            self.batch_merged(),
            self.compiles(),
            self.errors()
        ));
        out.push_str(&format!(
            "dse-cache: hits {} misses {} evictions {} entries {}\n",
            self.cache.hits(),
            self.cache.misses(),
            self.cache.evictions(),
            self.cache.entries()
        ));
        if let Some(s) = self.cache.store() {
            out.push_str(&format!(
                "store: hits {} misses {} writes {} load-errors {} write-errors {}\n",
                s.hits(),
                s.misses(),
                s.writes(),
                s.load_errors(),
                s.write_errors()
            ));
            let usage = s.disk_usage();
            let total_bytes: u64 = usage.values().map(|v| v.1).sum();
            let total_entries: usize = usage.values().map(|v| v.0).sum();
            out.push_str(&format!(
                "store-disk: {total_entries} artifact(s), {total_bytes} byte(s) in {}\n",
                s.shard_dir().display()
            ));
            for (kind, (count, bytes)) in usage {
                out.push_str(&format!(
                    "store-kind {kind}: {count} artifact(s), {bytes} byte(s)\n"
                ));
            }
        } else {
            out.push_str("store: none\n");
        }
        out
    }
}

// ---- socket server ------------------------------------------------------

/// Runs the serving loop on a Unix domain socket until a client sends
/// `shutdown`. Each connection gets its own thread; batch admission in
/// the shared engine keeps concurrent duplicate kernels to one compile.
///
/// # Errors
///
/// Propagates socket bind/accept failures. A stale socket file at
/// `socket` is removed before binding.
pub fn run_server(engine: Arc<ServeEngine>, socket: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut handlers = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let socket = socket.to_path_buf();
        handlers.push(std::thread::spawn(move || {
            // Connection errors only end this client's session.
            let _ = handle_connection(&engine, stream, &shutdown);
            if shutdown.load(Ordering::SeqCst) {
                // Unblock the accept loop so the server can exit.
                let _ = UnixStream::connect(&socket);
            }
        }));
    }
    for h in handlers {
        let _ = h.join();
    }
    let _ = std::fs::remove_file(socket);
    Ok(())
}

fn handle_connection(
    engine: &ServeEngine,
    stream: UnixStream,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("compile") => {
                let kernel = parts.next().unwrap_or("");
                let size: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(32);
                match engine.submit(kernel, size) {
                    Ok(payload) => {
                        writeln!(writer, "ok {}", payload.len())?;
                        writer.write_all(payload.as_bytes())?;
                    }
                    Err(msg) => writeln!(writer, "err {}", msg.replace('\n', " "))?,
                }
                writer.flush()?;
            }
            Some("stats") => {
                let text = engine.stats_text();
                writeln!(writer, "ok {}", text.len())?;
                writer.write_all(text.as_bytes())?;
                writer.flush()?;
            }
            Some("shutdown") => {
                shutdown.store(true, Ordering::SeqCst);
                writeln!(writer, "ok 0")?;
                writer.flush()?;
                return Ok(());
            }
            Some(other) => {
                writeln!(writer, "err unknown request {other}")?;
                writer.flush()?;
            }
            None => {
                writeln!(writer, "err empty request")?;
                writer.flush()?;
            }
        }
    }
}

/// Sends one request line to a running daemon and returns the response:
/// `Ok(Ok(payload))` for `ok`, `Ok(Err(message))` for `err`.
///
/// # Errors
///
/// I/O errors on the socket, or a malformed response frame.
pub fn client_request(socket: &Path, request: &str) -> io::Result<Result<String, String>> {
    let mut stream = UnixStream::connect(socket)?;
    writeln!(stream, "{request}")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let header = header.trim_end_matches('\n');
    if let Some(msg) = header.strip_prefix("err ") {
        return Ok(Err(msg.to_string()));
    }
    let Some(len) = header
        .strip_prefix("ok ")
        .and_then(|n| n.parse::<usize>().ok())
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed response header: {header:?}"),
        ));
    };
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Ok)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("pom-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("mkdir");
        p
    }

    fn small_cfg() -> DseConfig {
        DseConfig::default()
    }

    #[test]
    fn conv_shape_parses() {
        assert_eq!(parse_conv_shape("4x16x8"), Some((4, 16, 8)));
        assert_eq!(parse_conv_shape("4x16"), None);
        assert_eq!(parse_conv_shape("4x16x8x2"), None);
        assert_eq!(parse_conv_shape("0x16x8"), None);
        assert!(kernel_by_name("conv4x16x4", 0).is_some());
        assert!(kernel_by_name("convx", 32).is_none());
        assert!(kernel_by_name("nope", 32).is_none());
    }

    #[test]
    fn duplicate_requests_hit_the_response_cache() {
        let engine = ServeEngine::new(CompileOptions::default(), small_cfg(), None);
        let a = engine.submit("gemm", 16).expect("compiles");
        let b = engine.submit("gemm", 16).expect("compiles");
        assert_eq!(a, b, "byte-identical");
        assert_eq!(engine.compiles(), 1);
        assert_eq!(engine.memory_hits(), 1);
        assert!(a.contains("pom-serve kernel gemm size 16"));
        assert!(a.contains("---- hls c ----"));
    }

    #[test]
    fn unknown_kernel_is_an_error_and_not_cached() {
        let engine = ServeEngine::new(CompileOptions::default(), small_cfg(), None);
        assert!(engine.submit("nope", 16).is_err());
        assert!(engine.submit("nope", 16).is_err());
        assert_eq!(engine.errors(), 2);
        assert_eq!(engine.compiles(), 0);
    }

    #[test]
    fn fresh_engine_hits_the_shared_store() {
        let root = tmp_dir("store");
        let a = ServeEngine::new(CompileOptions::default(), small_cfg(), Some(&root));
        let first = a.submit("bicg", 16).expect("compiles");
        // A fresh engine over the same store simulates a new process.
        let b = ServeEngine::new(CompileOptions::default(), small_cfg(), Some(&root));
        let second = b.submit("bicg", 16).expect("served");
        assert_eq!(first, second, "byte-identical across engines");
        assert_eq!(b.compiles(), 0);
        assert_eq!(b.store_hits(), 1);
        let stats = b.stats_text();
        assert!(stats.contains("store-hits 1"), "{stats}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_duplicates_batch_to_one_compile() {
        let engine = Arc::new(ServeEngine::new(
            CompileOptions::default(),
            small_cfg(),
            None,
        ));
        let results: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let e = Arc::clone(&engine);
                    s.spawn(move || e.submit("gesummv", 16))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect()
        });
        let first = results[0].as_ref().expect("compiles");
        for r in &results {
            assert_eq!(r.as_ref().expect("compiles"), first);
        }
        // Every request was answered by exactly one compile; the others
        // merged into its batch or hit the response cache behind it.
        assert_eq!(engine.compiles(), 1);
        assert_eq!(
            engine.batch_merged() + engine.memory_hits(),
            3,
            "3 duplicates coalesced"
        );
    }

    #[test]
    fn daemon_round_trip_over_unix_socket() {
        let dir = tmp_dir("uds");
        let socket = dir.join("pomd.sock");
        let engine = Arc::new(ServeEngine::new(
            CompileOptions::default(),
            small_cfg(),
            None,
        ));
        let server = {
            let engine = Arc::clone(&engine);
            let socket = socket.clone();
            std::thread::spawn(move || run_server(engine, &socket))
        };
        // Wait for the socket to appear.
        for _ in 0..200 {
            if socket.exists() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let r1 = client_request(&socket, "compile gemm 16")
            .expect("io")
            .expect("compiles");
        let r2 = client_request(&socket, "compile gemm 16")
            .expect("io")
            .expect("serves");
        assert_eq!(r1, r2);
        let stats = client_request(&socket, "stats").expect("io").expect("ok");
        assert!(stats.contains("requests 2"), "{stats}");
        let err = client_request(&socket, "compile nope 16").expect("io");
        assert!(err.is_err());
        client_request(&socket, "shutdown")
            .expect("io")
            .expect("ok");
        server.join().expect("joins").expect("server exits cleanly");
        assert!(!socket.exists(), "socket file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
