//! Search-mode contracts for the DSE front door.
//!
//! * Greedy dispatch through the `SearchMode` switch is the identity:
//!   explicitly requesting `greedy` reproduces the default pipeline's
//!   schedule, groups, and QoR bit-for-bit on the full 14-kernel suite,
//!   and leaves the anytime curve empty.
//! * Beam and portfolio searches are worker-count deterministic: with no
//!   wall-clock budget, runs at 1, 2, and 8 workers emit byte-identical
//!   designs and identical anytime curves.
//! * The portfolio never loses to greedy under the final-design
//!   simulation metric (the greedy winner is force-admitted past the
//!   sim-admission band), and its winner carries checked certificates.
//! * An expired budget still returns a valid, device-fitting design.

use pom::{auto_dse_with, DseConfig, DseResult, Function, MemoryState, SearchMode};
use pom_bench::experiments::bench_dse::results_identical;
use pom_bench::experiments::{bench_sim, common::paper_options};
use pom_bench::kernels;

/// Same deterministic seed the searches and the bench harness use.
const SIM_SEED: u64 = 0x5EED;

fn simulated_cycles(f: &Function, r: &DseResult, opts: &pom::CompileOptions) -> u64 {
    let mut mem = MemoryState::for_function_seeded(f, SIM_SEED);
    pom::simulate(&r.compiled.affine, &r.compiled.deps, &mut mem, &opts.model).cycles
}

/// The deterministic part of an anytime curve: wall-clock stamps vary
/// run to run, the visited (cycles, estimate) sequence must not.
fn curve(r: &DseResult) -> Vec<(u64, u64)> {
    r.anytime
        .iter()
        .map(|p| (p.sim_cycles, p.est_latency))
        .collect()
}

#[test]
fn greedy_dispatch_reproduces_default_on_all_14_kernels() {
    let opts = paper_options();
    let default_cfg = DseConfig::default();
    let greedy_cfg = DseConfig {
        search: SearchMode::Greedy,
        ..DseConfig::default()
    };
    for (name, f) in bench_sim::suite(32) {
        let a = auto_dse_with(&f, &opts, &default_cfg).expect("default DSE compiles");
        let b = auto_dse_with(&f, &opts, &greedy_cfg).expect("greedy DSE compiles");
        assert!(
            results_identical(&a, &b),
            "{name} diverged under --search greedy"
        );
        assert!(
            a.anytime.is_empty(),
            "{name}: greedy must not record anytime points"
        );
        assert_eq!(
            a.stats.beam_expanded, 0,
            "{name}: greedy expanded beam states"
        );
        assert_eq!(a.stats.sim_admitted, 0, "{name}: greedy ran sim admission");
    }
}

#[test]
fn beam_is_byte_identical_across_worker_counts() {
    let opts = paper_options();
    for (name, f) in [("gemm", kernels::gemm(32)), ("blur", kernels::blur(32))] {
        let runs: Vec<DseResult> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let cfg = DseConfig {
                    search: SearchMode::Beam,
                    workers: w,
                    ..DseConfig::default()
                };
                auto_dse_with(&f, &opts, &cfg).expect("beam DSE compiles")
            })
            .collect();
        for (i, r) in runs.iter().enumerate().skip(1) {
            assert!(
                results_identical(&runs[0], r),
                "{name}: beam diverged between 1 worker and {} workers",
                [1, 2, 8][i]
            );
            assert_eq!(
                curve(&runs[0]),
                curve(r),
                "{name}: anytime curve diverged between worker counts"
            );
            assert_eq!(
                runs[0].stats.sim_cycles, r.stats.sim_cycles,
                "{name}: winner sim cycles diverged between worker counts"
            );
        }
    }
}

#[test]
fn portfolio_is_worker_count_deterministic() {
    let opts = paper_options();
    let f = kernels::gesummv(32);
    let runs: Vec<DseResult> = [1usize, 2, 8]
        .iter()
        .map(|&w| {
            let cfg = DseConfig {
                search: SearchMode::Portfolio,
                workers: w,
                ..DseConfig::default()
            };
            auto_dse_with(&f, &opts, &cfg).expect("portfolio DSE compiles")
        })
        .collect();
    for r in &runs[1..] {
        assert!(
            results_identical(&runs[0], r),
            "portfolio diverged across worker counts"
        );
        assert_eq!(
            curve(&runs[0]),
            curve(r),
            "anytime curve diverged across worker counts"
        );
    }
}

#[test]
fn portfolio_never_loses_to_greedy_and_validates_winner() {
    let opts = paper_options();
    let greedy_cfg = DseConfig::default();
    let beam_cfg = DseConfig {
        search: SearchMode::Portfolio,
        ..DseConfig::default()
    };
    for (name, f) in [
        ("gemm", kernels::gemm(32)),
        ("blur", kernels::blur(32)),
        ("gaussian", kernels::gaussian(32)),
    ] {
        let greedy = auto_dse_with(&f, &opts, &greedy_cfg).expect("greedy DSE compiles");
        let beam = auto_dse_with(&f, &opts, &beam_cfg).expect("portfolio DSE compiles");
        let gc = simulated_cycles(&f, &greedy, &opts);
        let bc = simulated_cycles(&f, &beam, &opts);
        assert!(
            bc <= gc,
            "{name}: portfolio ({bc} cycles) lost to its own greedy seed ({gc} cycles)"
        );
        assert!(
            beam.stats.certificates_checked > 0,
            "{name}: portfolio winner shipped without checked certificates"
        );
        assert!(
            beam.anytime
                .windows(2)
                .all(|w| w[1].sim_cycles < w[0].sim_cycles),
            "{name}: anytime curve is not strictly improving"
        );
        let u = &beam.compiled.qor.resources;
        let d = &opts.device;
        assert!(
            u.dsp <= d.dsp && u.ff <= d.ff && u.lut <= d.lut,
            "{name}: portfolio winner does not fit the device"
        );
    }
}

#[test]
fn expired_budget_returns_valid_best_so_far() {
    let opts = paper_options();
    let cfg = DseConfig {
        search: SearchMode::Beam,
        budget_ms: Some(1),
        ..DseConfig::default()
    };
    let f = kernels::gemm(32);
    let r = auto_dse_with(&f, &opts, &cfg).expect("budgeted beam DSE compiles");
    assert!(r.stats.budget_expired, "1 ms budget did not expire");
    let u = &r.compiled.qor.resources;
    let d = &opts.device;
    assert!(
        u.dsp <= d.dsp && u.ff <= d.ff && u.lut <= d.lut,
        "best-so-far does not fit"
    );
    assert!(!r.function.to_string().is_empty());
}
