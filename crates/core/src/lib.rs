//! # POM — an optimizing framework for FPGA-based accelerator generation
//!
//! A from-scratch Rust reproduction of **"An Optimizing Framework on MLIR
//! for Efficient FPGA-based Accelerator Generation"** (HPCA 2024). POM
//! compiles a decoupled DSL (algorithm + schedule) through three explicit
//! IR layers — *dependence graph IR*, *polyhedral IR*, and an *annotated
//! affine dialect* — into synthesizable HLS C, with an automatic
//! two-stage design-space-exploration engine.
//!
//! The crate re-exports the whole workspace and offers [`Pom`], the
//! end-to-end driver:
//!
//! ```
//! use pom::{DataType, Function, Pom};
//!
//! // Fig. 4: matrix multiplication in the POM DSL.
//! let mut f = Function::new("gemm");
//! let (k, i, j) = (f.var("k", 0, 32), f.var("i", 0, 32), f.var("j", 0, 32));
//! let a = f.placeholder("A", &[32, 32], DataType::F32);
//! let b = f.placeholder("B", &[32, 32], DataType::F32);
//! let c = f.placeholder("C", &[32, 32], DataType::F32);
//! f.compute(
//!     "s",
//!     &[k.clone(), i.clone(), j.clone()],
//!     a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
//!     a.access(&[&i, &j]),
//! );
//! f.auto_dse();
//!
//! let pom = Pom::new();
//! let result = pom.codegen(&f);
//! assert!(result.hls_c.contains("#pragma HLS pipeline"));
//! assert!(result.speedup_over_baseline > 10.0);
//! ```
//!
//! ## Layer map (paper Fig. 3/7)
//!
//! | Layer | Crate | Purpose |
//! |---|---|---|
//! | POM DSL | [`pom_dsl`] | vars, placeholders, computes, Table II primitives |
//! | Dependence graph IR | [`pom_graph`] | coarse/fine-grained dependence analysis |
//! | Polyhedral IR | [`pom_poly`] | integer sets/maps, transformations, AST build |
//! | Affine dialect + HLS attrs | [`pom_ir`] | loops/ops with pragma attributes |
//! | HLS backend | [`pom_hls`] | HLS C emission + QoR estimation |
//! | Simulator | [`pom_sim`] | cycle-approximate schedule simulation |
//! | DSE engine | [`pom_dse`] | two-stage automatic scheduling + baselines |
//! | Validation | [`pom_verify`] | translation validation + dataflow analyses |
//! | Bank analysis | [`pom_bank`] | polyhedral bank-conflict analysis |
//! | Liveness analysis | [`pom_live`] | buffer liveness, contraction, flow depths |
//! | Dataflow pipelining | [`pom_dataflow`] | stage partitioning, channel sizing |

pub use pom_bank as bank;
pub use pom_dataflow as dataflow;
pub use pom_dse as dse;
pub use pom_dsl as dsl;
pub use pom_graph as graph;
pub use pom_hls as hls;
pub use pom_ir as ir;
pub use pom_lint as lint;
pub use pom_live as live;
pub use pom_poly as poly;
pub use pom_sim as sim;
pub use pom_verify as verify;

pub use pom_dataflow::{channel_certificates, partition as partition_dataflow, DataflowPlan};
pub use pom_dse::{
    auto_dse, auto_dse_with, auto_dse_with_cache, baselines, compile, fingerprint, lint_report,
    AnytimePoint, ArtifactStore, CompileError, CompileOptions, Compiled, DseCache, DseConfig,
    DseResult, DseStats, GroupConfig, SearchMode,
};
pub use pom_dsl::{
    reference_execute, ArrayData, Compute, DataType, Expr, Function, MemoryState, PartitionStyle,
    Placeholder, Primitive, Var,
};
pub use pom_graph::DepGraph;
pub use pom_hls::{
    emit_hls_c, emit_testbench, CostModel, DeviceSpec, QoR, ResourceUsage, SynthesisReport,
};
pub use pom_ir::{execute_func, AffineFunc, PassManager};
pub use pom_lint::{Diagnostic, LintCode, LintReport, Linter, Severity};
pub use pom_live::{
    analyze_func as analyze_liveness, replay_contraction, seeded_memory, ArrayLiveness, LiveReport,
};
pub use pom_sim::{
    simulate, simulate_dataflow, ArrayOccupancy, DataflowReport, LoopSim, SimReport,
};
pub use pom_verify::{
    analyze_ranges, bank_report, live_report, narrowing_hints, validate, ValidationReport,
};

/// The end-to-end POM driver: analysis, scheduling (user-specified or
/// automatic), lowering, and HLS C generation.
#[derive(Clone, Debug, Default)]
pub struct Pom {
    /// Compilation options: cost model, sharing policy, target device.
    pub options: CompileOptions,
}

/// The artefacts of a full `codegen()` run.
#[derive(Clone, Debug)]
pub struct CodegenResult {
    /// The scheduled function (with DSE-chosen primitives when auto).
    pub function: Function,
    /// The compiled design: affine IR, QoR, dependence summary.
    pub compiled: Compiled,
    /// The synthesizable HLS C.
    pub hls_c: String,
    /// Speedup over the unoptimized baseline (cycle ratio).
    pub speedup_over_baseline: f64,
    /// DSE wall-clock time (zero for user-specified schedules).
    pub dse_time: std::time::Duration,
}

impl Pom {
    /// A driver with default options (XC7Z020, 32-bit float cost model,
    /// resource reuse).
    pub fn new() -> Self {
        Self::default()
    }

    /// A driver targeting a specific device.
    pub fn with_device(device: DeviceSpec) -> Self {
        Pom {
            options: CompileOptions {
                device,
                ..Default::default()
            },
        }
    }

    /// Builds the dependence graph IR of a function (layer 1).
    pub fn analyze(&self, f: &Function) -> DepGraph {
        DepGraph::build(f)
    }

    /// Compiles a function with its *recorded* schedule (no DSE).
    ///
    /// # Panics
    ///
    /// Panics when the schedule does not lower to valid affine IR; use
    /// [`Pom::try_compile`] to handle [`CompileError`] gracefully.
    pub fn compile(&self, f: &Function) -> Compiled {
        self.try_compile(f).expect("schedule compiles")
    }

    /// Fallible [`Pom::compile`].
    pub fn try_compile(&self, f: &Function) -> Result<Compiled, CompileError> {
        pom_dse::compile(f, &self.options)
    }

    /// Runs the `pom-lint` diagnostics suite over the compiled design,
    /// with source-level (DSL schedule) context for the legality checks.
    pub fn lint(&self, f: &Function) -> LintReport {
        let compiled = self.compile(f);
        pom_dse::lint_report(f, &compiled, &self.options)
    }

    /// Replays the function's recorded schedule through `pom-verify`'s
    /// translation validation: every transformation primitive is
    /// certified (dependences preserved, domains and footprints equal)
    /// and the report carries a rustc-style rendering of any rejection.
    pub fn verify(&self, f: &Function) -> ValidationReport {
        pom_verify::validate(f)
    }

    /// Compiles the function with its recorded schedule and simulates it
    /// cycle-approximately on deterministic seeded memory, returning the
    /// measurement alongside the final memory state (which matches the
    /// affine interpreter's bit for bit).
    pub fn simulate(&self, f: &Function, seed: u64) -> (SimReport, MemoryState) {
        let compiled = self.compile(f);
        let mut mem = MemoryState::for_function_seeded(f, seed);
        let report = pom_sim::simulate(
            &compiled.affine,
            &compiled.deps,
            &mut mem,
            &self.options.model,
        );
        (report, mem)
    }

    /// Generates a Vitis-style synthesis report for the compiled design.
    pub fn report(&self, f: &Function) -> SynthesisReport {
        let compiled = self.compile(f);
        SynthesisReport::generate(
            &compiled.affine,
            &compiled.deps,
            &self.options.model,
            &self.options.device,
            self.options.sharing,
        )
    }

    /// Emits a self-checking C simulation testbench for the compiled
    /// kernel (companion to [`CodegenResult::hls_c`]).
    pub fn testbench(&self, f: &Function, seed: u64) -> String {
        let compiled = self.compile(f);
        emit_testbench(&compiled.affine, seed)
    }

    /// The paper's `codegen()`: runs auto-DSE when the schedule asks for
    /// it (`f.auto_DSE()`), otherwise replays the user schedule; emits
    /// HLS C and reports the speedup over the unoptimized baseline.
    pub fn codegen(&self, f: &Function) -> CodegenResult {
        let baseline = pom_dse::baselines::baseline_compiled(f, &self.options);
        let (function, compiled, dse_time) = if f.wants_auto_dse() {
            let r = pom_dse::auto_dse(f, &self.options).expect("DSE compiles");
            (r.function, r.compiled, r.dse_time)
        } else {
            (f.clone(), self.compile(f), Default::default())
        };
        let hls_c = compiled.hls_c();
        let speedup = compiled.qor.speedup_over(&baseline.qor);
        CodegenResult {
            function,
            compiled,
            hls_c,
            speedup_over_baseline: speedup,
            dse_time,
        }
    }
}
