//! Channel-sizing certificates: bounded-ring replay of the element
//! streams (DESIGN.md §16.3).
//!
//! A [`crate::Channel`]'s capacity is *certified* by replaying the
//! producer's push stream and every consumer's pop stream through a
//! ring of exactly the certified capacity, under the same blocking
//! rules the co-simulation uses: a pop of element `e` requires the push
//! of `e`, and the `k`-th push requires the element of push
//! `k − capacity` to be fully released (its last pop committed). The
//! replay discharges one [`ObligationKind::ChannelSized`] obligation
//! per consumer: no deadlock, and every popped value bit-identical to
//! the pushed one.

use crate::stream::stage_streams;
use crate::DataflowPlan;
use pom_dsl::MemoryState;
use pom_ir::AffineFunc;
use pom_verify::{Certificate, Obligation, ObligationKind};
use std::collections::HashMap;

/// Outcome of replaying one consumer's stream through a bounded ring.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Replay {
    /// The stream flowed through: `pushes` forwarded, `reads` served
    /// (of which `live_ins` bypassed the channel), values identical.
    Ok {
        /// Pushes forwarded through the ring.
        pushes: usize,
        /// Reads served.
        reads: usize,
        /// Reads of elements the producer never writes (seeded live-ins).
        live_ins: usize,
    },
    /// Serving read `read` requires a push whose ring slot is still
    /// occupied by element `holds` (its last read has not happened yet).
    Deadlock {
        /// Read position that wedged.
        read: usize,
        /// Flat element index still occupying the needed slot.
        holds: usize,
    },
    /// Read `read` of element `elem` popped `got` but the producer
    /// pushed `want`.
    Mismatch {
        /// Read position that diverged.
        read: usize,
        /// Flat element index.
        elem: usize,
        /// Value observed by the consumer.
        got: f64,
        /// Value pushed by the producer.
        want: f64,
    },
}

/// Replays one consumer's pop stream against the producer's push stream
/// through a ring of `capacity` slots. Streams carry `(flat, value)`
/// pairs; a shape-only replay (all values `0.0`) degrades to a pure
/// deadlock check.
pub(crate) fn replay_channel(
    pushes: &[(usize, f64)],
    reads: &[(usize, f64)],
    capacity: u64,
) -> Replay {
    let d = capacity.max(1) as usize;
    let push_index: HashMap<usize, usize> = pushes
        .iter()
        .enumerate()
        .map(|(k, (e, _))| (*e, k))
        .collect();
    let mut last_read: HashMap<usize, usize> = HashMap::new();
    for (i, (e, _)) in reads.iter().enumerate() {
        if push_index.contains_key(e) {
            last_read.insert(*e, i);
        }
    }
    let mut ring: HashMap<usize, f64> = HashMap::new();
    let mut next_push = 0usize;
    let mut live_ins = 0usize;
    for (i, (e, want)) in reads.iter().enumerate() {
        let Some(&k) = push_index.get(e) else {
            live_ins += 1;
            continue;
        };
        while next_push <= k {
            if next_push >= d {
                let (pe, _) = pushes[next_push - d];
                if last_read.get(&pe).is_some_and(|&lr| lr >= i) {
                    return Replay::Deadlock { read: i, holds: pe };
                }
            }
            let (pe, pv) = pushes[next_push];
            ring.insert(pe, pv);
            next_push += 1;
        }
        let got = ring[e];
        if got.to_bits() != want.to_bits() {
            return Replay::Mismatch {
                read: i,
                elem: *e,
                got,
                want: *want,
            };
        }
    }
    Replay::Ok {
        pushes: pushes.len(),
        reads: reads.len(),
        live_ins,
    }
}

/// The minimal deadlock-free FIFO depth for one consumer, computed
/// positionally: with a ring, push `k` reuses the slot of push
/// `k − depth`, so depth must exceed `K(lr_j) − j` for every push `j`,
/// where `lr_j` is the position of `j`'s last pop and `K(i)` is the
/// highest push index any pop up to `i` requires. Elements never popped
/// release at push time and impose nothing.
pub(crate) fn min_fifo_depth(pushes: &[usize], reads: &[usize]) -> u64 {
    let push_index: HashMap<usize, usize> =
        pushes.iter().enumerate().map(|(k, &e)| (e, k)).collect();
    let mut last_read: HashMap<usize, usize> = HashMap::new();
    let mut k_run = Vec::with_capacity(reads.len());
    let mut k = 0usize;
    let mut any = false;
    for (i, e) in reads.iter().enumerate() {
        if let Some(&p) = push_index.get(e) {
            last_read.insert(*e, i);
            k = if any { k.max(p) } else { p };
            any = true;
        }
        k_run.push(if any { Some(k) } else { None });
    }
    let mut depth = 1u64;
    for (j, e) in pushes.iter().enumerate() {
        if let Some(&lr) = last_read.get(e) {
            if let Some(kk) = k_run[lr] {
                depth = depth.max((kk - j) as u64 + 1);
            }
        }
    }
    depth
}

/// Replays every channel of `plan` over a copy of `mem0` and returns
/// one [`Certificate`] per channel, each carrying one
/// [`ObligationKind::ChannelSized`] obligation per consumer.
///
/// The stages are executed sequentially (interpreter order) against the
/// copied memory while their valued access streams are captured, so the
/// pushed and popped values compared by the replay are exactly the
/// values the sequential semantics produce.
pub fn channel_certificates(
    func: &AffineFunc,
    plan: &DataflowPlan,
    mem0: &MemoryState,
) -> Vec<Certificate> {
    let mut mem = mem0.clone();
    let streams: Vec<_> = plan
        .stages
        .iter()
        .map(|st| stage_streams(func, &st.ops, Some(&mut mem)))
        .collect();
    let mut certs = Vec::new();
    for (ci, ch) in plan.channels.iter().enumerate() {
        let s = &ch.spec;
        let kind = if s.pingpong { "ping-pong" } else { "fifo" };
        let pushes = streams[s.producer].pushes(&s.array);
        let mut obligations = Vec::new();
        for &c in &s.consumers {
            let reads = streams[c].reads.get(&s.array).cloned().unwrap_or_default();
            if s.consumers.len() > 1 && !s.pingpong {
                obligations.push(Obligation::failed(
                    ObligationKind::ChannelSized,
                    format!(
                        "`{}`: fifo with {} consumers is not replayable \
                         (multi-consumer channels must be ping-pong)",
                        s.array,
                        s.consumers.len()
                    ),
                ));
                continue;
            }
            let who = &plan.stages[c].name;
            obligations.push(match replay_channel(&pushes, &reads, s.capacity) {
                Replay::Ok {
                    pushes,
                    reads,
                    live_ins,
                } => Obligation::passed(
                    ObligationKind::ChannelSized,
                    format!(
                        "`{}` -> `{who}`: {kind} depth {} replayed {pushes} push(es) / \
                         {reads} pop(s) ({live_ins} live-in), values bit-identical, \
                         no deadlock",
                        s.array, s.capacity
                    ),
                ),
                Replay::Deadlock { read, holds } => Obligation::failed(
                    ObligationKind::ChannelSized,
                    format!(
                        "`{}` -> `{who}`: {kind} depth {} deadlocks at pop #{read} \
                         (slot still held by element {holds})",
                        s.array, s.capacity
                    ),
                ),
                Replay::Mismatch {
                    read,
                    elem,
                    got,
                    want,
                } => Obligation::failed(
                    ObligationKind::ChannelSized,
                    format!(
                        "`{}` -> `{who}`: pop #{read} of element {elem} observed \
                         {got:?} but the producer pushed {want:?}",
                        s.array
                    ),
                ),
            });
        }
        certs.push(Certificate {
            step: ci,
            rewrite: format!("channel {}: {kind} depth {}", s.array, s.capacity),
            stmt: format!(
                "{} -> {}",
                plan.stages[s.producer].name,
                s.consumers
                    .iter()
                    .map(|&c| plan.stages[c].name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            obligations,
        });
    }
    certs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_passes_in_order_stream() {
        let pushes: Vec<(usize, f64)> = (0..8).map(|i| (i, i as f64)).collect();
        let reads = pushes.clone();
        assert_eq!(
            replay_channel(&pushes, &reads, 1),
            Replay::Ok {
                pushes: 8,
                reads: 8,
                live_ins: 0
            }
        );
    }

    #[test]
    fn replay_detects_deadlock_and_min_depth_fixes_it() {
        // Pushes a,b,c,d popped as b,c,d,a: `a` occupies its slot until
        // the very last pop, so the ring needs all four slots.
        let pushes: Vec<(usize, f64)> = vec![(0, 0.5), (1, 1.5), (2, 2.5), (3, 3.5)];
        let reads: Vec<(usize, f64)> = vec![(1, 1.5), (2, 2.5), (3, 3.5), (0, 0.5)];
        let pe: Vec<usize> = pushes.iter().map(|p| p.0).collect();
        let re: Vec<usize> = reads.iter().map(|r| r.0).collect();
        assert_eq!(min_fifo_depth(&pe, &re), 4);
        assert!(matches!(
            replay_channel(&pushes, &reads, 3),
            Replay::Deadlock { read: 2, holds: 0 }
        ));
        assert!(matches!(
            replay_channel(&pushes, &reads, 4),
            Replay::Ok { .. }
        ));
    }

    #[test]
    fn replay_flags_value_divergence() {
        let pushes = vec![(0usize, 1.0), (1, 2.0)];
        let reads = vec![(0usize, 1.0), (1, 2.25)];
        assert!(matches!(
            replay_channel(&pushes, &reads, 2),
            Replay::Mismatch {
                read: 1,
                elem: 1,
                ..
            }
        ));
    }

    #[test]
    fn live_in_reads_bypass_the_ring() {
        let pushes = vec![(0usize, 1.0)];
        // Element 7 is never pushed: a seeded live-in, served without
        // blocking and without value comparison against the ring.
        let reads = vec![(7usize, 0.25), (0, 1.0)];
        assert_eq!(
            replay_channel(&pushes, &reads, 1),
            Replay::Ok {
                pushes: 1,
                reads: 2,
                live_ins: 1
            }
        );
    }

    #[test]
    fn never_popped_pushes_release_at_push_time() {
        // Push 0 is never popped; with depth 1 it must not block push 1.
        let pushes = vec![(0usize, 1.0), (1, 2.0)];
        let reads = vec![(1usize, 2.0)];
        assert!(matches!(
            replay_channel(&pushes, &reads, 1),
            Replay::Ok { .. }
        ));
        let pe = [0usize, 1];
        let re = [1usize];
        assert_eq!(min_fifo_depth(&pe, &re), 1);
    }
}
