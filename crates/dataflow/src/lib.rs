//! `pom-dataflow`: whole-model dataflow pipelining (DESIGN.md §16).
//!
//! ScaleHLS-style graph-level optimization: a multi-nest function (a
//! DNN layer stream like vgg16/resnet18, or a multi-kernel chain like
//! 2mm/3mm) is cut into *dataflow stages* that execute as concurrent
//! processes communicating through bounded channels, instead of one
//! nest after another. The crate provides:
//!
//! - **Partitioning** ([`partition`] / [`partition_affine`]): cuts the
//!   function's top-level ops into stages using the coarse-grained
//!   dependence graph (`pom-graph`) and exact interpreter-order access
//!   sets, merging any units whose concurrent execution would violate
//!   an anti or output dependence. The resulting inter-stage
//!   communication is provably forward-only and single-writer.
//! - **Channel sizing**: streaming-compatible flows get a FIFO sized
//!   from the `pom-live` flow-depth window, the exact positional
//!   minimal depth of the element streams, and a round-trip latency
//!   floor; incompatible or multi-consumer flows fall back to a
//!   ping-pong buffer of twice the communicated footprint, which never
//!   back-pressures.
//! - **Certificates** ([`channel_certificates`]): every sizing is
//!   discharged by replaying the valued element streams through a ring
//!   of the certified capacity (`pom-verify`'s `ChannelSized`
//!   obligation) — no deadlock, bit-identical values.
//!
//! The plan feeds `pom_sim::simulate_dataflow` for channel-accurate
//! co-simulation and the DSE's dataflow mode for rate-matching.

#![warn(missing_docs)]

mod certify;
mod stream;

pub use certify::channel_certificates;

use pom_dsl::Function;
use pom_graph::DepGraph;
use pom_ir::{AffineFunc, AffineOp};
use pom_live::LiveReport;
use pom_sim::{ChannelSpec, StageSpec};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// FIFO capacity floor, in elements. A FIFO shallower than the
/// producer→consumer round-trip latency throttles the stream even when
/// the live window is tiny (the k-th push waits for the release of push
/// `k − capacity`, whose pop finishes a full memory round-trip after
/// its push), so capacities are floored well above the ~12-cycle
/// round-trip of the cost model at II = 1.
pub const FIFO_LATENCY_FLOOR: u64 = 16;

/// One sized inter-stage channel of a [`DataflowPlan`].
#[derive(Clone, Debug, PartialEq)]
pub struct Channel {
    /// The simulator-facing spec (array, endpoints, capacity, kind).
    pub spec: ChannelSpec,
    /// Static minimal buffer depth from `pom-live`'s flow-depth
    /// analysis, when a matching producer→consumer row exists.
    pub window_depth: Option<u64>,
    /// Exact positional minimal deadlock-free depth of the element
    /// streams (maximum over consumers).
    pub min_depth: u64,
    /// Distinct elements the producer pushes (the communicated
    /// footprint).
    pub footprint: u64,
}

/// A whole-function dataflow plan: stages, their statements, and sized
/// channels.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DataflowPlan {
    /// Function name.
    pub func: String,
    /// The stages, each a contiguous run of top-level ops.
    pub stages: Vec<StageSpec>,
    /// Statement (compute) names per stage, in program order.
    pub stage_stmts: Vec<Vec<String>>,
    /// Sized inter-stage channels.
    pub channels: Vec<Channel>,
}

impl DataflowPlan {
    /// True when the plan has more than one stage — i.e. dataflow
    /// execution can overlap anything at all.
    pub fn is_pipeline(&self) -> bool {
        self.stages.len() > 1
    }

    /// The channel specs, ready for `pom_sim::simulate_dataflow`.
    pub fn channel_specs(&self) -> Vec<ChannelSpec> {
        self.channels.iter().map(|c| c.spec.clone()).collect()
    }

    /// The stage a statement belongs to.
    pub fn stage_of_stmt(&self, stmt: &str) -> Option<usize> {
        self.stage_stmts
            .iter()
            .position(|ss| ss.iter().any(|s| s == stmt))
    }

    /// Plain-text rendering (part of the `--emit dataflow` view).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== pom-dataflow plan ({}) ==", self.func);
        let _ = writeln!(
            s,
            "stages: {} ({})",
            self.stages.len(),
            if self.is_pipeline() {
                "dataflow pipeline"
            } else {
                "single stage, no overlap"
            }
        );
        for (i, st) in self.stages.iter().enumerate() {
            let _ = writeln!(
                s,
                "  {:<16} ops {:?}  stmts [{}]",
                st.name,
                st.ops,
                self.stage_stmts[i].join(", ")
            );
        }
        if !self.channels.is_empty() {
            let _ = writeln!(s, "channels: {}", self.channels.len());
            for c in &self.channels {
                let spec = &c.spec;
                let _ = writeln!(
                    s,
                    "  {:<12} {} -> {}  {} depth {} (window {}, min {}, footprint {})",
                    spec.array,
                    self.stages[spec.producer].name,
                    spec.consumers
                        .iter()
                        .map(|&i| self.stages[i].name.as_str())
                        .collect::<Vec<_>>()
                        .join(", "),
                    if spec.pingpong { "ping-pong" } else { "fifo" },
                    spec.capacity,
                    c.window_depth
                        .map_or_else(|| "-".to_string(), |d| d.to_string()),
                    c.min_depth,
                    c.footprint,
                );
            }
        }
        s
    }

    /// Total channel buffer footprint in elements (FIFO capacities plus
    /// ping-pong double buffers) — the BRAM the dataflow conversion
    /// *adds* relative to the shared-memory schedule.
    pub fn buffer_elems(&self) -> u64 {
        self.channels.iter().map(|c| c.spec.capacity).sum()
    }
}

/// Per-unit (top-level op) access summary used by the partitioner.
struct Unit {
    writes: BTreeSet<String>,
    reads: BTreeSet<String>,
    stmts: Vec<String>,
}

fn unit_of(op: &AffineOp) -> Unit {
    let mut u = Unit {
        writes: BTreeSet::new(),
        reads: BTreeSet::new(),
        stmts: Vec::new(),
    };
    op.walk(&mut |o| {
        if let AffineOp::Store(s) = o {
            u.writes.insert(s.dest.array.clone());
            for a in s.value.loads() {
                u.reads.insert(a.array.clone());
            }
            if !u.stmts.iter().any(|n| n == &s.stmt) {
                u.stmts.push(s.stmt.clone());
            }
        }
    });
    u
}

/// Partitions `affine` into dataflow stages, additionally folding in
/// the coarse-grained dependence edges of `f`'s graph (`pom-graph`) as
/// merge constraints and using `live`'s flow depths for channel sizing.
///
/// This is the production entry point: the DSE and `pomc` hold the
/// source [`Function`] alongside the compiled [`AffineFunc`].
pub fn partition(f: &Function, affine: &AffineFunc, live: &LiveReport) -> DataflowPlan {
    partition_impl(affine, live, Some(&DepGraph::build(f)))
}

/// Partitions from the affine function alone, deriving all dependence
/// constraints from its exact access sets. Used by tests and by callers
/// without the source-level function.
pub fn partition_affine(affine: &AffineFunc, live: &LiveReport) -> DataflowPlan {
    partition_impl(affine, live, None)
}

fn partition_impl(
    affine: &AffineFunc,
    live: &LiveReport,
    graph: Option<&DepGraph>,
) -> DataflowPlan {
    let units: Vec<Unit> = affine.body.iter().map(unit_of).collect();
    let n = units.len();

    // A dataflow stage boundary after unit `i` is legal only when no
    // anti or output dependence crosses it backwards: concurrent stages
    // reorder execution across the cut, which is safe for forward flow
    // (the channel blocks the consumer) but not for a later unit that
    // overwrites what an earlier unit reads or writes. Each such pair
    // forbids every boundary between the two units.
    let mut cut_ok = vec![true; n.saturating_sub(1)];
    let mut forbid = |u: usize, w: usize| {
        for c in cut_ok.iter_mut().take(w).skip(u) {
            *c = false;
        }
    };
    for u in 0..n {
        for w in (u + 1)..n {
            let output = units[u].writes.intersection(&units[w].writes).count() > 0;
            let anti = units[u]
                .reads
                .iter()
                .any(|a| units[w].writes.contains(a) && !units[u].writes.contains(a));
            if output || anti {
                forbid(u, w);
            }
        }
    }
    // Fold in the coarse-grained graph: its anti/output edges (the
    // edges that are not producer→consumer flows) forbid the same
    // boundaries at statement granularity.
    if let Some(g) = graph {
        let stage_of_stmt = |name: &str| -> Option<usize> {
            units.iter().position(|u| u.stmts.iter().any(|s| s == name))
        };
        for e in g.edges() {
            let is_flow =
                g.nodes()[e.from].store == e.array && g.nodes()[e.to].loads.contains(&e.array);
            if is_flow {
                continue;
            }
            let (Some(u), Some(w)) = (
                stage_of_stmt(&g.nodes()[e.from].name),
                stage_of_stmt(&g.nodes()[e.to].name),
            ) else {
                continue;
            };
            if u < w {
                forbid(u, w);
            } else if w < u {
                forbid(w, u);
            }
        }
    }

    // Stages = maximal runs between legal boundaries.
    let mut stage_units: Vec<Vec<usize>> = Vec::new();
    let mut run = Vec::new();
    // `cut_ok[i]` is the boundary after unit `i`; the final unit always
    // closes the last run.
    for (i, ok) in cut_ok
        .iter()
        .copied()
        .chain(std::iter::once(true))
        .enumerate()
    {
        run.push(i);
        if ok {
            stage_units.push(std::mem::take(&mut run));
        }
    }

    let mut stages = Vec::new();
    let mut stage_stmts = Vec::new();
    let mut seen = BTreeSet::new();
    for (si, us) in stage_units.iter().enumerate() {
        let stmts: Vec<String> = us
            .iter()
            .flat_map(|&u| units[u].stmts.iter().cloned())
            .collect();
        let mut name = stmts.first().cloned().unwrap_or_else(|| format!("s{si}"));
        if !seen.insert(name.clone()) {
            name = format!("{name}#{si}");
            seen.insert(name.clone());
        }
        stages.push(StageSpec {
            name,
            ops: us.clone(),
        });
        stage_stmts.push(stmts);
    }

    // Channels: single-writer arrays crossing a stage boundary. After
    // the merges above every array has at most one writing stage and
    // every reader of it sits strictly later — assert exactly that
    // (the partitioner's forward-only legality invariant).
    let mut writer: BTreeMap<&str, usize> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (si, us) in stage_units.iter().enumerate() {
        for &u in us {
            for a in &units[u].writes {
                let prev = writer.insert(a.as_str(), si);
                assert!(
                    prev.is_none_or(|p| p == si),
                    "partitioner invariant: `{a}` written by two stages"
                );
            }
            for a in &units[u].reads {
                let rs = readers.entry(a.as_str()).or_default();
                if rs.last() != Some(&si) {
                    rs.push(si);
                }
            }
        }
    }
    let streams: Vec<_> = stages
        .iter()
        .map(|st| stream::stage_streams(affine, &st.ops, None))
        .collect();
    let mut channels = Vec::new();
    for (array, &p) in &writer {
        let consumers: Vec<usize> = readers
            .get(array)
            .map(|rs| rs.iter().copied().filter(|&c| c != p).collect())
            .unwrap_or_default();
        if consumers.is_empty() {
            continue;
        }
        assert!(
            consumers.iter().all(|&c| c > p),
            "partitioner invariant: `{array}` read by a stage before its writer"
        );
        let pushes: Vec<usize> = streams[p].pushes(array).iter().map(|&(e, _)| e).collect();
        let footprint = pushes.len() as u64;
        let min_depth = consumers
            .iter()
            .map(|&c| {
                let reads: Vec<usize> = streams[c]
                    .reads
                    .get(*array)
                    .map(|rs| rs.iter().map(|&(e, _)| e).collect())
                    .unwrap_or_default();
                certify::min_fifo_depth(&pushes, &reads)
            })
            .max()
            .unwrap_or(1);
        let window_depth = live
            .depths
            .iter()
            .filter(|d| {
                d.array == *array
                    && stage_stmts[p].contains(&d.producer)
                    && consumers
                        .iter()
                        .any(|&c| stage_stmts[c].contains(&d.consumer))
            })
            .map(|d| d.depth)
            .max();
        // Streaming-compatible single-consumer flows get a FIFO sized
        // from the exact positional minimal depth (floored against the
        // round-trip latency). The static live window saturates to the
        // full array for cross-nest flows (it describes the sequential
        // order), so streaming compatibility is judged dynamically: a
        // consumption order keeping more than half the footprint in
        // flight (e.g. a transposed or reversed reader), or multiple
        // consumers, falls back to ping-pong — 2× footprint, which the
        // push rule can never exhaust.
        let streamable = min_depth <= (footprint / 2).max(FIFO_LATENCY_FLOOR);
        let fifo = consumers.len() == 1 && streamable;
        let (capacity, pingpong) = if fifo {
            (min_depth.max(FIFO_LATENCY_FLOOR), false)
        } else {
            (footprint.max(1) * 2, true)
        };
        // Safety net: a shape-only replay at the chosen capacity. The
        // positional minimal depth makes a FIFO deadlock impossible by
        // construction; if it ever fires, retry as ping-pong.
        let (capacity, pingpong) = if !pingpong {
            let push_vals: Vec<(usize, f64)> = pushes.iter().map(|&e| (e, 0.0)).collect();
            let c0 = consumers[0];
            let reads: Vec<(usize, f64)> = streams[c0]
                .reads
                .get(*array)
                .map(|rs| rs.iter().map(|&(e, _)| (e, 0.0)).collect())
                .unwrap_or_default();
            match certify::replay_channel(&push_vals, &reads, capacity) {
                certify::Replay::Deadlock { .. } => (footprint.max(1) * 2, true),
                _ => (capacity, pingpong),
            }
        } else {
            (capacity, pingpong)
        };
        channels.push(Channel {
            spec: ChannelSpec {
                array: (*array).to_string(),
                producer: p,
                consumers,
                capacity,
                pingpong,
            },
            window_depth,
            min_depth,
            footprint,
        });
    }

    DataflowPlan {
        func: affine.name.clone(),
        stages,
        stage_stmts,
        channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{BinOp, DataType, Expr, MemoryState};
    use pom_hls::{CostModel, DepSummary};
    use pom_ir::interp::execute_func;
    use pom_ir::{ForOp, HlsAttrs, MemRefDecl, StoreOp};
    use pom_live::analyze_func;
    use pom_poly::{AccessFn, Bound, LinearExpr};
    use pom_sim::{simulate, simulate_dataflow};

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn pipe_for(iv: &str, lb: i64, ub: i64, body: Vec<AffineOp>) -> AffineOp {
        AffineOp::For(ForOp {
            iv: iv.into(),
            lbs: vec![cb(lb)],
            ubs: vec![cb(ub)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..HlsAttrs::none()
            },
            extra: Vec::new(),
            body,
        })
    }

    fn st(stmt: &str, array: &str, idx: LinearExpr, value: Expr) -> AffineOp {
        AffineOp::Store(StoreOp {
            stmt: stmt.into(),
            dest: AccessFn::new(array, vec![idx]),
            value,
        })
    }

    fn ld(array: &str, idx: LinearExpr) -> Expr {
        Expr::Load(AccessFn::new(array, vec![idx]))
    }

    fn seeded(f: &AffineFunc, seed: u64) -> MemoryState {
        let mut mem = MemoryState::new();
        for m in &f.memrefs {
            let salt: u64 = m.name.bytes().map(u64::from).sum();
            mem.insert(
                m.name.clone(),
                pom_dsl::ArrayData::from_fn(&m.shape, |i| {
                    ((i as u64).wrapping_mul(0x9E37) ^ (seed ^ salt)) as i64 as f64 % 97.0 / 7.0
                }),
            );
        }
        mem
    }

    /// A -> T -> U -> B elementwise chain; `reverse` makes the last
    /// consumer read its input backwards (streaming-incompatible).
    fn chain3(n: i64, reverse: bool) -> AffineFunc {
        let mut f = AffineFunc::new("chain3");
        for name in ["A", "T", "U", "B"] {
            f.memrefs
                .push(MemRefDecl::new(name, &[n as usize], DataType::F32));
        }
        let add1 = Expr::Binary(
            BinOp::Add,
            Box::new(ld("A", LinearExpr::var("i"))),
            Box::new(Expr::Const(1.0)),
        );
        f.body.push(pipe_for(
            "i",
            0,
            n - 1,
            vec![st("p", "T", LinearExpr::var("i"), add1)],
        ));
        let dbl = Expr::Binary(
            BinOp::Mul,
            Box::new(ld("T", LinearExpr::var("j"))),
            Box::new(Expr::Const(2.0)),
        );
        f.body.push(pipe_for(
            "j",
            0,
            n - 1,
            vec![st("q", "U", LinearExpr::var("j"), dbl)],
        ));
        let read_idx = if reverse {
            let mut e = LinearExpr::term("k", -1);
            e.add_constant(n - 1);
            e
        } else {
            LinearExpr::var("k")
        };
        let dec = Expr::Binary(
            BinOp::Sub,
            Box::new(ld("U", read_idx)),
            Box::new(Expr::Const(3.0)),
        );
        f.body.push(pipe_for(
            "k",
            0,
            n - 1,
            vec![st("r", "B", LinearExpr::var("k"), dec)],
        ));
        f
    }

    #[test]
    fn forward_chain_partitions_into_streaming_fifos() {
        let f = chain3(64, false);
        let live = analyze_func(&f);
        let plan = partition_affine(&f, &live);
        assert_eq!(plan.stages.len(), 3);
        assert!(plan.is_pipeline());
        assert_eq!(plan.stage_stmts, vec![vec!["p"], vec!["q"], vec!["r"]]);
        assert_eq!(plan.channels.len(), 2);
        for c in &plan.channels {
            assert!(!c.spec.pingpong, "in-order flow should stream");
            assert_eq!(c.min_depth, 1);
            assert_eq!(c.spec.capacity, FIFO_LATENCY_FLOOR);
            assert!(c.spec.consumers.iter().all(|&s| s > c.spec.producer));
        }
        let text = plan.render();
        assert!(text.contains("dataflow pipeline"));
        assert!(text.contains("fifo depth 16"));
    }

    #[test]
    fn reversed_consumer_falls_back_to_pingpong() {
        let f = chain3(64, true);
        let live = analyze_func(&f);
        let plan = partition_affine(&f, &live);
        let u = plan
            .channels
            .iter()
            .find(|c| c.spec.array == "U")
            .expect("channel on U");
        assert!(u.spec.pingpong, "reversed reads cannot stream");
        assert_eq!(u.min_depth, 64, "whole array in flight");
        assert_eq!(u.spec.capacity, 128, "2x footprint");
        let t = plan
            .channels
            .iter()
            .find(|c| c.spec.array == "T")
            .expect("channel on T");
        assert!(!t.spec.pingpong, "upstream flow still streams");
    }

    #[test]
    fn anti_dependence_merges_stages() {
        // Unit 0 reads A into T; unit 1 overwrites A. Concurrent
        // execution would race, so they must share a stage.
        let n = 16i64;
        let mut f = AffineFunc::new("anti");
        for name in ["A", "T"] {
            f.memrefs
                .push(MemRefDecl::new(name, &[n as usize], DataType::F32));
        }
        f.body.push(pipe_for(
            "i",
            0,
            n - 1,
            vec![st(
                "p",
                "T",
                LinearExpr::var("i"),
                ld("A", LinearExpr::var("i")),
            )],
        ));
        f.body.push(pipe_for(
            "j",
            0,
            n - 1,
            vec![st("q", "A", LinearExpr::var("j"), Expr::Const(0.0))],
        ));
        let live = analyze_func(&f);
        let plan = partition_affine(&f, &live);
        assert_eq!(plan.stages.len(), 1, "anti dependence forbids the cut");
        assert!(plan.channels.is_empty());
        assert!(!plan.is_pipeline());
    }

    #[test]
    fn plan_certifies_and_cosimulates_bit_identically() {
        let f = chain3(64, false);
        let live = analyze_func(&f);
        let plan = partition_affine(&f, &live);
        let mem0 = seeded(&f, 7);

        // Every channel sizing certificate replays.
        let certs = channel_certificates(&f, &plan, &mem0);
        assert_eq!(certs.len(), 2);
        for c in &certs {
            assert!(c.passed(), "certificate failed: {:?}", c);
        }

        // Co-simulation: bit-identical memory, strictly fewer cycles
        // than the sequential schedule.
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let mut df_mem = mem0.clone();
        let report = simulate_dataflow(
            &f,
            &deps,
            &plan.stages,
            &plan.channel_specs(),
            &mut df_mem,
            &model,
        );
        assert!(!report.deadlock);
        let mut seq_mem = mem0.clone();
        let seq = simulate(&f, &deps, &mut seq_mem, &model);
        assert!(
            report.cycles < seq.cycles,
            "dataflow {} vs sequential {}",
            report.cycles,
            seq.cycles
        );
        let mut ref_mem = mem0.clone();
        execute_func(&f, &mut ref_mem);
        for m in &f.memrefs {
            let got = df_mem.array(&m.name).unwrap().data();
            let want = ref_mem.array(&m.name).unwrap().data();
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits(), "{} diverged", m.name);
            }
        }
    }

    #[test]
    fn undersized_channel_fails_its_certificate() {
        let f = chain3(64, true);
        let live = analyze_func(&f);
        let mut plan = partition_affine(&f, &live);
        // Tamper: force the reversed-read channel into a too-shallow
        // FIFO. The replay must refuse to certify it.
        let u = plan
            .channels
            .iter_mut()
            .find(|c| c.spec.array == "U")
            .unwrap();
        u.spec.pingpong = false;
        u.spec.capacity = 8;
        let mem0 = seeded(&f, 7);
        let certs = channel_certificates(&f, &plan, &mem0);
        let bad = certs
            .iter()
            .find(|c| c.rewrite.contains("channel U"))
            .unwrap();
        assert!(!bad.passed());
        let detail = &bad.failures().next().unwrap().detail;
        assert!(detail.contains("deadlocks"), "got: {detail}");
    }
}
