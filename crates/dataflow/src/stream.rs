//! Interpreter-order access-stream extraction.
//!
//! Channel sizing and certificate replay both need the *order* in which
//! a stage touches each array's elements — the producer's store stream
//! defines the push order (its last write of an element is the push),
//! the consumer's load stream defines the pop order. This module walks
//! a stage's top-level ops exactly like `ir::interp::execute_func`
//! (same bound evaluation, same guard semantics) and records every
//! access as a flat element index, optionally executing the stores so
//! that downstream stages observe produced values.

use pom_dsl::{interp::eval_expr, MemoryState};
use pom_ir::{AffineFunc, AffineOp};
use pom_poly::AccessFn;
use std::collections::HashMap;

/// Ordered per-array access streams of one stage.
///
/// Values are the loaded/stored `f64`s when the walk executed against a
/// [`MemoryState`], and `0.0` placeholders for a shape-only walk.
#[derive(Clone, Debug, Default)]
pub(crate) struct StageStreams {
    /// Every store, per array, in interpreter order: `(flat, value)`.
    pub writes: HashMap<String, Vec<(usize, f64)>>,
    /// Every load, per array, in interpreter order: `(flat, value)`.
    pub reads: HashMap<String, Vec<(usize, f64)>>,
}

impl StageStreams {
    /// The push stream of `array`: its stores filtered to each element's
    /// *last* write, preserving the order in which those last writes
    /// occur. This matches the channel semantics of
    /// `pom_sim::simulate_dataflow`, where a push is the producer's
    /// final write of an element.
    pub fn pushes(&self, array: &str) -> Vec<(usize, f64)> {
        let Some(ws) = self.writes.get(array) else {
            return Vec::new();
        };
        let mut last: HashMap<usize, usize> = HashMap::new();
        for (i, (e, _)) in ws.iter().enumerate() {
            last.insert(*e, i);
        }
        ws.iter()
            .enumerate()
            .filter(|(i, (e, _))| last[e] == *i)
            .map(|(_, &ev)| ev)
            .collect()
    }
}

/// Declared shapes by array name.
pub(crate) fn shapes_of(func: &AffineFunc) -> HashMap<String, Vec<usize>> {
    func.memrefs
        .iter()
        .map(|m| (m.name.clone(), m.shape.clone()))
        .collect()
}

/// Flattens an access under `env` with the same row-major convention as
/// `ArrayData::flat_index` and the simulator's element ids.
fn flat_of(a: &AccessFn, shape: &[usize], env: &HashMap<String, i64>) -> usize {
    assert_eq!(a.indices.len(), shape.len(), "index rank mismatch");
    let mut flat = 0usize;
    for (d, (e, &n)) in a.indices.iter().zip(shape).enumerate() {
        let i = e.eval_partial(env);
        assert!(
            i >= 0 && (i as usize) < n,
            "index {i} out of bounds for dim {d} (size {n}) of {}",
            a.array
        );
        flat = flat * n + i as usize;
    }
    flat
}

/// Walks the stage made of `func.body[ops]` in interpreter order and
/// returns its access streams. With `mem`, every store is executed
/// (loads read the current memory, the stored value is recorded), so
/// walking stages sequentially reproduces `execute_func` exactly.
pub(crate) fn stage_streams(
    func: &AffineFunc,
    ops: &[usize],
    mut mem: Option<&mut MemoryState>,
) -> StageStreams {
    let shapes = shapes_of(func);
    let mut st = StageStreams::default();
    let mut env = HashMap::new();
    for &i in ops {
        walk_op(&func.body[i], &mut env, &mut mem, &shapes, &mut st);
    }
    st
}

fn walk_op(
    op: &AffineOp,
    env: &mut HashMap<String, i64>,
    mem: &mut Option<&mut MemoryState>,
    shapes: &HashMap<String, Vec<usize>>,
    st: &mut StageStreams,
) {
    match op {
        AffineOp::For(l) => {
            let lb = l
                .lbs
                .iter()
                .map(|b| b.eval_lower(env))
                .max()
                .expect("loop without lower bound");
            let ub = l
                .ubs
                .iter()
                .map(|b| b.eval_upper(env))
                .min()
                .expect("loop without upper bound");
            for v in lb..=ub {
                env.insert(l.iv.clone(), v);
                for o in &l.body {
                    walk_op(o, env, mem, shapes, st);
                }
            }
            env.remove(&l.iv);
        }
        AffineOp::If(i) => {
            if i.conds.iter().all(|c| c.satisfied(env)) {
                for o in &i.body {
                    walk_op(o, env, mem, shapes, st);
                }
            }
        }
        AffineOp::Store(s) => {
            for a in s.value.loads() {
                let flat = flat_of(a, &shapes[&a.array], env);
                let v = mem.as_deref().map_or(0.0, |m| m.load(a, env));
                st.reads.entry(a.array.clone()).or_default().push((flat, v));
            }
            let flat = flat_of(&s.dest, &shapes[&s.dest.array], env);
            let v = if let Some(m) = mem.as_deref_mut() {
                let v = eval_expr(&s.value, env, m);
                m.store(&s.dest, env, v);
                v
            } else {
                0.0
            };
            st.writes
                .entry(s.dest.array.clone())
                .or_default()
                .push((flat, v));
        }
    }
}
