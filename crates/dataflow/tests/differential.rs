//! Differential property: on randomized 2–4 stage producer/consumer
//! chains — shifted consumer windows, a single-cell reduction stage,
//! a reversed (ping-pong-forcing) reader, an empty-extent tail nest —
//! the concurrent-process dataflow simulation must leave memory
//! bit-identical to the sequential affine interpreter, never deadlock,
//! and every `ChannelSized` certificate the partitioner emits must
//! replay. The two sides execute independently — per-stage processes
//! over bounded blocking channels vs one in-order interpreter walk — so
//! a divergence means the partitioner cut an illegal boundary, sized a
//! channel too shallow, or the channel model leaks.
//!
//! The vendored proptest has no shrinking, so failures are minimized by
//! a greedy pass here and persisted as named corpus kernels under the
//! repo-root `tests/corpus/`; `corpus_regressions_replay` re-runs every
//! persisted kernel on each test run.

use pom_dataflow::{channel_certificates, partition_affine};
use pom_dsl::{BinOp, DataType, Expr};
use pom_hls::{CostModel, DepSummary};
use pom_ir::{execute_func, AffineFunc, AffineOp, ForOp, HlsAttrs, MemRefDecl, StoreOp};
use pom_live::{analyze_func, seeded_memory};
use pom_poly::{AccessFn, Bound, LinearExpr};
use pom_sim::simulate_dataflow;
use pom_verify::ObligationStatus;
use proptest::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 42;

/// One randomized dataflow chain `A -> T1 -> ... -> B (-> Z)`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ChainSpec {
    /// Compute stages in the chain (2..=4).
    stages: usize,
    /// Trip count of every nest.
    extent: i64,
    /// Stage 1 reads `T1[i - shift]` over `i in shift..extent-1` (a
    /// shifted window; cells below `shift` stay unwritten live-ins).
    shift: i64,
    /// The last stage reads its input reversed (`[extent-1-i]`), which
    /// is never streaming-compatible and must fall back to ping-pong.
    reverse: bool,
    /// Stage 1 reduces its input into a single cell (`T2[0] += T1[i]`)
    /// instead of mapping element-wise.
    reduce: bool,
    /// A trailing nest with an empty extent (`0..=-1`) reads the chain
    /// output — a stage that statically consumes but never executes.
    tail_empty: bool,
}

impl ChainSpec {
    /// Effective shift, clamped so the shifted nest is never empty.
    fn eff_shift(&self) -> i64 {
        self.shift.min(self.extent - 1).max(0)
    }

    /// One-line corpus serialization (the format `parse` reads back).
    fn serialize(&self) -> String {
        format!(
            "stages={} extent={} shift={} reverse={} reduce={} tail={}",
            self.stages,
            self.extent,
            self.shift,
            self.reverse as u8,
            self.reduce as u8,
            self.tail_empty as u8
        )
    }

    /// Parses [`ChainSpec::serialize`]'s format. Unknown keys are
    /// rejected so a stale corpus file fails loudly instead of testing
    /// nothing.
    fn parse(line: &str) -> Result<ChainSpec, String> {
        let mut spec = ChainSpec {
            stages: 2,
            extent: 2,
            shift: 0,
            reverse: false,
            reduce: false,
            tail_empty: false,
        };
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad field `{field}`"))?;
            let v: i64 = value.parse().map_err(|_| format!("bad value `{field}`"))?;
            match key {
                "stages" => spec.stages = v as usize,
                "extent" => spec.extent = v,
                "shift" => spec.shift = v,
                "reverse" => spec.reverse = v != 0,
                "reduce" => spec.reduce = v != 0,
                "tail" => spec.tail_empty = v != 0,
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        if !(2..=4).contains(&spec.stages) || spec.extent < 1 {
            return Err(format!("out-of-range spec `{line}`"));
        }
        Ok(spec)
    }
}

fn cb(v: i64) -> Bound {
    Bound::new(LinearExpr::constant_expr(v), 1)
}

fn fl(iv: &str, lb: i64, ub: i64, body: Vec<AffineOp>) -> AffineOp {
    AffineOp::For(ForOp {
        iv: iv.to_string(),
        lbs: vec![cb(lb)],
        ubs: vec![cb(ub)],
        attrs: HlsAttrs::default(),
        extra: Vec::new(),
        body,
    })
}

fn ld(array: &str, idx: LinearExpr) -> Expr {
    Expr::Load(AccessFn::new(array, vec![idx]))
}

fn st(stmt: &str, array: &str, idx: LinearExpr, value: Expr) -> AffineOp {
    AffineOp::Store(StoreOp {
        stmt: stmt.to_string(),
        dest: AccessFn::new(array, vec![idx]),
        value,
    })
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::Binary(BinOp::Add, Box::new(a), Box::new(b))
}

/// `i + off` / `extent-1 - i` index helpers.
fn fwd(off: i64) -> LinearExpr {
    let mut e = LinearExpr::var("i");
    e.add_constant(off);
    e
}

fn rev(extent: i64) -> LinearExpr {
    let mut e = LinearExpr::term("i", -1);
    e.add_constant(extent - 1);
    e
}

/// The chain's array names: `A`, `T1..`, `B` — stage `k` reads index
/// `k`, writes index `k+1`.
fn arrays(spec: &ChainSpec) -> Vec<String> {
    let mut v = vec!["A".to_string()];
    for t in 1..spec.stages {
        v.push(format!("T{t}"));
    }
    v.push("B".to_string());
    v
}

/// Builds the chain kernel described by the spec.
fn build(spec: &ChainSpec) -> AffineFunc {
    let mut f = AffineFunc::new("df_rand");
    let names = arrays(spec);
    let shape = [spec.extent as usize];
    for name in &names {
        f.memrefs.push(MemRefDecl::new(name, &shape, DataType::F32));
    }
    let e = spec.extent;
    let last_k = spec.stages - 1;

    // Stage 0: T1[i] = A[i] + 1.
    f.body.push(fl(
        "i",
        0,
        e - 1,
        vec![st(
            "s0",
            &names[1],
            fwd(0),
            add(ld(&names[0], fwd(0)), Expr::Const(1.0)),
        )],
    ));
    // Stages 1..: each reads the previous array, writes the next.
    for k in 1..spec.stages {
        let stmt = format!("s{k}");
        let (src, dst) = (&names[k], &names[k + 1]);
        let op = if spec.reduce && k == 1 {
            // Reduction: every iteration accumulates into dst[0]; the
            // consumer blocks on element 0 until the last write lands.
            fl(
                "i",
                0,
                e - 1,
                vec![st(
                    &stmt,
                    dst,
                    LinearExpr::constant_expr(0),
                    add(ld(dst, LinearExpr::constant_expr(0)), ld(src, fwd(0))),
                )],
            )
        } else if spec.reverse && k == last_k {
            fl(
                "i",
                0,
                e - 1,
                vec![st(
                    &stmt,
                    dst,
                    fwd(0),
                    add(ld(src, rev(e)), Expr::Const(2.0)),
                )],
            )
        } else if k == 1 {
            let s = spec.eff_shift();
            fl(
                "i",
                s,
                e - 1,
                vec![st(
                    &stmt,
                    dst,
                    fwd(0),
                    add(ld(src, fwd(-s)), Expr::Const(2.0)),
                )],
            )
        } else {
            fl(
                "i",
                0,
                e - 1,
                vec![st(
                    &stmt,
                    dst,
                    fwd(0),
                    add(ld(src, fwd(0)), Expr::Const(2.0)),
                )],
            )
        };
        f.body.push(op);
    }
    if spec.tail_empty {
        // A nest whose domain is empty: it statically reads B but never
        // runs — the channel into it sees pushes and zero pops.
        f.memrefs.push(MemRefDecl::new("Z", &shape, DataType::F32));
        f.body.push(fl(
            "i",
            0,
            -1,
            vec![st(
                "tail",
                "Z",
                fwd(0),
                add(ld(&names[spec.stages], fwd(0)), Expr::Const(0.5)),
            )],
        ));
    }
    f
}

/// The differential check: partition, co-simulate, compare memory bit
/// for bit against the interpreter, and replay every channel-sizing
/// certificate.
fn check(spec: &ChainSpec) -> Result<(), String> {
    let f = build(spec);
    let live = analyze_func(&f);
    let plan = partition_affine(&f, &live);
    let want_stages = spec.stages + spec.tail_empty as usize;
    if plan.stages.len() != want_stages {
        return Err(format!(
            "partitioner cut {} stage(s), expected {want_stages}, for {spec:?}",
            plan.stages.len()
        ));
    }
    let deps = DepSummary::new();
    let mut df_mem = seeded_memory(&f, SEED);
    let report = simulate_dataflow(
        &f,
        &deps,
        &plan.stages,
        &plan.channel_specs(),
        &mut df_mem,
        &CostModel::vitis_f32(),
    );
    if report.deadlock {
        return Err(format!("dataflow execution deadlocked for {spec:?}"));
    }
    let mut interp_mem = seeded_memory(&f, SEED);
    execute_func(&f, &mut interp_mem);
    if df_mem != interp_mem {
        return Err(format!(
            "dataflow memory diverged from the interpreter for {spec:?}"
        ));
    }
    let mem0 = seeded_memory(&f, SEED);
    for c in channel_certificates(&f, &plan, &mem0) {
        for o in &c.obligations {
            if o.status != ObligationStatus::Passed {
                return Err(format!(
                    "certificate `{}` failed replay ({}) for {spec:?}",
                    c.rewrite, o.detail
                ));
            }
        }
    }
    Ok(())
}

// ---- corpus persistence -------------------------------------------------

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Greedy minimization: repeatedly try the simplifications below and
/// keep any that still fails `run`, until none does.
fn minimize(mut spec: ChainSpec, run: impl Fn(&ChainSpec) -> Result<(), String>) -> ChainSpec {
    loop {
        let mut candidates = Vec::new();
        for flag in [
            ChainSpec {
                tail_empty: false,
                ..spec.clone()
            },
            ChainSpec {
                reverse: false,
                ..spec.clone()
            },
            ChainSpec {
                reduce: false,
                ..spec.clone()
            },
        ] {
            if flag != spec {
                candidates.push(flag);
            }
        }
        if spec.shift > 0 {
            candidates.push(ChainSpec {
                shift: 0,
                ..spec.clone()
            });
        }
        if spec.stages > 2 {
            candidates.push(ChainSpec {
                stages: spec.stages - 1,
                ..spec.clone()
            });
        }
        if spec.extent > 1 {
            candidates.push(ChainSpec {
                extent: spec.extent - 1,
                ..spec.clone()
            });
        }
        match candidates.into_iter().find(|c| run(c).is_err()) {
            Some(smaller) => spec = smaller,
            None => return spec,
        }
    }
}

/// Persists a minimized failing spec as a named corpus kernel and
/// returns its path. Replayed by `corpus_regressions_replay`.
fn persist(spec: &ChainSpec, property: &str) -> PathBuf {
    let line = spec.serialize();
    let mut h: u64 = 0xcbf29ce484222325;
    for b in line.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let dir = corpus_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("dataflow-diff-{:08x}.kernel", h as u32));
    let _ = std::fs::write(
        &path,
        format!(
            "# minimized failure of `{property}` (crates/dataflow/tests/differential.rs)\n\
             # replayed on every run by corpus_regressions_replay\n{line}\n"
        ),
    );
    path
}

fn fail(
    spec: ChainSpec,
    property: &str,
    err: String,
    run: impl Fn(&ChainSpec) -> Result<(), String>,
) -> ! {
    let min = minimize(spec, &run);
    let min_err = run(&min).err().unwrap_or_else(|| err.clone());
    let path = persist(&min, property);
    panic!(
        "{min_err}\nminimized kernel persisted at {}",
        path.display()
    );
}

// ---- the properties -----------------------------------------------------

fn arb_spec() -> impl Strategy<Value = ChainSpec> {
    (
        (2usize..=4, 1i64..=8, 0i64..=2),
        (0u8..=1, 0u8..=1, 0u8..=1),
    )
        .prop_map(
            |((stages, extent, shift), (reverse, reduce, tail))| ChainSpec {
                stages,
                extent,
                shift,
                reverse: reverse == 1,
                reduce: reduce == 1,
                tail_empty: tail == 1,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dataflow execution is bit-identical to the interpreter, never
    /// deadlocks, and every channel certificate replays, whatever the
    /// chain shape.
    #[test]
    fn dataflow_matches_interpreter_and_certificates_replay(spec in arb_spec()) {
        if let Err(e) = check(&spec) {
            fail(spec, "dataflow_matches_interpreter_and_certificates_replay", e, check);
        }
    }
}

/// Replays every persisted corpus kernel — past minimized failures stay
/// fixed forever.
#[test]
fn corpus_regressions_replay() {
    let dir = corpus_dir();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return; // no corpus yet
    };
    for entry in entries {
        let path = entry.expect("corpus entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !name.starts_with("dataflow-diff-")
            || path.extension().and_then(|e| e.to_str()) != Some("kernel")
        {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("corpus file readable");
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let spec = ChainSpec::parse(line).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            check(&spec)
                .unwrap_or_else(|e| panic!("corpus kernel {} regressed: {e}", path.display()));
        }
    }
}

#[test]
fn corpus_format_roundtrips() {
    let spec = ChainSpec {
        stages: 3,
        extent: 5,
        shift: 2,
        reverse: true,
        reduce: true,
        tail_empty: true,
    };
    assert_eq!(ChainSpec::parse(&spec.serialize()), Ok(spec));
    assert!(ChainSpec::parse("stages=1").is_err());
    assert!(ChainSpec::parse("wat=1").is_err());
}
