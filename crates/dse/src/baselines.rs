//! Re-implementations of the comparison frameworks' *strategies* on the
//! common substrate (see DESIGN.md): unoptimized baseline, Pluto-like,
//! POLSCA-like, and ScaleHLS-like.
//!
//! Each baseline is the decision procedure the corresponding framework
//! documents, evaluated with the same cost model as POM, which isolates
//! exactly the strategic differences the paper attributes to POM:
//!
//! * **Pluto** targets CPUs: locality tiling and outer parallelism, no
//!   HLS pragmas — on an FPGA this is essentially the sequential schedule.
//! * **POLSCA** drives Pluto's schedule into HLS and adds pipelining, but
//!   keeps the CPU-oriented structure (reductions innermost) and "fails to
//!   perform proper array partitioning for large sizes" (Section VII-B) —
//!   port pressure then dominates the II.
//! * **ScaleHLS** receives C, so statements sharing a nest cannot be
//!   split-interchanged independently (the Fig. 2 BICG conflict); its DSE
//!   tiles without dependence-aware restructuring, optimizes nests
//!   greedily in program order, and composes resources as dataflow (no
//!   sharing across nests — Fig. 13). At very large problem sizes its DSE
//!   degrades to basic pipelining (Section VII-D).

use crate::compile::{apply_schedule, compile, CompileOptions, Compiled};
use crate::stage2::{plan_groups, schedule_for, GroupConfig};
use pom_dsl::{Function, Primitive};
use pom_graph::DepGraph;
use pom_hls::estimate::Sharing;
use pom_poly::DepKind;
use std::time::Instant;

/// A named baseline result.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Framework name.
    pub name: &'static str,
    /// The scheduled function.
    pub function: Function,
    /// Compiled design.
    pub compiled: Compiled,
    /// Strategy runtime (the DSE-time analogue).
    pub time: std::time::Duration,
    /// Final per-nest configurations (empty for strategies that do not
    /// tile via the group machinery).
    pub groups: Vec<GroupConfig>,
    /// The pre-tiling function the groups were planned on (fusion and
    /// loop-order primitives only) — needed to recompute per-group stats.
    pub prepared: Function,
}

impl BaselineResult {
    /// Achieved II of the first pipelined loop (0 when none).
    pub fn achieved_ii(&self) -> u64 {
        self.compiled
            .qor
            .loops
            .iter()
            .map(|l| l.achieved_ii)
            .max()
            .unwrap_or(0)
    }
}

/// The original code without any optimization.
pub fn unoptimized(f: &Function) -> Function {
    let mut g = f.clone();
    g.clear_schedule();
    g
}

/// Compiles the unoptimized baseline.
pub fn baseline_compiled(f: &Function, opts: &CompileOptions) -> Compiled {
    compile(&unoptimized(f), opts).expect("baseline compiles")
}

/// Pluto-like: locality tiling (32×32 on the two outermost loops),
/// reductions kept innermost, **no** HLS pragmas.
pub fn pluto_like(f: &Function, opts: &CompileOptions) -> BaselineResult {
    let start = Instant::now();
    let mut g = unoptimized(f);
    let stmts = apply_schedule(&g);
    let mut prims = Vec::new();
    for s in &stmts {
        let dims = s.dims().to_vec();
        for d in dims.iter().take(2) {
            prims.push(Primitive::Split {
                stmt: s.name().to_string(),
                i: d.clone(),
                factor: 32,
                i0: format!("{d}_t"),
                i1: format!("{d}_p"),
            });
        }
    }
    for p in prims {
        g.record(p);
    }
    let compiled = compile(&g, opts).expect("Pluto baseline compiles");
    BaselineResult {
        name: "Pluto",
        prepared: g.clone(),
        function: g,
        compiled,
        time: start.elapsed(),
        groups: Vec::new(),
    }
}

/// POLSCA-like: the Pluto structure plus loop pipelining and full unroll
/// of the innermost strip, but **no array partitioning** — the memory
/// ports throttle the initiation interval.
pub fn polsca_like(f: &Function, opts: &CompileOptions) -> BaselineResult {
    let start = Instant::now();
    let mut g = unoptimized(f);
    let stmts = apply_schedule(&g);
    let mut prims = Vec::new();
    for s in &stmts {
        let dims = s.dims().to_vec();
        let inner = dims.last().expect("non-empty nest").clone();
        prims.push(Primitive::Split {
            stmt: s.name().to_string(),
            i: inner.clone(),
            factor: 32,
            i0: format!("{inner}_t"),
            i1: format!("{inner}_p"),
        });
        prims.push(Primitive::Pipeline {
            stmt: s.name().to_string(),
            loop_iv: format!("{inner}_t"),
            ii: 1,
        });
        prims.push(Primitive::Unroll {
            stmt: s.name().to_string(),
            loop_iv: format!("{inner}_p"),
            factor: 32,
        });
    }
    for p in prims {
        g.record(p);
    }
    let compiled = compile(&g, opts).expect("POLSCA baseline compiles");
    BaselineResult {
        name: "POLSCA",
        prepared: g.clone(),
        function: g,
        compiled,
        time: start.elapsed(),
        groups: Vec::new(),
    }
}

/// ScaleHLS-like strategy. `problem_size` models the reported DSE
/// degradation at very large sizes (≥ 8192: basic pipelining only).
pub fn scalehls_like(f: &Function, opts: &CompileOptions, problem_size: usize) -> BaselineResult {
    let start = Instant::now();
    let mut g = unoptimized(f);
    let mut sh_opts = opts.clone();
    sh_opts.sharing = Sharing::Dataflow;

    // 1. C-input semantics: adjacent independent computes with identical
    //    iterator lists live in one nest (cannot be split later).
    fuse_c_input_nests(&mut g);

    // 2. Per-nest single loop order: carried levels outermost when legal
    //    for every statement of the nest.
    reorder_carried_outermost(&mut g);

    if problem_size >= 8192 {
        // Degraded mode: basic pipelining of each nest, nothing else.
        let stmts = apply_schedule(&g);
        let mut prims = Vec::new();
        for s in &stmts {
            let inner = s.dims().last().expect("non-empty").clone();
            prims.push(Primitive::Pipeline {
                stmt: s.name().to_string(),
                loop_iv: inner,
                ii: 1,
            });
        }
        for p in prims {
            g.record(p);
        }
        let compiled = compile(&g, &sh_opts).expect("ScaleHLS baseline compiles");
        return BaselineResult {
            name: "ScaleHLS",
            prepared: g.clone(),
            function: g,
            compiled,
            time: start.elapsed(),
            groups: Vec::new(),
        };
    }

    // 3. Dependence-unaware tiling DSE, nest by nest in program order,
    //    dataflow resource composition (no sharing across nests).
    let prepared = g.clone();
    let mut groups: Vec<GroupConfig> = plan_groups(&g)
        .into_iter()
        .map(|mut gr| {
            gr.parallel = (0..gr.dims.len()).collect(); // tiles any level
            gr
        })
        .collect();
    let mut stats: Vec<(u64, pom_hls::ResourceUsage)> = groups
        .iter()
        .map(|gr| crate::stage2::group_compile(&g, gr, &sh_opts))
        .collect();
    for gi in 0..groups.len() {
        loop {
            // Try every single-step escalation of this nest and keep the
            // best improving one (ScaleHLS's DSE samples the tiling space
            // without dependence guidance, so a regression along one level
            // does not stop it from growing another).
            let mut best: Option<(GroupConfig, u64, pom_hls::ResourceUsage)> = None;
            for cand in groups[gi].escalation_candidates() {
                if crate::stage2::lint_screen(&g, &groups, gi, &cand, &sh_opts, false) {
                    continue;
                }
                let (l2, r2) = crate::stage2::group_compile(&g, &cand, &sh_opts);
                // Dataflow composition: every nest keeps its own hardware.
                let mut total = pom_hls::ResourceUsage::zero();
                for (i, (_, r)) in stats.iter().enumerate() {
                    total = total.plus(if i == gi { &r2 } else { r });
                }
                let fits = total.dsp <= sh_opts.device.dsp
                    && total.ff <= sh_opts.device.ff
                    && total.lut <= sh_opts.device.lut;
                if fits
                    && l2 < stats[gi].0
                    && best.as_ref().map(|(_, bl, _)| l2 < *bl).unwrap_or(true)
                {
                    best = Some((cand, l2, r2));
                }
            }
            match best {
                Some((cand, l2, r2)) => {
                    groups[gi] = cand;
                    stats[gi] = (l2, r2);
                }
                None => break,
            }
        }
    }
    let current = schedule_for(&g, &groups);
    let compiled = compile(&current, &sh_opts).expect("ScaleHLS baseline compiles");
    BaselineResult {
        name: "ScaleHLS",
        prepared,
        function: current,
        compiled,
        time: start.elapsed(),
        groups,
    }
}

/// Fuses adjacent independent computes with identical iterators — the
/// single-nest structure a C frontend hands to ScaleHLS.
fn fuse_c_input_nests(g: &mut Function) {
    let graph = DepGraph::build(g);
    let n = g.computes().len();
    let mut prims = Vec::new();
    let mut fused = vec![false; n];
    for b in 1..n {
        let a = b - 1;
        if fused[a] {
            continue;
        }
        if graph.dependence_map()[a][b] || graph.dependence_map()[b][a] {
            continue;
        }
        let (ca, cb) = (&g.computes()[a], &g.computes()[b]);
        let same_iters = ca.iters().len() == cb.iters().len()
            && ca
                .iters()
                .iter()
                .zip(cb.iters())
                .all(|(x, y)| x.name() == y.name() && x.lb() == y.lb() && x.ub() == y.ub());
        if !same_iters {
            continue;
        }
        let innermost = ca.iters().last().expect("non-empty").name().to_string();
        prims.push(Primitive::After {
            stmt: cb.name().to_string(),
            other: ca.name().to_string(),
            level: Some(innermost),
        });
        fused[b] = true;
    }
    for p in prims {
        g.record(p);
    }
}

/// Chooses one loop order per nest: carried levels outermost, when the
/// permutation keeps every member's dependence vectors lexicographically
/// non-negative.
fn reorder_carried_outermost(g: &mut Function) {
    let stmts = apply_schedule(g);
    // Group members by statics[0].
    let mut groups: std::collections::BTreeMap<i64, Vec<usize>> = Default::default();
    for (i, s) in stmts.iter().enumerate() {
        groups.entry(s.statics()[0]).or_default().push(i);
    }
    let mut prims = Vec::new();
    for members in groups.values() {
        let rep = &stmts[members[0]];
        let n = rep.dims().len();
        // Union of carried levels + all distance vectors of members.
        let mut carried = vec![false; n];
        let mut vectors: Vec<Vec<i64>> = Vec::new();
        for &m in members {
            let c = &g.computes()[m];
            let store = c.store();
            for l in c.loads() {
                if l.array != store.array {
                    continue;
                }
                for d in stmts[m].analyze_dependence(store, l, DepKind::Flow) {
                    if let (Some(lvl), Some(v)) = (d.carried_level, &d.distance) {
                        carried[lvl] = true;
                        vectors.push(v.0.clone());
                    } else if let Some(lvl) = d.carried_level {
                        carried[lvl] = true;
                    }
                }
            }
        }
        // Stable target order: carried levels first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&l| if carried[l] { 0 } else { 1 });
        if order == (0..n).collect::<Vec<_>>() {
            continue;
        }
        // Legality: permuted vectors stay lexicographically non-negative.
        let legal = vectors.iter().all(|v| {
            let p: Vec<i64> = order.iter().map(|&l| v[l]).collect();
            for &x in &p {
                if x > 0 {
                    return true;
                }
                if x < 0 {
                    return false;
                }
            }
            true
        });
        if !legal {
            continue;
        }
        // Record bubble-sort interchanges realizing the permutation for
        // every member.
        for &m in members {
            let mut cur: Vec<usize> = (0..n).collect();
            let dims = stmts[m].dims().to_vec();
            for (target_pos, &target) in order.iter().enumerate() {
                let from = cur.iter().position(|&x| x == target).expect("tracked");
                let mut p = from;
                while p > target_pos {
                    prims.push(Primitive::Interchange {
                        stmt: stmts[m].name().to_string(),
                        i: dims[cur[p - 1]].clone(),
                        j: dims[cur[p]].clone(),
                    });
                    cur.swap(p - 1, p);
                    p -= 1;
                }
            }
        }
    }
    for p in prims {
        g.record(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dse::auto_dse;
    use pom_dsl::DataType;

    fn bicg(n: usize) -> Function {
        let mut f = Function::new("bicg");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let s = f.placeholder("s", &[n], DataType::F32);
        let q = f.placeholder("q", &[n], DataType::F32);
        let p = f.placeholder("p", &[n], DataType::F32);
        let r = f.placeholder("r", &[n], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone()],
            s.at(&[&j]) + r.at(&[&i]) * a.at(&[&i, &j]),
            s.access(&[&j]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone()],
            q.at(&[&i]) + a.at(&[&i, &j]) * p.at(&[&j]),
            q.access(&[&i]),
        );
        f
    }

    fn gemm(n: usize) -> Function {
        let mut f = Function::new("gemm");
        let k = f.var("k", 0, n as i64);
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        f.compute(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        );
        f
    }

    #[test]
    fn pluto_is_roughly_sequential_on_fpga() {
        let f = gemm(16);
        let opts = CompileOptions::default();
        let base = baseline_compiled(&f, &opts);
        let p = pluto_like(&f, &opts);
        let speedup = p.compiled.qor.speedup_over(&base.qor);
        assert!(
            (0.5..2.0).contains(&speedup),
            "Pluto on FPGA ~ baseline, got {speedup}"
        );
    }

    #[test]
    fn polsca_beats_baseline_but_port_limited() {
        let f = gemm(64);
        let opts = CompileOptions::default();
        let base = baseline_compiled(&f, &opts);
        let p = polsca_like(&f, &opts);
        let speedup = p.compiled.qor.speedup_over(&base.qor);
        assert!(speedup > 1.0, "got {speedup}");
        assert!(speedup < 20.0, "port limits must cap POLSCA, got {speedup}");
        assert!(p.achieved_ii() >= 16, "II = {}", p.achieved_ii());
    }

    #[test]
    fn scalehls_matches_pom_on_single_statement_gemm() {
        let f = gemm(64);
        let opts = CompileOptions::default();
        let base = baseline_compiled(&f, &opts);
        let sh = scalehls_like(&f, &opts, 64);
        let pom = auto_dse(&f, &opts).expect("DSE compiles");
        let s_sh = sh.compiled.qor.speedup_over(&base.qor);
        let s_pom = pom.compiled.qor.speedup_over(&base.qor);
        // Paper Table III: GEMM speedups are within 1% of each other.
        let ratio = s_pom / s_sh;
        assert!(
            (0.5..=4.0).contains(&ratio),
            "GEMM near-parity expected: POM {s_pom} vs ScaleHLS {s_sh}"
        );
    }

    #[test]
    fn pom_beats_scalehls_on_bicg() {
        // The paper's headline conflict (Fig. 2): ScaleHLS cannot relieve
        // both statements' dependences in the shared nest. The gap opens
        // with the problem size (at tiny sizes both saturate the device).
        let f = bicg(256);
        let opts = CompileOptions::default();
        let base = baseline_compiled(&f, &opts);
        let sh = scalehls_like(&f, &opts, 64);
        let pom = auto_dse(&f, &opts).expect("DSE compiles");
        let s_sh = sh.compiled.qor.speedup_over(&base.qor);
        let s_pom = pom.compiled.qor.speedup_over(&base.qor);
        assert!(
            s_pom > 2.0 * s_sh,
            "POM {s_pom} must clearly beat ScaleHLS {s_sh} on BICG"
        );
        // And POM's II is small while ScaleHLS's is inflated.
        let pom_ii = pom.achieved_iis().into_iter().max().unwrap_or(1);
        assert!(pom_ii <= 2, "POM II = {pom_ii}");
        assert!(
            sh.achieved_ii() >= 2 * pom_ii,
            "ScaleHLS II = {}",
            sh.achieved_ii()
        );
    }

    #[test]
    fn scalehls_degrades_at_huge_sizes() {
        let f = gemm(8192);
        let opts = CompileOptions::default();
        let sh = scalehls_like(&f, &opts, 8192);
        // Degraded mode: no unrolls recorded, pipeline only.
        assert!(!sh
            .function
            .schedule()
            .iter()
            .any(|p| matches!(p, Primitive::Unroll { .. })));
    }

    #[test]
    fn dataflow_composition_starves_later_nests() {
        // 2MM-like chain under ScaleHLS: first nest eats the DSP budget.
        let n = 64usize;
        let mut f = Function::new("twomm");
        let k = f.var("k", 0, n as i64);
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let tmp = f.placeholder("tmp", &[n, n], DataType::F32);
        let d = f.placeholder("D", &[n, n], DataType::F32);
        f.compute(
            "mm1",
            &[k.clone(), i.clone(), j.clone()],
            tmp.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
            tmp.access(&[&i, &j]),
        );
        f.compute(
            "mm2",
            &[k.clone(), i.clone(), j.clone()],
            d.at(&[&i, &j]) + tmp.at(&[&i, &k]) * b.at(&[&k, &j]),
            d.access(&[&i, &j]),
        );
        let opts = CompileOptions::default();
        let sh = scalehls_like(&f, &opts, 64);
        let pom = auto_dse(&f, &opts).expect("DSE compiles");
        let base = baseline_compiled(&f, &opts);
        let s_sh = sh.compiled.qor.speedup_over(&base.qor);
        let s_pom = pom.compiled.qor.speedup_over(&base.qor);
        assert!(
            s_pom > 1.5 * s_sh,
            "resource reuse must beat dataflow on 2MM: POM {s_pom} vs ScaleHLS {s_sh}"
        );
    }
}
