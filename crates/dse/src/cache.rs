//! Memoization for the DSE hot path: compile/estimate results keyed by a
//! structural hash of (stage-1 function fingerprint, `GroupConfig`), plus
//! a full-function compile cache that lets the final-repair walk-back
//! loop, the post-retarget recompile in `auto_dse_with`, and repeated
//! emissions reuse prior results instead of recompiling.
//!
//! Thread-safety: every map sits behind its own `Mutex` and the counters
//! are atomics, so one [`DseCache`] can be shared by the scoped worker
//! threads of the parallel candidate evaluation. Entries are pure
//! functions of their key (the fingerprint covers placeholders, computes,
//! *and* the recorded schedule), so a racing double-compute writes the
//! same value twice — correctness never depends on who wins.
//!
//! A cache must not outlive the `CompileOptions` it was populated under:
//! cached values depend on the cost model, device, and sharing policy.
//! `auto_dse_with` therefore creates one cache per search.

use crate::compile::{compile_timed, CompileError, CompileOptions, Compiled};
use crate::stage2::GroupConfig;
use pom_dsl::Function;
use pom_hls::{DepSummary, ResourceUsage};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Structural fingerprint of a function: placeholders, computes, and the
/// recorded schedule, as rendered by the DSL's canonical `Display` form.
/// Two functions with equal fingerprints lower to the same design.
pub fn fingerprint(f: &Function) -> u64 {
    let mut h = DefaultHasher::new();
    f.to_string().hash(&mut h);
    h.finish()
}

/// Alpha-renamed structural fingerprint: like [`fingerprint`], but
/// declared names (the function, placeholders, computes, iterators, and
/// schedule-generated loops) are replaced by indices in order of first
/// appearance in the compute/schedule section, so two sub-functions that
/// differ only in naming — e.g. the repeated convolution layers of a DNN,
/// or the symmetric matmuls of 3MM — share one fingerprint.
///
/// Soundness: QoR estimation consumes names only through lookups that are
/// internal to the function (memref banks, dependence chains), so a
/// consistent renaming cannot change `(latency, resources)` or the
/// pipeline-II verdict. Placeholder declarations keep their extents and
/// element types verbatim (a renamed layer with different extents still
/// misses), and only *declared* names are renamed — an unrecognized token
/// stays literal, which can only cause a cache miss, never a false merge.
/// Keys are comparable only under one placeholder environment, which the
/// per-search cache lifetime guarantees.
pub fn canonical_fingerprint(f: &Function) -> u64 {
    let mut declared: std::collections::HashSet<&str> = std::collections::HashSet::new();
    declared.insert(f.name());
    for p in f.placeholders() {
        declared.insert(p.name());
    }
    for c in f.computes() {
        declared.insert(c.name());
        for v in c.iters() {
            declared.insert(v.name());
        }
    }
    use pom_dsl::Primitive as P;
    for p in f.schedule() {
        match p {
            P::Interchange { stmt, i, j } => declared.extend([stmt.as_str(), i, j]),
            P::Split {
                stmt, i, i0, i1, ..
            } => declared.extend([stmt.as_str(), i, i0, i1]),
            P::Tile {
                stmt,
                i,
                j,
                i0,
                j0,
                i1,
                j1,
                ..
            } => declared.extend([stmt.as_str(), i, j, i0, j0, i1, j1]),
            P::Skew {
                stmt, i, j, i2, j2, ..
            } => declared.extend([stmt.as_str(), i, j, i2, j2]),
            P::After { stmt, other, level } => {
                declared.extend([stmt.as_str(), other]);
                if let Some(l) = level {
                    declared.insert(l);
                }
            }
            P::Pipeline { stmt, loop_iv, .. } | P::Unroll { stmt, loop_iv, .. } => {
                declared.extend([stmt.as_str(), loop_iv]);
            }
            P::Partition { array, .. } => {
                declared.insert(array);
            }
            P::AutoDse => {}
        }
    }

    let text = f.to_string();
    let mut idx: HashMap<String, usize> = HashMap::new();
    let mut h = DefaultHasher::new();
    // Pass 1 — compute + schedule lines assign canonical indices.
    // Pass 2 — placeholder declarations: referenced ones carry their
    // index, unreferenced ones keep extents/dtype but drop the name.
    let mut decls: Vec<&str> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t == "}" || t.starts_with("function ") {
            continue;
        }
        if t.ends_with("];") && !t.contains('(') && !t.contains('=') {
            decls.push(line);
            continue;
        }
        hash_canon_line(line, &declared, true, &mut idx, &mut h);
    }
    // Declarations are a set, not a sequence: hash each line separately
    // and combine the sorted multiset, so the relative order of referenced
    // vs. anonymous declarations cannot split alpha-equivalent functions.
    let mut decl_hashes: Vec<u64> = decls
        .into_iter()
        .map(|line| {
            let mut dh = DefaultHasher::new();
            hash_canon_line(line, &declared, false, &mut idx, &mut dh);
            dh.finish()
        })
        .collect();
    decl_hashes.sort_unstable();
    decl_hashes.hash(&mut h);
    h.finish()
}

/// Hashes one display line with declared names replaced by canonical
/// indices. `assign` controls whether unseen declared names get a fresh
/// index (compute/schedule pass) or an anonymous marker (declaration
/// pass — an unreferenced placeholder's name is irrelevant).
fn hash_canon_line(
    line: &str,
    declared: &std::collections::HashSet<&str>,
    assign: bool,
    idx: &mut HashMap<String, usize>,
    h: &mut DefaultHasher,
) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let tok = &line[start..i];
            if declared.contains(tok) {
                if let Some(&n) = idx.get(tok) {
                    (1u8, n).hash(h);
                } else if assign {
                    let n = idx.len();
                    idx.insert(tok.to_string(), n);
                    (1u8, n).hash(h);
                } else {
                    2u8.hash(h);
                }
            } else {
                (3u8, tok).hash(h);
            }
        } else {
            (4u8, c).hash(h);
            i += 1;
        }
    }
    5u8.hash(h);
}

/// Thread-safe accumulator for the per-phase wall time spent inside
/// `compile` calls, shared across the search and its worker threads.
#[derive(Debug, Default)]
pub struct PhaseAccum {
    lowering_ns: AtomicU64,
    estimation_ns: AtomicU64,
}

impl PhaseAccum {
    /// Adds one compile's phase breakdown.
    pub fn add(&self, t: &crate::compile::PhaseTimes) {
        self.lowering_ns
            .fetch_add(t.lowering.as_nanos() as u64, Ordering::Relaxed);
        self.estimation_ns
            .fetch_add(t.estimation.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total time spent in schedule replay + dependence analysis +
    /// lowering.
    pub fn lowering(&self) -> Duration {
        Duration::from_nanos(self.lowering_ns.load(Ordering::Relaxed))
    }

    /// Total time spent in QoR estimation.
    pub fn estimation(&self) -> Duration {
        Duration::from_nanos(self.estimation_ns.load(Ordering::Relaxed))
    }
}

/// The DSE compile/estimate cache (see module docs).
#[derive(Debug, Default)]
pub struct DseCache {
    /// `pipeline_infeasible` verdicts per scheduled-group canonical key.
    infeasible: Mutex<HashMap<u64, bool>>,
    /// `(latency, resources)` of a group compiled as a sub-function,
    /// keyed by the scheduled sub-function's [`canonical_fingerprint`] —
    /// structurally identical groups (repeated DNN layers, symmetric
    /// matmuls) share entries.
    group_qor: Mutex<HashMap<u64, (u64, ResourceUsage)>>,
    /// Per-group dependence-summary templates keyed by the *untiled*
    /// scheduled sub-function's plain [`fingerprint`] (names must match
    /// the group exactly, so no alpha-renaming here). `None` marks a
    /// group whose template is unsafe to reuse — its candidates fall
    /// back to full per-candidate dependence analysis.
    dep_templates: Mutex<HashMap<u64, Option<Arc<DepSummary>>>>,
    /// BRAM18K usage of the full schedule per (fingerprint, groups).
    bram: Mutex<HashMap<(u64, Vec<GroupConfig>), u64>>,
    /// Full-function compiles keyed by the *scheduled* fingerprint.
    full: Mutex<HashMap<u64, Arc<Compiled>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl DseCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from memory so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute their value.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Memoized pipeline-II feasibility verdict for one scheduled group,
    /// keyed by its [`canonical_fingerprint`].
    pub fn memo_infeasible(&self, key: u64, compute: impl FnOnce() -> bool) -> bool {
        if let Some(&v) = self.infeasible.lock().expect("lock").get(&key) {
            self.record(true);
            return v;
        }
        let v = compute();
        self.record(false);
        self.infeasible.lock().expect("lock").insert(key, v);
        v
    }

    /// Memoized `(latency, resources)` of one group's sub-function
    /// compile, keyed by its [`canonical_fingerprint`]. Errors are never
    /// cached — they abort the search anyway.
    pub fn memo_group_qor(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<(u64, ResourceUsage), CompileError>,
    ) -> Result<(u64, ResourceUsage), CompileError> {
        if let Some(&v) = self.group_qor.lock().expect("lock").get(&key) {
            self.record(true);
            return Ok(v);
        }
        let v = compute()?;
        self.record(false);
        self.group_qor.lock().expect("lock").insert(key, v);
        Ok(v)
    }

    /// Memoized dependence-summary template for one group, keyed by the
    /// plain [`fingerprint`] of its *untiled* scheduled sub-function.
    /// `compute` returns `None` when the template cannot soundly stand in
    /// for the tiled candidates' summaries (see `dep_template` in
    /// `stage2`); the verdict itself is memoized either way. Template
    /// traffic is deliberately not counted in `hits`/`misses` — those
    /// report candidate-level memoization only.
    pub fn memo_dep_template(
        &self,
        key: u64,
        compute: impl FnOnce() -> Option<DepSummary>,
    ) -> Option<Arc<DepSummary>> {
        if let Some(t) = self.dep_templates.lock().expect("lock").get(&key) {
            return t.clone();
        }
        let t = compute().map(Arc::new);
        self.dep_templates
            .lock()
            .expect("lock")
            .insert(key, t.clone());
        t
    }

    /// Memoized BRAM18K usage of the full schedule under `groups`.
    pub fn memo_bram(&self, fp: u64, groups: &[GroupConfig], compute: impl FnOnce() -> u64) -> u64 {
        let key = (fp, groups.to_vec());
        if let Some(&v) = self.bram.lock().expect("lock").get(&key) {
            self.record(true);
            return v;
        }
        let v = compute();
        self.record(false);
        self.bram.lock().expect("lock").insert(key, v);
        v
    }

    /// Compiles a fully scheduled function through the cache: the repair
    /// walk-back loop, `auto_dse_with`'s final compile, and any repeated
    /// emission of the same schedule share one compile. When `deps` is
    /// given it stands in for the function's dependence summary — the
    /// dominant compile cost — so a repair/retarget step that only changed
    /// tile factors or pipeline IIs skips the polyhedral analysis.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`CompileError`] (uncached).
    pub fn compile_full(
        &self,
        f: &Function,
        opts: &CompileOptions,
        acc: &PhaseAccum,
        deps: Option<&DepSummary>,
    ) -> Result<Arc<Compiled>, CompileError> {
        let fp = fingerprint(f);
        if let Some(c) = self.full.lock().expect("lock").get(&fp) {
            self.record(true);
            return Ok(Arc::clone(c));
        }
        let (c, times) = match deps {
            Some(d) => {
                let t0 = std::time::Instant::now();
                let stmts = crate::compile::apply_schedule(f);
                let analysis = t0.elapsed();
                let (c, mut times) = crate::compile::compile_prepared(f, stmts, d.clone(), opts)?;
                times.lowering += analysis;
                (c, times)
            }
            None => compile_timed(f, opts)?,
        };
        acc.add(&times);
        self.record(false);
        let c = Arc::new(c);
        self.full.lock().expect("lock").insert(fp, Arc::clone(&c));
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;

    fn tiny() -> Function {
        let mut f = Function::new("tiny");
        let i = f.var("i", 0, 8);
        let x = f.placeholder("X", &[8], DataType::F32);
        let y = f.placeholder("Y", &[8], DataType::F32);
        f.compute(
            "S",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f
    }

    #[test]
    fn fingerprint_tracks_schedule_changes() {
        let f = tiny();
        let a = fingerprint(&f);
        let mut g = f.clone();
        assert_eq!(a, fingerprint(&g), "clone preserves the fingerprint");
        g.pipeline("S", "i", 1);
        assert_ne!(a, fingerprint(&g), "schedule edits change it");
    }

    #[test]
    fn full_compile_is_memoized() {
        let cache = DseCache::new();
        let acc = PhaseAccum::default();
        let f = tiny();
        let opts = CompileOptions::default();
        let a = cache.compile_full(&f, &opts, &acc, None).expect("compiles");
        assert_eq!(cache.misses(), 1);
        let b = cache.compile_full(&f, &opts, &acc, None).expect("compiles");
        assert_eq!(cache.hits(), 1);
        assert_eq!(a.qor, b.qor);
        assert!(acc.lowering() > Duration::ZERO);
    }

    #[test]
    fn group_memo_computes_once() {
        let cache = DseCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.memo_infeasible(7, || {
                calls += 1;
                false
            });
            assert!(!v);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 2);
    }

    /// Builds a 2-statement function; `first` selects which statement is
    /// kept, mimicking two alpha-equivalent sub-functions.
    fn twin(first: bool) -> Function {
        let mut f = Function::new("twin");
        let n = 16usize;
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let (name, arr) = if first { ("S1", &a) } else { ("S2", &b) };
        let i = f.var(&format!("{name}_i"), 0, n as i64);
        let j = f.var(&format!("{name}_j"), 0, n as i64);
        f.compute(
            name,
            &[i.clone(), j.clone()],
            arr.at(&[&i, &j]) * 2.0,
            arr.access(&[&i, &j]),
        );
        f.pipeline(name, &format!("{name}_j"), 1);
        f
    }

    #[test]
    fn canonical_fingerprint_merges_alpha_equivalent_functions() {
        let a = twin(true);
        let b = twin(false);
        assert_ne!(fingerprint(&a), fingerprint(&b), "names differ verbatim");
        assert_eq!(
            canonical_fingerprint(&a),
            canonical_fingerprint(&b),
            "alpha-equivalent functions share the canonical fingerprint"
        );
        // A structural difference (extents) must still separate them.
        let mut c = Function::new("twin");
        let m = 8usize;
        let x = c.placeholder("A", &[m, m], DataType::F32);
        let _ = c.placeholder("B", &[16, 16], DataType::F32);
        let i = c.var("S1_i", 0, m as i64);
        let j = c.var("S1_j", 0, m as i64);
        c.compute(
            "S1",
            &[i.clone(), j.clone()],
            x.at(&[&i, &j]) * 2.0,
            x.access(&[&i, &j]),
        );
        c.pipeline("S1", "S1_j", 1);
        assert_ne!(
            canonical_fingerprint(&a),
            canonical_fingerprint(&c),
            "different extents must not merge"
        );
    }
}
