//! Memoization for the DSE hot path: compile/estimate results keyed by a
//! structural hash of (stage-1 function fingerprint, `GroupConfig`), plus
//! a full-function compile cache that lets the final-repair walk-back
//! loop, the post-retarget recompile in `auto_dse_with`, and repeated
//! emissions reuse prior results instead of recompiling.
//!
//! Thread-safety: every map sits behind its own `Mutex` and the counters
//! are atomics, so one [`DseCache`] can be shared by the scoped worker
//! threads of the parallel candidate evaluation. Entries are pure
//! functions of their key (the fingerprint covers placeholders, computes,
//! *and* the recorded schedule), so a racing double-compute writes the
//! same value twice — correctness never depends on who wins. Locks use
//! poisoned-lock recovery (`PoisonError::into_inner`): a panicked worker
//! can at worst leave a *missing* entry behind, never a wrong one, so
//! the daemon keeps serving instead of wedging.
//!
//! Capacity: each map is FIFO-bounded (default [`DEFAULT_CAPACITY`] per
//! map) so a long-running daemon's memory stays flat under unbounded
//! traffic; evictions are counted and surfaced through `DseStats`.
//!
//! A cache must not outlive the `CompileOptions` it was populated under:
//! cached values depend on the cost model, device, and sharing policy.
//! `auto_dse_with` therefore creates one cache per search, and the
//! daemon's long-lived cache is pinned to one options set. Entries may
//! outlive the *process*, though: fingerprints hash extents, dtypes, and
//! the schedule via the platform-independent [`StableHasher`], and a
//! cache opened with [`DseCache::with_store`] transparently spills and
//! reloads entries through a shared on-disk
//! [`ArtifactStore`](crate::store::ArtifactStore) whose shard hash pins
//! the same options set.

use crate::compile::{compile_timed, CompileError, CompileOptions, Compiled};
use crate::stage2::GroupConfig;
use crate::store::ArtifactStore;
use pom_dsl::Function;
use pom_hls::{DepSummary, ResourceUsage};
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Default per-map capacity of a [`DseCache`] — large enough that a
/// single search never evicts, small enough that a daemon's five maps
/// stay bounded.
pub const DEFAULT_CAPACITY: usize = 1 << 15;

/// A 64-bit FNV-1a hasher: process-independent, platform-independent
/// (for the byte streams we feed it), and stable across runs — unlike
/// `DefaultHasher`, whose SipHash keys are unspecified and may change
/// between executions. Cache keys that reach the persistent
/// [`ArtifactStore`] must mean the same thing in every process that
/// shares the store, so all fingerprints are computed with this.
#[derive(Clone, Debug)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// FNV-1a hash of any `Hash` value, for composite store keys.
pub fn stable_hash<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = StableHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Structural fingerprint of a function: placeholders, computes, and the
/// recorded schedule, as rendered by the DSL's canonical `Display` form.
/// Two functions with equal fingerprints lower to the same design. Stable
/// across processes (see [`StableHasher`]), so fingerprints double as
/// persistent store keys.
pub fn fingerprint(f: &Function) -> u64 {
    let mut h = StableHasher::default();
    f.to_string().hash(&mut h);
    h.finish()
}

/// Alpha-renamed structural fingerprint: like [`fingerprint`], but
/// declared names (the function, placeholders, computes, iterators, and
/// schedule-generated loops) are replaced by indices in order of first
/// appearance in the compute/schedule section, so two sub-functions that
/// differ only in naming — e.g. the repeated convolution layers of a DNN,
/// or the symmetric matmuls of 3MM — share one fingerprint.
///
/// Soundness: QoR estimation consumes names only through lookups that are
/// internal to the function (memref banks, dependence chains), so a
/// consistent renaming cannot change `(latency, resources)` or the
/// pipeline-II verdict. Placeholder declarations keep their extents and
/// element types verbatim (a renamed layer with different extents still
/// misses), and only *declared* names are renamed — an unrecognized token
/// stays literal, which can only cause a cache miss, never a false merge.
/// Because extents and dtypes are hashed verbatim, keys remain comparable
/// across placeholder environments, processes, and store-sharing users —
/// two layers merge only if their declarations agree byte-for-byte after
/// renaming.
pub fn canonical_fingerprint(f: &Function) -> u64 {
    let mut declared: std::collections::HashSet<&str> = std::collections::HashSet::new();
    declared.insert(f.name());
    for p in f.placeholders() {
        declared.insert(p.name());
    }
    for c in f.computes() {
        declared.insert(c.name());
        for v in c.iters() {
            declared.insert(v.name());
        }
    }
    use pom_dsl::Primitive as P;
    for p in f.schedule() {
        match p {
            P::Interchange { stmt, i, j } => declared.extend([stmt.as_str(), i, j]),
            P::Split {
                stmt, i, i0, i1, ..
            } => declared.extend([stmt.as_str(), i, i0, i1]),
            P::Tile {
                stmt,
                i,
                j,
                i0,
                j0,
                i1,
                j1,
                ..
            } => declared.extend([stmt.as_str(), i, j, i0, j0, i1, j1]),
            P::Skew {
                stmt, i, j, i2, j2, ..
            } => declared.extend([stmt.as_str(), i, j, i2, j2]),
            P::After { stmt, other, level } => {
                declared.extend([stmt.as_str(), other]);
                if let Some(l) = level {
                    declared.insert(l);
                }
            }
            P::Pipeline { stmt, loop_iv, .. } | P::Unroll { stmt, loop_iv, .. } => {
                declared.extend([stmt.as_str(), loop_iv]);
            }
            P::Partition { array, .. } => {
                declared.insert(array);
            }
            P::AutoDse => {}
        }
    }

    let text = f.to_string();
    let mut idx: HashMap<String, usize> = HashMap::new();
    let mut h = StableHasher::default();
    // Pass 1 — compute + schedule lines assign canonical indices.
    // Pass 2 — placeholder declarations: referenced ones carry their
    // index, unreferenced ones keep extents/dtype but drop the name.
    let mut decls: Vec<&str> = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t == "}" || t.starts_with("function ") {
            continue;
        }
        if t.ends_with("];") && !t.contains('(') && !t.contains('=') {
            decls.push(line);
            continue;
        }
        hash_canon_line(line, &declared, true, &mut idx, &mut h);
    }
    // Declarations are a set, not a sequence: hash each line separately
    // and combine the sorted multiset, so the relative order of referenced
    // vs. anonymous declarations cannot split alpha-equivalent functions.
    let mut decl_hashes: Vec<u64> = decls
        .into_iter()
        .map(|line| {
            let mut dh = StableHasher::default();
            hash_canon_line(line, &declared, false, &mut idx, &mut dh);
            dh.finish()
        })
        .collect();
    decl_hashes.sort_unstable();
    decl_hashes.hash(&mut h);
    h.finish()
}

/// Hashes one display line with declared names replaced by canonical
/// indices. `assign` controls whether unseen declared names get a fresh
/// index (compute/schedule pass) or an anonymous marker (declaration
/// pass — an unreferenced placeholder's name is irrelevant).
fn hash_canon_line(
    line: &str,
    declared: &std::collections::HashSet<&str>,
    assign: bool,
    idx: &mut HashMap<String, usize>,
    h: &mut StableHasher,
) {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let tok = &line[start..i];
            if declared.contains(tok) {
                if let Some(&n) = idx.get(tok) {
                    (1u8, n).hash(h);
                } else if assign {
                    let n = idx.len();
                    idx.insert(tok.to_string(), n);
                    (1u8, n).hash(h);
                } else {
                    2u8.hash(h);
                }
            } else {
                (3u8, tok).hash(h);
            }
        } else {
            (4u8, c).hash(h);
            i += 1;
        }
    }
    5u8.hash(h);
}

/// Thread-safe accumulator for the per-phase wall time spent inside
/// `compile` calls, shared across the search and its worker threads.
#[derive(Debug, Default)]
pub struct PhaseAccum {
    lowering_ns: AtomicU64,
    estimation_ns: AtomicU64,
}

impl PhaseAccum {
    /// Adds one compile's phase breakdown.
    pub fn add(&self, t: &crate::compile::PhaseTimes) {
        self.lowering_ns
            .fetch_add(t.lowering.as_nanos() as u64, Ordering::Relaxed);
        self.estimation_ns
            .fetch_add(t.estimation.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total time spent in schedule replay + dependence analysis +
    /// lowering.
    pub fn lowering(&self) -> Duration {
        Duration::from_nanos(self.lowering_ns.load(Ordering::Relaxed))
    }

    /// Total time spent in QoR estimation.
    pub fn estimation(&self) -> Duration {
        Duration::from_nanos(self.estimation_ns.load(Ordering::Relaxed))
    }
}

/// Locks a mutex, recovering the data from a poisoned lock: cache values
/// are pure functions of their keys and every insert is a single
/// statement, so a panicking holder cannot leave a torn entry behind —
/// at worst an absent one, which only costs a recompute.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A FIFO-bounded map: insertion-ordered eviction once `cap` is reached.
/// FIFO (rather than LRU) keeps `get` contention-free — no order
/// mutation on reads — and is good enough here because entries are
/// equally cheap to recompute and traffic within one search is bursty,
/// not scan-resistant.
#[derive(Debug)]
struct Bounded<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    cap: usize,
}

impl<K: Eq + Hash + Clone, V> Bounded<K, V> {
    fn new(cap: usize) -> Self {
        Bounded {
            map: HashMap::new(),
            order: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    fn get(&self, k: &K) -> Option<&V> {
        self.map.get(k)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Inserts, returning how many old entries were evicted (0 or 1; a
    /// re-insert of a live key never grows the map, so never evicts).
    fn insert(&mut self, k: K, v: V) -> usize {
        if self.map.insert(k.clone(), v).is_none() {
            self.order.push_back(k);
        }
        let mut evicted = 0;
        while self.map.len() > self.cap {
            match self.order.pop_front() {
                Some(old) => {
                    if self.map.remove(&old).is_some() {
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }
}

/// The DSE compile/estimate cache (see module docs).
#[derive(Debug)]
pub struct DseCache {
    /// `pipeline_infeasible` verdicts per scheduled-group canonical key.
    infeasible: Mutex<Bounded<u64, bool>>,
    /// `(latency, resources)` of a group compiled as a sub-function,
    /// keyed by the scheduled sub-function's [`canonical_fingerprint`] —
    /// structurally identical groups (repeated DNN layers, symmetric
    /// matmuls) share entries.
    group_qor: Mutex<Bounded<u64, (u64, ResourceUsage)>>,
    /// Per-group dependence-summary templates keyed by the *untiled*
    /// scheduled sub-function's plain [`fingerprint`] (names must match
    /// the group exactly, so no alpha-renaming here). `None` marks a
    /// group whose template is unsafe to reuse — its candidates fall
    /// back to full per-candidate dependence analysis.
    dep_templates: Mutex<Bounded<u64, Option<Arc<DepSummary>>>>,
    /// BRAM18K usage of the full schedule per (fingerprint, groups).
    bram: Mutex<Bounded<(u64, Vec<GroupConfig>), u64>>,
    /// Full-function compiles keyed by the *scheduled* fingerprint.
    /// Memory-only: `Compiled` holds lowered IR with no parser, so it
    /// cannot round-trip through the store — the serving layer persists
    /// its *rendered* responses instead (`Kind::Full`).
    full: Mutex<Bounded<u64, Arc<Compiled>>>,
    /// Simulated cycle counts of full schedules, keyed by the scheduled
    /// fingerprint — the beam search's frontier states. Memory-only: the
    /// count is only meaningful under this process's fixed seed/model,
    /// and a shared (daemon) cache re-serves it across beam searches of
    /// structurally repeated kernels.
    sim: Mutex<Bounded<u64, u64>>,
    /// Optional persistent spill/reload backing (see module docs).
    store: Option<Arc<ArtifactStore>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl Default for DseCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl DseCache {
    /// A fresh, empty, memory-only cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh cache bounded to `cap` entries per map.
    pub fn with_capacity(cap: usize) -> Self {
        DseCache {
            infeasible: Mutex::new(Bounded::new(cap)),
            group_qor: Mutex::new(Bounded::new(cap)),
            dep_templates: Mutex::new(Bounded::new(cap)),
            bram: Mutex::new(Bounded::new(cap)),
            full: Mutex::new(Bounded::new(cap)),
            sim: Mutex::new(Bounded::new(cap)),
            store: None,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// A cache backed by a persistent store: misses consult the store
    /// before computing, and computed values are spilled to it. The store
    /// shard must have been opened for the same `CompileOptions` this
    /// cache serves (the shard hash enforces it).
    pub fn with_store(store: Arc<ArtifactStore>) -> Self {
        DseCache {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The persistent backing store, if any.
    pub fn store(&self) -> Option<&Arc<ArtifactStore>> {
        self.store.as_ref()
    }

    /// Lookups answered without computing — from memory or the store.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute their value.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by capacity eviction, across all maps.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Live in-memory entries, across all maps.
    pub fn entries(&self) -> usize {
        locked(&self.infeasible).len()
            + locked(&self.group_qor).len()
            + locked(&self.dep_templates).len()
            + locked(&self.bram).len()
            + locked(&self.full).len()
            + locked(&self.sim).len()
    }

    /// Memoized simulated-cycle count of one full schedule, keyed by its
    /// scheduled [`fingerprint`]. Memory-only (see the field docs); the
    /// traffic counts toward `hits`/`misses` like any candidate-level
    /// lookup. The caller owns seeding discipline: every count cached
    /// here must come from the same deterministic seed and cost model.
    pub fn memo_sim(&self, key: u64, compute: impl FnOnce() -> u64) -> u64 {
        if let Some(&v) = locked(&self.sim).get(&key) {
            self.record(true);
            return v;
        }
        let v = compute();
        self.record(false);
        let n = locked(&self.sim).insert(key, v);
        self.evicted(n);
        v
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn evicted(&self, n: usize) {
        if n > 0 {
            self.evictions.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Memoized pipeline-II feasibility verdict for one scheduled group,
    /// keyed by its [`canonical_fingerprint`].
    pub fn memo_infeasible(&self, key: u64, compute: impl FnOnce() -> bool) -> bool {
        if let Some(&v) = locked(&self.infeasible).get(&key) {
            self.record(true);
            return v;
        }
        if let Some(v) = self.store.as_deref().and_then(|s| s.load_infeasible(key)) {
            self.record(true);
            let n = locked(&self.infeasible).insert(key, v);
            self.evicted(n);
            return v;
        }
        let v = compute();
        self.record(false);
        let n = locked(&self.infeasible).insert(key, v);
        self.evicted(n);
        if let Some(s) = self.store.as_deref() {
            s.save_infeasible(key, v);
        }
        v
    }

    /// Memoized `(latency, resources)` of one group's sub-function
    /// compile, keyed by its [`canonical_fingerprint`]. Errors are never
    /// cached — they abort the search anyway.
    pub fn memo_group_qor(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<(u64, ResourceUsage), CompileError>,
    ) -> Result<(u64, ResourceUsage), CompileError> {
        if let Some(&v) = locked(&self.group_qor).get(&key) {
            self.record(true);
            return Ok(v);
        }
        if let Some(v) = self.store.as_deref().and_then(|s| s.load_group_qor(key)) {
            self.record(true);
            let n = locked(&self.group_qor).insert(key, v);
            self.evicted(n);
            return Ok(v);
        }
        let v = compute()?;
        self.record(false);
        let n = locked(&self.group_qor).insert(key, v);
        self.evicted(n);
        if let Some(s) = self.store.as_deref() {
            s.save_group_qor(key, v.0, &v.1);
        }
        Ok(v)
    }

    /// Memoized dependence-summary template for one group, keyed by the
    /// plain [`fingerprint`] of its *untiled* scheduled sub-function.
    /// `compute` returns `None` when the template cannot soundly stand in
    /// for the tiled candidates' summaries (see `dep_template` in
    /// `stage2`); the verdict itself is memoized either way — including
    /// through the store, where the persisted `none` saves the failed
    /// reuse probe, not just the successful analysis. Template traffic is
    /// deliberately not counted in `hits`/`misses` — those report
    /// candidate-level memoization only.
    pub fn memo_dep_template(
        &self,
        key: u64,
        compute: impl FnOnce() -> Option<DepSummary>,
    ) -> Option<Arc<DepSummary>> {
        if let Some(t) = locked(&self.dep_templates).get(&key) {
            return t.clone();
        }
        if let Some(t) = self.store.as_deref().and_then(|s| s.load_dep_template(key)) {
            let t = t.map(Arc::new);
            let n = locked(&self.dep_templates).insert(key, t.clone());
            self.evicted(n);
            return t;
        }
        let t = compute().map(Arc::new);
        let n = locked(&self.dep_templates).insert(key, t.clone());
        self.evicted(n);
        if let Some(s) = self.store.as_deref() {
            s.save_dep_template(key, t.as_deref());
        }
        t
    }

    /// Memoized BRAM18K usage of the full schedule under `groups`.
    pub fn memo_bram(&self, fp: u64, groups: &[GroupConfig], compute: impl FnOnce() -> u64) -> u64 {
        let key = (fp, groups.to_vec());
        if let Some(&v) = locked(&self.bram).get(&key) {
            self.record(true);
            return v;
        }
        // The persistent key folds the composite key down to 64 bits with
        // the same stable hash the fingerprints use.
        let skey = stable_hash(&key);
        if let Some(v) = self.store.as_deref().and_then(|s| s.load_bram(skey)) {
            self.record(true);
            let n = locked(&self.bram).insert(key, v);
            self.evicted(n);
            return v;
        }
        let v = compute();
        self.record(false);
        let n = locked(&self.bram).insert(key, v);
        self.evicted(n);
        if let Some(s) = self.store.as_deref() {
            s.save_bram(skey, v);
        }
        v
    }

    /// Compiles a fully scheduled function through the cache: the repair
    /// walk-back loop, `auto_dse_with`'s final compile, and any repeated
    /// emission of the same schedule share one compile. When `deps` is
    /// given it stands in for the function's dependence summary — the
    /// dominant compile cost — so a repair/retarget step that only changed
    /// tile factors or pipeline IIs skips the polyhedral analysis.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`CompileError`] (uncached).
    pub fn compile_full(
        &self,
        f: &Function,
        opts: &CompileOptions,
        acc: &PhaseAccum,
        deps: Option<&DepSummary>,
    ) -> Result<Arc<Compiled>, CompileError> {
        let fp = fingerprint(f);
        if let Some(c) = locked(&self.full).get(&fp) {
            self.record(true);
            return Ok(Arc::clone(c));
        }
        let (c, times) = match deps {
            Some(d) => {
                let t0 = std::time::Instant::now();
                let stmts = crate::compile::apply_schedule(f);
                let analysis = t0.elapsed();
                let (c, mut times) = crate::compile::compile_prepared(f, stmts, d.clone(), opts)?;
                times.lowering += analysis;
                (c, times)
            }
            None => compile_timed(f, opts)?,
        };
        acc.add(&times);
        self.record(false);
        let c = Arc::new(c);
        let n = locked(&self.full).insert(fp, Arc::clone(&c));
        self.evicted(n);
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;

    fn tiny() -> Function {
        let mut f = Function::new("tiny");
        let i = f.var("i", 0, 8);
        let x = f.placeholder("X", &[8], DataType::F32);
        let y = f.placeholder("Y", &[8], DataType::F32);
        f.compute(
            "S",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f
    }

    #[test]
    fn fingerprint_tracks_schedule_changes() {
        let f = tiny();
        let a = fingerprint(&f);
        let mut g = f.clone();
        assert_eq!(a, fingerprint(&g), "clone preserves the fingerprint");
        g.pipeline("S", "i", 1);
        assert_ne!(a, fingerprint(&g), "schedule edits change it");
    }

    #[test]
    fn stable_hasher_is_process_independent() {
        // FNV-1a reference vectors — if these hold, keys persisted by one
        // process mean the same thing in every other.
        let mut h = StableHasher::default();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325, "offset basis");
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let f = tiny();
        assert_eq!(fingerprint(&f), fingerprint(&f.clone()));
    }

    #[test]
    fn full_compile_is_memoized() {
        let cache = DseCache::new();
        let acc = PhaseAccum::default();
        let f = tiny();
        let opts = CompileOptions::default();
        let a = cache.compile_full(&f, &opts, &acc, None).expect("compiles");
        assert_eq!(cache.misses(), 1);
        let b = cache.compile_full(&f, &opts, &acc, None).expect("compiles");
        assert_eq!(cache.hits(), 1);
        assert_eq!(a.qor, b.qor);
        assert!(acc.lowering() > Duration::ZERO);
    }

    #[test]
    fn group_memo_computes_once() {
        let cache = DseCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.memo_infeasible(7, || {
                calls += 1;
                false
            });
            assert!(!v);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn bounded_cache_evicts_fifo() {
        let cache = DseCache::with_capacity(2);
        for key in 0..3u64 {
            cache.memo_infeasible(key, || false);
        }
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.entries(), 2);
        // Key 0 was evicted (oldest); recomputing it is a miss.
        let mut recomputed = false;
        cache.memo_infeasible(0, || {
            recomputed = true;
            false
        });
        assert!(recomputed, "FIFO evicts the oldest entry");
        // Key 2 survived.
        cache.memo_infeasible(2, || panic!("key 2 must still be cached"));
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut b: Bounded<u64, u64> = Bounded::new(2);
        assert_eq!(b.insert(1, 10), 0);
        assert_eq!(b.insert(2, 20), 0);
        assert_eq!(b.insert(1, 11), 0, "re-insert of a live key is free");
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(&1), Some(&11));
    }

    #[test]
    fn poisoned_lock_recovers() {
        let cache = Arc::new(DseCache::new());
        let c2 = Arc::clone(&cache);
        // Poison the infeasible map's mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = c2.infeasible.lock().expect("first lock");
            panic!("poison the lock");
        })
        .join();
        // The cache must keep serving: this is the daemon-survival path.
        let v = cache.memo_infeasible(3, || true);
        assert!(v);
        assert!(cache.memo_infeasible(3, || panic!("must be cached")));
    }

    #[test]
    fn store_backed_cache_reloads_across_instances() {
        let root = std::env::temp_dir().join(format!("pom-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let opts = CompileOptions::default();
        let store = Arc::new(ArtifactStore::open(&root, &opts).expect("opens"));
        let a = DseCache::with_store(Arc::clone(&store));
        a.memo_infeasible(1, || true);
        assert_eq!(
            a.memo_group_qor(2, || Ok((9, ResourceUsage::default())))
                .expect("qor")
                .0,
            9
        );
        a.memo_bram(3, &[], || 5);
        // A *fresh* cache over the same store answers without computing.
        let b = DseCache::with_store(store);
        assert!(b.memo_infeasible(1, || panic!("served from store")));
        assert_eq!(
            b.memo_group_qor(2, || panic!("served from store"))
                .expect("qor")
                .0,
            9
        );
        assert_eq!(b.memo_bram(3, &[], || panic!("served from store")), 5);
        assert_eq!(b.hits(), 3);
        assert_eq!(b.misses(), 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Builds a 2-statement function; `first` selects which statement is
    /// kept, mimicking two alpha-equivalent sub-functions.
    fn twin(first: bool) -> Function {
        let mut f = Function::new("twin");
        let n = 16usize;
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let (name, arr) = if first { ("S1", &a) } else { ("S2", &b) };
        let i = f.var(&format!("{name}_i"), 0, n as i64);
        let j = f.var(&format!("{name}_j"), 0, n as i64);
        f.compute(
            name,
            &[i.clone(), j.clone()],
            arr.at(&[&i, &j]) * 2.0,
            arr.access(&[&i, &j]),
        );
        f.pipeline(name, &format!("{name}_j"), 1);
        f
    }

    #[test]
    fn canonical_fingerprint_merges_alpha_equivalent_functions() {
        let a = twin(true);
        let b = twin(false);
        assert_ne!(fingerprint(&a), fingerprint(&b), "names differ verbatim");
        assert_eq!(
            canonical_fingerprint(&a),
            canonical_fingerprint(&b),
            "alpha-equivalent functions share the canonical fingerprint"
        );
        // A structural difference (extents) must still separate them.
        let mut c = Function::new("twin");
        let m = 8usize;
        let x = c.placeholder("A", &[m, m], DataType::F32);
        let _ = c.placeholder("B", &[16, 16], DataType::F32);
        let i = c.var("S1_i", 0, m as i64);
        let j = c.var("S1_j", 0, m as i64);
        c.compute(
            "S1",
            &[i.clone(), j.clone()],
            x.at(&[&i, &j]) * 2.0,
            x.access(&[&i, &j]),
        );
        c.pipeline("S1", "S1_j", 1);
        assert_ne!(
            canonical_fingerprint(&a),
            canonical_fingerprint(&c),
            "different extents must not merge"
        );
    }
}
