//! The end-to-end lowering pipeline: DSL function + recorded schedule →
//! polyhedral statements → polyhedral AST → annotated affine dialect →
//! QoR estimate (Fig. 7 of the paper).

use pom_dsl::{Function, Primitive};
use pom_hls::estimate::{dep_chain_latency, Sharing};
use pom_hls::{estimate, CarriedDep, CostModel, DepSummary, DeviceSpec, QoR};
use pom_ir::{
    lower_to_affine, AffineFunc, MemRefDecl, PartitionInfo, PassIssue, StmtBody, VerifyError,
};
use pom_lint::{ChannelObservation, LintContext, LintReport, Linter};
use pom_poly::{AstBuilder, DepKind, StmtPoly};
use std::collections::HashMap;
use std::fmt;

/// Why compilation failed.
#[derive(Debug)]
pub enum CompileError {
    /// Lowering produced structurally invalid IR.
    InvalidIr(VerifyError),
    /// An IR pass broke an invariant or tripped the lint hook.
    PassFailed {
        /// The offending pass.
        pass: String,
        /// What went wrong.
        issue: PassIssue,
    },
    /// The compiled function carries error-severity lint diagnostics
    /// (rendered report), with linting enabled in [`CompileOptions`].
    Lint(String),
    /// Translation validation rejected the schedule: a rewrite failed a
    /// certificate obligation (rendered [`pom_verify::ValidationReport`]).
    Rejected(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidIr(e) => write!(f, "lowering produced invalid IR: {e}"),
            CompileError::PassFailed { pass, issue } => {
                write!(f, "pass {pass} broke the IR: {issue}")
            }
            CompileError::Lint(report) => write!(f, "lint errors:\n{report}"),
            CompileError::Rejected(report) => {
                write!(f, "translation validation rejected the schedule:\n{report}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Options for compilation and estimation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Operator cost model.
    pub model: CostModel,
    /// Resource-composition policy across sequential nests.
    pub sharing: Sharing,
    /// Target device (used by DSE; estimation itself is device-free).
    pub device: DeviceSpec,
    /// Runs the `pom-lint` standard analyses through the PassManager's
    /// `lint_each` hook and fails compilation on error-severity findings.
    /// Off by default: DSE explores intermediate points whose declared
    /// IIs are retargeted only at the end.
    pub lint: bool,
    /// Runs the PassManager in checked mode: `pom-verify`'s per-pass
    /// translation-validation hook proves each cleanup pass preserved
    /// the function's write footprint. Off by default — DSE validates
    /// the winning schedule instead of every intermediate compile.
    pub verify: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            model: CostModel::vitis_f32(),
            sharing: Sharing::Reuse,
            device: DeviceSpec::xc7z020(),
            lint: false,
            verify: false,
        }
    }
}

impl CompileOptions {
    /// Options whose operator cost model matches the function's dominant
    /// data type — the DSL's data-type customization made effective
    /// (kernels in `i16` synthesize to much cheaper arithmetic than
    /// `f64`).
    pub fn for_function(f: &Function) -> Self {
        let dtype = f
            .placeholders()
            .iter()
            .map(|p| p.dtype())
            .max_by_key(|d| (d.is_float(), d.bits()))
            .unwrap_or_default();
        CompileOptions {
            model: CostModel::for_dtype(dtype),
            ..Default::default()
        }
    }
}

/// The result of compiling a scheduled function.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The lowered, annotated affine function.
    pub affine: AffineFunc,
    /// The QoR estimate.
    pub qor: QoR,
    /// The per-loop dependence summary used for estimation.
    pub deps: DepSummary,
    /// The transformed polyhedral statements, in compute order.
    pub stmts: Vec<StmtPoly>,
}

impl Compiled {
    /// Emits the synthesizable HLS C for the compiled function.
    pub fn hls_c(&self) -> String {
        pom_hls::emit_hls_c(&self.affine)
    }
}

/// Applies the loop-transformation primitives of the recorded schedule,
/// producing one transformed [`StmtPoly`] per compute (program order
/// sequencing by default).
///
/// # Panics
///
/// Panics if a primitive references an unknown compute or iterator — the
/// DSL layer validates compute names, so this indicates a malformed
/// schedule (e.g. splitting an already-split loop by its old name).
pub fn apply_schedule(f: &Function) -> Vec<StmtPoly> {
    let mut stmts: Vec<StmtPoly> = f
        .computes()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut s = c.to_stmt_poly();
            s.set_order(i as i64);
            s
        })
        .collect();
    let index: HashMap<String, usize> = f
        .computes()
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name().to_string(), i))
        .collect();

    for p in f.schedule() {
        match p {
            Primitive::Interchange { stmt, i, j } => {
                stmts[index[stmt]].interchange(i, j);
            }
            Primitive::Split {
                stmt,
                i,
                factor,
                i0,
                i1,
            } => {
                stmts[index[stmt]].split(i, *factor, i0, i1);
            }
            Primitive::Tile {
                stmt,
                i,
                j,
                t1,
                t2,
                i0,
                j0,
                i1,
                j1,
            } => {
                stmts[index[stmt]].tile(i, j, *t1, *t2, i0, j0, i1, j1);
            }
            Primitive::Skew {
                stmt,
                i,
                j,
                factor,
                i2,
                j2,
            } => {
                stmts[index[stmt]].skew(i, j, *factor, i2, j2);
            }
            Primitive::After { stmt, other, level } => {
                let other_snapshot = stmts[index[other]].clone();
                let s = &mut stmts[index[stmt]];
                match level {
                    Some(l) => s.after(&other_snapshot, l),
                    None => s.after_all(&other_snapshot),
                }
            }
            Primitive::Pipeline { .. }
            | Primitive::Unroll { .. }
            | Primitive::Partition { .. }
            | Primitive::AutoDse => {}
        }
    }
    stmts
}

/// Builds the per-loop dependence summary for estimation: every
/// self-dependence of every compute, analyzed in the *transformed* space,
/// keyed by the transformed loop name that carries it.
pub fn build_dep_summary(f: &Function, stmts: &[StmtPoly], model: &CostModel) -> DepSummary {
    let mut out = DepSummary::new();
    for (c, s) in f.computes().iter().zip(stmts) {
        let store = c.store();
        let mut arrays: Vec<&str> = c
            .loads()
            .iter()
            .filter(|l| l.array == store.array)
            .map(|l| l.array.as_str())
            .collect();
        arrays.dedup();
        // Flow deps store -> load, plus output deps store -> store.
        let mut deps = Vec::new();
        for l in c.loads() {
            if l.array == store.array {
                deps.extend(s.analyze_dependence(store, l, DepKind::Flow));
            }
        }
        if !arrays.is_empty() {
            deps.extend(s.analyze_dependence(store, store, DepKind::Output));
        }
        for d in deps {
            let Some(level) = d.carried_level else {
                continue;
            };
            let distance = d
                .distance
                .as_ref()
                .map(|v| v.0[level].unsigned_abs())
                .unwrap_or(1)
                .max(1);
            let chain = dep_chain_latency(c.body(), &d.array, model)
                .unwrap_or(model.fadd.latency)
                .max(1);
            out.insert(
                s.dims()[level].clone(),
                CarriedDep {
                    array: d.array.clone(),
                    distance,
                    chain_latency: chain,
                },
            );
        }
    }
    out
}

/// Lowers a scheduled function to the annotated affine dialect.
///
/// # Errors
///
/// Returns [`CompileError::InvalidIr`] when lowering breaks a structural
/// invariant and [`CompileError::PassFailed`] when a cleanup pass does.
pub fn lower(f: &Function, stmts: &[StmtPoly]) -> Result<AffineFunc, CompileError> {
    lower_with_lint(f, stmts, None, false)
}

fn lower_with_lint(
    f: &Function,
    stmts: &[StmtPoly],
    lint: Option<pom_ir::LintHook>,
    checked: bool,
) -> Result<AffineFunc, CompileError> {
    let mut builder = AstBuilder::new();
    for s in stmts {
        builder.add_stmt(s.clone());
    }
    let ast = builder.build();

    let bodies: HashMap<String, StmtBody> = f
        .computes()
        .iter()
        .map(|c| {
            (
                c.name().to_string(),
                StmtBody {
                    name: c.name().to_string(),
                    orig_dims: c.iter_names(),
                    body: c.body().clone(),
                    store: c.store().clone(),
                },
            )
        })
        .collect();

    let mut memrefs: Vec<MemRefDecl> = f
        .placeholders()
        .iter()
        .map(|p| MemRefDecl::new(p.name(), p.shape(), p.dtype()))
        .collect();
    for prim in f.schedule() {
        if let Primitive::Partition {
            array,
            factors,
            style,
        } = prim
        {
            if let Some(m) = memrefs.iter_mut().find(|m| &m.name == array) {
                m.partition = Some(PartitionInfo {
                    factors: factors.clone(),
                    style: *style,
                });
            }
        }
    }

    let mut func = lower_to_affine(f.name(), memrefs, &ast, &bodies);
    for prim in f.schedule() {
        match prim {
            Primitive::Pipeline { stmt, loop_iv, ii } => {
                func.set_pipeline_for_stmt(loop_iv, stmt, *ii);
            }
            Primitive::Unroll {
                stmt,
                loop_iv,
                factor,
            } => {
                func.set_unroll_for_stmt(loop_iv, stmt, *factor);
            }
            _ => {}
        }
    }
    pom_ir::verify(&func).map_err(CompileError::InvalidIr)?;
    let mut pm = pom_ir::PassManager::standard();
    if checked {
        pm = pm.check_each(pom_verify::check_hook());
    }
    if let Some(hook) = lint {
        pm = pm.lint_each(hook);
    }
    pm.run(&mut func)
        .map_err(|(pass, issue)| CompileError::PassFailed { pass, issue })?;
    Ok(func)
}

/// Runs the standard lint registry over a compiled function with its full
/// polyhedral context (dependences, schedule source, device).
///
/// When the function partitions into a dataflow pipeline, a channel-level
/// co-simulation (`pom-sim`) backs the measured POM010 channel-pressure
/// check; single-stage functions skip the simulation entirely, so the
/// common lint path stays static.
pub fn lint_report(f: &Function, c: &Compiled, opts: &CompileOptions) -> LintReport {
    let live = pom_live::analyze_func(&c.affine);
    let plan = pom_dataflow::partition(f, &c.affine, &live);
    let mut channels: Vec<ChannelObservation> = Vec::new();
    if plan.is_pipeline() {
        let mut mem = pom_live::seeded_memory(&c.affine, 42);
        let report = pom_sim::simulate_dataflow(
            &c.affine,
            &c.deps,
            &plan.stages,
            &plan.channel_specs(),
            &mut mem,
            &opts.model,
        );
        channels = report
            .channels
            .iter()
            .map(|ch| ChannelObservation {
                array: ch.array.clone(),
                producer: ch.producer.clone(),
                consumers: ch.consumers.clone(),
                capacity: ch.capacity,
                pingpong: ch.pingpong,
                stall_pop: ch.stall_pop,
                stall_push: ch.stall_push,
                total_cycles: report.cycles,
                min_depth: plan
                    .channels
                    .iter()
                    .find(|pc| pc.spec.array == ch.array)
                    .map_or(0, |pc| pc.min_depth),
            })
            .collect();
    }
    let cx = LintContext::new(&c.affine, &c.deps, &opts.model, &opts.device)
        .with_source(f, &c.stmts)
        .with_channels(&channels);
    Linter::standard().run(&cx)
}

/// Wall-clock breakdown of one [`compile_timed`] call: schedule
/// application + dependence analysis + lowering on one side, estimation
/// on the other — the per-phase times surfaced through `DseStats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Schedule replay, dependence analysis, and affine lowering.
    pub lowering: std::time::Duration,
    /// QoR estimation.
    pub estimation: std::time::Duration,
}

/// Full pipeline: schedule application, dependence analysis, lowering,
/// estimation — with inter-pass linting when `opts.lint` is set.
///
/// # Errors
///
/// Returns a [`CompileError`] when lowering produces invalid IR, a pass
/// breaks it, or (with `opts.lint`) the result carries error-severity
/// lint diagnostics.
pub fn compile(f: &Function, opts: &CompileOptions) -> Result<Compiled, CompileError> {
    compile_timed(f, opts).map(|(c, _)| c)
}

/// [`compile`] that also reports where the wall time went, so DSE can
/// attribute its cost to lowering vs estimation.
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn compile_timed(
    f: &Function,
    opts: &CompileOptions,
) -> Result<(Compiled, PhaseTimes), CompileError> {
    let t0 = std::time::Instant::now();
    let stmts = apply_schedule(f);
    let deps = build_dep_summary(f, &stmts, &opts.model);
    let analysis = t0.elapsed();
    let (c, mut times) = compile_prepared(f, stmts, deps, opts)?;
    times.lowering += analysis;
    Ok((c, times))
}

/// The tail of [`compile_timed`] for callers that already hold the
/// transformed statements and dependence summary (the DSE cache computes
/// them once per candidate and shares them between the lint prescreen and
/// the estimate).
pub(crate) fn compile_prepared(
    f: &Function,
    stmts: Vec<StmtPoly>,
    deps: DepSummary,
    opts: &CompileOptions,
) -> Result<(Compiled, PhaseTimes), CompileError> {
    let t0 = std::time::Instant::now();
    let hook: Option<pom_ir::LintHook> = if opts.lint {
        let (deps, model, device) = (deps.clone(), opts.model.clone(), opts.device.clone());
        let (src_f, src_stmts) = (f.clone(), stmts.clone());
        Some(Box::new(move |af: &AffineFunc| {
            let cx = LintContext::new(af, &deps, &model, &device).with_source(&src_f, &src_stmts);
            let report = Linter::standard().run(&cx);
            if report.has_errors() {
                Err(report.render(&af.name))
            } else {
                Ok(())
            }
        }))
    } else {
        None
    };
    let affine = lower_with_lint(f, &stmts, hook, opts.verify)?;
    let lowering = t0.elapsed();
    let t1 = std::time::Instant::now();
    let qor = estimate(&affine, &deps, &opts.model, opts.sharing);
    let estimation = t1.elapsed();
    Ok((
        Compiled {
            affine,
            qor,
            deps,
            stmts,
        },
        PhaseTimes {
            lowering,
            estimation,
        },
    ))
}

/// Extracts a sub-function containing only the named computes (with their
/// placeholders and the schedule primitives that target them) — used to
/// attribute latency to individual nodes/paths during DSE.
pub fn sub_function(f: &Function, names: &[&str]) -> Function {
    let mut g = Function::new(f.name());
    for p in f.placeholders() {
        g.placeholder(p.name(), p.shape(), p.dtype());
    }
    for c in f.computes() {
        if names.contains(&c.name()) {
            g.compute(c.name(), c.iters(), c.body().clone(), c.store().clone());
        }
    }
    for prim in f.schedule() {
        let keep = match prim {
            Primitive::After { stmt, other, .. } => {
                names.contains(&stmt.as_str()) && names.contains(&other.as_str())
            }
            Primitive::Partition { .. } => true,
            Primitive::AutoDse => false,
            other_prim => other_prim
                .stmt()
                .map(|s| names.contains(&s))
                .unwrap_or(false),
        };
        if keep {
            g.record(prim.clone());
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{DataType, PartitionStyle};

    fn gemm(n: usize) -> Function {
        let mut f = Function::new("gemm");
        let k = f.var("k", 0, n as i64);
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        f.compute(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        );
        f
    }

    #[test]
    fn unscheduled_compile_is_sequential() {
        let f = gemm(8);
        let c = compile(&f, &CompileOptions::default()).expect("compiles");
        assert!(c.qor.loops.is_empty(), "no pipelined loops");
        // 512 iterations, each costing body latency + overheads.
        assert!(c.qor.latency > 512 * 5);
        assert!(c.affine.to_string().contains("affine.for"));
    }

    #[test]
    fn fig456_schedule_compiles_and_speeds_up() {
        // The paper's Fig. 4/5/6 schedule: tile i, j by 4x4, pipeline j0,
        // unroll intra-tile loops, partition A.
        let mut f = gemm(32);
        f.tile("s", "i", "j", 4, 4, "i0", "j0", "i1", "j1");
        f.pipeline("s", "j0", 1);
        f.unroll("s", "i1", 4);
        f.unroll("s", "j1", 4);
        f.partition("A", &[4, 4], PartitionStyle::Cyclic);
        f.partition("B", &[1, 4], PartitionStyle::Cyclic);
        f.partition("C", &[4, 4], PartitionStyle::Cyclic);
        let opts = CompileOptions::default();
        let optimized = compile(&f, &opts).expect("compiles");
        let baseline = compile(&gemm(32), &opts).expect("compiles");
        assert!(!optimized.qor.loops.is_empty());
        let speedup = optimized.qor.speedup_over(&baseline.qor);
        assert!(speedup > 4.0, "speedup {speedup}");
        let c_code = optimized.hls_c();
        assert!(c_code.contains("#pragma HLS pipeline"));
        assert!(c_code.contains("array_partition"));
    }

    #[test]
    fn dep_summary_maps_transformed_levels() {
        // GEMM (k, i, j): reduction carried at k. After splitting j the
        // carried loop is still named k.
        let mut f = gemm(16);
        f.split("s", "j", 4, "j0", "j1");
        let stmts = apply_schedule(&f);
        let deps = build_dep_summary(&f, &stmts, &CostModel::vitis_f32());
        let d = deps.carried_at("k").expect("k carries the reduction");
        assert_eq!(d.array, "A");
        assert_eq!(d.distance, 1);
        assert_eq!(d.chain_latency, 4, "one fadd on the recurrence");
        assert!(deps.carried_at("j0").is_none());
    }

    #[test]
    fn after_primitive_sequences_nests() {
        let n = 8usize;
        let mut f = Function::new("two");
        let i = f.var("i", 0, n as i64);
        let x = f.placeholder("X", &[n], DataType::F32);
        let y = f.placeholder("Y", &[n], DataType::F32);
        let z = f.placeholder("Z", &[n], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            y.at(&[&i]) + 1.0,
            z.access(&[&i]),
        );
        let c = compile(&f, &CompileOptions::default()).expect("compiles");
        assert_eq!(c.affine.body.len(), 2, "two sequential nests");
    }

    #[test]
    fn fusion_via_after_shares_loop() {
        let n = 8usize;
        let mut f = Function::new("fused");
        let i = f.var("i", 0, n as i64);
        let x = f.placeholder("X", &[n], DataType::F32);
        let y = f.placeholder("Y", &[n], DataType::F32);
        let z = f.placeholder("Z", &[n], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            x.at(&[&i]) + 1.0,
            z.access(&[&i]),
        );
        f.after("S2", "S1", "i");
        let c = compile(&f, &CompileOptions::default()).expect("compiles");
        assert_eq!(c.affine.body.len(), 1, "one fused nest");
        assert_eq!(c.affine.stores().len(), 2);
    }

    #[test]
    fn sub_function_extracts_named_computes() {
        let n = 8usize;
        let mut f = Function::new("two");
        let i = f.var("i", 0, n as i64);
        let x = f.placeholder("X", &[n], DataType::F32);
        let y = f.placeholder("Y", &[n], DataType::F32);
        let z = f.placeholder("Z", &[n], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            y.at(&[&i]) + 1.0,
            z.access(&[&i]),
        );
        f.pipeline("S1", "i", 1);
        f.pipeline("S2", "i", 1);
        let g = sub_function(&f, &["S2"]);
        assert_eq!(g.computes().len(), 1);
        assert_eq!(g.schedule().len(), 1);
    }

    #[test]
    fn hls_c_roundtrip_contains_kernel() {
        let f = gemm(8);
        let c = compile(&f, &CompileOptions::default()).expect("compiles");
        let code = c.hls_c();
        assert!(code.contains("void gemm"));
        assert!(code.contains("for (int"));
    }
}
