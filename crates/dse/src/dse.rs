//! The complete two-stage DSE engine (`f.auto_DSE()`).

use crate::cache::{DseCache, PhaseAccum};
use crate::compile::{compile_timed, CompileError, CompileOptions, Compiled};
use crate::stage1::dependence_aware_transform;
use crate::stage2::{bottleneck_optimize_impl, DseConfig, DseStats, GroupConfig};
use pom_dsl::Function;
use std::time::{Duration, Instant};

/// The result of automatic design space exploration.
#[derive(Clone, Debug)]
pub struct DseResult {
    /// The fully scheduled function (stage-1 + stage-2 primitives).
    pub function: Function,
    /// The compiled/estimated design.
    pub compiled: Compiled,
    /// Final per-node configurations.
    pub groups: Vec<GroupConfig>,
    /// Stage-2 search counters (estimated and lint-pruned candidates).
    pub stats: DseStats,
    /// Wall-clock DSE time (the paper's "DSE Time(s)" column — the
    /// toolchain's runtime, since MLIR→HLS C code generation is <0.1 s).
    pub dse_time: Duration,
    /// The anytime incumbent trajectory of a beam/portfolio search (one
    /// point per strict simulated-cycles improvement, in time order).
    /// Empty under greedy search.
    pub anytime: Vec<crate::search::beam::AnytimePoint>,
}

impl DseResult {
    /// The achieved II of the pipelined loops, in order.
    pub fn achieved_iis(&self) -> Vec<u64> {
        self.compiled
            .qor
            .loops
            .iter()
            .map(|l| l.achieved_ii)
            .collect()
    }

    /// The paper's *parallelism* metric: product of tile sizes divided by
    /// the achieved II (per group, using the matching pipelined loop when
    /// available).
    pub fn parallelism(&self) -> f64 {
        let total_tiles: i64 = self
            .groups
            .iter()
            .map(GroupConfig::parallelism)
            .max()
            .unwrap_or(1);
        let ii = self
            .compiled
            .qor
            .loops
            .iter()
            .map(|l| l.achieved_ii)
            .max()
            .unwrap_or(1);
        total_tiles as f64 / ii as f64
    }
}

/// Runs the two-stage DSE: dependence-aware code transformation followed
/// by bottleneck-oriented code optimization (Section VI).
///
/// # Errors
///
/// Returns the [`CompileError`] of the first candidate or final schedule
/// that fails to compile (consistent with [`crate::compile::compile`]).
pub fn auto_dse(f: &Function, opts: &CompileOptions) -> Result<DseResult, CompileError> {
    auto_dse_with(f, opts, &DseConfig::default())
}

/// [`auto_dse`] under user-specified strategy parameters (Section VI-B
/// lets designers pre-define the groups of strategies and parameters the
/// search may use).
///
/// When `cfg.store` names a directory, the per-search cache is backed by
/// the persistent [`ArtifactStore`](crate::store::ArtifactStore) shard
/// for `opts`, so structurally repeated work hits across processes. A
/// store that fails to open degrades to memory-only caching — the store
/// is an accelerator, never a correctness dependency.
///
/// # Errors
///
/// Same failure modes as [`auto_dse`].
pub fn auto_dse_with(
    f: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
) -> Result<DseResult, CompileError> {
    let cache = cfg.cache.then(|| match &cfg.store {
        Some(root) => match crate::store::ArtifactStore::open(root, opts) {
            Ok(s) => {
                // Best-effort disk-budget sweep on open: a contended GC
                // (the store is open elsewhere) just skips this time.
                if let Some(max) = cfg.store_max_bytes {
                    let _ = s.gc(max);
                }
                DseCache::with_store(std::sync::Arc::new(s))
            }
            Err(_) => DseCache::new(),
        },
        None => DseCache::new(),
    });
    auto_dse_impl(f, opts, cfg, cache.as_ref())
}

/// [`auto_dse_with`] over a caller-owned cache: the daemon keeps one
/// store-backed [`DseCache`] alive across requests, so repeated kernels
/// hit in memory without ever reopening the store shard. The cache must
/// have been created for (a store shard pinned to) the same `opts`.
///
/// # Errors
///
/// Same failure modes as [`auto_dse`].
pub fn auto_dse_with_cache(
    f: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: &DseCache,
) -> Result<DseResult, CompileError> {
    auto_dse_impl(f, opts, cfg, Some(cache))
}

fn auto_dse_impl(
    f: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
) -> Result<DseResult, CompileError> {
    let start = Instant::now();
    let poly_before = pom_poly::PolyStats::snapshot();
    // Counter snapshots: a daemon-shared cache accumulates across
    // requests, so this search's stats are deltas, not absolutes.
    let snap = cache.map(CacheSnapshot::take);
    let acc = PhaseAccum::default();
    let t1 = Instant::now();
    let stage1 = dependence_aware_transform(f, cfg.stage1_max_iters);
    let stage1_time = t1.elapsed();
    let s2 = match cfg.search {
        crate::stage2::SearchMode::Greedy => {
            bottleneck_optimize_impl(&stage1, opts, cfg, cache, &acc)?
        }
        crate::stage2::SearchMode::Beam | crate::stage2::SearchMode::Portfolio => {
            crate::search::beam::beam_optimize_impl(&stage1, opts, cfg, cache, &acc)?
        }
    };
    let mut scheduled = s2.function;
    let mut groups = s2.groups;
    let mut stats = s2.stats;
    let anytime = s2.anytime;
    // The final compiles can reuse the search's full-function dependence
    // template: a pipeline-II retarget never changes the dependences.
    let mut full_template =
        cache.and_then(|c| crate::stage2::full_dep_template(&stage1, &groups, c, opts, &acc));
    // The repair loop's fitting compile is still in the cache, so this
    // lookup answers without recompiling the same schedule.
    let mut compiled = full_compile(cache, &scheduled, opts, &acc, full_template.as_deref())?;
    // Optional simulator re-rank: measure the default winner and the
    // trailing accepted schedules of the greedy descent with pom-sim and
    // keep the fewest simulated cycles. Strict improvement is required,
    // so ties preserve the estimator's winner; this runs before the II
    // retarget and winner validation, which then see the re-ranked
    // schedule exactly like the default path.
    // The beam modes measure candidates during the search itself, so the
    // finalist re-rank only applies to the greedy descent (which records
    // finalists; the beam returns none).
    if cfg.sim_rerank_top_k > 0 && cfg.search == crate::stage2::SearchMode::Greedy {
        const SIM_SEED: u64 = 0x5EED;
        let t_sim = Instant::now();
        let measure = |c: &Compiled| {
            let mut mem = pom_dsl::MemoryState::for_function_seeded(f, SIM_SEED);
            pom_sim::simulate(&c.affine, &c.deps, &mut mem, &opts.model)
        };
        let mut report = measure(&compiled);
        stats.sim_reranked = 1;
        let mut swapped = false;
        // Latest snapshots first: among equally fast finalists, the one
        // the estimator accepted last wins.
        for g in s2.finalists.iter().rev() {
            if *g == groups {
                continue;
            }
            let cand = crate::stage2::schedule_for(&stage1, g);
            let c = full_compile(cache, &cand, opts, &acc, None)?;
            let r = measure(&c);
            stats.sim_reranked += 1;
            if r.cycles < report.cycles {
                report = r;
                scheduled = cand;
                groups = g.clone();
                compiled = c;
                swapped = true;
            }
        }
        if swapped {
            // The dependence template was built for the default groups;
            // rebuild it so the retarget recompile below stays sound.
            full_template = cache
                .and_then(|c| crate::stage2::full_dep_template(&stage1, &groups, c, opts, &acc));
        }
        stats.sim_cycles = report.cycles;
        stats.sim_stall_dep = report.stall_dep;
        stats.sim_stall_port = report.stall_port;
        stats.sim_stall_drain = report.stall_drain;
        stats.sim_port_conflicts = report.port_conflicts;
        stats.sim_time = t_sim.elapsed();
    }
    // Rate-matched dataflow refinement (`DseConfig::dataflow`): cut the
    // sequential winner into dataflow stages, co-simulate the plan with
    // channel back-pressure, and greedily rebalance per-stage unrolls —
    // escalate the bottleneck stage, and when that alone busts the
    // envelope, pair it with a de-escalation of the slackest stage.
    // Throughput follows the slowest stage, so every accepted move
    // rate-matches stage IIs; acceptance requires strictly fewer
    // simulated dataflow cycles and resources within the sequential
    // winner's envelope (the refinement may trade, never grow).
    if cfg.dataflow {
        const DF_SEED: u64 = 0x5EED;
        let t_df = Instant::now();
        let envelope = compiled.qor.resources;
        let measure = |c: &Compiled, plan: &pom_dataflow::DataflowPlan| {
            let mut mem = pom_live::seeded_memory(&c.affine, DF_SEED);
            pom_sim::simulate_dataflow(
                &c.affine,
                &c.deps,
                &plan.stages,
                &plan.channel_specs(),
                &mut mem,
                &opts.model,
            )
        };
        let plan_of = |f: &Function, c: &Compiled| {
            let live = pom_live::analyze_func(&c.affine);
            pom_dataflow::partition(f, &c.affine, &live)
        };
        let mut plan = plan_of(&scheduled, &compiled);
        let mut best = measure(&compiled, &plan);
        let mut rounds = 0usize;
        const MAX_ROUNDS: usize = 16;
        while plan.is_pipeline() && !best.deadlock && rounds < MAX_ROUNDS {
            // Bottleneck = the stage whose local schedule is slowest;
            // slack = the fastest (the one with cycles to give back).
            let local = |s: &pom_sim::StageSim| s.report.cycles;
            let bi = match best.stages.iter().enumerate().max_by_key(|(_, s)| local(s)) {
                Some((i, _)) => i,
                None => break,
            };
            let si = best
                .stages
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != bi)
                .min_by_key(|(_, s)| local(s))
                .map(|(i, _)| i);
            let in_stage = |g: &GroupConfig, stage: usize| {
                g.members
                    .iter()
                    .any(|m| plan.stage_stmts[stage].iter().any(|s| s == m))
            };
            // Candidate group vectors: escalate a bottleneck group alone,
            // or paired with one de-escalation of a slack-stage group.
            let mut cand_groups: Vec<Vec<GroupConfig>> = Vec::new();
            for (gi, g) in groups.iter().enumerate() {
                if !in_stage(g, bi) {
                    continue;
                }
                for esc in g.escalation_candidates_preferred(cfg) {
                    let mut cg = groups.clone();
                    cg[gi] = esc;
                    cand_groups.push(cg.clone());
                    if let Some(si) = si {
                        for (hi, h) in groups.iter().enumerate() {
                            if hi == gi || !in_stage(h, si) {
                                continue;
                            }
                            for de in h.deescalation_candidates() {
                                let mut cg2 = cg.clone();
                                cg2[hi] = de;
                                cand_groups.push(cg2);
                            }
                        }
                    }
                }
            }
            let mut winner: Option<(u64, Function, Vec<GroupConfig>, Compiled)> = None;
            for cg in cand_groups {
                let cand_f = crate::stage2::schedule_for(&stage1, &cg);
                let c = match full_compile(cache, &cand_f, opts, &acc, None) {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                stats.estimated += 1;
                if !c.qor.resources.within(&envelope) {
                    continue;
                }
                let p = plan_of(&cand_f, &c);
                let r = measure(&c, &p);
                if r.deadlock {
                    continue;
                }
                let bar = winner.as_ref().map_or(best.cycles, |w| w.0);
                if r.cycles < bar {
                    winner = Some((r.cycles, cand_f, cg, c));
                }
            }
            match winner {
                Some((_, f2, cg, c2)) => {
                    scheduled = f2;
                    groups = cg;
                    compiled = c2;
                    plan = plan_of(&scheduled, &compiled);
                    best = measure(&compiled, &plan);
                    rounds += 1;
                }
                None => break,
            }
        }
        if rounds > 0 {
            // The dependence template was built for the original groups.
            full_template = cache
                .and_then(|c| crate::stage2::full_dep_template(&stage1, &groups, c, opts, &acc));
        }
        // Discharge the final plan's channel-sizing certificates and
        // record the dataflow-vs-sequential comparison on the winner.
        let mem0 = pom_live::seeded_memory(&compiled.affine, DF_SEED);
        let certs = pom_dataflow::channel_certificates(&compiled.affine, &plan, &mem0);
        stats.certificates_checked += certs.len();
        stats.certificates_passed += certs.iter().filter(|c| c.passed()).count();
        if let Some(bad) = certs.iter().find(|c| !c.passed()) {
            let mut report = pom_verify::ValidationReport {
                func: compiled.affine.name.clone(),
                certificates: vec![bad.clone()],
            };
            report
                .certificates
                .extend(certs.iter().filter(|c| c.passed()).cloned());
            return Err(CompileError::Rejected(report.render()));
        }
        let mut mem = pom_live::seeded_memory(&compiled.affine, DF_SEED);
        let seq = pom_sim::simulate(&compiled.affine, &compiled.deps, &mut mem, &opts.model);
        stats.dataflow_rounds = rounds;
        stats.dataflow_stages = plan.stages.len();
        stats.dataflow_channels = plan.channels.len();
        stats.dataflow_cycles = best.cycles;
        stats.dataflow_seq_cycles = seq.cycles;
        stats.dataflow_time = t_df.elapsed();
    }
    // Align declared IIs with what the recurrences actually allow: the
    // estimator reports the achieved II regardless of the declared one,
    // but the emitted pragmas (and POM001) should not promise II targets
    // the dependences forbid.
    let mut retargeted = false;
    for l in &compiled.qor.loops {
        let issue_ii = l.achieved_ii.saturating_sub(l.port_slide);
        retargeted |= scheduled.retarget_pipeline_ii(&l.stmts, &l.iv, issue_ii as i64);
    }
    if retargeted {
        // A genuine retarget changes the schedule's fingerprint, so this
        // compiles at most once; a re-run over a warm cache answers here.
        compiled = full_compile(cache, &scheduled, opts, &acc, full_template.as_deref())?;
    }
    // Winner validation: the returned schedule carries a full certificate
    // chain — every transformation primitive is replayed through the
    // polyhedral layer and its obligations discharged. The dataflow
    // value-range analysis runs over the winning design alongside it.
    if cfg.validate_winner {
        let report = pom_verify::validate(&scheduled);
        stats.certificates_checked += report.checked();
        stats.certificates_passed += report.checked() - report.rejected().len();
        if !report.passed() {
            return Err(CompileError::Rejected(report.render()));
        }
        stats.dataflow_iterations = pom_verify::analyze_ranges(&compiled.affine).iterations;
    }
    // Contracted-footprint BRAM accounting: re-price each array of the
    // winning design at its pom-live live-window footprint, but only when
    // the contraction's replay certificate passes — an array is never
    // credited on the strength of the static analysis alone.
    if cfg.contract_buffers {
        const CONTRACT_SEED: u64 = 0x5EED;
        let live = pom_live::analyze_func(&compiled.affine);
        let mem0 = pom_live::seeded_memory(&compiled.affine, CONTRACT_SEED);
        for al in live.arrays.iter().filter(|al| al.contracted()) {
            if pom_live::replay_contraction(&compiled.affine, &mem0, &al.array, &al.windows)
                .is_err()
            {
                continue;
            }
            let banks = compiled
                .affine
                .memrefs
                .iter()
                .find(|m| m.name == al.array)
                .map(|m| m.banks().max(1) as u64)
                .unwrap_or(1);
            let full = pom_hls::bram18k_units(al.declared_bits(), banks);
            let folded = pom_hls::bram18k_units(al.contracted_bits(), banks);
            let saved = full.saturating_sub(folded);
            compiled.qor.resources.bram18k = compiled.qor.resources.bram18k.saturating_sub(saved);
            stats.buffers_contracted += 1;
            stats.bram_contracted += saved;
        }
    }
    let dse_time: Duration = start.elapsed();
    // The counters are process-global, so under parallel evaluation this
    // delta includes the worker threads' kernel activity too — exactly the
    // whole-search total the perf triage wants.
    stats.poly = pom_poly::PolyStats::snapshot().delta(&poly_before);
    stats.stage1_time = stage1_time;
    stats.lowering_time = acc.lowering();
    stats.estimation_time = acc.estimation();
    if let (Some(c), Some(s0)) = (cache, snap) {
        stats.cache_hits = c.hits() - s0.hits;
        stats.cache_misses = c.misses() - s0.misses;
        stats.cache_evictions = c.evictions() - s0.evictions;
        stats.cache_entries = c.entries();
        if let Some(s) = c.store() {
            stats.store_hits = s.hits() - s0.store_hits;
            stats.store_misses = s.misses() - s0.store_misses;
            stats.store_writes = s.writes() - s0.store_writes;
        }
    }
    Ok(DseResult {
        function: scheduled,
        compiled,
        groups,
        stats,
        dse_time,
        anytime,
    })
}

/// Counter baseline taken at search start, so a long-lived shared cache
/// reports per-search deltas in `DseStats`.
struct CacheSnapshot {
    hits: usize,
    misses: usize,
    evictions: usize,
    store_hits: usize,
    store_misses: usize,
    store_writes: usize,
}

impl CacheSnapshot {
    fn take(c: &DseCache) -> CacheSnapshot {
        let (store_hits, store_misses, store_writes) = match c.store() {
            Some(s) => (s.hits(), s.misses(), s.writes()),
            None => (0, 0, 0),
        };
        CacheSnapshot {
            hits: c.hits(),
            misses: c.misses(),
            evictions: c.evictions(),
            store_hits,
            store_misses,
            store_writes,
        }
    }
}

/// Full-function compile through the cache when one is active. Shared
/// with the beam search's sim-admission pass.
pub(crate) fn full_compile(
    cache: Option<&DseCache>,
    f: &Function,
    opts: &CompileOptions,
    acc: &PhaseAccum,
    deps: Option<&pom_hls::DepSummary>,
) -> Result<Compiled, CompileError> {
    match cache {
        Some(c) => Ok((*c.compile_full(f, opts, acc, deps)?).clone()),
        None => {
            let (c, times) = compile_timed(f, opts)?;
            acc.add(&times);
            Ok(c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;

    #[test]
    fn auto_dse_end_to_end_on_gesummv_shape() {
        // Two fused-able matrix-vector statements (GESUMMV-like).
        let n = 32usize;
        let mut f = Function::new("gesummv");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let x = f.placeholder("x", &[n], DataType::F32);
        let tmp = f.placeholder("tmp", &[n], DataType::F32);
        let y = f.placeholder("y", &[n], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone()],
            tmp.at(&[&i]) + a.at(&[&i, &j]) * x.at(&[&j]),
            tmp.access(&[&i]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone()],
            y.at(&[&i]) + b.at(&[&i, &j]) * x.at(&[&j]),
            y.access(&[&i]),
        );
        let opts = CompileOptions::default();
        let r = auto_dse(&f, &opts).expect("DSE compiles");
        let base = crate::compile::compile(&crate::baselines::unoptimized(&f), &opts)
            .expect("compiles")
            .qor;
        let speedup = r.compiled.qor.speedup_over(&base);
        assert!(speedup > 10.0, "speedup {speedup}");
        assert!(r.compiled.qor.resources.dsp <= 220);
        assert!(r.parallelism() >= 4.0, "parallelism {}", r.parallelism());
        assert!(!r.achieved_iis().is_empty());
        // Winner validation ran and every certificate passed.
        assert!(r.stats.certificates_checked > 0);
        assert_eq!(r.stats.certificates_checked, r.stats.certificates_passed);
        assert!(r.stats.dataflow_iterations > 0);
    }

    #[test]
    fn dataflow_mode_overlaps_stages_within_envelope() {
        // 2MM-like chain: S1 fills tmp, S2 consumes it — a genuine
        // producer→consumer cut for the dataflow partitioner.
        let n = 16usize;
        let mut f = Function::new("mm2");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let k = f.var("k", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        let d = f.placeholder("D", &[n, n], DataType::F32);
        let tmp = f.placeholder("tmp", &[n, n], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone(), k.clone()],
            tmp.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
            tmp.access(&[&i, &j]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone(), k.clone()],
            d.at(&[&i, &j]) + tmp.at(&[&i, &k]) * c.at(&[&k, &j]),
            d.access(&[&i, &j]),
        );
        let opts = CompileOptions::default();
        let seq = auto_dse(&f, &opts).expect("sequential DSE compiles");
        let cfg = DseConfig {
            dataflow: true,
            ..DseConfig::default()
        };
        let r = auto_dse_with(&f, &opts, &cfg).expect("dataflow DSE compiles");
        assert_eq!(r.stats.dataflow_stages, 2, "two dataflow stages");
        assert_eq!(r.stats.dataflow_channels, 1, "one channel on tmp");
        assert!(r.stats.dataflow_cycles > 0);
        assert!(
            r.stats.dataflow_cycles < r.stats.dataflow_seq_cycles,
            "overlap must win: dataflow {} vs sequential {}",
            r.stats.dataflow_cycles,
            r.stats.dataflow_seq_cycles
        );
        // The refinement may trade resources between stages but never
        // grow past the sequential winner's envelope.
        assert!(r.compiled.qor.resources.within(&seq.compiled.qor.resources));
        // Winner validation plus every channel-sizing certificate passed.
        assert!(r.stats.certificates_checked > seq.stats.certificates_checked);
        assert_eq!(r.stats.certificates_checked, r.stats.certificates_passed);
        // Determinism: a second run reproduces the plan and measurement.
        let r2 = auto_dse_with(&f, &opts, &cfg).expect("dataflow DSE compiles");
        assert_eq!(r.groups, r2.groups);
        assert_eq!(r.stats.dataflow_cycles, r2.stats.dataflow_cycles);
    }

    #[test]
    fn sim_rerank_measures_finalists_and_stays_deterministic() {
        let n = 16usize;
        let mut f = Function::new("mv");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let x = f.placeholder("x", &[n], DataType::F32);
        let y = f.placeholder("y", &[n], DataType::F32);
        f.compute(
            "S",
            &[i.clone(), j.clone()],
            y.at(&[&i]) + a.at(&[&i, &j]) * x.at(&[&j]),
            y.access(&[&i]),
        );
        let opts = CompileOptions::default();
        let cfg = DseConfig {
            sim_rerank_top_k: 2,
            ..DseConfig::default()
        };
        let r1 = auto_dse_with(&f, &opts, &cfg).expect("DSE compiles");
        let r2 = auto_dse_with(&f, &opts, &cfg).expect("DSE compiles");
        // The re-rank ran, measured at least the default winner, and its
        // measurement is recorded.
        assert!(r1.stats.sim_reranked >= 1);
        assert!(r1.stats.sim_cycles > 0);
        // Deterministic: two runs agree on the winner and its measurement.
        assert_eq!(r1.groups, r2.groups);
        assert_eq!(r1.stats.sim_cycles, r2.stats.sim_cycles);
        assert_eq!(r1.compiled.qor.latency, r2.compiled.qor.latency);
        // The re-ranked winner still passed winner validation.
        assert!(r1.stats.certificates_checked > 0);
        assert_eq!(r1.stats.certificates_checked, r1.stats.certificates_passed);
        // Re-ranking off leaves the sim counters untouched.
        let off = auto_dse(&f, &opts).expect("DSE compiles");
        assert_eq!(off.stats.sim_reranked, 0);
        assert_eq!(off.stats.sim_cycles, 0);
    }

    #[test]
    fn illegal_user_schedule_is_caught_by_winner_validation() {
        // The mutation-test scenario end to end: a schedule carrying an
        // illegal interchange (the (1, -1) stencil dependence flips to
        // (-1, 1)) must be rejected by pom-verify's certificate check,
        // not surface as silent output divergence downstream.
        let n = 16usize;
        let mut f = Function::new("stencil");
        let t = f.var("t", 1, n as i64);
        let i = f.var("i", 0, (n - 1) as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let tm1 = t.expr() - 1;
        let ip1 = i.expr() + 1;
        f.compute(
            "s",
            &[t.clone(), i.clone()],
            a.at(&[tm1, ip1]) * 0.5,
            a.access(&[&t, &i]),
        );
        f.interchange("s", "t", "i");
        let err = auto_dse(&f, &CompileOptions::default()).unwrap_err();
        let CompileError::Rejected(report) = err else {
            panic!("expected Rejected, got {err}");
        };
        assert!(report.contains("dependences-preserved"), "{report}");
        assert!(report.contains("error[VERIFY]"), "{report}");

        // The same schedule passes when validation is disabled — the
        // rejection above really came from the certificate check.
        let lax = DseConfig {
            validate_winner: false,
            ..DseConfig::default()
        };
        auto_dse_with(&f, &CompileOptions::default(), &lax).expect("compiles without validation");
    }

    #[test]
    fn contract_buffers_reprices_winner_bram_without_changing_the_design() {
        // Time-expanded Jacobi-1D (the Table III stencil shape): only
        // rows t-1 and t of B are ever simultaneously live, so contracted
        // accounting prices B at a 2-row window instead of all tsteps
        // rows — but only after the folding replays bit-identically.
        let (tsteps, n) = (64usize, 1026usize);
        let n_ = n as i64;
        let mut f = Function::new("jacobi1d");
        let t = f.var("t", 1, tsteps as i64);
        let i = f.var("i", 0, n_ - 2);
        let b = f.placeholder("B", &[tsteps, n], DataType::F32);
        let tm1 = t.expr() - 1;
        let zero = pom_poly::LinearExpr::constant_expr(0);
        let last = pom_poly::LinearExpr::constant_expr(n_ - 1);
        f.compute(
            "sb0",
            std::slice::from_ref(&t),
            b.at(&[tm1.clone(), zero.clone()]),
            b.access(&[t.expr(), zero]),
        );
        f.compute(
            "sb1",
            std::slice::from_ref(&t),
            b.at(&[tm1.clone(), last.clone()]),
            b.access(&[t.expr(), last]),
        );
        let ip1 = i.expr() + 1;
        let ip2 = i.expr() + 2;
        f.compute(
            "s",
            &[t.clone(), i.clone()],
            (b.at(&[tm1.clone(), i.expr()])
                + b.at(&[tm1.clone(), ip1.clone()])
                + b.at(&[tm1.clone(), ip2.clone()]))
                / 3.0,
            b.access(&[t.expr(), ip1]),
        );
        f.after("sb1", "sb0", "t");
        f.after("s", "sb1", "t");
        let opts = CompileOptions::default();
        let off = auto_dse(&f, &opts).expect("DSE compiles");
        let on_cfg = DseConfig {
            contract_buffers: true,
            ..DseConfig::default()
        };
        let on = auto_dse_with(&f, &opts, &on_cfg).expect("DSE compiles");
        // Accounting changed; the design did not.
        assert_eq!(on.groups, off.groups);
        assert_eq!(on.compiled.qor.latency, off.compiled.qor.latency);
        assert_eq!(off.stats.buffers_contracted, 0);
        assert!(
            on.stats.buffers_contracted >= 1,
            "expected T to contract: {:?}",
            on.stats
        );
        assert!(
            on.compiled.qor.resources.bram18k < off.compiled.qor.resources.bram18k,
            "contracted {} vs full {}",
            on.compiled.qor.resources.bram18k,
            off.compiled.qor.resources.bram18k
        );
        assert_eq!(
            on.stats.bram_contracted,
            off.compiled.qor.resources.bram18k - on.compiled.qor.resources.bram18k
        );
    }
}
