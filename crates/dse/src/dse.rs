//! The complete two-stage DSE engine (`f.auto_DSE()`).

use crate::compile::{compile, CompileOptions, Compiled};
use crate::stage1::dependence_aware_transform;
use crate::stage2::{bottleneck_optimize_with, DseConfig, DseStats, GroupConfig};
use pom_dsl::Function;
use std::time::{Duration, Instant};

/// The result of automatic design space exploration.
#[derive(Clone, Debug)]
pub struct DseResult {
    /// The fully scheduled function (stage-1 + stage-2 primitives).
    pub function: Function,
    /// The compiled/estimated design.
    pub compiled: Compiled,
    /// Final per-node configurations.
    pub groups: Vec<GroupConfig>,
    /// Stage-2 search counters (estimated and lint-pruned candidates).
    pub stats: DseStats,
    /// Wall-clock DSE time (the paper's "DSE Time(s)" column — the
    /// toolchain's runtime, since MLIR→HLS C code generation is <0.1 s).
    pub dse_time: Duration,
}

impl DseResult {
    /// The achieved II of the pipelined loops, in order.
    pub fn achieved_iis(&self) -> Vec<u64> {
        self.compiled
            .qor
            .loops
            .iter()
            .map(|l| l.achieved_ii)
            .collect()
    }

    /// The paper's *parallelism* metric: product of tile sizes divided by
    /// the achieved II (per group, using the matching pipelined loop when
    /// available).
    pub fn parallelism(&self) -> f64 {
        let total_tiles: i64 = self
            .groups
            .iter()
            .map(GroupConfig::parallelism)
            .max()
            .unwrap_or(1);
        let ii = self
            .compiled
            .qor
            .loops
            .iter()
            .map(|l| l.achieved_ii)
            .max()
            .unwrap_or(1);
        total_tiles as f64 / ii as f64
    }
}

/// Runs the two-stage DSE: dependence-aware code transformation followed
/// by bottleneck-oriented code optimization (Section VI).
pub fn auto_dse(f: &Function, opts: &CompileOptions) -> DseResult {
    auto_dse_with(f, opts, &DseConfig::default())
}

/// [`auto_dse`] under user-specified strategy parameters (Section VI-B
/// lets designers pre-define the groups of strategies and parameters the
/// search may use).
pub fn auto_dse_with(f: &Function, opts: &CompileOptions, cfg: &DseConfig) -> DseResult {
    let start = Instant::now();
    let stage1 = dependence_aware_transform(f, cfg.stage1_max_iters);
    let s2 = bottleneck_optimize_with(&stage1, opts, cfg);
    let mut scheduled = s2.function;
    let mut compiled = compile(&scheduled, opts).expect("DSE schedule compiles");
    // Align declared IIs with what the recurrences actually allow: the
    // estimator reports the achieved II regardless of the declared one,
    // but the emitted pragmas (and POM001) should not promise II targets
    // the dependences forbid.
    let mut retargeted = false;
    for l in &compiled.qor.loops {
        retargeted |= scheduled.retarget_pipeline_ii(&l.iv, l.achieved_ii as i64);
    }
    if retargeted {
        compiled = compile(&scheduled, opts).expect("retargeted schedule compiles");
    }
    let dse_time: Duration = start.elapsed();
    DseResult {
        function: scheduled,
        compiled,
        groups: s2.groups,
        stats: s2.stats,
        dse_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;

    #[test]
    fn auto_dse_end_to_end_on_gesummv_shape() {
        // Two fused-able matrix-vector statements (GESUMMV-like).
        let n = 32usize;
        let mut f = Function::new("gesummv");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let x = f.placeholder("x", &[n], DataType::F32);
        let tmp = f.placeholder("tmp", &[n], DataType::F32);
        let y = f.placeholder("y", &[n], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone()],
            tmp.at(&[&i]) + a.at(&[&i, &j]) * x.at(&[&j]),
            tmp.access(&[&i]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone()],
            y.at(&[&i]) + b.at(&[&i, &j]) * x.at(&[&j]),
            y.access(&[&i]),
        );
        let opts = CompileOptions::default();
        let r = auto_dse(&f, &opts);
        let base = compile(&crate::baselines::unoptimized(&f), &opts)
            .expect("compiles")
            .qor;
        let speedup = r.compiled.qor.speedup_over(&base);
        assert!(speedup > 10.0, "speedup {speedup}");
        assert!(r.compiled.qor.resources.dsp <= 220);
        assert!(r.parallelism() >= 4.0, "parallelism {}", r.parallelism());
        assert!(!r.achieved_iis().is_empty());
    }
}
