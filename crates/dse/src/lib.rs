//! # pom-dse — schedule application, the two-stage DSE engine, and
//! baseline strategies (Section VI of the paper)
//!
//! * [`mod@compile`] replays a recorded DSL schedule through all three IR
//!   layers — dependence graph IR → polyhedral IR → annotated affine
//!   dialect — and returns the lowered function with its QoR estimate.
//! * [`stage1`] is *dependence-aware code transformation*: per-node
//!   interchange/skew moves guided by iteratively re-checked dependence
//!   analysis, plus conservative fusion of independent compatible nests
//!   (Fig. 10).
//! * [`stage2`] is *bottleneck-oriented code optimization*: latency-ordered
//!   critical paths, parallelism escalation of the bottleneck node, a
//!   resource-constraint exit mechanism, and an optimization list.
//! * [`baselines`] re-implements the comparison frameworks' *strategies*
//!   on the same substrate: unoptimized, Pluto-like, POLSCA-like, and
//!   ScaleHLS-like (see DESIGN.md for the substitution argument).

pub mod baselines;
pub mod cache;
pub mod compile;
pub mod dse;
pub mod search;
pub mod stage1;
pub mod store;

pub use search::stage2;

pub use baselines::{pluto_like, polsca_like, scalehls_like, unoptimized, BaselineResult};
pub use cache::{
    canonical_fingerprint, fingerprint, stable_hash, DseCache, PhaseAccum, StableHasher,
};
pub use compile::{compile, compile_timed, lint_report, CompileError, CompileOptions, Compiled};
pub use dse::{auto_dse, auto_dse_with, auto_dse_with_cache, DseResult};
pub use search::beam::AnytimePoint;
pub use stage1::dependence_aware_transform;
pub use stage2::{
    bottleneck_optimize, bottleneck_optimize_with, try_bottleneck_optimize_with, DseConfig,
    DseStats, GroupConfig, SearchMode, Stage2Result,
};
pub use store::ArtifactStore;
