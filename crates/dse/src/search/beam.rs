//! Anytime parallel beam search with sim-in-the-loop pruning.
//!
//! The greedy descent of [`super::stage2`] follows a single trajectory:
//! escalate the bottleneck group's preferred step, accept on estimated
//! improvement. Its blind spot is exactly where the analytical estimator
//! is coarse — two tile shapes with equal parallelism and near-equal
//! estimates can differ measurably in drain and port behavior, and the
//! greedy ladder commits to one shape without ever measuring the other.
//!
//! The beam search explores the same [`GroupConfig`] space wave by wave:
//! every frontier state expands all single-step escalations of all its
//! groups, candidates are evaluated through the shared memoized compile
//! cache on the scoped worker pool, and the top `beam_width` survivors
//! (by estimated total latency) form the next frontier. Survivors whose
//! estimate lands within the sim-admission band of the best estimate
//! seen are *measured*: their full schedule is compiled (cached) and run
//! through `pom-sim` over a reusable interpreter arena. The incumbent —
//! the measured state with the fewest simulated cycles whose full design
//! fits the device — is the search's answer, and it only ever improves,
//! which makes the search **anytime**: when [`DseConfig::budget_ms`]
//! expires the incumbent-so-far is finalized and returned (with
//! [`DseStats::budget_expired`] set) through the exact repair/validation
//! tail the greedy winner takes.
//!
//! **Portfolio mode** seeds the first frontier from diverse basins: the
//! greedy winner itself, the untiled locality schedule (the pluto-like
//! basin), a polsca-like innermost-strip seed, and the balanced tile
//! ladder a ScaleHLS-style dependence-unaware DSE walks. The greedy
//! winner bypasses the admission band — it is always measured — so the
//! portfolio result is never worse than greedy under the simulator's
//! metric, and strictly better whenever any explored shape measures
//! faster.
//!
//! Determinism: candidate jobs are indexed, [`run_indexed`] returns
//! results in index order, ranking sorts are stable with index
//! tie-breaks, and simulation runs in frontier order — so searches are
//! byte-identical across worker counts. A budgeted run truncates that
//! deterministic trajectory at a wall-clock point and is therefore only
//! as reproducible as the clock; the determinism guarantee applies to
//! `budget_ms: None`.

use super::stage2::{
    bank_infeasible, bottleneck_optimize_impl, bram_of, eval_candidate, full_dep_template,
    group_compile_timed, pipeline_infeasible, plan_groups, prepare_candidate, prepare_scheduled,
    repair_and_finalize, run_indexed, schedule_for, scheduled_group, CandidateEval, DseConfig,
    DseStats, GroupConfig, SearchMode, Stage2Result,
};
use crate::cache::{canonical_fingerprint, fingerprint, stable_hash, DseCache, PhaseAccum};
use crate::compile::{CompileError, CompileOptions};
use pom_dsl::Function;
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// The deterministic simulation seed — the same one the greedy path's
/// `sim_rerank_top_k` measurement uses, so greedy and beam cycle counts
/// are directly comparable.
const SIM_SEED: u64 = 0x5EED;

/// One point of a beam search's anytime incumbent trajectory: recorded
/// each time a measured state strictly improves on the incumbent, so
/// `sim_cycles` is strictly decreasing across a run's points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnytimePoint {
    /// Wall-clock offset from stage-2 search start.
    pub elapsed: Duration,
    /// The new incumbent's simulated cycles.
    pub sim_cycles: u64,
    /// The new incumbent's analytical estimate (sum of group latencies).
    pub est_latency: u64,
}

/// One frontier state: a full per-group configuration with its memoized
/// per-group QoR and estimated total latency (sequential composition,
/// matching the greedy search's critical-path arithmetic). Only states
/// whose composed resources fit the device enter a frontier.
#[derive(Clone)]
struct BeamState {
    groups: Vec<GroupConfig>,
    qor: Vec<(u64, pom_hls::ResourceUsage)>,
    est: u64,
}

/// The best *measured* state so far: fewest simulated cycles among
/// states whose full compiled design fits the device.
struct Incumbent {
    groups: Vec<GroupConfig>,
    cycles: u64,
    /// Fingerprint of the winning full schedule — its report's key.
    key: u64,
}

/// Everything the sim-admission pass mutates, bundled so the per-wave
/// call borrows one context instead of a parameter list.
struct SimLoop {
    arena: pom_sim::SimArena,
    reports: HashMap<u64, pom_sim::SimReport>,
    /// States already offered to simulation (measured or band-pruned) —
    /// admission is per state, not per wave, since a state can survive
    /// several waves.
    simmed: HashSet<u64>,
    incumbent: Option<Incumbent>,
    best_est: u64,
    /// Hash of the state that bypasses the admission band (the greedy
    /// winner under portfolio seeding).
    force: Option<u64>,
}

/// The beam/portfolio search loop. Mirrors
/// [`bottleneck_optimize_impl`]'s contract: same inputs, same
/// [`Stage2Result`], same finalization (resource walk-back, bank
/// repair) — so the downstream II retarget and winner validation in
/// `auto_dse_with` run identically on the beam winner.
pub(crate) fn beam_optimize_impl(
    stage1_fn: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
) -> Result<Stage2Result, CompileError> {
    let t0 = Instant::now();
    let deadline = cfg
        .budget_ms
        .map(|ms| t0 + Duration::from_millis(ms.max(1)));
    let expired = move || deadline.is_some_and(|d| Instant::now() >= d);
    let fp = fingerprint(stage1_fn);
    let workers = cfg.effective_workers();
    let width = cfg.beam_width.max(1);
    let mut stats = DseStats::default();
    let mut anytime: Vec<AnytimePoint> = Vec::new();

    let fits = |r: &pom_hls::ResourceUsage| {
        r.dsp <= opts.device.dsp && r.ff <= opts.device.ff && r.lut <= opts.device.lut
    };
    let compose = |qor: &[(u64, pom_hls::ResourceUsage)]| {
        let mut total = pom_hls::ResourceUsage::zero();
        for (_, r) in qor {
            total = match opts.sharing {
                pom_hls::estimate::Sharing::Reuse => total.max(r),
                pom_hls::estimate::Sharing::Dataflow => total.plus(r),
            };
        }
        total
    };

    // --- Seeds -----------------------------------------------------------
    let base = plan_groups(stage1_fn);
    let mut seed_groups: Vec<Vec<GroupConfig>> = vec![base.clone()];
    let mut force: Option<u64> = None;
    if cfg.search == SearchMode::Portfolio {
        // The greedy winner anchors the portfolio: it bypasses the
        // admission band below, so the portfolio never returns a
        // measurably worse schedule than greedy.
        let greedy = bottleneck_optimize_impl(stage1_fn, opts, cfg, cache, acc)?;
        stats.lint_pruned += greedy.stats.lint_pruned;
        stats.bank_pruned += greedy.stats.bank_pruned;
        stats.estimated += greedy.stats.estimated;
        stats.parallel_evaluated += greedy.stats.parallel_evaluated;
        stats.certificates_checked += greedy.stats.certificates_checked;
        stats.certificates_passed += greedy.stats.certificates_passed;
        stats.certificates_sampled += greedy.stats.certificates_sampled;
        force = Some(stable_hash(&greedy.groups));
        seed_groups.push(greedy.groups);
        seed_groups.push(polsca_seed(&base, cfg));
        seed_groups.extend(balanced_ladder(&base, cfg));
    }
    let mut visited: HashSet<u64> = HashSet::new();
    seed_groups.retain(|g| visited.insert(stable_hash(g)));

    // Evaluate every (seed, group) pair concurrently through the memoized
    // compile cache; results return in index order.
    let jobs: Vec<(usize, usize)> = seed_groups
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.len()).map(move |gi| (si, gi)))
        .collect();
    let evals = run_indexed(jobs.len(), workers, |k| {
        let (si, gi) = jobs[k];
        group_qor(stage1_fn, &seed_groups[si][gi], opts, cache, acc)
    });
    if workers > 1 && jobs.len() > 1 {
        stats.parallel_evaluated += jobs.len();
    }
    let mut qors = evals.into_iter();
    let mut seeds: Vec<BeamState> = Vec::new();
    let mut base_state: Option<BeamState> = None;
    for groups in seed_groups {
        let qor: Vec<(u64, pom_hls::ResourceUsage)> = (0..groups.len())
            .map(|_| qors.next().expect("one QoR per (seed, group) job"))
            .collect::<Result<_, _>>()?;
        let est = qor.iter().map(|q| q.0).sum();
        let state = BeamState { groups, qor, est };
        if base_state.is_none() {
            base_state = Some(state.clone());
        }
        if fits(&compose(&state.qor)) {
            seeds.push(state);
        }
    }
    let base_state = base_state.expect("base seed always present");
    if seeds.is_empty() {
        // Even the untiled design misses the device; there is nothing to
        // search and the finalize walk-back owns that verdict.
        seeds.push(base_state.clone());
    }
    seeds.sort_by_key(|s| s.est); // stable: seed order breaks ties

    let mut sim = SimLoop {
        arena: pom_sim::SimArena::new(),
        reports: HashMap::new(),
        simmed: HashSet::new(),
        incumbent: None,
        best_est: u64::MAX,
        force,
    };
    // Every fitting seed is offered to simulation *before* the beam
    // truncates to width — the portfolio guarantee must not depend on the
    // greedy seed's estimate rank.
    stats.budget_expired = admit_frontier(
        &seeds,
        stage1_fn,
        opts,
        cfg,
        cache,
        acc,
        &expired,
        t0,
        &mut sim,
        &mut stats,
        &mut anytime,
    )?;
    let mut frontier = seeds;
    frontier.truncate(width);
    stats.beam_width = frontier.len();

    // --- Expansion waves -------------------------------------------------
    while !stats.budget_expired {
        if expired() {
            stats.budget_expired = true;
            break;
        }
        // One job per unvisited single-step escalation of any group of
        // any frontier state, in (state, group, candidate) order.
        let mut expansions: Vec<(usize, usize, GroupConfig)> = Vec::new();
        for (pi, st) in frontier.iter().enumerate() {
            for gi in 0..st.groups.len() {
                for cand in st.groups[gi].escalation_candidates_preferred(cfg) {
                    let mut succ = st.groups.clone();
                    succ[gi] = cand.clone();
                    if visited.insert(stable_hash(&succ)) {
                        expansions.push((pi, gi, cand));
                    }
                }
            }
        }
        if expansions.is_empty() {
            break;
        }
        stats.beam_depth += 1;
        stats.beam_expanded += expansions.len();

        let frontier_ref = &frontier;
        let evals = run_indexed(expansions.len(), workers, |k| {
            if expired() {
                return Ok(None);
            }
            let (pi, gi, cand) = &expansions[k];
            let parent = &frontier_ref[*pi];
            // Context for the relative prescreens, memoized per parent —
            // identical to the greedy loop's current-configuration
            // context, computed in-worker (all three are deterministic).
            let cur_infeasible = match cache {
                Some(c) => {
                    let scheduled = scheduled_group(stage1_fn, &parent.groups[*gi], acc);
                    c.memo_infeasible(canonical_fingerprint(&scheduled), || {
                        prepare_candidate(stage1_fn, &parent.groups[*gi], scheduled, c, opts, acc)
                            .infeasible(opts)
                    })
                }
                None => pipeline_infeasible(stage1_fn, &parent.groups[*gi], opts),
            };
            let cur_bram = cfg.lint_prune_bram.then(|| match cache {
                Some(c) => c.memo_bram(fp, &parent.groups, || {
                    bram_of(&schedule_for(stage1_fn, &parent.groups))
                }),
                None => bram_of(&schedule_for(stage1_fn, &parent.groups)),
            });
            let cur_bank_conflict = cfg
                .bank_prune
                .then(|| bank_infeasible(stage1_fn, &parent.groups[*gi], opts));
            eval_candidate(
                stage1_fn,
                fp,
                &parent.groups,
                *gi,
                cand,
                cur_infeasible,
                cur_bram,
                cur_bank_conflict,
                opts,
                cfg,
                cache,
                acc,
            )
            .map(Some)
        });
        if workers > 1 && expansions.len() > 1 {
            stats.parallel_evaluated += expansions.len();
        }

        let mut successors: Vec<BeamState> = Vec::new();
        for (k, ev) in evals.into_iter().enumerate() {
            match ev? {
                None => stats.budget_expired = true,
                Some(CandidateEval::Pruned) => stats.lint_pruned += 1,
                Some(CandidateEval::PrunedBank) => stats.bank_pruned += 1,
                Some(CandidateEval::Estimated(l, r)) => {
                    stats.estimated += 1;
                    let (pi, gi, cand) = &expansions[k];
                    let parent = &frontier[*pi];
                    let mut groups = parent.groups.clone();
                    groups[*gi] = cand.clone();
                    let mut qor = parent.qor.clone();
                    qor[*gi] = (l, r);
                    let est = qor.iter().map(|q| q.0).sum();
                    // Escalation only grows resources, so a state whose
                    // composed figure already misses the device has no
                    // viable descendants — drop it here.
                    if fits(&compose(&qor)) {
                        successors.push(BeamState { groups, qor, est });
                    }
                }
            }
        }
        if successors.is_empty() {
            break;
        }
        successors.sort_by_key(|s| s.est); // stable: expansion order breaks ties
        successors.truncate(width);
        frontier = successors;
        stats.beam_width = stats.beam_width.max(frontier.len());

        if admit_frontier(
            &frontier,
            stage1_fn,
            opts,
            cfg,
            cache,
            acc,
            &expired,
            t0,
            &mut sim,
            &mut stats,
            &mut anytime,
        )? {
            stats.budget_expired = true;
        }
    }

    // --- Winner ----------------------------------------------------------
    let mut groups = match &sim.incumbent {
        Some(inc) => inc.groups.clone(),
        // Budget expired before the first measurement: the best estimated
        // seed (the greedy winner under portfolio) stands in.
        None => base_state.groups.clone(),
    };
    let function = repair_and_finalize(stage1_fn, &mut groups, opts, cfg, cache, acc, &mut stats)?;
    if let Some(inc) = &sim.incumbent {
        let report = match sim.reports.remove(&inc.key) {
            Some(r) => r,
            // The winner's cycle count was a memo hit from an earlier
            // search over a shared cache, so no report was produced here
            // — re-measure once (deterministic seed, same count).
            None => {
                let (_, compiled) = measure_final(stage1_fn, &inc.groups, opts, cfg, cache, acc)?;
                let t_sim = Instant::now();
                let r = sim.arena.simulate(
                    stage1_fn,
                    SIM_SEED,
                    &compiled.affine,
                    &compiled.deps,
                    &opts.model,
                );
                stats.sim_time += t_sim.elapsed();
                r
            }
        };
        stats.sim_cycles = report.cycles;
        stats.sim_stall_dep = report.stall_dep;
        stats.sim_stall_port = report.stall_port;
        stats.sim_stall_drain = report.stall_drain;
        stats.sim_port_conflicts = report.port_conflicts;
    }
    stats.stage2_time = t0.elapsed();
    if let Some(c) = cache {
        stats.cache_hits = c.hits();
        stats.cache_misses = c.misses();
        stats.cache_evictions = c.evictions();
        stats.cache_entries = c.entries();
        if let Some(s) = c.store() {
            stats.store_hits = s.hits();
            stats.store_misses = s.misses();
            stats.store_writes = s.writes();
        }
    }
    stats.lowering_time = acc.lowering();
    stats.estimation_time = acc.estimation();
    Ok(Stage2Result {
        function,
        groups,
        stats,
        finalists: Vec::new(),
        anytime,
    })
}

/// Offers every state of `frontier` to simulation, in order: states
/// inside the admission band (or force-admitted) get a full cached
/// compile and a `pom-sim` run over the shared arena; the incumbent
/// updates on strict cycle improvement, recording an [`AnytimePoint`].
/// Returns `Ok(true)` when the budget expired mid-admission.
#[allow(clippy::too_many_arguments)]
fn admit_frontier(
    frontier: &[BeamState],
    stage1_fn: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
    expired: &dyn Fn() -> bool,
    t0: Instant,
    sim: &mut SimLoop,
    stats: &mut DseStats,
    anytime: &mut Vec<AnytimePoint>,
) -> Result<bool, CompileError> {
    let fits = |r: &pom_hls::ResourceUsage| {
        r.dsp <= opts.device.dsp && r.ff <= opts.device.ff && r.lut <= opts.device.lut
    };
    for st in frontier {
        sim.best_est = sim.best_est.min(st.est);
    }
    for st in frontier {
        let h = stable_hash(&st.groups);
        if !sim.simmed.insert(h) {
            continue;
        }
        if expired() {
            return Ok(true);
        }
        // Admission band: only states whose estimate could plausibly beat
        // the best-estimated state's neighborhood are worth a full
        // compile and simulation.
        let in_band =
            (st.est as u128) * 100 <= (sim.best_est as u128) * (100 + cfg.sim_admit_pct as u128);
        if !in_band && sim.force != Some(h) {
            stats.sim_pruned += 1;
            continue;
        }
        let (key, compiled) = measure_final(stage1_fn, &st.groups, opts, cfg, cache, acc)?;
        if !fits(&compiled.qor.resources) {
            // The walk-back ran out of tiles to shrink; the design is
            // over budget, so it cannot win at the device envelope.
            stats.sim_pruned += 1;
            continue;
        }
        let t_sim = Instant::now();
        let arena = &mut sim.arena;
        let reports = &mut sim.reports;
        let mut run = || {
            let r = arena.simulate(
                stage1_fn,
                SIM_SEED,
                &compiled.affine,
                &compiled.deps,
                &opts.model,
            );
            let cycles = r.cycles;
            reports.insert(key, r);
            cycles
        };
        let cycles = match cache {
            Some(c) => c.memo_sim(key, &mut run),
            None => run(),
        };
        stats.sim_time += t_sim.elapsed();
        stats.sim_admitted += 1;
        if sim
            .incumbent
            .as_ref()
            .map(|i| cycles < i.cycles)
            .unwrap_or(true)
        {
            sim.incumbent = Some(Incumbent {
                groups: st.groups.clone(),
                cycles,
                key,
            });
            anytime.push(AnytimePoint {
                elapsed: t0.elapsed(),
                sim_cycles: cycles,
                est_latency: st.est,
            });
        }
    }
    Ok(false)
}

/// Compiles a state the way `auto_dse_with` compiles the returned
/// winner: resource walk-back + bank repair ([`repair_and_finalize`]),
/// full cached compile, pipeline-II retarget to the achieved issue IIs,
/// and a recompile when anything retargeted. Returns the *final*
/// design's fingerprint and compiled form — so the cycle counts the
/// admission loop compares are exactly the metric the finished designs
/// exhibit, and in-search ordering cannot flip after finalization
/// (which is what makes the portfolio ≥ greedy guarantee hold).
///
/// The repair walk-back re-runs per measured state over a scratch stats
/// block (its compiles are memoized, so repeated finalization of the
/// same state costs one cache lookup); the winner's own finalization at
/// search end records the real counters.
fn measure_final(
    stage1_fn: &Function,
    groups: &[GroupConfig],
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
) -> Result<(u64, crate::compile::Compiled), CompileError> {
    let mut g = groups.to_vec();
    let mut scratch = DseStats::default();
    let mut scheduled =
        repair_and_finalize(stage1_fn, &mut g, opts, cfg, cache, acc, &mut scratch)?;
    let template = cache.and_then(|c| full_dep_template(stage1_fn, &g, c, opts, acc));
    let mut compiled = crate::dse::full_compile(cache, &scheduled, opts, acc, template.as_deref())?;
    let mut retargeted = false;
    for l in &compiled.qor.loops {
        let issue_ii = l.achieved_ii.saturating_sub(l.port_slide);
        retargeted |= scheduled.retarget_pipeline_ii(&l.stmts, &l.iv, issue_ii as i64);
    }
    if retargeted {
        compiled = crate::dse::full_compile(cache, &scheduled, opts, acc, template.as_deref())?;
    }
    Ok((fingerprint(&scheduled), compiled))
}

/// Per-group QoR through the cache — the same memoized entry the greedy
/// search's initial evaluation uses, so beam and greedy share entries.
fn group_qor(
    stage1_fn: &Function,
    g: &GroupConfig,
    opts: &CompileOptions,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
) -> Result<(u64, pom_hls::ResourceUsage), CompileError> {
    match cache {
        Some(c) => {
            let scheduled = scheduled_group(stage1_fn, g, acc);
            c.memo_group_qor(canonical_fingerprint(&scheduled), || {
                prepare_scheduled(scheduled, opts, acc).estimate(opts, acc)
            })
        }
        None => group_compile_timed(stage1_fn, g, opts, acc),
    }
}

/// The POLSCA-like portfolio seed: strip the innermost parallel level of
/// every group toward the baseline's fixed 32-wide strip, power-of-two
/// so the beam's doubling escalations extend it.
fn polsca_seed(base: &[GroupConfig], cfg: &DseConfig) -> Vec<GroupConfig> {
    base.iter()
        .map(|g| {
            let mut g = g.clone();
            if let Some(&l) = g.parallel.last() {
                let cap = g.extents[l].min(32).min(cfg.max_parallelism).max(1);
                let mut t = 1i64;
                while t * 2 <= cap {
                    t *= 2;
                }
                g.tiles[l] = t;
            }
            g
        })
        .collect()
}

/// The ScaleHLS-like portfolio seeds: the balanced tile ladder a
/// dependence-unaware per-nest DSE walks — each step doubles the
/// globally smallest parallel-level tile (ties: group order, then
/// innermost level), yielding square-ish shapes the greedy ladder's
/// cap-first preference never visits.
fn balanced_ladder(base: &[GroupConfig], cfg: &DseConfig) -> Vec<Vec<GroupConfig>> {
    let mut out = Vec::new();
    let mut cur: Vec<GroupConfig> = base.to_vec();
    loop {
        let mut pick: Option<(usize, usize)> = None;
        for (gi, g) in cur.iter().enumerate() {
            if g.parallelism() * 2 > cfg.max_parallelism {
                continue;
            }
            for &l in g.parallel.iter().rev() {
                if g.tiles[l] * 2 > g.extents[l] {
                    continue;
                }
                let better = match pick {
                    None => true,
                    Some((pgi, pl)) => g.tiles[l] < cur[pgi].tiles[pl],
                };
                if better {
                    pick = Some((gi, l));
                }
            }
        }
        let Some((gi, l)) = pick else { break };
        cur[gi].tiles[l] *= 2;
        out.push(cur.clone());
    }
    out
}
