//! Search strategies over the stage-2 configuration space.
//!
//! * [`stage2`] — the paper's greedy bottleneck-oriented descent
//!   (Section VI-B): escalate the parallelism of the latency-critical
//!   group until a resource ceiling, then repair.
//! * [`beam`] — an anytime parallel beam search over the same
//!   [`GroupConfig`](stage2::GroupConfig) space, re-ranked by simulated
//!   cycles from `pom-sim`, with a portfolio mode that seeds the beam
//!   from the greedy winner and the baseline strategies' schedules.
//!
//! Both searches share the memoized compile cache, the scoped worker
//! pool, and the finalization path (resource repair, bank repair, winner
//! validation), so a mode switch changes only which schedules are
//! explored — never how a winner is compiled or certified.

pub mod beam;
pub mod stage2;

pub use beam::AnytimePoint;
pub use stage2::SearchMode;
