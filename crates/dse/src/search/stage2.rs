//! DSE stage 2: bottleneck-oriented code optimization (Section VI-B).
//!
//! After stage 1 has alleviated tight loop-carried dependences, this stage
//! explores tiling + HLS optimizations: it estimates the latency of every
//! node (group of fused computes), orders data paths by latency, and
//! repeatedly escalates the *parallelism degree* of the bottleneck node on
//! the critical path — splitting parallel loops, unrolling the intra-tile
//! loops, pipelining the innermost tile loop, and cyclically partitioning
//! the accessed arrays to feed the unrolled units. A node exits the
//! optimization list when it reaches maximum parallelism or the next step
//! would exceed the device's resources (the paper's exit mechanism).

use crate::cache::{canonical_fingerprint, fingerprint, DseCache, PhaseAccum};
use crate::compile::{
    apply_schedule, build_dep_summary, compile, compile_timed, lower, sub_function, CompileError,
    CompileOptions,
};
use pom_dsl::{Function, PartitionStyle, Primitive};
use pom_graph::DepGraph;
use pom_poly::{DepKind, StmtPoly};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters reported by the stage-2 search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Escalation candidates discarded by the lint prescreen before any
    /// estimation was paid for them.
    pub lint_pruned: usize,
    /// Escalation candidates discarded because they would *introduce* a
    /// provable bank conflict (POM006) the current configuration does not
    /// have ([`DseConfig::bank_prune`]; 0 when the prescreen was off).
    pub bank_pruned: usize,
    /// Arrays whose partition factors the final bank-repair pass raised
    /// to their minimal conflict-free values
    /// ([`DseConfig::bank_repair`]; 0 when repair was off or nothing
    /// needed raising).
    pub bank_repaired: usize,
    /// Escalation candidates that were fully estimated.
    pub estimated: usize,
    /// Compile/estimate cache lookups answered without computing (from
    /// memory or the persistent store).
    pub cache_hits: usize,
    /// Cache lookups that had to compute their value.
    pub cache_misses: usize,
    /// In-memory cache entries dropped by capacity eviction.
    pub cache_evictions: usize,
    /// Live in-memory cache entries at search end, across all maps.
    pub cache_entries: usize,
    /// Lookups answered from the persistent artifact store (a subset of
    /// `cache_hits`; 0 without [`DseConfig::store`]).
    pub store_hits: usize,
    /// Store lookups that found no valid artifact before computing.
    pub store_misses: usize,
    /// Artifacts spilled to the persistent store by this search.
    pub store_writes: usize,
    /// Candidates evaluated inside a concurrent batch (0 when the search
    /// ran serially).
    pub parallel_evaluated: usize,
    /// Wall time of stage 1 (dependence-aware transformation).
    pub stage1_time: Duration,
    /// Wall time of stage 2 (bottleneck-oriented optimization).
    pub stage2_time: Duration,
    /// Time inside compile calls: schedule replay + dependence analysis +
    /// affine lowering.
    pub lowering_time: Duration,
    /// Time inside compile calls: QoR estimation.
    pub estimation_time: Duration,
    /// Translation-validation certificates checked (winning schedule +
    /// sampled candidates).
    pub certificates_checked: usize,
    /// Certificates whose every obligation passed.
    pub certificates_passed: usize,
    /// Candidates picked up by the sampled validation pass
    /// (`DseConfig::validate_sample_every`).
    pub certificates_sampled: usize,
    /// Fixpoint iterations of the dataflow value-range analysis over the
    /// winning design.
    pub dataflow_iterations: usize,
    /// Finalist schedules re-ranked by simulated cycles
    /// ([`DseConfig::sim_rerank_top_k`]; 0 when re-ranking was off).
    pub sim_reranked: usize,
    /// Simulated cycle count of the returned schedule (0 unless
    /// re-ranking ran).
    pub sim_cycles: u64,
    /// Simulated dependence-stall cycles of the returned schedule.
    pub sim_stall_dep: u64,
    /// Simulated port-contention stall cycles of the returned schedule.
    pub sim_stall_port: u64,
    /// Simulated pipeline-drain cycles of the returned schedule.
    pub sim_stall_drain: u64,
    /// Memory accesses whose simulated port grant slid past the request.
    pub sim_port_conflicts: u64,
    /// Wall time spent inside the simulator during re-ranking.
    pub sim_time: Duration,
    /// Arrays whose certificate-validated contraction reduced the
    /// winner's BRAM figure ([`DseConfig::contract_buffers`]; 0 when
    /// accounting at full footprints).
    pub buffers_contracted: usize,
    /// BRAM18K units reclaimed by contracted accounting.
    pub bram_contracted: u64,
    /// Polyhedral-kernel counters (FM eliminations, fan-out combinations,
    /// projection-memo hits) accumulated across the whole search.
    pub poly: pom_poly::PolyStats,
    /// Expansion waves the beam search ran (0 under greedy search).
    pub beam_depth: usize,
    /// Widest frontier the beam search actually held (0 under greedy).
    pub beam_width: usize,
    /// Successor states the beam search evaluated across all waves.
    pub beam_expanded: usize,
    /// Frontier states admitted to full-schedule simulation by the
    /// sim-admission band ([`DseConfig::sim_admit_pct`]).
    pub sim_admitted: usize,
    /// Frontier survivors *not* simulated because their analytical
    /// estimate fell outside the admission band of the incumbent.
    pub sim_pruned: usize,
    /// True when [`DseConfig::budget_ms`] expired before the beam search
    /// exhausted its frontier — the result is the anytime best-so-far.
    pub budget_expired: bool,
    /// Rate-matching rounds of the dataflow refinement that strictly
    /// improved the plan ([`DseConfig::dataflow`]; 0 when off).
    pub dataflow_rounds: usize,
    /// Stages in the final dataflow plan (0 when the refinement was off).
    pub dataflow_stages: usize,
    /// Inter-stage channels in the final dataflow plan.
    pub dataflow_channels: usize,
    /// Simulated dataflow cycles of the final plan (0 when off).
    pub dataflow_cycles: u64,
    /// Simulated *sequential* cycles of the same final schedule — the
    /// baseline the dataflow overlap is measured against.
    pub dataflow_seq_cycles: u64,
    /// Wall time spent partitioning, co-simulating, and certifying
    /// during the dataflow refinement.
    pub dataflow_time: Duration,
}

/// The outcome of [`bottleneck_optimize_with`]: the fully scheduled
/// function, the final group configurations, and search statistics.
#[derive(Clone, Debug)]
pub struct Stage2Result {
    /// The stage-1 function with stage-2 primitives applied.
    pub function: Function,
    /// Final per-group configurations.
    pub groups: Vec<GroupConfig>,
    /// Search counters (lint-pruned candidates etc.).
    pub stats: DseStats,
    /// The last accepted group configurations of the greedy descent, most
    /// recent last. Only recorded when [`DseConfig::sim_rerank_top_k`] is
    /// positive (capped at that many snapshots); the final configuration
    /// in `groups` is *not* duplicated here unless an accept produced it.
    pub finalists: Vec<Vec<GroupConfig>>,
    /// The anytime incumbent trajectory of a beam/portfolio search:
    /// one point per strict incumbent improvement, in time order. Empty
    /// under greedy search (see [`crate::search::beam::AnytimePoint`]).
    pub anytime: Vec<crate::search::beam::AnytimePoint>,
}

/// The tiling/unrolling configuration of one node (fusion group).
#[derive(Clone, Debug, Hash, PartialEq, Eq)]
pub struct GroupConfig {
    /// Compute names in the group (program order).
    pub members: Vec<String>,
    /// Loop dims of the group's representative statement, outermost first.
    pub dims: Vec<String>,
    /// Indices of levels that are parallel for *every* member.
    pub parallel: Vec<usize>,
    /// Trip count per level.
    pub extents: Vec<i64>,
    /// Current tile (unroll factor) per level; 1 = not unrolled.
    pub tiles: Vec<i64>,
}

/// Which stage-2 search explores the configuration space.
#[derive(Clone, Copy, Debug, Default, Hash, PartialEq, Eq)]
pub enum SearchMode {
    /// The paper's greedy bottleneck-oriented descent (Section VI-B).
    /// The default — byte-identical to the pre-beam search.
    #[default]
    Greedy,
    /// Anytime parallel beam search over the same space, re-ranked by
    /// simulated cycles ([`crate::search::beam`]).
    Beam,
    /// [`SearchMode::Beam`] seeded from the greedy winner plus the
    /// pluto/polsca/scalehls baseline schedules (diverse basins).
    Portfolio,
}

impl SearchMode {
    /// Every accepted mode name, in CLI presentation order.
    pub const MODES: [&'static str; 3] = ["greedy", "beam", "portfolio"];

    /// Parses a CLI mode name.
    pub fn parse(s: &str) -> Option<SearchMode> {
        match s {
            "greedy" => Some(SearchMode::Greedy),
            "beam" => Some(SearchMode::Beam),
            "portfolio" => Some(SearchMode::Portfolio),
            _ => None,
        }
    }

    /// The CLI name of the mode.
    pub fn as_str(self) -> &'static str {
        match self {
            SearchMode::Greedy => "greedy",
            SearchMode::Beam => "beam",
            SearchMode::Portfolio => "portfolio",
        }
    }
}

impl std::fmt::Display for SearchMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// User-tunable DSE strategy parameters — the paper's "set of types and
/// factors … determined before the search; users can specify suitable
/// groups of strategies and parameters" (Section VI-B).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DseConfig {
    /// Bound on the iterative dependence-recheck loop of stage 1
    /// ("terminated … if the number of iterations has reached its
    /// pre-defined bounds").
    pub stage1_max_iters: usize,
    /// Preferred per-level unroll cap before the ladder spills to other
    /// levels.
    pub level_cap: i64,
    /// Hard cap on a node's parallelism degree (product of tiles).
    pub max_parallelism: i64,
    /// Extend the lint prescreen to the BRAM budget (POM003). The
    /// always-on prescreen only discards candidates that would introduce
    /// *Error*-level diagnostics (an infeasible pipeline II); BRAM
    /// pressure is a Warning in the lint taxonomy, so pruning on it is a
    /// policy choice: the seed search deliberately lets partitioning
    /// overshoot BRAM (muxing costs surface in DSP/FF/LUT), and turning
    /// this on trades peak parallelism for memory feasibility.
    pub lint_prune_bram: bool,
    /// Prune escalation candidates whose pipelined loops pom-bank proves
    /// cannot meet their declared II through the declared partitioning
    /// (POM006) when the current configuration has no such conflict.
    /// Opt-in for the same reason as [`DseConfig::lint_prune_bram`]: bank
    /// conflicts are a Warning (the design still works, just slower than
    /// declared), and the seed search deliberately lets the estimator's
    /// bank-aware ResMII price them instead of forbidding them.
    pub bank_prune: bool,
    /// After the resource walk-back, raise the partition factors of any
    /// array whose provable bank conflicts make a declared II infeasible
    /// to the minimal conflict-free values pom-bank computes. On by
    /// default: repair is a no-op on conflict-free winners (every
    /// non-stencil Table III kernel), and where it does fire the port
    /// calendars would otherwise slide the issue past the declared II on
    /// every iteration — a cost no II declaration absorbs. Repair can
    /// grow BRAM/mux cost past what the walk-back just reclaimed; turn
    /// it off to reproduce the pre-bank seed search.
    pub bank_repair: bool,
    /// Memoize compile/estimate results across the search (lint
    /// prescreen, candidate estimation, the final-repair walk-back, and
    /// the post-retarget recompile share one cache). Off reproduces the
    /// seed's cost profile — every step pays the full pipeline again.
    pub cache: bool,
    /// Root directory of a persistent artifact store backing the cache
    /// (see `pom_dse::store`): misses consult the matching store shard
    /// before computing and computed entries are spilled for later
    /// processes. `None` (the default) keeps the cache memory-only.
    /// Ignored when [`DseConfig::cache`] is off; a store that fails to
    /// open degrades to memory-only caching.
    pub store: Option<std::path::PathBuf>,
    /// Disk budget for the artifact store, enforced by an
    /// oldest-artifact-first sweep ([`ArtifactStore::gc`]
    /// (crate::store::ArtifactStore::gc)) when the store is opened.
    /// `None` (the default) never sweeps. A contended sweep (another
    /// process holds the store open) is skipped, not fatal.
    pub store_max_bytes: Option<u64>,
    /// Worker threads for candidate evaluation: `0` = one per available
    /// core, `1` = serial. Parallel and serial searches produce
    /// byte-identical schedules (ties break by candidate index).
    pub workers: usize,
    /// Run translation validation over the winning schedule and fail the
    /// DSE if any rewrite's certificate is rejected. On by default: the
    /// returned design always carries a passing certificate chain.
    pub validate_winner: bool,
    /// Additionally validate every `n`-th estimated candidate during the
    /// search (deterministic by candidate counter). `0` disables
    /// sampling. A rejected sample aborts the search with
    /// [`CompileError::Rejected`] — it means a transformation primitive
    /// produced an illegal schedule the legality screen missed.
    pub validate_sample_every: usize,
    /// Re-rank the last `k` accepted schedules of the greedy descent by
    /// *simulated* cycles (pom-sim) and return the fastest. `0` (the
    /// default) trusts the analytical estimate alone. Ties keep the
    /// estimator's winner, so enabling this never degrades the result
    /// under the simulator's own metric.
    pub sim_rerank_top_k: usize,
    /// Account each array at its pom-live *contracted* footprint (the
    /// live-window modulo fold) in the winner's BRAM figure, but only
    /// for arrays whose contraction passes its replay certificate
    /// ([`pom_live::replay_contraction`]). Off by default: the emitted
    /// design still declares full-size arrays, so the reduced figure is
    /// a claim about the storage a folding backend would need — POM007
    /// reports the same opportunity as a lint warning regardless.
    pub contract_buffers: bool,
    /// Which search explores the stage-2 space. [`SearchMode::Greedy`]
    /// (the default) is byte-identical to the pre-beam search; the beam
    /// modes trade more compile/simulate work for schedules the greedy
    /// descent's single trajectory cannot reach.
    pub search: SearchMode,
    /// Frontier width of the beam search (ignored under greedy). Each
    /// expansion wave keeps this many states, ranked by the analytical
    /// estimate with simulated incumbents pinned first.
    pub beam_width: usize,
    /// Anytime wall-clock budget for the beam search: when it expires the
    /// search stops at the next deadline check (before each candidate
    /// compile and each simulation) and returns the best-so-far incumbent
    /// with its verify certificate. `None` (the default) runs the beam to
    /// frontier exhaustion. Ignored under greedy search.
    pub budget_ms: Option<u64>,
    /// Sim-admission band, in percent: a frontier survivor is simulated
    /// only when its analytical estimate is within this fraction above
    /// the best estimate seen so far (`est <= best * (100 + pct) / 100`).
    /// Bounds full-schedule simulation cost to the states that could
    /// plausibly win; survivors outside the band are counted in
    /// [`DseStats::sim_pruned`] and keep their estimate ranking.
    pub sim_admit_pct: u32,
    /// Rate-matched dataflow refinement: after the sequential search
    /// settles its winner, partition it into dataflow stages
    /// (`pom-dataflow`), co-simulate the plan with channel-accurate
    /// back-pressure, and iteratively rebalance the per-stage unrolls —
    /// escalating the bottleneck stage and, when the envelope is tight,
    /// de-escalating slack stages to pay for it. Only strict simulated
    /// dataflow-cycle improvements whose resources stay within the
    /// sequential winner's envelope are accepted; throughput follows the
    /// slowest stage, so the refinement rate-matches stage IIs. Off by
    /// default.
    pub dataflow: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            stage1_max_iters: 8,
            level_cap: 16,
            max_parallelism: 256,
            lint_prune_bram: false,
            bank_prune: false,
            bank_repair: true,
            cache: true,
            store: None,
            store_max_bytes: None,
            workers: 0,
            validate_winner: true,
            validate_sample_every: 0,
            sim_rerank_top_k: 0,
            contract_buffers: false,
            search: SearchMode::Greedy,
            beam_width: 4,
            budget_ms: None,
            sim_admit_pct: 15,
            dataflow: false,
        }
    }
}

impl DseConfig {
    /// The seed's serial, uncached cost profile — the baseline the
    /// `bench-dse` harness measures speedups against.
    pub fn serial_uncached() -> Self {
        DseConfig {
            cache: false,
            workers: 1,
            ..DseConfig::default()
        }
    }

    /// Effective worker count (resolves `0` to the machine's parallelism).
    pub fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            n => n,
        }
    }
}

impl GroupConfig {
    /// The parallelism degree: product of tiles (the paper divides this by
    /// the achieved II to report *parallelism*).
    pub fn parallelism(&self) -> i64 {
        self.tiles.iter().product()
    }

    /// Escalates the parallelism degree one step: doubles the tile of the
    /// innermost parallel level below the per-level preference cap, then
    /// of any parallel level below its extent. Returns false when the
    /// configured maximum parallelism is reached.
    pub fn escalate(&mut self) -> bool {
        self.escalate_with(&DseConfig::default())
    }

    /// [`GroupConfig::escalate`] under explicit strategy parameters.
    pub fn escalate_with(&mut self, cfg: &DseConfig) -> bool {
        if self.parallelism() * 2 > cfg.max_parallelism {
            return false;
        }
        for &l in self.parallel.iter().rev() {
            if self.tiles[l] * 2 <= self.extents[l].min(cfg.level_cap) {
                self.tiles[l] *= 2;
                return true;
            }
        }
        for &l in self.parallel.iter().rev() {
            if self.tiles[l] * 2 <= self.extents[l] {
                self.tiles[l] *= 2;
                return true;
            }
        }
        false
    }

    /// All single-step escalations (doubling one parallel level within its
    /// extent), innermost first — used by greedy searches that want to try
    /// alternatives when the preferred step regresses.
    pub fn escalation_candidates(&self) -> Vec<GroupConfig> {
        self.escalation_candidates_with(&DseConfig::default())
    }

    /// [`GroupConfig::escalation_candidates`] under explicit parameters.
    pub fn escalation_candidates_with(&self, cfg: &DseConfig) -> Vec<GroupConfig> {
        let mut out = Vec::new();
        if self.parallelism() * 2 > cfg.max_parallelism {
            return out;
        }
        for &l in self.parallel.iter().rev() {
            if self.tiles[l] * 2 <= self.extents[l] {
                let mut c = self.clone();
                c.tiles[l] *= 2;
                out.push(c);
            }
        }
        out
    }

    /// All single-step de-escalations (halving one parallel level's tile
    /// back towards 1), innermost first — the dataflow refinement's
    /// rate-matching move: a stage running faster than the pipeline
    /// bottleneck returns resources by shrinking its unroll, which the
    /// bottleneck stage can then spend.
    pub fn deescalation_candidates(&self) -> Vec<GroupConfig> {
        let mut out = Vec::new();
        for &l in self.parallel.iter().rev() {
            if self.tiles[l] > 1 {
                let mut c = self.clone();
                c.tiles[l] /= 2;
                out.push(c);
            }
        }
        out
    }

    /// [`GroupConfig::escalation_candidates_with`] in the greedy ladder's
    /// preference order: levels still under the per-level cap first
    /// (innermost first), then the over-cap spills — so index 0 is
    /// exactly the step [`GroupConfig::escalate_with`] would take, and
    /// index-ordered tie-breaking reproduces the serial greedy trajectory
    /// whenever candidates tie on latency.
    pub fn escalation_candidates_preferred(&self, cfg: &DseConfig) -> Vec<GroupConfig> {
        let mut out = Vec::new();
        if self.parallelism() * 2 > cfg.max_parallelism {
            return out;
        }
        let mut taken: Vec<usize> = Vec::new();
        for &l in self.parallel.iter().rev() {
            if self.tiles[l] * 2 <= self.extents[l].min(cfg.level_cap) {
                let mut c = self.clone();
                c.tiles[l] *= 2;
                out.push(c);
                taken.push(l);
            }
        }
        for &l in self.parallel.iter().rev() {
            if !taken.contains(&l) && self.tiles[l] * 2 <= self.extents[l] {
                let mut c = self.clone();
                c.tiles[l] *= 2;
                out.push(c);
            }
        }
        out
    }
}

/// Derives the groups (fusion classes) of a stage-1-transformed function.
pub fn plan_groups(f: &Function) -> Vec<GroupConfig> {
    let stmts = apply_schedule(f);
    // Group statements by their outermost static (fused statements share it).
    let mut by_order: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (i, s) in stmts.iter().enumerate() {
        by_order.entry(s.statics()[0]).or_default().push(i);
    }
    let mut groups = Vec::new();
    for (_, members) in by_order {
        // Representative: the *deepest* member (first on ties). Partially
        // fused groups (statements sharing only an outer loop, e.g. a
        // stencil's boundary-propagation statements riding the time loop)
        // must be configured over the full nest, not the shallow member's.
        let mut rep_idx = members[0];
        for &m in &members[1..] {
            if stmts[m].dims().len() > stmts[rep_idx].dims().len() {
                rep_idx = m;
            }
        }
        let rep = &stmts[rep_idx];
        let dims = rep.dims().to_vec();
        // Average extents with outer dims fixed at their midpoints, which
        // handles the non-rectangular domains produced by skewing.
        let mut env: HashMap<String, i64> = HashMap::new();
        let mut extents: Vec<i64> = Vec::with_capacity(dims.len());
        for d in &dims {
            let (lb, ub) = extent_range(rep, d, &env);
            env.insert(d.clone(), (lb + ub) / 2);
            extents.push((ub - lb + 1).max(1));
        }
        // Parallel levels: parallel in every member that *has* the level
        // (a shallower fused member does not iterate the deeper levels,
        // so it cannot constrain them).
        let mut parallel: Vec<usize> = (0..dims.len()).collect();
        for &m in &members {
            let depth = stmts[m].dims().len();
            let carried = carried_levels(f, &stmts, m);
            parallel
                .retain(|&l| l >= depth || carried.get(l).map(|c| c.is_none()).unwrap_or(false));
        }
        groups.push(GroupConfig {
            members: members
                .iter()
                .map(|&m| f.computes()[m].name().to_string())
                .collect(),
            tiles: vec![1; dims.len()],
            dims,
            parallel,
            extents,
        });
    }
    groups
}

fn extent_range(s: &StmtPoly, dim: &str, env: &HashMap<String, i64>) -> (i64, i64) {
    let (lbs, ubs) = s.domain().bounds_of(dim);
    let lb = lbs
        .iter()
        .map(|(e, d)| -((-e.eval_partial(env)).div_euclid(*d)))
        .max()
        .unwrap_or(0);
    let ub = ubs
        .iter()
        .map(|(e, d)| e.eval_partial(env).div_euclid(*d))
        .min()
        .unwrap_or(lb);
    (lb, ub.max(lb))
}

fn carried_levels(f: &Function, stmts: &[StmtPoly], idx: usize) -> Vec<Option<i64>> {
    let c = &f.computes()[idx];
    let s = &stmts[idx];
    let store = c.store();
    let mut carried = vec![None; s.dims().len()];
    let mut deps = Vec::new();
    for l in c.loads() {
        if l.array == store.array {
            deps.extend(s.analyze_dependence(store, l, DepKind::Flow));
            deps.extend(s.analyze_dependence(store, store, DepKind::Output));
        }
    }
    for d in deps {
        if let (Some(level), Some(v)) = (d.carried_level, &d.distance) {
            let dist = v.0[level];
            carried[level] = Some(match carried[level] {
                Some(cur) if cur <= dist => cur,
                _ => dist,
            });
        } else if let Some(level) = d.carried_level {
            carried[level] = Some(1);
        }
    }
    carried
}

/// Materializes stage-2 primitives for the given group configurations on
/// top of the stage-1-transformed function: splits + reorders, pipeline of
/// the innermost tile loop, full unroll of intra-tile loops, and cyclic
/// array partitioning matched to the unroll factors.
pub fn schedule_for(base: &Function, groups: &[GroupConfig]) -> Function {
    let mut g = base.clone();
    let mut partition_factors: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for p in g.placeholders() {
        partition_factors.insert(p.name().to_string(), vec![1; p.shape().len()]);
    }
    // Per-member transformed dims: partially fused members may be
    // shallower than the group's representative nest, and must only
    // receive primitives for loops they actually have.
    let base_stmts = apply_schedule(base);
    let member_dims: HashMap<String, Vec<String>> = base
        .computes()
        .iter()
        .zip(&base_stmts)
        .map(|(c, s)| (c.name().to_string(), s.dims().to_vec()))
        .collect();

    for (gi, group) in groups.iter().enumerate() {
        // Names: outer part "{dim}_g{gi}o", inner "{dim}_g{gi}u" — the
        // group index keeps names unique when nests share iterator names.
        let outer_name = |d: &str| format!("{d}_g{gi}o");
        let inner_name = |d: &str| format!("{d}_g{gi}u");
        let tiled: Vec<usize> = (0..group.dims.len())
            .filter(|&l| group.tiles[l] > 1)
            .collect();
        // Loop order: carried/untiled-non-parallel dims stay outermost,
        // then the tile loops, then untiled *parallel* dims (so the
        // pipelined loop is a full-length parallel loop rather than a
        // short tile loop whose pipeline would flush constantly), then
        // the unrolled intra-tile loops.
        let mut final_order: Vec<String> = Vec::new();
        for (l, d) in group.dims.iter().enumerate() {
            if !tiled.contains(&l) && !group.parallel.contains(&l) {
                final_order.push(d.clone());
            }
        }
        for &l in &tiled {
            final_order.push(outer_name(&group.dims[l]));
        }
        for (l, d) in group.dims.iter().enumerate() {
            if !tiled.contains(&l) && group.parallel.contains(&l) {
                final_order.push(d.clone());
            }
        }
        for &l in &tiled {
            final_order.push(inner_name(&group.dims[l]));
        }

        for member in &group.members {
            let mine = &member_dims[member];
            let has = |d: &str| mine.iter().any(|x| x == d);
            // Splits (only of loops this member has).
            for &l in &tiled {
                let d = &group.dims[l];
                if has(d) {
                    g.split(member, d, group.tiles[l], &outer_name(d), &inner_name(d));
                }
            }
            // Reorder to final order by recording bubble-sort interchanges
            // over the simulated current order, restricted to this
            // member's loops.
            let mut cur: Vec<String> = Vec::new();
            for (l, d) in group.dims.iter().enumerate() {
                if !has(d) {
                    continue;
                }
                if tiled.contains(&l) {
                    cur.push(outer_name(d));
                    cur.push(inner_name(d));
                } else {
                    cur.push(d.clone());
                }
            }
            let targets: Vec<&String> = final_order.iter().filter(|n| cur.contains(n)).collect();
            for (target_pos, target) in targets.into_iter().enumerate() {
                let from_pos = cur.iter().position(|x| x == target).expect("name tracked");
                let mut p = from_pos;
                while p > target_pos {
                    g.interchange(member, &cur[p - 1].clone(), &cur[p].clone());
                    cur.swap(p - 1, p);
                    p -= 1;
                }
            }
        }

        // Pipeline the innermost non-unrolled loop and unroll intra-tile
        // loops — on the *deepest* member (first on ties): a shallow fused
        // member's innermost loop is a loop it shares with deeper members,
        // and pipelining that shared loop would flatten everything below
        // it in every fused statement.
        let mut deepest = &group.members[0];
        for member in &group.members[1..] {
            if member_dims[member].len() > member_dims[deepest].len() {
                deepest = member;
            }
        }
        let pipeline_iv = final_order[group.dims.len() - 1].clone();
        g.pipeline(deepest, &pipeline_iv, 1);
        for &l in &tiled {
            g.unroll(deepest, &inner_name(&group.dims[l]), group.tiles[l]);
        }

        // Partition factors: for every member access, each array dimension
        // gets the product of tiles of the levels indexing it.
        let stmts = apply_schedule(&g);
        let names: Vec<&str> = g.computes().iter().map(|c| c.name()).collect();
        for member in &group.members {
            let idx = names.iter().position(|n| n == member).expect("member");
            let c = &g.computes()[idx];
            let s = &stmts[idx];
            let mut accesses = vec![c.store().clone()];
            accesses.extend(c.loads().iter().map(|l| (*l).clone()));
            for acc in &accesses {
                let cur_acc = s.access_to_current(acc);
                let Some(factors) = partition_factors.get_mut(&acc.array) else {
                    continue;
                };
                let shape = g
                    .find_placeholder(&acc.array)
                    .expect("declared array")
                    .shape()
                    .to_vec();
                for (d, e) in cur_acc.indices.iter().enumerate() {
                    let mut f = 1i64;
                    for (l, dim) in group.dims.iter().enumerate() {
                        if group.tiles[l] > 1 && e.uses(&inner_name(dim)) {
                            f *= group.tiles[l];
                        }
                    }
                    let f = f.min(shape[d] as i64).max(1);
                    factors[d] = factors[d].max(f);
                }
            }
        }
    }

    for (array, factors) in partition_factors {
        if factors.iter().any(|&f| f > 1) {
            g.partition(&array, &factors, PartitionStyle::Cyclic);
        }
    }
    g
}

/// The bottleneck-oriented optimization loop. Returns the fully scheduled
/// function and the final group configurations.
///
/// Latency and resources are tracked per group (each group compiled as a
/// sub-function) so every escalation step costs one incremental compile;
/// the total latency is the sum over groups (sequential execution) and
/// resources compose per the sharing policy (`max` under reuse, `+` under
/// dataflow).
pub fn bottleneck_optimize(stage1_fn: &Function, opts: &CompileOptions) -> Stage2Result {
    bottleneck_optimize_with(stage1_fn, opts, &DseConfig::default())
}

/// [`bottleneck_optimize`] under explicit strategy parameters.
///
/// # Panics
///
/// Panics when a DSE-generated schedule fails to compile — use
/// [`try_bottleneck_optimize_with`] to handle the error instead.
pub fn bottleneck_optimize_with(
    stage1_fn: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
) -> Stage2Result {
    try_bottleneck_optimize_with(stage1_fn, opts, cfg).expect("stage-2 schedule compiles")
}

/// [`bottleneck_optimize_with`] propagating compile failures.
///
/// # Errors
///
/// Returns the first [`CompileError`] (in deterministic candidate order)
/// hit while estimating a candidate or the repaired full design.
pub fn try_bottleneck_optimize_with(
    stage1_fn: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
) -> Result<Stage2Result, CompileError> {
    let cache = cfg.cache.then(DseCache::new);
    let acc = PhaseAccum::default();
    bottleneck_optimize_impl(stage1_fn, opts, cfg, cache.as_ref(), &acc)
}

/// One candidate's evaluation outcome.
pub(crate) enum CandidateEval {
    /// Discarded by the lint prescreen before estimation.
    Pruned,
    /// Discarded by the bank-conflict prescreen before estimation.
    PrunedBank,
    /// Fully estimated: `(latency, resources)`.
    Estimated(u64, pom_hls::ResourceUsage),
}

/// Evaluates `0..n` with `f` on up to `workers` scoped threads, returning
/// results in index order — the caller's selection logic is therefore
/// independent of completion order.
pub(crate) fn run_indexed<T: Send>(
    n: usize,
    workers: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(i);
                *slots[i].lock().expect("result slot") = Some(v);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("worker filled slot")
        })
        .collect()
}

/// Evaluates one escalation candidate: lint prescreen (relative to the
/// current configuration), then estimation. The cached path computes the
/// scheduled sub-function and its dependence summary once and shares them
/// between the feasibility check and the estimate; the uncached path
/// replays the seed's cost profile (separate `lint_screen` +
/// `group_compile`, each paying schedule replay and dependence analysis).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_candidate(
    stage1_fn: &Function,
    fp: u64,
    groups: &[GroupConfig],
    bottleneck: usize,
    cand: &GroupConfig,
    cur_infeasible: bool,
    cur_bram: Option<u64>,
    cur_bank_conflict: Option<bool>,
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
) -> Result<CandidateEval, CompileError> {
    // Bank prescreen (opt-in, relative): discard a candidate that would
    // introduce a provable POM006 conflict the current configuration is
    // free of. Runs on both the cached and uncached paths — the lowering
    // it pays is not memoized, matching its opt-in nature.
    if let Some(cur_conflicting) = cur_bank_conflict {
        if !cur_conflicting && bank_infeasible(stage1_fn, cand, opts) {
            return Ok(CandidateEval::PrunedBank);
        }
    }
    let Some(cache) = cache else {
        // Seed-profile path: every check re-derives everything.
        if lint_screen(
            stage1_fn,
            groups,
            bottleneck,
            cand,
            opts,
            cfg.lint_prune_bram,
        ) {
            return Ok(CandidateEval::Pruned);
        }
        let (l, r) = group_compile_timed(stage1_fn, cand, opts, acc)?;
        return Ok(CandidateEval::Estimated(l, r));
    };

    // Memoized path: dependence analysis and estimation happen at most
    // once per *canonical* scheduled sub-function — structurally identical
    // candidates (repeated DNN layers, symmetric nests) share entries.
    let scheduled = scheduled_group(stage1_fn, cand, acc);
    let key = canonical_fingerprint(&scheduled);
    let mut sched = Some(scheduled);
    let mut prepared: Option<PreparedGroup> = None;
    let cand_infeasible = cache.memo_infeasible(key, || {
        let p = prepared.get_or_insert_with(|| {
            prepare_candidate(
                stage1_fn,
                cand,
                sched.take().expect("scheduled"),
                cache,
                opts,
                acc,
            )
        });
        p.infeasible(opts)
    });
    if !cur_infeasible && cand_infeasible {
        return Ok(CandidateEval::Pruned);
    }
    if let Some(cur_bram) = cur_bram {
        let mut cand_groups = groups.to_vec();
        cand_groups[bottleneck] = cand.clone();
        let cand_bram = cache.memo_bram(fp, &cand_groups, || {
            bram_of(&schedule_for(stage1_fn, &cand_groups))
        });
        if cur_bram <= opts.device.bram18k && cand_bram > opts.device.bram18k {
            return Ok(CandidateEval::Pruned);
        }
    }
    let (l, r) = cache.memo_group_qor(key, || {
        let p = prepared.take().unwrap_or_else(|| {
            prepare_candidate(
                stage1_fn,
                cand,
                sched.take().expect("scheduled"),
                cache,
                opts,
                acc,
            )
        });
        p.estimate(opts, acc)
    })?;
    Ok(CandidateEval::Estimated(l, r))
}

/// A group's scheduled sub-function with its transformed statements and
/// dependence summary — the shared intermediates of the feasibility check
/// and the estimate.
pub(crate) struct PreparedGroup {
    scheduled: Function,
    stmts: Vec<StmtPoly>,
    deps: pom_hls::DepSummary,
}

/// Extracts and schedules a group's sub-function (the cheap half of a
/// candidate evaluation — no polyhedral dependence analysis yet).
pub(crate) fn scheduled_group(base: &Function, group: &GroupConfig, acc: &PhaseAccum) -> Function {
    let t0 = Instant::now();
    let members: Vec<&str> = group.members.iter().map(String::as_str).collect();
    let sub = sub_function(base, &members);
    let scheduled = schedule_for(&sub, std::slice::from_ref(group));
    acc.add(&crate::compile::PhaseTimes {
        lowering: t0.elapsed(),
        estimation: Duration::ZERO,
    });
    scheduled
}

/// The expensive half: schedule replay + polyhedral dependence analysis
/// over the already-scheduled sub-function.
pub(crate) fn prepare_scheduled(
    scheduled: Function,
    opts: &CompileOptions,
    acc: &PhaseAccum,
) -> PreparedGroup {
    let t0 = Instant::now();
    let stmts = apply_schedule(&scheduled);
    let deps = build_dep_summary(&scheduled, &stmts, &opts.model);
    acc.add(&crate::compile::PhaseTimes {
        lowering: t0.elapsed(),
        estimation: Duration::ZERO,
    });
    PreparedGroup {
        scheduled,
        stmts,
        deps,
    }
}

/// The memoized dependence-summary *template* of a candidate's group: the
/// summary of the group's untiled scheduled sub-function, reusable for
/// every tiled escalation of that group.
///
/// Soundness: stage 2 only tiles `parallel` levels, which `plan_groups`
/// verified carry no dependence in any member. A carried dependence's
/// level is therefore a non-parallel, never-tiled dim; those dims keep
/// their names, relative order (they precede all tile loops in
/// `schedule_for`'s loop order), and per-dim distance components under
/// any tiling of the parallel dims — so the summary entries `(loop name,
/// distance, chain latency)` are identical across all of the group's
/// candidates. Two guards make this unconditional: a candidate that tiles
/// a non-parallel level gets no template, and a template whose own
/// analysis carries a dependence at *any* parallel dim is rejected
/// (`None`) — both fall back to full per-candidate dependence analysis.
fn dep_template(
    stage1_fn: &Function,
    cand: &GroupConfig,
    cache: &DseCache,
    opts: &CompileOptions,
    acc: &PhaseAccum,
) -> Option<Arc<pom_hls::DepSummary>> {
    if (0..cand.tiles.len()).any(|l| cand.tiles[l] > 1 && !cand.parallel.contains(&l)) {
        return None;
    }
    let mut untiled = cand.clone();
    untiled.tiles = vec![1; untiled.tiles.len()];
    let reference = scheduled_group(stage1_fn, &untiled, acc);
    let key = fingerprint(&reference);
    cache.memo_dep_template(key, || {
        let t0 = Instant::now();
        let stmts = apply_schedule(&reference);
        let deps = build_dep_summary(&reference, &stmts, &opts.model);
        acc.add(&crate::compile::PhaseTimes {
            lowering: t0.elapsed(),
            estimation: Duration::ZERO,
        });
        let parallel_carries_dep = deps
            .loops()
            .any(|name| cand.parallel.iter().any(|&l| cand.dims[l] == name));
        (!parallel_carries_dep).then_some(deps)
    })
}

/// [`prepare_scheduled`] that reuses the group's dependence-summary
/// template when one is available, skipping the polyhedral dependence
/// analysis — the dominant cost of a candidate evaluation.
pub(crate) fn prepare_candidate(
    stage1_fn: &Function,
    cand: &GroupConfig,
    scheduled: Function,
    cache: &DseCache,
    opts: &CompileOptions,
    acc: &PhaseAccum,
) -> PreparedGroup {
    match dep_template(stage1_fn, cand, cache, opts, acc) {
        Some(deps) => {
            let t0 = Instant::now();
            let stmts = apply_schedule(&scheduled);
            acc.add(&crate::compile::PhaseTimes {
                lowering: t0.elapsed(),
                estimation: Duration::ZERO,
            });
            PreparedGroup {
                scheduled,
                stmts,
                deps: (*deps).clone(),
            }
        }
        None => prepare_scheduled(scheduled, opts, acc),
    }
}

/// [`dep_template`] for the *complete* function under `groups`: the
/// dependence summary of the all-tiles-1 full schedule, reusable by every
/// full-function compile of the search whose groups differ from it only
/// in parallel-level tile factors (the repair walk-back halves tiles, the
/// II retarget touches only pipeline directives — both preserve it). The
/// same soundness argument and guards as [`dep_template`] apply, per
/// group.
pub(crate) fn full_dep_template(
    stage1_fn: &Function,
    groups: &[GroupConfig],
    cache: &DseCache,
    opts: &CompileOptions,
    acc: &PhaseAccum,
) -> Option<Arc<pom_hls::DepSummary>> {
    if groups
        .iter()
        .any(|g| (0..g.tiles.len()).any(|l| g.tiles[l] > 1 && !g.parallel.contains(&l)))
    {
        return None;
    }
    let untiled: Vec<GroupConfig> = groups
        .iter()
        .map(|g| {
            let mut u = g.clone();
            u.tiles = vec![1; u.tiles.len()];
            u
        })
        .collect();
    let t0 = Instant::now();
    let reference = schedule_for(stage1_fn, &untiled);
    let key = fingerprint(&reference);
    let out = cache.memo_dep_template(key, || {
        let stmts = apply_schedule(&reference);
        let deps = build_dep_summary(&reference, &stmts, &opts.model);
        let parallel_carries_dep = deps.loops().any(|name| {
            groups
                .iter()
                .any(|g| g.parallel.iter().any(|&l| g.dims[l] == name))
        });
        // Runtime guard on template reuse: the reference schedule the
        // template is derived from must itself carry a passing
        // certificate chain — a rejected rewrite would make every reuse
        // of its dependence summary unsound. Memoized with the template.
        (!parallel_carries_dep && pom_verify::validate(&reference).passed()).then_some(deps)
    });
    acc.add(&crate::compile::PhaseTimes {
        lowering: t0.elapsed(),
        estimation: Duration::ZERO,
    });
    out
}

impl PreparedGroup {
    /// POM001 verdict on the already-analyzed schedule.
    pub(crate) fn infeasible(&self, _opts: &CompileOptions) -> bool {
        schedule_carries_infeasible_ii(&self.scheduled, &self.deps)
    }

    /// Lowers + estimates, reusing the prepared statements and deps.
    pub(crate) fn estimate(
        self,
        opts: &CompileOptions,
        acc: &PhaseAccum,
    ) -> Result<(u64, pom_hls::ResourceUsage), CompileError> {
        let (c, times) =
            crate::compile::compile_prepared(&self.scheduled, self.stmts, self.deps, opts)?;
        acc.add(&times);
        Ok((c.qor.latency, c.qor.resources))
    }
}

/// The search loop proper, shared by the cached/uncached and
/// serial/parallel modes. `cache`, when present, is shared with the
/// caller so `auto_dse_with` can reuse the repair loop's final compile.
pub(crate) fn bottleneck_optimize_impl(
    stage1_fn: &Function,
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
) -> Result<Stage2Result, CompileError> {
    let t_stage2 = Instant::now();
    let fp = fingerprint(stage1_fn);
    let workers = cfg.effective_workers();
    let mut dse_stats = DseStats::default();
    let mut groups = plan_groups(stage1_fn);
    // Ring buffer of the trailing K accepts: pop_front is O(1), and the
    // pop runs inside the hot accept path of every escalation step.
    let mut finalists: VecDeque<Vec<GroupConfig>> = VecDeque::new();

    // Initial per-group stats, evaluated concurrently when allowed.
    let initial = run_indexed(groups.len(), workers, |i| match cache {
        Some(c) => {
            let scheduled = scheduled_group(stage1_fn, &groups[i], acc);
            c.memo_group_qor(canonical_fingerprint(&scheduled), || {
                prepare_scheduled(scheduled, opts, acc).estimate(opts, acc)
            })
        }
        None => group_compile_timed(stage1_fn, &groups[i], opts, acc),
    });
    let mut stats: Vec<(u64, pom_hls::ResourceUsage)> =
        initial.into_iter().collect::<Result<_, _>>()?;

    // Data paths over groups, from the dependence graph.
    let graph = DepGraph::build(stage1_fn);
    let compute_group: HashMap<String, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.members.iter().map(move |m| (m.clone(), gi)))
        .collect();
    let group_paths: Vec<Vec<usize>> = graph
        .data_paths()
        .iter()
        .map(|p| {
            let mut gp: Vec<usize> = p
                .iter()
                .map(|&n| compute_group[&graph.nodes()[n].name])
                .collect();
            gp.dedup();
            gp
        })
        .collect();

    let compose = |stats: &[(u64, pom_hls::ResourceUsage)]| {
        let mut acc = pom_hls::ResourceUsage::zero();
        for (_, r) in stats {
            acc = match opts.sharing {
                pom_hls::estimate::Sharing::Reuse => acc.max(r),
                pom_hls::estimate::Sharing::Dataflow => acc.plus(r),
            };
        }
        acc
    };

    let mut active: BTreeSet<usize> = (0..groups.len()).collect();
    while !active.is_empty() {
        // Critical path by latency; bottleneck = max-latency active group.
        let bottleneck = {
            let critical = group_paths
                .iter()
                .max_by_key(|p| p.iter().map(|&g| stats[g].0).sum::<u64>());
            let on_path = critical.and_then(|p| {
                p.iter()
                    .copied()
                    .filter(|g| active.contains(g))
                    .max_by_key(|&g| stats[g].0)
            });
            match on_path.or_else(|| active.iter().copied().max_by_key(|&g| stats[g].0)) {
                Some(b) => b,
                None => break,
            }
        };

        let cands = groups[bottleneck].escalation_candidates_preferred(cfg);
        if cands.is_empty() {
            active.remove(&bottleneck);
            continue;
        }

        // Context for the relative lint prescreen: a candidate is pruned
        // only when it *introduces* a violation the current configuration
        // does not have.
        let cur_infeasible = match cache {
            Some(c) => {
                let scheduled = scheduled_group(stage1_fn, &groups[bottleneck], acc);
                c.memo_infeasible(canonical_fingerprint(&scheduled), || {
                    prepare_candidate(stage1_fn, &groups[bottleneck], scheduled, c, opts, acc)
                        .infeasible(opts)
                })
            }
            None => pipeline_infeasible(stage1_fn, &groups[bottleneck], opts),
        };
        let cur_bram = cfg.lint_prune_bram.then(|| match cache {
            Some(c) => c.memo_bram(fp, &groups, || bram_of(&schedule_for(stage1_fn, &groups))),
            None => bram_of(&schedule_for(stage1_fn, &groups)),
        });
        let cur_bank_conflict = cfg
            .bank_prune
            .then(|| bank_infeasible(stage1_fn, &groups[bottleneck], opts));

        // Evaluate every single-step escalation of the bottleneck — in
        // parallel when allowed. Results come back in candidate order, so
        // selection below is identical for serial and parallel runs.
        let evals = run_indexed(cands.len(), workers, |i| {
            eval_candidate(
                stage1_fn,
                fp,
                &groups,
                bottleneck,
                &cands[i],
                cur_infeasible,
                cur_bram,
                cur_bank_conflict,
                opts,
                cfg,
                cache,
                acc,
            )
        });
        if workers > 1 && cands.len() > 1 {
            dse_stats.parallel_evaluated += cands.len();
        }

        // Best candidate by (fits, latency), ties broken by index.
        let mut best: Option<(u64, pom_hls::ResourceUsage, usize)> = None;
        for (i, ev) in evals.into_iter().enumerate() {
            match ev? {
                CandidateEval::Pruned => dse_stats.lint_pruned += 1,
                CandidateEval::PrunedBank => dse_stats.bank_pruned += 1,
                CandidateEval::Estimated(l2, r2) => {
                    dse_stats.estimated += 1;
                    // Sampled translation validation: every n-th estimated
                    // candidate has its full certificate chain checked.
                    // Deterministic (counter-based), so serial and parallel
                    // searches sample the same candidates.
                    if cfg.validate_sample_every > 0
                        && dse_stats.estimated % cfg.validate_sample_every == 0
                    {
                        // A candidate only reschedules the bottleneck
                        // group, so validating the group's sub-function
                        // covers every rewrite the candidate introduces
                        // without replaying the untouched groups.
                        let members: Vec<&str> =
                            cands[i].members.iter().map(String::as_str).collect();
                        let sub = sub_function(stage1_fn, &members);
                        let report = pom_verify::validate(&schedule_for(
                            &sub,
                            std::slice::from_ref(&cands[i]),
                        ));
                        dse_stats.certificates_sampled += report.checked();
                        dse_stats.certificates_checked += report.checked();
                        dse_stats.certificates_passed += report.checked() - report.rejected().len();
                        if !report.passed() {
                            return Err(CompileError::Rejected(report.render()));
                        }
                    }
                    let mut cand_stats = stats.clone();
                    cand_stats[bottleneck] = (l2, r2);
                    let total = compose(&cand_stats);
                    let fits = total.dsp <= opts.device.dsp
                        && total.ff <= opts.device.ff
                        && total.lut <= opts.device.lut;
                    if fits
                        && l2 <= stats[bottleneck].0
                        && best.as_ref().map(|&(bl, _, _)| l2 < bl).unwrap_or(true)
                    {
                        best = Some((l2, r2, i));
                    }
                }
            }
        }
        match best {
            Some((l2, r2, i)) => {
                groups[bottleneck] = cands[i].clone();
                stats[bottleneck] = (l2, r2);
                if cfg.sim_rerank_top_k > 0 {
                    // Keep the trailing K accepted configurations: the
                    // greedy descent improves monotonically under the
                    // estimator, so the most recent accepts are the ones
                    // worth measuring.
                    if finalists.len() == cfg.sim_rerank_top_k {
                        finalists.pop_front();
                    }
                    finalists.push_back(groups.clone());
                }
            }
            None => {
                active.remove(&bottleneck);
            }
        }
    }

    let function = repair_and_finalize(
        stage1_fn,
        &mut groups,
        opts,
        cfg,
        cache,
        acc,
        &mut dse_stats,
    )?;
    dse_stats.stage2_time = t_stage2.elapsed();
    if let Some(c) = cache {
        dse_stats.cache_hits = c.hits();
        dse_stats.cache_misses = c.misses();
        dse_stats.cache_evictions = c.evictions();
        dse_stats.cache_entries = c.entries();
        if let Some(s) = c.store() {
            dse_stats.store_hits = s.hits();
            dse_stats.store_misses = s.misses();
            dse_stats.store_writes = s.writes();
        }
    }
    dse_stats.lowering_time = acc.lowering();
    dse_stats.estimation_time = acc.estimation();
    Ok(Stage2Result {
        function,
        groups,
        stats: dse_stats,
        finalists: finalists.into(),
        anytime: Vec::new(),
    })
}

/// The shared tail of every stage-2 search: the resource-repair
/// walk-back, bank repair, and the final schedule build. Factored out so
/// the beam winner is repaired, repartitioned, and materialized by
/// exactly the code the greedy descent uses — a mode switch can never
/// change how a winner becomes a function.
pub(crate) fn repair_and_finalize(
    stage1_fn: &Function,
    groups: &mut [GroupConfig],
    opts: &CompileOptions,
    cfg: &DseConfig,
    cache: Option<&DseCache>,
    acc: &PhaseAccum,
    dse_stats: &mut DseStats,
) -> Result<Function, CompileError> {
    // Final repair: the incremental per-group check cannot see globally
    // accumulated overheads (every array's partition muxing exists once in
    // the full design). Re-estimate the complete function and, while it
    // exceeds the device, walk back the most parallel group one step. The
    // fitting iteration's compile stays in the cache, so `auto_dse_with`
    // reuses it instead of recompiling the same schedule.
    let full_template = cache.and_then(|c| full_dep_template(stage1_fn, groups, c, opts, acc));
    loop {
        let scheduled = schedule_for(stage1_fn, groups);
        let full = match cache {
            Some(c) => c
                .compile_full(&scheduled, opts, acc, full_template.as_deref())?
                .qor
                .clone(),
            None => {
                let (c, times) = compile_timed(&scheduled, opts)?;
                acc.add(&times);
                c.qor
            }
        };
        let fits = full.resources.dsp <= opts.device.dsp
            && full.resources.ff <= opts.device.ff
            && full.resources.lut <= opts.device.lut;
        if fits {
            break;
        }
        let Some(victim) = groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.parallelism() > 1)
            .max_by_key(|(_, g)| g.parallelism())
            .map(|(i, _)| i)
        else {
            break; // nothing left to shrink
        };
        let g = &mut groups[victim];
        let widest = (0..g.tiles.len())
            .max_by_key(|&l| g.tiles[l])
            .expect("non-empty tiles");
        g.tiles[widest] = (g.tiles[widest] / 2).max(1);
    }
    // Bank repair: where pom-bank proves the final design's pipelined
    // accesses overload a bank's ports, raise the offending arrays'
    // partition factors to the minimal conflict-free values. The
    // override is appended to the schedule, so it supersedes the
    // tile-derived partitioning on lowering (last directive wins).
    let mut bank_overrides: Vec<(String, Vec<i64>)> = Vec::new();
    if cfg.bank_repair {
        let scheduled = schedule_for(stage1_fn, groups);
        let stmts = apply_schedule(&scheduled);
        if let Ok(func) = lower(&scheduled, &stmts) {
            let ports = opts.model.ports_per_bank.max(1);
            let mut seen: BTreeSet<String> = BTreeSet::new();
            for rep in pom_bank::analyze_func(&func) {
                // Any exact over-demand is worth repairing: the port
                // calendars slide the issue past the *declared* II on
                // every iteration, so no II choice absorbs a conflict —
                // only repartitioning removes it.
                if !rep.analysis.exact || rep.analysis.conflict_free(ports) {
                    continue;
                }
                for p in rep
                    .analysis
                    .profiles
                    .iter()
                    .filter(|p| p.exact && p.max_demand > ports)
                {
                    if !seen.insert(p.array.clone()) {
                        continue;
                    }
                    if let Some(factors) =
                        pom_bank::minimal_conflict_free_factors(&func, &p.array, ports)
                    {
                        bank_overrides.push((p.array.clone(), factors));
                    }
                }
            }
        }
        dse_stats.bank_repaired = bank_overrides.len();
    }

    let mut function = schedule_for(stage1_fn, groups);
    for (array, factors) in &bank_overrides {
        function.partition(array, factors, PartitionStyle::Cyclic);
    }
    Ok(function)
}

/// True when swapping `cand` in for group `bottleneck` would introduce a
/// lint violation the current configuration does not have. Both checks
/// run on the *schedule* alone — no lowering or estimation. Shared with
/// the baseline strategies: legality screening is part of the substrate,
/// not of any one search. `prune_bram` additionally screens the POM003
/// BRAM budget (a Warning, hence opt-in — see [`DseConfig`]).
pub(crate) fn lint_screen(
    stage1_fn: &Function,
    groups: &[GroupConfig],
    bottleneck: usize,
    cand: &GroupConfig,
    opts: &CompileOptions,
    prune_bram: bool,
) -> bool {
    let mut cand_groups = groups.to_vec();
    cand_groups[bottleneck] = cand.clone();

    // POM003: the candidate's partitioning blows the BRAM budget (the
    // per-group fits check only tracks DSP/FF/LUT).
    if prune_bram {
        let cur_bram = bram_of(&schedule_for(stage1_fn, groups));
        let cand_bram = bram_of(&schedule_for(stage1_fn, &cand_groups));
        if cur_bram <= opts.device.bram18k && cand_bram > opts.device.bram18k {
            return true;
        }
    }

    // POM001: the candidate's pipelined loop carries a dependence its
    // declared II cannot honour.
    if !pipeline_infeasible(stage1_fn, &groups[bottleneck], opts)
        && pipeline_infeasible(stage1_fn, cand, opts)
    {
        return true;
    }
    false
}

/// The BRAM18K units a scheduled function's arrays map to, mirroring the
/// estimator's (and POM003's) accounting.
pub(crate) fn bram_of(f: &Function) -> u64 {
    let mut banks: BTreeMap<&str, u64> = BTreeMap::new();
    for p in f.schedule() {
        if let Primitive::Partition { array, factors, .. } = p {
            let b: i64 = factors.iter().product();
            banks.insert(array, b.max(1) as u64);
        }
    }
    let mut bram = 0u64;
    for p in f.placeholders() {
        let b = banks.get(p.name()).copied().unwrap_or(1);
        let bits = p.shape().iter().product::<usize>() as u64 * p.dtype().bits() as u64;
        bram += pom_hls::bram18k_units(bits, b);
    }
    bram
}

/// True when `scheduled` declares a pipeline II below the recurrence MII
/// of a dependence carried at the pipelined loop, per `deps`.
fn schedule_carries_infeasible_ii(scheduled: &Function, deps: &pom_hls::DepSummary) -> bool {
    scheduled.schedule().iter().any(|p| {
        if let Primitive::Pipeline { loop_iv, ii, .. } = p {
            deps.carried_at(loop_iv)
                .map(|d| d.chain_latency.div_ceil(d.distance.max(1)).max(1) > (*ii).max(1) as u64)
                .unwrap_or(false)
        } else {
            false
        }
    })
}

/// True when the group's schedule declares a pipeline II that pom-bank's
/// exact analysis proves infeasible: some memory bank's per-cycle demand
/// cannot be served through its ports within the declared II (the POM006
/// condition). Pays a full lowering of the group's sub-function.
pub(crate) fn bank_infeasible(base: &Function, group: &GroupConfig, opts: &CompileOptions) -> bool {
    let members: Vec<&str> = group.members.iter().map(String::as_str).collect();
    let sub = sub_function(base, &members);
    let scheduled = schedule_for(&sub, std::slice::from_ref(group));
    let stmts = apply_schedule(&scheduled);
    let Ok(func) = lower(&scheduled, &stmts) else {
        return false;
    };
    let ports = opts.model.ports_per_bank.max(1);
    pom_bank::analyze_func(&func).iter().any(|r| {
        r.analysis
            .min_feasible_ii(ports)
            .is_some_and(|m| m > r.declared_ii)
    })
}

/// True when the group's schedule declares a pipeline II below the
/// recurrence MII of a dependence carried at the pipelined loop.
pub(crate) fn pipeline_infeasible(
    base: &Function,
    group: &GroupConfig,
    opts: &CompileOptions,
) -> bool {
    let members: Vec<&str> = group.members.iter().map(String::as_str).collect();
    let sub = sub_function(base, &members);
    let scheduled = schedule_for(&sub, std::slice::from_ref(group));
    let stmts = apply_schedule(&scheduled);
    let deps = build_dep_summary(&scheduled, &stmts, &opts.model);
    schedule_carries_infeasible_ii(&scheduled, &deps)
}

/// Compiles one group as a sub-function with its configuration applied.
pub fn group_compile(
    base: &Function,
    group: &GroupConfig,
    opts: &CompileOptions,
) -> (u64, pom_hls::ResourceUsage) {
    let members: Vec<&str> = group.members.iter().map(String::as_str).collect();
    let sub = sub_function(base, &members);
    let scheduled = schedule_for(&sub, std::slice::from_ref(group));
    let q = compile(&scheduled, opts)
        .expect("group schedule compiles")
        .qor;
    (q.latency, q.resources)
}

/// [`group_compile`] propagating errors and accumulating phase times.
pub(crate) fn group_compile_timed(
    base: &Function,
    group: &GroupConfig,
    opts: &CompileOptions,
    acc: &PhaseAccum,
) -> Result<(u64, pom_hls::ResourceUsage), CompileError> {
    let members: Vec<&str> = group.members.iter().map(String::as_str).collect();
    let sub = sub_function(base, &members);
    let scheduled = schedule_for(&sub, std::slice::from_ref(group));
    let (c, times) = compile_timed(&scheduled, opts)?;
    acc.add(&times);
    Ok((c.qor.latency, c.qor.resources))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1::dependence_aware_transform;
    use pom_dsl::DataType;

    fn gemm(n: usize) -> Function {
        let mut f = Function::new("gemm");
        let k = f.var("k", 0, n as i64);
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        f.compute(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        );
        f
    }

    #[test]
    fn plan_groups_identifies_parallel_levels() {
        let f = gemm(64);
        let groups = plan_groups(&f);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.dims, vec!["k", "i", "j"]);
        assert_eq!(g.parallel, vec![1, 2], "i and j are parallel, k carried");
        assert_eq!(g.extents, vec![64, 64, 64]);
    }

    #[test]
    fn escalation_ladder_prefers_innermost() {
        let mut g = GroupConfig {
            members: vec!["s".into()],
            dims: vec!["k".into(), "i".into(), "j".into()],
            parallel: vec![1, 2],
            extents: vec![64, 64, 64],
            tiles: vec![1, 1, 1],
        };
        for _ in 0..4 {
            assert!(g.escalate());
        }
        assert_eq!(g.tiles, vec![1, 1, 16], "j first, up to 16");
        g.escalate();
        assert_eq!(g.tiles, vec![1, 2, 16], "then i");
    }

    #[test]
    fn schedule_for_emits_expected_primitives() {
        let f = gemm(64);
        let mut groups = plan_groups(&f);
        groups[0].tiles = vec![1, 2, 16];
        let g = schedule_for(&f, &groups);
        let s: Vec<String> = g.schedule().iter().map(|p| p.to_string()).collect();
        let text = s.join("\n");
        assert!(text.contains("s.split(i, 2, i_g0o, i_g0u)"), "{text}");
        assert!(text.contains("s.split(j, 16, j_g0o, j_g0u)"), "{text}");
        assert!(text.contains("s.pipeline(j_g0o, 1)"), "{text}");
        assert!(text.contains("s.unroll(j_g0u, 16)"), "{text}");
        // A[i][j] partitioned (2, 16); B[i][k] partitioned (2, 1);
        // C[k][j] partitioned (1, 16).
        assert!(text.contains("A.partition({2, 16}"), "{text}");
        assert!(text.contains("B.partition({2, 1}"), "{text}");
        assert!(text.contains("C.partition({1, 16}"), "{text}");
    }

    #[test]
    fn gemm_dse_reaches_paper_like_design() {
        // At N = 64 the DSP budget (220) caps the escalation at 32 copies
        // (32 x 5 DSP = 160), like the paper's [1, 2, 16] with
        // parallelism 32.
        let f = gemm(64);
        let stage1 = dependence_aware_transform(&f, 8);
        let opts = CompileOptions::default();
        let r = bottleneck_optimize(&stage1, &opts);
        let (optimized, groups) = (r.function, r.groups);
        let para: i64 = groups[0].parallelism();
        assert_eq!(para, 32, "tiles {:?}", groups[0].tiles);
        let q = compile(&optimized, &opts).expect("compiles").qor;
        assert!(q.resources.dsp <= 220);
        assert!(q.resources.dsp >= 120, "got {}", q.resources.dsp);
        // Pipelined loop achieves a small II.
        assert!(!q.loops.is_empty());
        assert!(
            q.loops[0].achieved_ii <= 2,
            "II = {}",
            q.loops[0].achieved_ii
        );
        // And it crushes the baseline.
        let base = compile(&f, &opts).expect("compiles").qor;
        assert!(
            q.speedup_over(&base) > 50.0,
            "speedup {}",
            q.speedup_over(&base)
        );
    }

    #[test]
    fn dse_respects_tighter_resource_constraints() {
        let f = gemm(64);
        let stage1 = dependence_aware_transform(&f, 8);
        let mut opts = CompileOptions::default();
        opts.device = opts.device.scaled_to(50); // 110 DSPs
        let r = bottleneck_optimize(&stage1, &opts);
        let (optimized, groups) = (r.function, r.groups);
        let q = compile(&optimized, &opts).expect("compiles").qor;
        assert!(q.resources.dsp <= 110);
        assert!(groups[0].parallelism() <= 16);
    }

    #[test]
    fn lint_prescreen_prunes_bram_busting_candidates() {
        // BICG at N = 256: stage 1 split-interchange-merges the two
        // statements, so the merged nest accesses A in both orientations
        // and escalating the shared parallel loop to 16 would partition A
        // (16, 16) = 256 banks — 290 BRAM18K on a 280-unit device. With
        // the opt-in BRAM prescreen the candidate is pruned before
        // estimation and the search settles on a memory-feasible design.
        let n = 256usize;
        let mut f = Function::new("bicg");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let r = f.placeholder("r", &[n], DataType::F32);
        let s = f.placeholder("s", &[n], DataType::F32);
        let p = f.placeholder("p", &[n], DataType::F32);
        let q = f.placeholder("q", &[n], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone()],
            s.at(&[&j]) + r.at(&[&i]) * a.at(&[&i, &j]),
            s.access(&[&j]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone()],
            q.at(&[&i]) + a.at(&[&i, &j]) * p.at(&[&j]),
            q.access(&[&i]),
        );
        let opts = CompileOptions::default();
        let stage1 = dependence_aware_transform(&f, 8);
        let cfg = DseConfig {
            lint_prune_bram: true,
            ..DseConfig::default()
        };
        let r = bottleneck_optimize_with(&stage1, &opts, &cfg);
        assert!(r.stats.lint_pruned > 0, "stats {:?}", r.stats);
        assert!(r.stats.estimated > 0, "stats {:?}", r.stats);
        let q = compile(&r.function, &opts).expect("compiles").qor;
        assert!(
            q.resources.bram18k <= opts.device.bram18k,
            "BRAM {} over budget {}",
            q.resources.bram18k,
            opts.device.bram18k
        );

        // The default strategy keeps the seed behavior: no BRAM pruning,
        // higher parallelism, BRAM overshoot tolerated (POM003 reports it
        // as a Warning downstream).
        let default_r = bottleneck_optimize(&stage1, &opts);
        assert_eq!(
            default_r.stats.lint_pruned, 0,
            "stats {:?}",
            default_r.stats
        );
    }

    /// Lowers a scheduled function and asks pom-bank whether any
    /// pipelined loop's declared II is provably infeasible (POM006).
    fn has_bank_conflict(f: &Function, opts: &CompileOptions) -> bool {
        let stmts = apply_schedule(f);
        let func = lower(f, &stmts).expect("lowers");
        let ports = opts.model.ports_per_bank.max(1);
        pom_bank::analyze_func(&func).iter().any(|r| {
            r.analysis
                .min_feasible_ii(ports)
                .is_some_and(|m| m > r.declared_ii)
        })
    }

    #[test]
    fn bank_defaults_leave_a_conflict_free_search_untouched() {
        let f = gemm(32);
        let stage1 = dependence_aware_transform(&f, 8);
        let opts = CompileOptions::default();
        let r = bottleneck_optimize(&stage1, &opts);
        assert_eq!(r.stats.bank_pruned, 0);
        assert_eq!(r.stats.bank_repaired, 0);
    }

    #[test]
    fn bank_repair_raises_partitioning_to_conflict_freedom() {
        // An unescalated stencil: b[i] = a[i] + a[i+1] + a[i+2] pipelined
        // at II = 1 with no partitioning — 3 same-cycle reads of one
        // 2-port bank, a provable POM006 conflict. `max_parallelism: 1`
        // pins the search there; repair must partition `a` cyclically by
        // the minimal conflict-free factor (2: the window then spans two
        // banks, max 2 accesses each).
        let n = 64usize;
        let mut f = Function::new("sten");
        let i = f.var("i", 0, n as i64 - 2);
        let a = f.placeholder("a", &[n], DataType::F32);
        let b = f.placeholder("b", &[n], DataType::F32);
        f.compute(
            "s",
            std::slice::from_ref(&i),
            a.at(&[i.expr()]) + a.at(&[i.expr() + 1]) + a.at(&[i.expr() + 2]),
            b.access(&[&i]),
        );
        let opts = CompileOptions::default();
        let cfg = DseConfig {
            max_parallelism: 1,
            bank_repair: true,
            ..DseConfig::default()
        };
        let r = bottleneck_optimize_with(&f, &opts, &cfg);
        assert_eq!(r.stats.bank_repaired, 1, "stats {:?}", r.stats);
        let text: Vec<String> = r
            .function
            .schedule()
            .iter()
            .map(|p| p.to_string())
            .collect();
        assert!(
            text.iter().any(|p| p.contains("a.partition({2}")),
            "{text:?}"
        );
        assert!(!has_bank_conflict(&r.function, &opts));

        // Without repair the conflicting declaration survives.
        let cfg_off = DseConfig {
            max_parallelism: 1,
            bank_repair: false,
            ..DseConfig::default()
        };
        let r_off = bottleneck_optimize_with(&f, &opts, &cfg_off);
        assert_eq!(r_off.stats.bank_repaired, 0);
        assert!(has_bank_conflict(&r_off.function, &opts));
    }

    #[test]
    fn bank_prune_stops_escalation_at_the_last_conflict_free_step() {
        // b[i] = a[4i]: tiling by t partitions `a` t-way, but the stride-4
        // accesses all land in bank 0 once t divides 4 — t = 2 keeps 2
        // accesses on 2 ports (free), t = 4 piles 4 onto one bank (a
        // provable conflict). The prescreen prunes the t = 4 step and the
        // search settles on the last conflict-free configuration.
        let n = 64usize;
        let mut f = Function::new("gather");
        let i = f.var("i", 0, n as i64);
        let a = f.placeholder("a", &[4 * n], DataType::F32);
        let b = f.placeholder("b", &[n], DataType::F32);
        f.compute(
            "s",
            std::slice::from_ref(&i),
            a.at(&[i.expr() * 4]) + 1.0,
            b.access(&[&i]),
        );
        let opts = CompileOptions::default();
        let cfg = DseConfig {
            bank_prune: true,
            ..DseConfig::default()
        };
        let r = bottleneck_optimize_with(&f, &opts, &cfg);
        assert!(r.stats.bank_pruned >= 1, "stats {:?}", r.stats);
        assert!(!has_bank_conflict(&r.function, &opts));
    }

    #[test]
    fn multi_nest_balanced_optimization() {
        // Two chained GEMM-like nests (2MM shape): the bottleneck switcher
        // must optimize both, not spend everything on the first.
        let n = 32usize;
        let mut f = Function::new("twomm");
        let k = f.var("k", 0, n as i64);
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let tmp = f.placeholder("tmp", &[n, n], DataType::F32);
        let d = f.placeholder("D", &[n, n], DataType::F32);
        f.compute(
            "mm1",
            &[k.clone(), i.clone(), j.clone()],
            tmp.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
            tmp.access(&[&i, &j]),
        );
        f.compute(
            "mm2",
            &[k.clone(), i.clone(), j.clone()],
            d.at(&[&i, &j]) + tmp.at(&[&i, &k]) * b.at(&[&k, &j]),
            d.access(&[&i, &j]),
        );
        let stage1 = dependence_aware_transform(&f, 8);
        let opts = CompileOptions::default();
        let groups = bottleneck_optimize(&stage1, &opts).groups;
        assert_eq!(groups.len(), 2);
        assert!(
            groups[0].parallelism() >= 8 && groups[1].parallelism() >= 8,
            "both nests optimized: {:?} / {:?}",
            groups[0].tiles,
            groups[1].tiles
        );
    }
}
