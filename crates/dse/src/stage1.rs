//! DSE stage 1: dependence-aware code transformation (Section VI-A).
//!
//! Iteratively re-checks loop-carried dependences after each
//! transformation, exactly as the paper describes: interchange moves
//! carried loops *outward* (the FPGA-friendly shape keeps parallel loops
//! innermost, where they are unrolled, and pipelines the tile loop above
//! them — cf. Fig. 8's guidance of swapping the tightly dependent inner
//! loop `k` with the outer loop); skewing (optionally followed by an
//! interchange) restructures stencils whose every level is carried; and a
//! conservative fusion pass merges independent, compatible nests
//! (Fig. 10③).
//!
//! Every candidate move is validated for legality: the transformed
//! distance vectors of all existing dependences must remain
//! lexicographically non-negative.

use crate::compile::apply_schedule;
use pom_dsl::{Compute, Function};
use pom_graph::DepGraph;
use pom_poly::{DepKind, Dependence, StmtPoly};

/// A candidate stage-1 move on one statement.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Move {
    Interchange(usize, usize),
    Skew { factor: i64, interchange: bool },
}

/// The per-statement dependence profile in the current (transformed)
/// space.
#[derive(Clone, Debug)]
struct Profile {
    /// Minimal carried distance per level (`None` = parallel level).
    carried: Vec<Option<i64>>,
    /// All distance vectors (used for legality checks).
    vectors: Vec<Vec<i64>>,
    /// True when a non-uniform dependence exists (conservatively frozen).
    non_uniform: bool,
}

impl Profile {
    fn parallel_count(&self) -> usize {
        self.carried.iter().filter(|c| c.is_none()).count()
    }

    /// Number of (parallel above carried) inversions: the FPGA-friendly
    /// shape wants carried levels outermost.
    fn inversions(&self) -> usize {
        let mut inv = 0;
        for p in 0..self.carried.len() {
            if self.carried[p].is_none() {
                inv += self.carried[p + 1..].iter().filter(|c| c.is_some()).count();
            }
        }
        inv
    }

    fn score(&self) -> (usize, isize) {
        (self.parallel_count(), -(self.inversions() as isize))
    }

    fn is_ideal(&self) -> bool {
        self.inversions() == 0 && (self.parallel_count() > 0 || self.carried.is_empty())
    }
}

fn self_dependences(c: &Compute, s: &StmtPoly) -> Vec<Dependence> {
    let store = c.store();
    let mut deps = Vec::new();
    let mut saw_self_array = false;
    for l in c.loads() {
        if l.array == store.array {
            saw_self_array = true;
            deps.extend(s.analyze_dependence(store, l, DepKind::Flow));
        }
    }
    if saw_self_array {
        deps.extend(s.analyze_dependence(store, store, DepKind::Output));
    }
    deps
}

fn profile(c: &Compute, s: &StmtPoly) -> Profile {
    let deps = self_dependences(c, s);
    let n = s.dims().len();
    let mut carried = vec![None; n];
    let mut vectors = Vec::new();
    let mut non_uniform = false;
    for d in &deps {
        match (&d.distance, d.carried_level) {
            (Some(v), Some(l)) => {
                let dist = v.0[l];
                carried[l] = Some(match carried[l] {
                    Some(cur) if cur <= dist => cur,
                    _ => dist,
                });
                vectors.push(v.0.clone());
            }
            (None, Some(l)) => {
                non_uniform = true;
                carried[l] = Some(carried[l].unwrap_or(1));
            }
            _ => {}
        }
    }
    Profile {
        carried,
        vectors,
        non_uniform,
    }
}

/// Transforms a distance vector under a move. Returns `None` when the
/// move makes it lexicographically negative (illegal).
fn transform_vector(v: &[i64], m: &Move) -> Option<Vec<i64>> {
    let mut out = v.to_vec();
    match m {
        Move::Interchange(a, b) => out.swap(*a, *b),
        Move::Skew {
            factor,
            interchange,
        } => {
            let n = out.len();
            if n >= 2 {
                out[n - 1] += factor * out[0];
                if *interchange {
                    out.swap(0, n - 1);
                }
            }
        }
    }
    let lex_ok = {
        let mut ok = true;
        for &x in &out {
            if x > 0 {
                break;
            }
            if x < 0 {
                ok = false;
                break;
            }
        }
        ok
    };
    lex_ok.then_some(out)
}

fn apply_move(s: &mut StmtPoly, m: &Move, fresh: &mut usize) -> Vec<pom_dsl::Primitive> {
    let dims = s.dims().to_vec();
    let name = s.name().to_string();
    match m {
        Move::Interchange(a, b) => {
            s.interchange(&dims[*a], &dims[*b]);
            vec![pom_dsl::Primitive::Interchange {
                stmt: name,
                i: dims[*a].clone(),
                j: dims[*b].clone(),
            }]
        }
        Move::Skew {
            factor,
            interchange,
        } => {
            *fresh += 1;
            let n = dims.len();
            let i2 = format!("{}_w{}", dims[0], fresh);
            let j2 = format!("{}_w{}", dims[n - 1], fresh);
            s.skew(&dims[0], &dims[n - 1], *factor, &i2, &j2);
            let mut prims = vec![pom_dsl::Primitive::Skew {
                stmt: name.clone(),
                i: dims[0].clone(),
                j: dims[n - 1].clone(),
                factor: *factor,
                i2: i2.clone(),
                j2: j2.clone(),
            }];
            if *interchange {
                s.interchange(&i2, &j2);
                prims.push(pom_dsl::Primitive::Interchange {
                    stmt: name,
                    i: i2,
                    j: j2,
                });
            }
            prims
        }
    }
}

/// Stage 1: per-statement dependence-aware transformation with iterative
/// re-checking (bounded by `max_iters`), followed by conservative fusion.
pub fn dependence_aware_transform(f: &Function, max_iters: usize) -> Function {
    let mut g = f.clone();
    let mut fresh = 0usize;
    for _ in 0..max_iters {
        let stmts = apply_schedule(&g);
        let mut new_prims = Vec::new();
        for (c, s) in g.computes().iter().zip(&stmts) {
            let prof = profile(c, s);
            if prof.is_ideal() || prof.non_uniform || s.dims().len() < 2 {
                continue;
            }
            let n = s.dims().len();
            let mut candidates: Vec<Move> = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    candidates.push(Move::Interchange(a, b));
                }
            }
            for factor in 1..=2 {
                candidates.push(Move::Skew {
                    factor,
                    interchange: false,
                });
                candidates.push(Move::Skew {
                    factor,
                    interchange: true,
                });
            }

            let mut best: Option<(Move, (usize, isize))> = None;
            for m in candidates {
                // Legality on existing vectors.
                if !prof
                    .vectors
                    .iter()
                    .all(|v| transform_vector(v, &m).is_some())
                {
                    continue;
                }
                let mut s2 = s.clone();
                let mut tmp_fresh = fresh + 1000; // trial names never recorded
                apply_move(&mut s2, &m, &mut tmp_fresh);
                let p2 = profile(c, &s2);
                let sc = p2.score();
                if sc > prof.score() && best.as_ref().map(|(_, b)| sc > *b).unwrap_or(true) {
                    best = Some((m, sc));
                }
            }
            if let Some((m, _)) = best {
                let mut s2 = s.clone();
                new_prims.extend(apply_move(&mut s2, &m, &mut fresh));
            }
        }
        if new_prims.is_empty() {
            break;
        }
        for p in new_prims {
            g.record(p);
        }
    }
    conservative_fuse(&mut g);
    g
}

/// Constant `(lb, ub)` extents per level, when the (possibly transformed)
/// domain is a constant rectangle.
fn const_extents(s: &StmtPoly) -> Option<Vec<(i64, i64)>> {
    let env = std::collections::HashMap::new();
    let mut out = Vec::new();
    for d in s.dims() {
        let (lbs, ubs) = s.domain().bounds_of(d);
        if lbs.iter().any(|(e, _)| !e.is_constant()) || ubs.iter().any(|(e, _)| !e.is_constant()) {
            return None;
        }
        let lb = lbs
            .iter()
            .map(|(e, d)| {
                let v = e.eval_partial(&env);
                -((-v).div_euclid(*d))
            })
            .max()?;
        let ub = ubs
            .iter()
            .map(|(e, d)| e.eval_partial(&env).div_euclid(*d))
            .min()?;
        out.push((lb, ub));
    }
    Some(out)
}

/// Conservative fusion (Fig. 10③): adjacent independent nests with equal
/// constant extents are fused (interleaved at the innermost level).
fn conservative_fuse(g: &mut Function) {
    let graph = DepGraph::build(g);
    let stmts = apply_schedule(g);
    let n = g.computes().len();
    let mut fused_into: Vec<Option<usize>> = vec![None; n];
    let mut prims = Vec::new();
    for b in 1..n {
        let a = b - 1;
        // Only fuse chains rooted at an unfused statement.
        if fused_into[a].is_some() {
            continue;
        }
        let dep_edge = graph.dependence_map()[a][b] || graph.dependence_map()[b][a];
        if dep_edge {
            continue;
        }
        let (sa, sb) = (&stmts[a], &stmts[b]);
        if sa.dims().len() != sb.dims().len() {
            continue;
        }
        let (Some(ea), Some(eb)) = (const_extents(sa), const_extents(sb)) else {
            continue;
        };
        if ea != eb {
            continue;
        }
        let innermost = sa.dims().last().expect("non-empty").clone();
        prims.push(pom_dsl::Primitive::After {
            stmt: sb.name().to_string(),
            other: sa.name().to_string(),
            level: Some(innermost),
        });
        fused_into[b] = Some(a);
    }
    for p in prims {
        g.record(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions};
    use pom_dsl::DataType;

    /// BICG (paper Fig. 10): S1 = s-statement (keep), S2 = q-statement
    /// (interchange), then fusion.
    fn bicg(n: usize) -> Function {
        let mut f = Function::new("bicg");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let s = f.placeholder("s", &[n], DataType::F32);
        let q = f.placeholder("q", &[n], DataType::F32);
        let p = f.placeholder("p", &[n], DataType::F32);
        let r = f.placeholder("r", &[n], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone()],
            s.at(&[&j]) + r.at(&[&i]) * a.at(&[&i, &j]),
            s.access(&[&j]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone()],
            q.at(&[&i]) + a.at(&[&i, &j]) * p.at(&[&j]),
            q.access(&[&i]),
        );
        f
    }

    #[test]
    fn bicg_split_interchange_merge() {
        let f = bicg(32);
        let g = dependence_aware_transform(&f, 8);
        // S2 must be interchanged (its reduction j moves outward), S1 kept.
        let inter: Vec<_> = g
            .schedule()
            .iter()
            .filter(|p| matches!(p, pom_dsl::Primitive::Interchange { .. }))
            .collect();
        assert_eq!(inter.len(), 1, "only S2 interchanges: {:?}", g.schedule());
        assert_eq!(inter[0].stmt(), Some("S2"));
        // And the two nests are fused.
        assert!(g
            .schedule()
            .iter()
            .any(|p| matches!(p, pom_dsl::Primitive::After { .. })));
        // The fused result has carried deps only at the outer level for
        // both statements.
        let stmts = apply_schedule(&g);
        for (c, s) in g.computes().iter().zip(&stmts) {
            let prof = profile(c, s);
            assert!(prof.carried[1].is_none(), "{}: inner parallel", c.name());
            assert!(prof.carried[0].is_some(), "{}: outer carried", c.name());
        }
        // One shared nest in the lowered IR.
        let compiled = compile(&g, &CompileOptions::default()).expect("compiles");
        assert_eq!(compiled.affine.body.len(), 1);
    }

    #[test]
    fn gemm_reduction_moves_outermost() {
        // GEMM written (i, j, k): stage 1 moves the carried k outward.
        let n = 16usize;
        let mut f = Function::new("gemm");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let k = f.var("k", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        f.compute(
            "s",
            &[i.clone(), j.clone(), k.clone()],
            c.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
            c.access(&[&i, &j]),
        );
        let g = dependence_aware_transform(&f, 8);
        let stmts = apply_schedule(&g);
        let prof = profile(g.computes().first().unwrap(), &stmts[0]);
        assert!(prof.carried[0].is_some(), "reduction outermost");
        assert!(prof.carried[1].is_none());
        assert!(prof.carried[2].is_none());
    }

    #[test]
    fn seidel_gets_skewed() {
        let n = 16usize;
        let mut f = Function::new("seidel");
        let i = f.var("i", 1, (n - 1) as i64);
        let j = f.var("j", 1, (n - 1) as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let im1 = i.expr() - 1;
        let jm1 = j.expr() - 1;
        f.compute(
            "s",
            &[i.clone(), j.clone()],
            (a.at(&[im1.clone(), j.expr()]) + a.at(&[i.expr(), jm1.clone()]) + a.at(&[&i, &j]))
                / 3.0,
            a.access(&[&i, &j]),
        );
        let g = dependence_aware_transform(&f, 8);
        assert!(
            g.schedule()
                .iter()
                .any(|p| matches!(p, pom_dsl::Primitive::Skew { .. })),
            "stencil needs skewing: {:?}",
            g.schedule()
        );
        // After stage 1, the inner level is parallel.
        let stmts = apply_schedule(&g);
        let prof = profile(g.computes().first().unwrap(), &stmts[0]);
        let n_levels = prof.carried.len();
        assert!(prof.carried[n_levels - 1].is_none(), "{:?}", prof.carried);
    }

    #[test]
    fn illegal_interchange_is_rejected() {
        // Jacobi time loop: dep (1, -1) forbids plain (t, i) interchange.
        let v = vec![1, -1];
        assert!(transform_vector(&v, &Move::Interchange(0, 1)).is_none());
        // Skew by 1 fixes it: (1, 0).
        assert_eq!(
            transform_vector(
                &v,
                &Move::Skew {
                    factor: 1,
                    interchange: false
                }
            ),
            Some(vec![1, 0])
        );
    }

    #[test]
    fn dependent_nests_are_not_fused() {
        let n = 8usize;
        let mut f = Function::new("chain");
        let i = f.var("i", 0, n as i64);
        let x = f.placeholder("X", &[n], DataType::F32);
        let y = f.placeholder("Y", &[n], DataType::F32);
        let z = f.placeholder("Z", &[n], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            y.at(&[&i]) + 1.0,
            z.access(&[&i]),
        );
        let g = dependence_aware_transform(&f, 4);
        assert!(
            !g.schedule()
                .iter()
                .any(|p| matches!(p, pom_dsl::Primitive::After { .. })),
            "producer-consumer nests must stay sequenced"
        );
    }

    #[test]
    fn independent_equal_nests_are_fused() {
        let n = 8usize;
        let mut f = Function::new("par");
        let i = f.var("i", 0, n as i64);
        let x = f.placeholder("X", &[n], DataType::F32);
        let y = f.placeholder("Y", &[n], DataType::F32);
        let u = f.placeholder("U", &[n], DataType::F32);
        let v = f.placeholder("V", &[n], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            u.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            y.at(&[&i]) * 3.0,
            v.access(&[&i]),
        );
        let g = dependence_aware_transform(&f, 4);
        assert!(g
            .schedule()
            .iter()
            .any(|p| matches!(p, pom_dsl::Primitive::After { .. })));
    }

    #[test]
    fn stage1_preserves_semantics() {
        use pom_dsl::{reference_execute, MemoryState};
        use pom_ir::execute_func;
        let f = bicg(10);
        let g = dependence_aware_transform(&f, 8);
        let mut ref_mem = MemoryState::for_function_seeded(&f, 11);
        reference_execute(&f, &mut ref_mem);
        let compiled = compile(&g, &CompileOptions::default()).expect("compiles");
        let mut ir_mem = MemoryState::for_function_seeded(&f, 11);
        execute_func(&compiled.affine, &mut ir_mem);
        for arr in ["s", "q"] {
            assert_eq!(
                ref_mem.array(arr).unwrap().data(),
                ir_mem.array(arr).unwrap().data(),
                "array {arr} differs after stage-1 transforms"
            );
        }
    }
}
