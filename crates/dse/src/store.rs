//! Persistent content-addressed artifact store: the on-disk half of the
//! [`DseCache`](crate::cache::DseCache).
//!
//! Every `pomc` invocation used to be a cold process — the in-memory
//! memos (candidate QoR, infeasibility verdicts, dependence-summary
//! templates) died at exit, so structurally repeated layers paid full
//! price again in the next run. This store spills those entries to a
//! shared directory keyed by the cache's stable fingerprints, so repeated
//! work hits across *processes and users*, not just within one search.
//!
//! ## Layout and invalidation
//!
//! ```text
//! <root>/<config-hash>/          one shard per compile configuration
//!   header                       schema version + the hashed config text
//!   lock                         advisory lock file (see below)
//!   entries/<kind>-<key>.art     one artifact per file
//! ```
//!
//! Cached values are pure functions of `(key, CompileOptions)`: the same
//! fingerprint means a different QoR under a different cost model, device,
//! sharing policy, or lint/verify setting. The shard directory name is a
//! stable hash of all of those plus [`SCHEMA_VERSION`], so an artifact
//! written under a stale cost model, an older schema, or a different
//! device is *never even looked at* — stale artifacts are ignored, not
//! migrated, and certainly never misused. The `header` file records the
//! hashed text verbatim; [`ArtifactStore::open`] re-derives and compares
//! it, refusing the shard on any mismatch (which can only mean
//! corruption, since the directory name commits to the same hash).
//!
//! ## Concurrency discipline
//!
//! Writers serialize each artifact to a unique tempfile in `entries/` and
//! `rename(2)` it over the final name. Renames are atomic on POSIX, so a
//! reader observes either no file or a complete artifact — never a torn
//! one. Racing writers for the same key write identical bytes (values are
//! pure functions of the key), so last-rename-wins is harmless.
//!
//! On top of that, every open store holds a *shared* advisory lock on the
//! shard's `lock` file for its lifetime, and destructive maintenance
//! ([`ArtifactStore::clear`]) requires the *exclusive* lock — so a GC can
//! never delete entries out from under a live reader, and readers never
//! block each other. The locks are advisory: they coordinate POM
//! processes, not arbitrary tools.
//!
//! Artifacts additionally carry a self-describing header line
//! (`pom-artifact v1 <kind> <key>`) validated on load; any artifact that
//! fails validation (wrong kind, wrong key, unparseable body — e.g. a
//! file truncated by a crashed writer *before* its rename, which cannot
//! happen, or plain disk corruption) is treated as a miss and counted in
//! [`ArtifactStore::load_errors`], never trusted.

use crate::cache::StableHasher;
use crate::compile::CompileOptions;
use pom_hls::{CarriedDep, DepSummary, ResourceUsage};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::hash::{Hash, Hasher};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Version of the on-disk artifact schema. Bump on any format change:
/// the version participates in the shard hash, so old shards become
/// unreachable rather than misread.
pub const SCHEMA_VERSION: u32 = 1;

/// The kinds of artifact the store holds, mirroring the [`DseCache`]
/// maps plus the serving layer's full-compile responses.
///
/// [`DseCache`]: crate::cache::DseCache
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// `pipeline_infeasible` verdict of a scheduled group
    /// (canonical-fingerprint key).
    Infeasible,
    /// `(latency, resources)` of a group compile (canonical-fingerprint
    /// key).
    GroupQor,
    /// BRAM18K usage of a full schedule (stable hash of
    /// `(fingerprint, groups)`).
    Bram,
    /// Dependence-summary template of a group (plain-fingerprint key);
    /// `none` marks a template proven unsafe to reuse.
    DepTemplate,
    /// A full compile's rendered serving artifact — schedule, QoR, and
    /// emitted HLS C — keyed by the input function's plain fingerprint.
    Full,
}

impl Kind {
    /// Filename / header tag.
    pub fn tag(self) -> &'static str {
        match self {
            Kind::Infeasible => "inf",
            Kind::GroupQor => "qor",
            Kind::Bram => "bram",
            Kind::DepTemplate => "dep",
            Kind::Full => "full",
        }
    }

    /// Every kind, for directory accounting.
    pub fn all() -> [Kind; 5] {
        [
            Kind::Infeasible,
            Kind::GroupQor,
            Kind::Bram,
            Kind::DepTemplate,
            Kind::Full,
        ]
    }
}

/// A shared on-disk artifact store (one shard of one store directory —
/// the shard for this process's `CompileOptions`). Cheap to clone behind
/// an `Arc`; every handle holds the shard's shared advisory lock.
#[derive(Debug)]
pub struct ArtifactStore {
    shard: PathBuf,
    entries: PathBuf,
    /// Holds the shared advisory lock for the store's lifetime.
    _lock: File,
    hits: AtomicUsize,
    misses: AtomicUsize,
    writes: AtomicUsize,
    load_errors: AtomicUsize,
    write_errors: AtomicUsize,
    bytes_written: AtomicU64,
}

/// Stable hash of everything a cached value depends on besides its key.
pub fn config_hash(opts: &CompileOptions) -> u64 {
    let mut h = StableHasher::default();
    SCHEMA_VERSION.hash(&mut h);
    // Debug renderings are single-line and cover every field; a cost-model
    // or device edit lands in a fresh shard automatically.
    format!("{:?}", opts.model).hash(&mut h);
    format!("{:?}", opts.device).hash(&mut h);
    format!("{:?}", opts.sharing).hash(&mut h);
    opts.lint.hash(&mut h);
    opts.verify.hash(&mut h);
    h.finish()
}

/// The header text committed to a shard (also what `open` validates).
fn header_text(opts: &CompileOptions) -> String {
    format!(
        "pom-store v{}\nconfig {:016x}\nmodel {:?}\ndevice {:?}\nsharing {:?}\nlint {} verify {}\n",
        SCHEMA_VERSION,
        config_hash(opts),
        opts.model,
        opts.device,
        opts.sharing,
        opts.lint,
        opts.verify,
    )
}

impl ArtifactStore {
    /// Opens (creating if needed) the shard of `root` matching `opts` and
    /// takes the shared advisory lock.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; returns `InvalidData` when the shard
    /// header exists but does not match `opts` (corruption — the shard
    /// name commits to the same hash). Callers degrade to memory-only
    /// caching on error.
    pub fn open(root: &Path, opts: &CompileOptions) -> io::Result<ArtifactStore> {
        let shard = root.join(format!("{:016x}", config_hash(opts)));
        let entries = shard.join("entries");
        fs::create_dir_all(&entries)?;
        let lock = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(shard.join("lock"))?;
        lock.lock_shared()?;
        let header_path = shard.join("header");
        let expected = header_text(opts);
        match fs::read_to_string(&header_path) {
            Ok(found) if found == expected => {}
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "store shard header does not match this configuration",
                ));
            }
            Err(_) => {
                // First process to open the shard publishes the header
                // atomically; a racing writer publishes identical bytes.
                write_atomic(&shard, &header_path, expected.as_bytes())?;
            }
        }
        Ok(ArtifactStore {
            shard,
            entries,
            _lock: lock,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            load_errors: AtomicUsize::new(0),
            write_errors: AtomicUsize::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The shard directory this handle reads and writes.
    pub fn shard_dir(&self) -> &Path {
        &self.shard
    }

    /// Loads answered from disk.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that found no (valid) artifact.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Artifacts written by this handle.
    pub fn writes(&self) -> usize {
        self.writes.load(Ordering::Relaxed)
    }

    /// Artifacts that existed but failed validation (wrong header,
    /// unparseable body) — treated as misses, never trusted.
    pub fn load_errors(&self) -> usize {
        self.load_errors.load(Ordering::Relaxed)
    }

    /// Spills that failed with an I/O error (the store is best-effort:
    /// a full disk degrades to memory-only caching, it does not abort
    /// the search).
    pub fn write_errors(&self) -> usize {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Bytes written by this handle (tempfile payloads that renamed
    /// successfully).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// `(artifact count, payload bytes)` per kind, from a directory walk
    /// — the whole shard, not just this handle's writes.
    pub fn disk_usage(&self) -> BTreeMap<&'static str, (usize, u64)> {
        let mut out: BTreeMap<&'static str, (usize, u64)> =
            Kind::all().iter().map(|k| (k.tag(), (0, 0))).collect();
        let Ok(dir) = fs::read_dir(&self.entries) else {
            return out;
        };
        for e in dir.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((tag, rest)) = name.split_once('-') else {
                continue;
            };
            if !rest.ends_with(".art") {
                continue;
            }
            if let Some(slot) = Kind::all()
                .iter()
                .find(|k| k.tag() == tag)
                .and_then(|k| out.get_mut(k.tag()))
            {
                slot.0 += 1;
                slot.1 += e.metadata().map(|m| m.len()).unwrap_or(0);
            }
        }
        out
    }

    /// Deletes every artifact in the shard. Requires the *exclusive*
    /// advisory lock, so it cannot race a live reader or writer.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when another process holds the store open; other
    /// filesystem errors verbatim.
    pub fn clear(&self) -> io::Result<usize> {
        // Upgrade this handle's own shared lock to exclusive — flock
        // converts in place on the same descriptor — so the upgrade fails
        // with `WouldBlock` while *any other* handle (this process or
        // another) holds the store open. Downgrade back afterwards so the
        // handle keeps protecting readers for the rest of its lifetime.
        self._lock.try_lock().map_err(|e| match e {
            std::fs::TryLockError::WouldBlock => io::Error::new(
                io::ErrorKind::WouldBlock,
                "store is open elsewhere (shared lock held)",
            ),
            std::fs::TryLockError::Error(e) => e,
        })?;
        let result = (|| {
            let mut removed = 0usize;
            for e in fs::read_dir(&self.entries)?.flatten() {
                if e.path().extension().is_some_and(|x| x == "art")
                    && fs::remove_file(e.path()).is_ok()
                {
                    removed += 1;
                }
            }
            Ok(removed)
        })();
        let _ = self._lock.lock_shared();
        result
    }

    /// Sweeps the shard down to at most `max_bytes` of artifact payload,
    /// deleting oldest-modified artifacts first (the cache's natural
    /// notion of "least recently useful": artifacts are rewritten on
    /// save, never touched on load, so mtime orders by write recency).
    /// Returns the number of artifacts removed.
    ///
    /// Like [`ArtifactStore::clear`], this requires the *exclusive*
    /// advisory lock, so a sweep can never delete entries out from under
    /// a live reader in another process.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when another handle holds the store open — callers
    /// treat a contended GC as "skip this time", never as fatal; other
    /// filesystem errors verbatim.
    pub fn gc(&self, max_bytes: u64) -> io::Result<usize> {
        self._lock.try_lock().map_err(|e| match e {
            std::fs::TryLockError::WouldBlock => io::Error::new(
                io::ErrorKind::WouldBlock,
                "store is open elsewhere (shared lock held)",
            ),
            std::fs::TryLockError::Error(e) => e,
        })?;
        let result = (|| {
            let mut arts: Vec<(std::time::SystemTime, u64, PathBuf)> = Vec::new();
            for e in fs::read_dir(&self.entries)?.flatten() {
                if e.path().extension().is_none_or(|x| x != "art") {
                    continue;
                }
                let Ok(meta) = e.metadata() else { continue };
                let mtime = meta.modified().unwrap_or(std::time::UNIX_EPOCH);
                arts.push((mtime, meta.len(), e.path()));
            }
            let mut total: u64 = arts.iter().map(|a| a.1).sum();
            // Oldest first; path tiebreak keeps the sweep deterministic
            // on filesystems with coarse mtime granularity.
            arts.sort();
            let mut removed = 0usize;
            for (_, len, path) in arts {
                if total <= max_bytes {
                    break;
                }
                if fs::remove_file(&path).is_ok() {
                    total = total.saturating_sub(len);
                    removed += 1;
                }
            }
            Ok(removed)
        })();
        let _ = self._lock.lock_shared();
        result
    }

    // ---- raw load/save ---------------------------------------------------

    fn entry_path(&self, kind: Kind, key: u64) -> PathBuf {
        self.entries.join(format!("{}-{key:016x}.art", kind.tag()))
    }

    /// Writes one artifact atomically (best-effort; errors are counted,
    /// not propagated — a failed spill only costs a future recompute).
    fn save(&self, kind: Kind, key: u64, body: &str) {
        let text = format!("pom-artifact v1 {} {key:016x}\n{body}", kind.tag());
        match write_atomic(&self.entries, &self.entry_path(kind, key), text.as_bytes()) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.bytes_written
                    .fetch_add(text.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Loads and validates one artifact's body, `None` on absence or any
    /// validation failure.
    fn load(&self, kind: Kind, key: u64) -> Option<String> {
        let text = match fs::read_to_string(self.entry_path(kind, key)) {
            Ok(t) => t,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let expected = format!("pom-artifact v1 {} {key:016x}", kind.tag());
        match text.split_once('\n') {
            Some((header, body)) if header == expected => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body.to_string())
            }
            _ => {
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    // ---- typed artifacts -------------------------------------------------

    /// Spills an infeasibility verdict.
    pub fn save_infeasible(&self, key: u64, v: bool) {
        self.save(Kind::Infeasible, key, if v { "true\n" } else { "false\n" });
    }

    /// Loads an infeasibility verdict.
    pub fn load_infeasible(&self, key: u64) -> Option<bool> {
        match self.load(Kind::Infeasible, key)?.trim() {
            "true" => Some(true),
            "false" => Some(false),
            _ => {
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Spills a group's `(latency, resources)`.
    pub fn save_group_qor(&self, key: u64, latency: u64, r: &ResourceUsage) {
        self.save(
            Kind::GroupQor,
            key,
            &format!(
                "latency {latency}\ndsp {}\nff {}\nlut {}\nbram18k {}\n",
                r.dsp, r.ff, r.lut, r.bram18k
            ),
        );
    }

    /// Loads a group's `(latency, resources)`.
    pub fn load_group_qor(&self, key: u64) -> Option<(u64, ResourceUsage)> {
        let body = self.load(Kind::GroupQor, key)?;
        let mut vals = [0u64; 5];
        let names = ["latency", "dsp", "ff", "lut", "bram18k"];
        let mut lines = body.lines();
        for (slot, name) in vals.iter_mut().zip(names) {
            let line = lines.next()?;
            let (k, v) = line.split_once(' ')?;
            if k != name {
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            *slot = match v.parse() {
                Ok(n) => n,
                Err(_) => {
                    self.load_errors.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
        }
        Some((
            vals[0],
            ResourceUsage {
                dsp: vals[1],
                ff: vals[2],
                lut: vals[3],
                bram18k: vals[4],
            },
        ))
    }

    /// Spills a BRAM18K verdict.
    pub fn save_bram(&self, key: u64, bram: u64) {
        self.save(Kind::Bram, key, &format!("{bram}\n"));
    }

    /// Loads a BRAM18K verdict.
    pub fn load_bram(&self, key: u64) -> Option<u64> {
        let body = self.load(Kind::Bram, key)?;
        match body.trim().parse() {
            Ok(n) => Some(n),
            Err(_) => {
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Spills a dependence-summary template (`None` = template proven
    /// unsafe to reuse; that verdict is itself worth persisting).
    pub fn save_dep_template(&self, key: u64, t: Option<&DepSummary>) {
        let body = match t {
            None => "none\n".to_string(),
            Some(d) => {
                // Sort for deterministic bytes: racing writers must
                // produce identical artifacts.
                let mut rows: Vec<String> = d
                    .loops()
                    .map(|iv| {
                        let c = d.carried_at(iv).expect("loops() yields carried keys");
                        format!(
                            "carried {iv} {} {} {}\n",
                            c.array, c.distance, c.chain_latency
                        )
                    })
                    .collect();
                rows.sort();
                format!("some\n{}", rows.concat())
            }
        };
        self.save(Kind::DepTemplate, key, &body);
    }

    /// Loads a dependence-summary template. Outer `None` = no artifact;
    /// inner `None` = the memoized "unsafe to reuse" verdict.
    #[allow(clippy::option_option)]
    pub fn load_dep_template(&self, key: u64) -> Option<Option<DepSummary>> {
        let body = self.load(Kind::DepTemplate, key)?;
        let mut lines = body.lines();
        match lines.next() {
            Some("none") => Some(None),
            Some("some") => {
                let mut d = DepSummary::new();
                for line in lines {
                    let mut it = line.split(' ');
                    let (tag, iv, array, dist, chain) =
                        (it.next(), it.next(), it.next(), it.next(), it.next());
                    let (Some("carried"), Some(iv), Some(array), Some(dist), Some(chain)) =
                        (tag, iv, array, dist, chain)
                    else {
                        self.load_errors.fetch_add(1, Ordering::Relaxed);
                        return None;
                    };
                    let (Ok(distance), Ok(chain_latency)) = (dist.parse(), chain.parse()) else {
                        self.load_errors.fetch_add(1, Ordering::Relaxed);
                        return None;
                    };
                    d.insert(
                        iv,
                        CarriedDep {
                            array: array.to_string(),
                            distance,
                            chain_latency,
                        },
                    );
                }
                Some(Some(d))
            }
            _ => {
                self.load_errors.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Spills a full-compile serving artifact: the payload is stored
    /// verbatim, so a warm response is byte-identical to the cold one
    /// that produced it *by construction*.
    pub fn save_full(&self, key: u64, payload: &str) {
        self.save(Kind::Full, key, payload);
    }

    /// Loads a full-compile serving artifact.
    pub fn load_full(&self, key: u64) -> Option<String> {
        self.load(Kind::Full, key)
    }
}

/// Writes `bytes` to `final_path` via a unique tempfile in `dir` plus an
/// atomic rename. The tempfile name includes the PID and a per-call
/// counter, so concurrent processes (and threads) never collide.
fn write_atomic(dir: &Path, final_path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::sync::atomic::AtomicU64 as Ctr;
    static CTR: Ctr = Ctr::new(0);
    let tmp = dir.join(format!(
        ".tmp-{}-{}",
        std::process::id(),
        CTR.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    // Flush file contents before the rename publishes the name; a crash
    // between write and rename leaves only an ignored tempfile behind.
    f.sync_all()?;
    drop(f);
    match fs::rename(&tmp, final_path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("pom-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn typed_artifacts_round_trip() {
        let root = tmp_root("roundtrip");
        let opts = CompileOptions::default();
        let s = ArtifactStore::open(&root, &opts).expect("opens");
        s.save_infeasible(7, true);
        assert_eq!(s.load_infeasible(7), Some(true));
        let r = ResourceUsage {
            dsp: 1,
            ff: 22,
            lut: 333,
            bram18k: 4,
        };
        s.save_group_qor(9, 12345, &r);
        assert_eq!(s.load_group_qor(9), Some((12345, r)));
        s.save_bram(11, 42);
        assert_eq!(s.load_bram(11), Some(42));
        let mut d = DepSummary::new();
        d.insert(
            "k",
            CarriedDep {
                array: "A".into(),
                distance: 1,
                chain_latency: 4,
            },
        );
        s.save_dep_template(13, Some(&d));
        assert_eq!(s.load_dep_template(13), Some(Some(d)));
        s.save_dep_template(14, None);
        assert_eq!(s.load_dep_template(14), Some(None));
        s.save_full(15, "payload\nwith lines\n");
        assert_eq!(s.load_full(15).as_deref(), Some("payload\nwith lines\n"));
        assert_eq!(s.load_errors(), 0);
        assert!(s.bytes_written() > 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn absent_and_corrupt_artifacts_are_misses() {
        let root = tmp_root("corrupt");
        let opts = CompileOptions::default();
        let s = ArtifactStore::open(&root, &opts).expect("opens");
        assert_eq!(s.load_bram(99), None);
        assert_eq!(s.misses(), 1);
        // A torn/garbage artifact must never be trusted.
        fs::write(s.entry_path(Kind::Bram, 99), "garbage").expect("write");
        assert_eq!(s.load_bram(99), None);
        assert_eq!(s.load_errors(), 1);
        // Wrong-key content under the right name fails the header check.
        fs::write(
            s.entry_path(Kind::Bram, 100),
            "pom-artifact v1 bram 0000000000000063\n7\n",
        )
        .expect("write");
        assert_eq!(s.load_bram(100), None, "key 0x63 != 100 is rejected");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn different_configs_use_disjoint_shards() {
        let root = tmp_root("shards");
        let a_opts = CompileOptions::default();
        let mut b_opts = CompileOptions::default();
        b_opts.model.ports_per_bank += 1;
        let a = ArtifactStore::open(&root, &a_opts).expect("opens");
        let b = ArtifactStore::open(&root, &b_opts).expect("opens");
        assert_ne!(a.shard_dir(), b.shard_dir());
        a.save_bram(1, 10);
        assert_eq!(b.load_bram(1), None, "stale-config artifact is invisible");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn clear_requires_exclusive_lock_and_empties_shard() {
        let root = tmp_root("clear");
        let opts = CompileOptions::default();
        let s = ArtifactStore::open(&root, &opts).expect("opens");
        s.save_bram(1, 10);
        s.save_bram(2, 20);
        // A handle's own shared lock upgrades in place; a *second* open
        // handle would block the upgrade (exercised cross-process in
        // tests/store_concurrent.rs).
        let removed = s.clear().expect("clears");
        let s2 = ArtifactStore::open(&root, &opts).expect("opens");
        assert_eq!(
            s.clear().map_err(|e| e.kind()),
            Err(io::ErrorKind::WouldBlock),
            "another live handle blocks clear"
        );
        drop(s2);
        assert_eq!(removed, 2);
        assert_eq!(s.load_bram(1), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn gc_sweeps_oldest_first_down_to_budget() {
        let root = tmp_root("gc");
        let opts = CompileOptions::default();
        let s = ArtifactStore::open(&root, &opts).expect("opens");
        // Three artifacts with strictly increasing mtimes.
        for (i, key) in [1u64, 2, 3].iter().enumerate() {
            s.save_bram(*key, 10 + *key);
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64);
            let f = File::options()
                .write(true)
                .open(s.entry_path(Kind::Bram, *key))
                .expect("opens artifact");
            f.set_modified(t).expect("sets mtime");
        }
        let total: u64 = s.disk_usage().values().map(|v| v.1).sum();
        let one = total / 3;
        // Budget for two artifacts: the oldest (key 1) goes, 2 and 3 stay.
        let removed = s.gc(2 * one + 1).expect("sweeps");
        assert_eq!(removed, 1);
        assert_eq!(s.load_bram(1), None, "oldest artifact swept");
        assert_eq!(s.load_bram(2), Some(12));
        assert_eq!(s.load_bram(3), Some(13));
        // Already within budget: a second sweep is a no-op.
        assert_eq!(s.gc(2 * one + 1).expect("sweeps"), 0);
        // A zero budget empties the shard.
        assert_eq!(s.gc(0).expect("sweeps"), 2);
        // A second live handle blocks the sweep, like clear().
        s.save_bram(9, 9);
        let s2 = ArtifactStore::open(&root, &opts).expect("opens");
        assert_eq!(
            s.gc(0).map_err(|e| e.kind()),
            Err(io::ErrorKind::WouldBlock),
            "another live handle blocks gc"
        );
        drop(s2);
        assert_eq!(s.load_bram(9), Some(9), "contended sweep removed nothing");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_usage_counts_by_kind() {
        let root = tmp_root("usage");
        let opts = CompileOptions::default();
        let s = ArtifactStore::open(&root, &opts).expect("opens");
        s.save_bram(1, 10);
        s.save_infeasible(2, false);
        s.save_infeasible(3, true);
        let usage = s.disk_usage();
        assert_eq!(usage["bram"].0, 1);
        assert_eq!(usage["inf"].0, 2);
        assert!(usage["inf"].1 > 0);
        assert_eq!(usage["qor"].0, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
