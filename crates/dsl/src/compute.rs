//! The `compute` operation: a statement over an iteration domain.

use crate::expr::Expr;
use crate::types::Var;
use pom_poly::{AccessFn, BasicSet, StmtPoly};
use std::fmt;

/// One `compute` of the DSL (Fig. 4, L8): an iteration domain given by
/// ordered iterators (outermost first), a body expression, and the store
/// destination.
#[derive(Clone, Debug, PartialEq)]
pub struct Compute {
    name: String,
    iters: Vec<Var>,
    body: Expr,
    store: AccessFn,
}

impl Compute {
    /// Creates a compute.
    ///
    /// # Panics
    ///
    /// Panics if no iterators are given.
    pub fn new(name: impl Into<String>, iters: &[Var], body: Expr, store: AccessFn) -> Self {
        let name = name.into();
        assert!(!iters.is_empty(), "compute {name} needs iterators");
        Compute {
            name,
            iters: iters.to_vec(),
            body,
            store,
        }
    }

    /// The compute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered iterators, outermost first.
    pub fn iters(&self) -> &[Var] {
        &self.iters
    }

    /// The body expression.
    pub fn body(&self) -> &Expr {
        &self.body
    }

    /// The store destination.
    pub fn store(&self) -> &AccessFn {
        &self.store
    }

    /// Iterator names in loop order.
    pub fn iter_names(&self) -> Vec<String> {
        self.iters.iter().map(|v| v.name().to_string()).collect()
    }

    /// All loads of the body.
    pub fn loads(&self) -> Vec<&AccessFn> {
        self.body.loads()
    }

    /// The iteration domain as an integer set (inclusive upper bounds).
    pub fn domain(&self) -> BasicSet {
        let bounds: Vec<(&str, i64, i64)> = self
            .iters
            .iter()
            .map(|v| (v.name(), v.lb(), v.ub() - 1))
            .collect();
        BasicSet::from_bounds(&bounds)
    }

    /// The statement-level polyhedral representation: identity schedule
    /// over the declared domain — the entry point into the polyhedral IR.
    pub fn to_stmt_poly(&self) -> StmtPoly {
        StmtPoly::from_domain(self.name.clone(), self.domain())
    }

    /// Total number of statement instances.
    pub fn trip_count(&self) -> u64 {
        self.iters.iter().map(|v| v.extent() as u64).product()
    }

    /// Reduction dimensions: iterators absent from the store pattern
    /// (paper Fig. 8③).
    pub fn reduction_dims(&self) -> Vec<usize> {
        self.store.reduction_dims(&self.iter_names())
    }

    /// True when the compute both reads and writes its store target — an
    /// update/accumulation statement.
    pub fn is_update(&self) -> bool {
        self.loads().iter().any(|l| l.array == self.store.array)
    }
}

impl fmt::Display for Compute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let iters: Vec<String> = self.iters.iter().map(|v| v.name().to_string()).collect();
        write!(
            f,
            "compute {}[{}]: {} = {}",
            self.name,
            iters.join(", "),
            self.store,
            self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Placeholder};

    fn gemm_compute() -> Compute {
        let i = Var::new("i", 0, 32);
        let j = Var::new("j", 0, 32);
        let k = Var::new("k", 0, 32);
        let a = Placeholder::new("A", &[32, 32], DataType::F32);
        let b = Placeholder::new("B", &[32, 32], DataType::F32);
        let c = Placeholder::new("C", &[32, 32], DataType::F32);
        Compute::new(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        )
    }

    #[test]
    fn gemm_structure() {
        let s = gemm_compute();
        assert_eq!(s.iter_names(), ["k", "i", "j"]);
        assert_eq!(s.trip_count(), 32 * 32 * 32);
        assert_eq!(s.loads().len(), 3);
        assert!(s.is_update());
        // Store A(i, j) under iterators (k, i, j): reduction dim is k (0).
        assert_eq!(s.reduction_dims(), vec![0]);
    }

    #[test]
    fn domain_matches_ranges() {
        let s = gemm_compute();
        let d = s.domain();
        assert_eq!(d.dim_count(), 3);
        assert!(d.contains(&[31, 31, 31]));
        assert!(!d.contains(&[32, 0, 0]));
    }

    #[test]
    fn stmt_poly_roundtrip() {
        let s = gemm_compute();
        let sp = s.to_stmt_poly();
        assert_eq!(sp.name(), "s");
        assert_eq!(sp.dims().len(), 3);
    }

    #[test]
    fn display_shows_statement() {
        let s = gemm_compute();
        let text = s.to_string();
        assert!(text.contains("compute s"));
        assert!(text.contains("A[i][j]"));
    }

    #[test]
    #[should_panic(expected = "needs iterators")]
    fn empty_iterators_panic() {
        let a = Placeholder::new("A", &[4], DataType::F32);
        let i = Var::new("i", 0, 4);
        Compute::new("s", &[], a.at(&[&i]), a.access(&[&i]));
    }
}
