//! Computation expressions for compute bodies.

use pom_poly::{AccessFn, LinearExpr};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Maximum (used e.g. for ReLU in DNN workloads).
    Max,
    /// Minimum.
    Min,
}

impl BinOp {
    /// The C operator or function spelling.
    pub fn c_spelling(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Max => "fmax",
            BinOp::Min => "fmin",
        }
    }

    /// True when the operator is spelled as a function call in C.
    pub fn is_call(&self) -> bool {
        matches!(self, BinOp::Max | BinOp::Min)
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
}

/// A compute-body expression: loads, iterator values, constants, and
/// arithmetic.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A load from a placeholder.
    Load(AccessFn),
    /// The current value of an affine iterator expression.
    Affine(LinearExpr),
    /// A floating-point literal.
    Const(f64),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
}

impl Expr {
    /// A constant.
    pub fn constant(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Max, Box::new(a), Box::new(b))
    }

    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Min, Box::new(a), Box::new(b))
    }

    /// All array loads in the expression, left to right.
    pub fn loads(&self) -> Vec<&AccessFn> {
        let mut out = Vec::new();
        self.collect_loads(&mut out);
        out
    }

    fn collect_loads<'a>(&'a self, out: &mut Vec<&'a AccessFn>) {
        match self {
            Expr::Load(a) => out.push(a),
            Expr::Binary(_, l, r) => {
                l.collect_loads(out);
                r.collect_loads(out);
            }
            Expr::Unary(_, e) => e.collect_loads(out),
            Expr::Affine(_) | Expr::Const(_) => {}
        }
    }

    /// Counts each binary/unary operator in the expression tree.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        self.count_ops(&mut c);
        c
    }

    fn count_ops(&self, c: &mut OpCounts) {
        match self {
            Expr::Binary(op, l, r) => {
                match op {
                    BinOp::Add => c.add += 1,
                    BinOp::Sub => c.sub += 1,
                    BinOp::Mul => c.mul += 1,
                    BinOp::Div => c.div += 1,
                    BinOp::Max | BinOp::Min => c.cmp += 1,
                }
                l.count_ops(c);
                r.count_ops(c);
            }
            Expr::Unary(_, e) => {
                c.sub += 1; // negation costs a subtract
                e.count_ops(c);
            }
            Expr::Load(_) => c.load += 1,
            Expr::Affine(_) | Expr::Const(_) => {}
        }
    }

    /// The length of the longest operator chain from any leaf to the root
    /// — the critical path used for latency estimation.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Binary(_, l, r) => 1 + l.depth().max(r.depth()),
            Expr::Unary(_, e) => 1 + e.depth(),
            Expr::Load(_) => 1,
            Expr::Affine(_) | Expr::Const(_) => 0,
        }
    }

    /// Applies an affine substitution to every index expression and affine
    /// leaf (used when lowering through transformed iteration spaces).
    pub fn substituted(&self, name: &str, replacement: &LinearExpr) -> Expr {
        match self {
            Expr::Load(a) => Expr::Load(AccessFn::new(
                a.array.clone(),
                a.indices
                    .iter()
                    .map(|e| e.substituted(name, replacement))
                    .collect(),
            )),
            Expr::Affine(e) => Expr::Affine(e.substituted(name, replacement)),
            Expr::Const(v) => Expr::Const(*v),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(l.substituted(name, replacement)),
                Box::new(r.substituted(name, replacement)),
            ),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.substituted(name, replacement))),
        }
    }
}

/// Operator counts of an expression tree (per compute-body execution).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions.
    pub add: usize,
    /// Subtractions (including negations).
    pub sub: usize,
    /// Multiplications.
    pub mul: usize,
    /// Divisions.
    pub div: usize,
    /// Comparisons (max/min).
    pub cmp: usize,
    /// Array loads.
    pub load: usize,
}

impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Const(v)
    }
}

impl From<LinearExpr> for Expr {
    fn from(e: LinearExpr) -> Expr {
        Expr::Affine(e)
    }
}

macro_rules! impl_expr_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl $trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary($op, Box::new(self), Box::new(rhs))
            }
        }
        impl $trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::Binary($op, Box::new(self), Box::new(Expr::Const(rhs)))
            }
        }
        impl $trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Binary($op, Box::new(Expr::Const(self)), Box::new(rhs))
            }
        }
    };
}

impl_expr_binop!(Add, add, BinOp::Add);
impl_expr_binop!(Sub, sub, BinOp::Sub);
impl_expr_binop!(Mul, mul, BinOp::Mul);
impl_expr_binop!(Div, div, BinOp::Div);

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Unary(UnOp::Neg, Box::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Load(a) => write!(f, "{a}"),
            Expr::Affine(e) => write!(f, "({e})"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Binary(op, l, r) => {
                if op.is_call() {
                    write!(f, "{}({l}, {r})", op.c_spelling())
                } else {
                    write!(f, "({l} {} {r})", op.c_spelling())
                }
            }
            Expr::Unary(UnOp::Neg, e) => write!(f, "(-{e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(array: &str, idx: &str) -> Expr {
        Expr::Load(AccessFn::new(array, vec![LinearExpr::var(idx)]))
    }

    #[test]
    fn operator_overloads_build_trees() {
        let e = load("A", "i") + load("B", "i") * load("C", "i");
        match &e {
            Expr::Binary(BinOp::Add, l, r) => {
                assert!(matches!(**l, Expr::Load(_)));
                assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn loads_collected_left_to_right() {
        let e = load("A", "i") + load("B", "i") * load("C", "i");
        let names: Vec<&str> = e.loads().iter().map(|a| a.array.as_str()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn op_counts_and_depth() {
        // A + B*C: one add, one mul, three loads; depth 2 through the mul.
        let e = load("A", "i") + load("B", "i") * load("C", "i");
        let c = e.op_counts();
        assert_eq!((c.add, c.mul, c.load), (1, 1, 3));
        assert_eq!(e.depth(), 3); // load(1) -> mul(2) -> add(3)
    }

    #[test]
    fn scalar_mixing() {
        let e = 2.0 * load("A", "i") + 3.0;
        let c = e.op_counts();
        assert_eq!((c.add, c.mul), (1, 1));
    }

    #[test]
    fn substitution_rewrites_indices() {
        let e = load("A", "i") / 4.0;
        let rep = LinearExpr::term("i0", 8) + LinearExpr::var("i1");
        let s = e.substituted("i", &rep);
        let loads = s.loads();
        assert_eq!(loads[0].indices[0].coeff("i0"), 8);
    }

    #[test]
    fn display_renders_c_like() {
        let e = Expr::max(load("A", "i"), Expr::constant(0.0));
        assert_eq!(e.to_string(), "fmax(A[i], 0)");
        let e = load("A", "i") - 1.0;
        assert_eq!(e.to_string(), "(A[i] - 1)");
    }
}
