//! The function container: computes, placeholders, and the recorded
//! schedule.

use crate::compute::Compute;
use crate::expr::Expr;
use crate::schedule::{PartitionStyle, Primitive};
use crate::types::{DataType, Placeholder, Var};
use pom_poly::AccessFn;
use std::fmt;

/// A POM function: the unit of compilation. Holds the algorithm
/// specification (placeholders + computes) and the schedule (primitives).
///
/// Methods mirror the paper's DSL; see the crate-level example.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Function {
    name: String,
    placeholders: Vec<Placeholder>,
    computes: Vec<Compute>,
    schedule: Vec<Primitive>,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an iterator (`var i("i", 0, 32)`).
    pub fn var(&mut self, name: &str, lb: i64, ub: i64) -> Var {
        Var::new(name, lb, ub)
    }

    /// Declares an array placeholder.
    pub fn placeholder(&mut self, name: &str, shape: &[usize], dtype: DataType) -> Placeholder {
        let p = Placeholder::new(name, shape, dtype);
        assert!(
            self.find_placeholder(name).is_none(),
            "placeholder {name} declared twice"
        );
        self.placeholders.push(p.clone());
        p
    }

    /// Declares a compute (`compute s("s", {k,i,j}, expr, dest)`).
    ///
    /// # Panics
    ///
    /// Panics on duplicate compute names or references to undeclared
    /// placeholders.
    pub fn compute(&mut self, name: &str, iters: &[Var], body: Expr, store: AccessFn) {
        assert!(
            self.find_compute(name).is_none(),
            "compute {name} declared twice"
        );
        let c = Compute::new(name, iters, body, store);
        for l in c.loads() {
            assert!(
                self.find_placeholder(&l.array).is_some(),
                "compute {name} loads undeclared array {}",
                l.array
            );
        }
        assert!(
            self.find_placeholder(&c.store().array).is_some(),
            "compute {name} stores to undeclared array {}",
            c.store().array
        );
        self.computes.push(c);
    }

    /// All placeholders, in declaration order.
    pub fn placeholders(&self) -> &[Placeholder] {
        &self.placeholders
    }

    /// All computes, in declaration order.
    pub fn computes(&self) -> &[Compute] {
        &self.computes
    }

    /// The recorded schedule.
    pub fn schedule(&self) -> &[Primitive] {
        &self.schedule
    }

    /// Looks up a placeholder by name.
    pub fn find_placeholder(&self, name: &str) -> Option<&Placeholder> {
        self.placeholders.iter().find(|p| p.name() == name)
    }

    /// Looks up a compute by name.
    pub fn find_compute(&self, name: &str) -> Option<&Compute> {
        self.computes.iter().find(|c| c.name() == name)
    }

    /// Clears the recorded schedule (used when the DSE engine replaces a
    /// user schedule with an explored one).
    pub fn clear_schedule(&mut self) {
        self.schedule.clear();
    }

    /// Raises the declared target II of the recorded `pipeline`
    /// primitives on `loop_iv` whose statement is in `stmts` to at least
    /// `ii`, returning whether any primitive changed. The DSE engine uses
    /// this to align declared IIs with achieved ones, so the emitted
    /// pragmas (and `pom-lint`'s feasibility check) reflect what the
    /// recurrence actually allows. The statement filter keeps sibling
    /// nests that reuse an iv name (every stage of a fused image pipeline
    /// pipelines an `i`) from inheriting each other's II.
    pub fn retarget_pipeline_ii(&mut self, stmts: &[String], loop_iv: &str, ii: i64) -> bool {
        let mut changed = false;
        for p in &mut self.schedule {
            if let Primitive::Pipeline {
                stmt,
                loop_iv: lv,
                ii: target,
            } = p
            {
                if lv == loop_iv && stmts.contains(stmt) && *target < ii {
                    *target = ii;
                    changed = true;
                }
            }
        }
        changed
    }

    /// Records an arbitrary primitive.
    pub fn record(&mut self, p: Primitive) -> &mut Self {
        if let Some(stmt) = p.stmt() {
            assert!(
                self.find_compute(stmt).is_some(),
                "schedule primitive targets unknown compute {stmt}"
            );
        }
        if let Primitive::Partition { array, .. } = &p {
            assert!(
                self.find_placeholder(array).is_some(),
                "partition targets unknown array {array}"
            );
        }
        self.schedule.push(p);
        self
    }

    // ------------------------------------------------------------------
    // Table II primitives, in paper spelling
    // ------------------------------------------------------------------

    /// `s.interchange(i, j)`.
    pub fn interchange(&mut self, stmt: &str, i: &str, j: &str) -> &mut Self {
        self.record(Primitive::Interchange {
            stmt: stmt.into(),
            i: i.into(),
            j: j.into(),
        })
    }

    /// `s.split(i, t, i0, i1)`.
    pub fn split(&mut self, stmt: &str, i: &str, factor: i64, i0: &str, i1: &str) -> &mut Self {
        self.record(Primitive::Split {
            stmt: stmt.into(),
            i: i.into(),
            factor,
            i0: i0.into(),
            i1: i1.into(),
        })
    }

    /// `s.tile(i, j, t1, t2, i0, j0, i1, j1)`.
    #[allow(clippy::too_many_arguments)]
    pub fn tile(
        &mut self,
        stmt: &str,
        i: &str,
        j: &str,
        t1: i64,
        t2: i64,
        i0: &str,
        j0: &str,
        i1: &str,
        j1: &str,
    ) -> &mut Self {
        self.record(Primitive::Tile {
            stmt: stmt.into(),
            i: i.into(),
            j: j.into(),
            t1,
            t2,
            i0: i0.into(),
            j0: j0.into(),
            i1: i1.into(),
            j1: j1.into(),
        })
    }

    /// `s.skew(i, j, f, i2, j2)`.
    pub fn skew(
        &mut self,
        stmt: &str,
        i: &str,
        j: &str,
        factor: i64,
        i2: &str,
        j2: &str,
    ) -> &mut Self {
        self.record(Primitive::Skew {
            stmt: stmt.into(),
            i: i.into(),
            j: j.into(),
            factor,
            i2: i2.into(),
            j2: j2.into(),
        })
    }

    /// `s1.after(s2, j)`.
    pub fn after(&mut self, stmt: &str, other: &str, level: &str) -> &mut Self {
        self.record(Primitive::After {
            stmt: stmt.into(),
            other: other.into(),
            level: Some(level.into()),
        })
    }

    /// Schedules `stmt` entirely after `other` (no shared loops).
    pub fn after_all(&mut self, stmt: &str, other: &str) -> &mut Self {
        self.record(Primitive::After {
            stmt: stmt.into(),
            other: other.into(),
            level: None,
        })
    }

    /// `s.pipeline(i, t)`.
    pub fn pipeline(&mut self, stmt: &str, loop_iv: &str, ii: i64) -> &mut Self {
        self.record(Primitive::Pipeline {
            stmt: stmt.into(),
            loop_iv: loop_iv.into(),
            ii,
        })
    }

    /// `s.unroll(i, t)`.
    pub fn unroll(&mut self, stmt: &str, loop_iv: &str, factor: i64) -> &mut Self {
        self.record(Primitive::Unroll {
            stmt: stmt.into(),
            loop_iv: loop_iv.into(),
            factor,
        })
    }

    /// `A.partition({t...}, style)`.
    pub fn partition(&mut self, array: &str, factors: &[i64], style: PartitionStyle) -> &mut Self {
        self.record(Primitive::Partition {
            array: array.into(),
            factors: factors.to_vec(),
            style,
        })
    }

    /// `f.auto_DSE()` — delegate scheduling to the DSE engine.
    pub fn auto_dse(&mut self) -> &mut Self {
        self.record(Primitive::AutoDse)
    }

    /// True when the schedule requests automatic DSE.
    pub fn wants_auto_dse(&self) -> bool {
        self.schedule
            .iter()
            .any(|p| matches!(p, Primitive::AutoDse))
    }

    /// Number of DSL statements used to describe this function — the LoC
    /// metric of Fig. 15 (declarations + computes + schedule primitives).
    pub fn dsl_loc(&self) -> usize {
        // vars are implicit in computes; count placeholders, computes,
        // schedule primitives, plus the codegen call.
        self.placeholders.len() + self.computes.len() + self.schedule.len() + 1
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "function {} {{", self.name)?;
        for p in &self.placeholders {
            writeln!(f, "  {p};")?;
        }
        for c in &self.computes {
            writeln!(f, "  {c};")?;
        }
        for s in &self.schedule {
            writeln!(f, "  {s};")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm() -> Function {
        let mut f = Function::new("gemm");
        let i = f.var("i", 0, 32);
        let j = f.var("j", 0, 32);
        let k = f.var("k", 0, 32);
        let a = f.placeholder("A", &[32, 32], DataType::F32);
        let b = f.placeholder("B", &[32, 32], DataType::F32);
        let c = f.placeholder("C", &[32, 32], DataType::F32);
        f.compute(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        );
        f
    }

    #[test]
    fn fig4_matmul_builds() {
        let f = gemm();
        assert_eq!(f.computes().len(), 1);
        assert_eq!(f.placeholders().len(), 3);
        assert!(f.find_compute("s").is_some());
        assert!(f.find_placeholder("B").is_some());
    }

    #[test]
    fn fig5_fig6_schedule_records() {
        let mut f = gemm();
        f.tile("s", "i", "j", 4, 4, "i0", "j0", "i1", "j1");
        f.pipeline("s", "j0", 1);
        f.unroll("s", "i1", 4);
        f.unroll("s", "j1", 4);
        f.partition("A", &[4, 4], PartitionStyle::Cyclic);
        assert_eq!(f.schedule().len(), 5);
        assert_eq!(
            f.schedule()
                .iter()
                .filter(|p| p.is_loop_transformation())
                .count(),
            1
        );
        assert_eq!(
            f.schedule()
                .iter()
                .filter(|p| p.is_hardware_optimization())
                .count(),
            4
        );
    }

    #[test]
    fn auto_dse_flag() {
        let mut f = gemm();
        assert!(!f.wants_auto_dse());
        f.auto_dse();
        assert!(f.wants_auto_dse());
    }

    #[test]
    #[should_panic(expected = "unknown compute")]
    fn schedule_unknown_compute_panics() {
        let mut f = gemm();
        f.pipeline("nope", "i", 1);
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_compute_panics() {
        let mut f = gemm();
        let i = f.var("i", 0, 4);
        let a = f.find_placeholder("A").unwrap().clone();
        f.compute(
            "s",
            std::slice::from_ref(&i),
            a.at(&[&i, &i]),
            a.access(&[&i, &i]),
        );
    }

    #[test]
    #[should_panic(expected = "undeclared array")]
    fn undeclared_array_panics() {
        let mut f = Function::new("f");
        let i = f.var("i", 0, 4);
        let ghost = Placeholder::new("G", &[4], DataType::F32);
        f.compute(
            "s",
            std::slice::from_ref(&i),
            ghost.at(&[&i]),
            ghost.access(&[&i]),
        );
    }

    #[test]
    fn dsl_loc_counts() {
        let mut f = gemm();
        let base = f.dsl_loc(); // 3 placeholders + 1 compute + codegen
        assert_eq!(base, 5);
        f.auto_dse();
        assert_eq!(f.dsl_loc(), 6);
    }

    #[test]
    fn display_lists_everything() {
        let mut f = gemm();
        f.pipeline("s", "j", 1);
        let text = f.to_string();
        assert!(text.contains("function gemm"));
        assert!(text.contains("compute s"));
        assert!(text.contains("s.pipeline(j, 1)"));
    }
}
