//! Reference interpreter: the sequential semantics of a [`Function`],
//! against which every transformed/generated program is checked.

use crate::expr::{BinOp, Expr, UnOp};
use crate::function::Function;
use crate::types::Placeholder;
use pom_poly::AccessFn;
use std::collections::HashMap;
use std::fmt;

/// A dense n-dimensional `f64` array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayData {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl ArrayData {
    /// Creates a zero-filled array.
    pub fn zeros(shape: &[usize]) -> Self {
        ArrayData {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates an array for a placeholder, filled by `f(flat_index)`.
    pub fn from_fn(shape: &[usize], f: impl Fn(usize) -> f64) -> Self {
        ArrayData {
            shape: shape.to_vec(),
            data: (0..shape.iter().product()).map(f).collect(),
        }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    fn flat_index(&self, idx: &[i64]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0usize;
        for (d, (&i, &n)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                i >= 0 && (i as usize) < n,
                "index {i} out of bounds for dim {d} (size {n})"
            );
            flat = flat * n + i as usize;
        }
        flat
    }

    /// Reads one element.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn get(&self, idx: &[i64]) -> f64 {
        self.data[self.flat_index(idx)]
    }

    /// Writes one element.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn set(&mut self, idx: &[i64], value: f64) {
        let f = self.flat_index(idx);
        self.data[f] = value;
    }

    /// Overwrites every element with `f(flat_index)` in place, reusing
    /// the existing allocation (the shape is unchanged).
    pub fn refill(&mut self, f: impl Fn(usize) -> f64) {
        for (i, v) in self.data.iter_mut().enumerate() {
            *v = f(i);
        }
    }
}

impl fmt::Display for ArrayData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array{:?} ({} elems)", self.shape, self.data.len())
    }
}

/// Named array storage shared by the reference interpreter and the IR
/// interpreter in `pom-ir`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemoryState {
    arrays: HashMap<String, ArrayData>,
}

impl MemoryState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates zero-filled arrays for all placeholders of a function.
    pub fn for_function(f: &Function) -> Self {
        let mut s = Self::new();
        for p in f.placeholders() {
            s.insert_zeros(p);
        }
        s
    }

    /// Allocates deterministic pseudo-random contents for all placeholders
    /// (a fixed mixing function of the flat index), so reference and
    /// optimized executions start identical.
    pub fn for_function_seeded(f: &Function, seed: u64) -> Self {
        let mut s = Self::new();
        s.reseed_for_function(f, seed);
        s
    }

    /// Resets this state to exactly [`MemoryState::for_function_seeded`]
    /// contents, reusing the existing allocation of every array whose
    /// shape is unchanged. Arrays not among `f`'s placeholders are
    /// dropped, so back-to-back simulations through one reused state see
    /// identical initial memory. This is the allocation-free path batch
    /// simulation (`pom-sim`'s arena) leans on.
    pub fn reseed_for_function(&mut self, f: &Function, seed: u64) {
        self.arrays
            .retain(|name, _| f.placeholders().iter().any(|p| p.name() == name));
        for p in f.placeholders() {
            let name_salt: u64 = p.name().bytes().map(u64::from).sum();
            let fill = |i: usize| {
                let mut x = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(seed ^ name_salt);
                x ^= x >> 29;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 32;
                ((x % 1000) as f64) / 100.0 - 5.0
            };
            match self.arrays.get_mut(p.name()) {
                Some(a) if a.shape() == p.shape() => a.refill(fill),
                _ => {
                    self.arrays
                        .insert(p.name().to_string(), ArrayData::from_fn(p.shape(), fill));
                }
            }
        }
    }

    /// Inserts a zero-filled array for a placeholder.
    pub fn insert_zeros(&mut self, p: &Placeholder) {
        self.arrays
            .insert(p.name().to_string(), ArrayData::zeros(p.shape()));
    }

    /// Inserts an explicit array.
    pub fn insert(&mut self, name: impl Into<String>, a: ArrayData) {
        self.arrays.insert(name.into(), a);
    }

    /// Immutable array lookup.
    pub fn array(&self, name: &str) -> Option<&ArrayData> {
        self.arrays.get(name)
    }

    /// Mutable array lookup.
    pub fn array_mut(&mut self, name: &str) -> Option<&mut ArrayData> {
        self.arrays.get_mut(name)
    }

    /// Reads through an access function under an iterator environment.
    pub fn load(&self, access: &AccessFn, env: &HashMap<String, i64>) -> f64 {
        let idx: Vec<i64> = access.indices.iter().map(|e| e.eval_partial(env)).collect();
        self.arrays
            .get(&access.array)
            .unwrap_or_else(|| panic!("unknown array {}", access.array))
            .get(&idx)
    }

    /// Writes through an access function under an iterator environment.
    pub fn store(&mut self, access: &AccessFn, env: &HashMap<String, i64>, value: f64) {
        let idx: Vec<i64> = access.indices.iter().map(|e| e.eval_partial(env)).collect();
        self.arrays
            .get_mut(&access.array)
            .unwrap_or_else(|| panic!("unknown array {}", access.array))
            .set(&idx, value);
    }
}

/// Evaluates a compute-body expression.
pub fn eval_expr(expr: &Expr, env: &HashMap<String, i64>, mem: &MemoryState) -> f64 {
    match expr {
        Expr::Load(a) => mem.load(a, env),
        Expr::Affine(e) => e.eval_partial(env) as f64,
        Expr::Const(v) => *v,
        Expr::Binary(op, l, r) => {
            let a = eval_expr(l, env, mem);
            let b = eval_expr(r, env, mem);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Max => a.max(b),
                BinOp::Min => a.min(b),
            }
        }
        Expr::Unary(UnOp::Neg, e) => -eval_expr(e, env, mem),
    }
}

/// Executes a function with the *reference* (unoptimized, sequential)
/// semantics: computes in declaration order, loops in declared iterator
/// order.
pub fn reference_execute(f: &Function, mem: &mut MemoryState) {
    for c in f.computes() {
        let iters = c.iters().to_vec();
        let mut env: HashMap<String, i64> = HashMap::new();
        exec_loops(&iters, 0, &mut env, &mut |env| {
            let v = eval_expr(c.body(), env, mem);
            mem.store(c.store(), env, v);
        });
    }
}

fn exec_loops(
    iters: &[crate::types::Var],
    level: usize,
    env: &mut HashMap<String, i64>,
    body: &mut impl FnMut(&HashMap<String, i64>),
) {
    if level == iters.len() {
        body(env);
        return;
    }
    let v = &iters[level];
    for x in v.lb()..v.ub() {
        env.insert(v.name().to_string(), x);
        exec_loops(iters, level + 1, env, body);
    }
    env.remove(v.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DataType, Var};

    #[test]
    fn array_indexing_row_major() {
        let mut a = ArrayData::zeros(&[2, 3]);
        a.set(&[1, 2], 7.5);
        assert_eq!(a.get(&[1, 2]), 7.5);
        assert_eq!(a.data()[5], 7.5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        ArrayData::zeros(&[2, 3]).get(&[2, 0]);
    }

    #[test]
    fn gemm_reference_matches_manual() {
        let n = 4usize;
        let mut f = Function::new("gemm");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let k = f.var("k", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        f.compute(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        );

        let mut mem = MemoryState::new();
        mem.insert("A", ArrayData::zeros(&[n, n]));
        mem.insert("B", ArrayData::from_fn(&[n, n], |x| x as f64));
        mem.insert("C", ArrayData::from_fn(&[n, n], |x| (x % 3) as f64));
        let b_copy = mem.array("B").unwrap().clone();
        let c_copy = mem.array("C").unwrap().clone();

        reference_execute(&f, &mut mem);

        for ii in 0..n as i64 {
            for jj in 0..n as i64 {
                let mut acc = 0.0;
                for kk in 0..n as i64 {
                    acc += b_copy.get(&[ii, kk]) * c_copy.get(&[kk, jj]);
                }
                assert_eq!(mem.array("A").unwrap().get(&[ii, jj]), acc);
            }
        }
    }

    #[test]
    fn stencil_reference_semantics() {
        // B[i] = (A[i-1] + A[i] + A[i+1]) / 3 over i in [1, 6].
        let mut f = Function::new("jacobi");
        let i = Var::new("i", 1, 7);
        let a = f.placeholder("A", &[8], DataType::F32);
        let b = f.placeholder("B", &[8], DataType::F32);
        let im1 = i.expr() - 1;
        let ip1 = i.expr() + 1;
        f.compute(
            "s",
            std::slice::from_ref(&i),
            (a.at(std::slice::from_ref(&im1)) + a.at(&[&i]) + a.at(std::slice::from_ref(&ip1)))
                / 3.0,
            b.access(&[&i]),
        );
        let mut mem = MemoryState::new();
        mem.insert("A", ArrayData::from_fn(&[8], |x| x as f64));
        mem.insert("B", ArrayData::zeros(&[8]));
        reference_execute(&f, &mut mem);
        // Average of consecutive integers is the middle one.
        for ii in 1..7 {
            assert!((mem.array("B").unwrap().get(&[ii]) - ii as f64).abs() < 1e-9);
        }
        assert_eq!(mem.array("B").unwrap().get(&[0]), 0.0);
    }

    #[test]
    fn seeded_state_is_deterministic() {
        let mut f = Function::new("f");
        let i = f.var("i", 0, 4);
        let a = f.placeholder("A", &[4], DataType::F32);
        f.compute(
            "s",
            std::slice::from_ref(&i),
            a.at(&[&i]) * 2.0,
            a.access(&[&i]),
        );
        let m1 = MemoryState::for_function_seeded(&f, 42);
        let m2 = MemoryState::for_function_seeded(&f, 42);
        let m3 = MemoryState::for_function_seeded(&f, 43);
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
    }

    #[test]
    fn eval_expr_ops() {
        let mem = MemoryState::new();
        let env = HashMap::new();
        let e = Expr::max(Expr::constant(-2.0), Expr::constant(1.0)) + 3.0;
        assert_eq!(eval_expr(&e, &env, &mem), 4.0);
        let e = -(Expr::constant(5.0) / 2.0);
        assert_eq!(eval_expr(&e, &env, &mem), -2.5);
        let e = Expr::min(Expr::constant(-2.0), Expr::constant(1.0));
        assert_eq!(eval_expr(&e, &env, &mem), -2.0);
    }
}
