//! # pom-dsl — the POM programming model (Section IV of the paper)
//!
//! A declarative DSL, embedded in Rust instead of C++, that decouples the
//! *algorithm specification* from the *schedule*:
//!
//! * [`Var`] — loop iterators with ranges (`var i("i", 0, 32)`),
//! * [`Placeholder`] — multi-dimensional arrays with a [`DataType`],
//! * [`Compute`] — a statement defined over an iteration domain
//!   (`compute s("s", [k,i,j], A(i,j)+B(i,k)*C(k,j), A(i,j))`),
//! * [`Function`] — a collection of computes plus the recorded
//!   [`Primitive`] schedule (Table II): `interchange`, `split`, `tile`,
//!   `skew`, `after`, `pipeline`, `unroll`, `partition`, and `auto_dse`.
//!
//! The matrix-multiplication example of Fig. 4/5/6:
//!
//! ```
//! use pom_dsl::{Function, DataType, PartitionStyle};
//!
//! let mut f = Function::new("gemm");
//! let (i, j, k) = (f.var("i", 0, 32), f.var("j", 0, 32), f.var("k", 0, 32));
//! let a = f.placeholder("A", &[32, 32], DataType::F32);
//! let b = f.placeholder("B", &[32, 32], DataType::F32);
//! let c = f.placeholder("C", &[32, 32], DataType::F32);
//! f.compute(
//!     "s",
//!     &[k.clone(), i.clone(), j.clone()],
//!     a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
//!     a.access(&[&i, &j]),
//! );
//! // Schedule: tile i, j by 4x4; pipeline j0; unroll the intra-tile loops.
//! f.tile("s", "i", "j", 4, 4, "i0", "j0", "i1", "j1");
//! f.pipeline("s", "j0", 1);
//! f.unroll("s", "i1", 4);
//! f.unroll("s", "j1", 4);
//! f.partition("A", &[4, 4], PartitionStyle::Cyclic);
//! assert_eq!(f.computes().len(), 1);
//! ```

pub mod compute;
pub mod expr;
pub mod function;
pub mod interp;
pub mod schedule;
pub mod types;

pub use compute::Compute;
pub use expr::{BinOp, Expr, UnOp};
pub use function::Function;
pub use interp::{reference_execute, ArrayData, MemoryState};
pub use schedule::{PartitionStyle, Primitive};
pub use types::{DataType, Placeholder, Var};

pub use pom_poly::AccessFn;
