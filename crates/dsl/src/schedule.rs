//! Scheduling primitives (Table II of the paper), recorded as data.
//!
//! The DSL decouples algorithm from schedule: primitives are *recorded* on
//! the [`crate::Function`] and replayed by the lowering pipeline onto the
//! polyhedral IR (loop transformations) and the annotated affine dialect
//! (hardware optimizations).

use std::fmt;

/// Array partition styles for `A.partition({t1, t2}, style)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionStyle {
    /// Cyclic partitioning: element `i` goes to bank `i % factor`.
    Cyclic,
    /// Block partitioning: element `i` goes to bank `i / ceil(N/factor)`.
    Block,
    /// Complete partitioning into registers.
    Complete,
}

impl PartitionStyle {
    /// The HLS pragma spelling.
    pub fn pragma_name(&self) -> &'static str {
        match self {
            PartitionStyle::Cyclic => "cyclic",
            PartitionStyle::Block => "block",
            PartitionStyle::Complete => "complete",
        }
    }
}

impl fmt::Display for PartitionStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pragma_name())
    }
}

/// A recorded scheduling primitive (Table II).
#[derive(Clone, Debug, PartialEq)]
pub enum Primitive {
    /// `s.interchange(i, j)`.
    Interchange {
        /// Compute name.
        stmt: String,
        /// First loop level.
        i: String,
        /// Second loop level.
        j: String,
    },
    /// `s.split(i, t, i0, i1)`.
    Split {
        /// Compute name.
        stmt: String,
        /// Loop to split.
        i: String,
        /// Split factor.
        factor: i64,
        /// Outer result loop.
        i0: String,
        /// Inner result loop.
        i1: String,
    },
    /// `s.tile(i, j, t1, t2, i0, j0, i1, j1)`.
    Tile {
        /// Compute name.
        stmt: String,
        /// Outer loop to tile.
        i: String,
        /// Inner loop to tile.
        j: String,
        /// Tile factor for `i`.
        t1: i64,
        /// Tile factor for `j`.
        t2: i64,
        /// Resulting loops, outermost first.
        i0: String,
        /// Tile loop of `j`.
        j0: String,
        /// Intra-tile loop of `i`.
        i1: String,
        /// Intra-tile loop of `j`.
        j1: String,
    },
    /// `s.skew(i, j, f, i2, j2)`: `j2 = f*i + j`.
    Skew {
        /// Compute name.
        stmt: String,
        /// Outer loop.
        i: String,
        /// Loop being skewed.
        j: String,
        /// Skew factor.
        factor: i64,
        /// New outer loop name.
        i2: String,
        /// New skewed loop name.
        j2: String,
    },
    /// `s1.after(s2, j)`: `stmt` executes after `other` at loop level `j`.
    After {
        /// The later compute.
        stmt: String,
        /// The earlier compute.
        other: String,
        /// Shared loop level of `other` (`None` = no shared loops).
        level: Option<String>,
    },
    /// `s.pipeline(i, t)`: pipeline loop `i` with target initiation
    /// interval `t`.
    Pipeline {
        /// Compute name.
        stmt: String,
        /// Loop level to pipeline.
        loop_iv: String,
        /// Target initiation interval.
        ii: i64,
    },
    /// `s.unroll(i, t)`: unroll loop `i` by factor `t`.
    Unroll {
        /// Compute name.
        stmt: String,
        /// Loop level to unroll.
        loop_iv: String,
        /// Unroll factor.
        factor: i64,
    },
    /// `A.partition({t...}, style)`.
    Partition {
        /// Array name.
        array: String,
        /// One factor per array dimension.
        factors: Vec<i64>,
        /// Partition style.
        style: PartitionStyle,
    },
    /// `f.auto_DSE()`: delegate scheduling to the DSE engine.
    AutoDse,
}

impl Primitive {
    /// The compute this primitive targets, if any.
    pub fn stmt(&self) -> Option<&str> {
        match self {
            Primitive::Interchange { stmt, .. }
            | Primitive::Split { stmt, .. }
            | Primitive::Tile { stmt, .. }
            | Primitive::Skew { stmt, .. }
            | Primitive::After { stmt, .. }
            | Primitive::Pipeline { stmt, .. }
            | Primitive::Unroll { stmt, .. } => Some(stmt),
            Primitive::Partition { .. } | Primitive::AutoDse => None,
        }
    }

    /// True for loop transformations (applied on the polyhedral IR).
    pub fn is_loop_transformation(&self) -> bool {
        matches!(
            self,
            Primitive::Interchange { .. }
                | Primitive::Split { .. }
                | Primitive::Tile { .. }
                | Primitive::Skew { .. }
                | Primitive::After { .. }
        )
    }

    /// True for hardware optimizations (applied on the affine dialect).
    pub fn is_hardware_optimization(&self) -> bool {
        matches!(
            self,
            Primitive::Pipeline { .. } | Primitive::Unroll { .. } | Primitive::Partition { .. }
        )
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Primitive::Interchange { stmt, i, j } => write!(f, "{stmt}.interchange({i}, {j})"),
            Primitive::Split {
                stmt,
                i,
                factor,
                i0,
                i1,
            } => write!(f, "{stmt}.split({i}, {factor}, {i0}, {i1})"),
            Primitive::Tile {
                stmt,
                i,
                j,
                t1,
                t2,
                i0,
                j0,
                i1,
                j1,
            } => write!(
                f,
                "{stmt}.tile({i}, {j}, {t1}, {t2}, {i0}, {j0}, {i1}, {j1})"
            ),
            Primitive::Skew {
                stmt,
                i,
                j,
                factor,
                i2,
                j2,
            } => write!(f, "{stmt}.skew({i}, {j}, {factor}, {i2}, {j2})"),
            Primitive::After { stmt, other, level } => match level {
                Some(l) => write!(f, "{stmt}.after({other}, {l})"),
                None => write!(f, "{stmt}.after({other})"),
            },
            Primitive::Pipeline { stmt, loop_iv, ii } => {
                write!(f, "{stmt}.pipeline({loop_iv}, {ii})")
            }
            Primitive::Unroll {
                stmt,
                loop_iv,
                factor,
            } => write!(f, "{stmt}.unroll({loop_iv}, {factor})"),
            Primitive::Partition {
                array,
                factors,
                style,
            } => {
                let fs: Vec<String> = factors.iter().map(|x| x.to_string()).collect();
                write!(f, "{array}.partition({{{}}}, \"{style}\")", fs.join(", "))
            }
            Primitive::AutoDse => write!(f, "f.auto_DSE()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let t = Primitive::Tile {
            stmt: "s".into(),
            i: "i".into(),
            j: "j".into(),
            t1: 4,
            t2: 4,
            i0: "i0".into(),
            j0: "j0".into(),
            i1: "i1".into(),
            j1: "j1".into(),
        };
        assert!(t.is_loop_transformation());
        assert!(!t.is_hardware_optimization());
        assert_eq!(t.stmt(), Some("s"));

        let p = Primitive::Pipeline {
            stmt: "s".into(),
            loop_iv: "j0".into(),
            ii: 1,
        };
        assert!(p.is_hardware_optimization());

        let part = Primitive::Partition {
            array: "A".into(),
            factors: vec![4, 4],
            style: PartitionStyle::Cyclic,
        };
        assert!(part.is_hardware_optimization());
        assert_eq!(part.stmt(), None);
    }

    #[test]
    fn display_matches_paper_spelling() {
        let p = Primitive::Partition {
            array: "A".into(),
            factors: vec![4, 4],
            style: PartitionStyle::Cyclic,
        };
        assert_eq!(p.to_string(), "A.partition({4, 4}, \"cyclic\")");
        let s = Primitive::Split {
            stmt: "s".into(),
            i: "i".into(),
            factor: 8,
            i0: "i0".into(),
            i1: "i1".into(),
        };
        assert_eq!(s.to_string(), "s.split(i, 8, i0, i1)");
    }

    #[test]
    fn partition_styles() {
        assert_eq!(PartitionStyle::Cyclic.pragma_name(), "cyclic");
        assert_eq!(PartitionStyle::Block.pragma_name(), "block");
        assert_eq!(PartitionStyle::Complete.pragma_name(), "complete");
    }
}
