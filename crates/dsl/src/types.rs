//! Data types, loop iterators, and array placeholders.

use crate::expr::Expr;
use pom_poly::{AccessFn, LinearExpr};
use std::fmt;

/// The data types POM supports for variables and arrays (Section IV-A):
/// signed/unsigned integers of 8–64 bits and single/double floats.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// 8-bit signed integer.
    I8,
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 8-bit unsigned integer.
    U8,
    /// 16-bit unsigned integer.
    U16,
    /// 32-bit unsigned integer.
    U32,
    /// 64-bit unsigned integer.
    U64,
    /// 32-bit single-precision float (the paper's evaluation type).
    #[default]
    F32,
    /// 64-bit double-precision float.
    F64,
}

impl DataType {
    /// Bit width of the type.
    pub fn bits(&self) -> u32 {
        match self {
            DataType::I8 | DataType::U8 => 8,
            DataType::I16 | DataType::U16 => 16,
            DataType::I32 | DataType::U32 | DataType::F32 => 32,
            DataType::I64 | DataType::U64 | DataType::F64 => 64,
        }
    }

    /// True for floating-point types.
    pub fn is_float(&self) -> bool {
        matches!(self, DataType::F32 | DataType::F64)
    }

    /// The equivalent HLS C type name.
    pub fn c_name(&self) -> &'static str {
        match self {
            DataType::I8 => "int8_t",
            DataType::I16 => "int16_t",
            DataType::I32 => "int32_t",
            DataType::I64 => "int64_t",
            DataType::U8 => "uint8_t",
            DataType::U16 => "uint16_t",
            DataType::U32 => "uint32_t",
            DataType::U64 => "uint64_t",
            DataType::F32 => "float",
            DataType::F64 => "double",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.c_name())
    }
}

/// A loop iterator with a half-open range `[lb, ub)`, matching the paper's
/// `var i("i", 0, 32)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Var {
    name: String,
    lb: i64,
    ub: i64,
}

impl Var {
    /// Declares an iterator over `[lb, ub)`.
    ///
    /// # Panics
    ///
    /// Panics if `ub <= lb` (empty iterators are almost always bugs in a
    /// kernel description).
    pub fn new(name: impl Into<String>, lb: i64, ub: i64) -> Self {
        let name = name.into();
        assert!(ub > lb, "iterator {name} has empty range [{lb}, {ub})");
        Var { name, lb, ub }
    }

    /// The iterator name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inclusive lower bound.
    pub fn lb(&self) -> i64 {
        self.lb
    }

    /// Exclusive upper bound.
    pub fn ub(&self) -> i64 {
        self.ub
    }

    /// Trip count of the iterator.
    pub fn extent(&self) -> i64 {
        self.ub - self.lb
    }

    /// The iterator as an affine expression.
    pub fn expr(&self) -> LinearExpr {
        LinearExpr::var(&self.name)
    }
}

impl From<&Var> for LinearExpr {
    fn from(v: &Var) -> LinearExpr {
        v.expr()
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in [{}, {})", self.name, self.lb, self.ub)
    }
}

/// A multi-dimensional array placeholder (`placeholder A("A", {32,32},
/// p_float32)` in the paper).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Placeholder {
    name: String,
    shape: Vec<usize>,
    dtype: DataType,
}

impl Placeholder {
    /// Declares an array.
    pub fn new(name: impl Into<String>, shape: &[usize], dtype: DataType) -> Self {
        let name = name.into();
        assert!(!shape.is_empty(), "array {name} needs at least one dim");
        Placeholder {
            name,
            shape: shape.to_vec(),
            dtype,
        }
    }

    /// The array name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The array shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The element type.
    pub fn dtype(&self) -> DataType {
        self.dtype
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.shape.iter().product()
    }

    /// True when the array has no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A *load* expression `A(idx...)` for use inside compute bodies.
    ///
    /// Index expressions accept anything convertible to [`LinearExpr`]
    /// (iterators, or affine combinations like `i.expr() - 1`).
    pub fn at<E>(&self, indices: &[E]) -> Expr
    where
        E: Clone + Into<LinearExpr>,
    {
        Expr::Load(self.access(indices))
    }

    /// An access function `A[idx...]` used as a store destination.
    pub fn access<E>(&self, indices: &[E]) -> AccessFn
    where
        E: Clone + Into<LinearExpr>,
    {
        assert_eq!(
            indices.len(),
            self.shape.len(),
            "array {} has rank {}, got {} indices",
            self.name,
            self.shape.len(),
            indices.len()
        );
        AccessFn::new(
            self.name.clone(),
            indices.iter().map(|e| e.clone().into()).collect(),
        )
    }
}

impl fmt::Display for Placeholder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.shape.iter().map(|d| d.to_string()).collect();
        write!(f, "{} {}[{}]", self.dtype, self.name, dims.join("]["))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_properties() {
        assert_eq!(DataType::F32.bits(), 32);
        assert!(DataType::F32.is_float());
        assert!(!DataType::I32.is_float());
        assert_eq!(DataType::I8.c_name(), "int8_t");
        assert_eq!(DataType::U64.bits(), 64);
        assert_eq!(DataType::default(), DataType::F32);
    }

    #[test]
    fn var_range() {
        let i = Var::new("i", 0, 32);
        assert_eq!(i.extent(), 32);
        assert_eq!(i.expr().coeff("i"), 1);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_var_panics() {
        Var::new("i", 5, 5);
    }

    #[test]
    fn placeholder_access() {
        let a = Placeholder::new("A", &[32, 32], DataType::F32);
        let i = Var::new("i", 0, 32);
        let j = Var::new("j", 0, 32);
        let acc = a.access(&[&i, &j]);
        assert_eq!(acc.array, "A");
        assert_eq!(acc.indices.len(), 2);
        assert_eq!(a.len(), 1024);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn access_rank_mismatch_panics() {
        let a = Placeholder::new("A", &[32, 32], DataType::F32);
        let i = Var::new("i", 0, 32);
        a.access(&[&i]);
    }

    #[test]
    fn display_formats() {
        let a = Placeholder::new("A", &[4, 8], DataType::F64);
        assert_eq!(a.to_string(), "double A[4][8]");
        assert_eq!(Var::new("i", 0, 4).to_string(), "i in [0, 4)");
    }
}
