//! Fine-grained per-node dependence analysis (Fig. 8③) and
//! transformation hints.

use pom_dsl::Compute;
use pom_poly::{DepKind, Dependence, DependenceAnalysis};
use std::fmt;

/// The guidance the analysis attaches to a node — consumed by the DSE
/// engine's dependence-aware transformation stage (Section VI-A).
///
/// POM's FPGA-friendly shape keeps loops that *carry* dependences
/// outermost (executed sequentially) and parallel loops innermost (tiled,
/// pipelined, and unrolled) — Fig. 8's guidance of "swapping the inner
/// loop `k` with tight dependencies with the outer loop".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Hint {
    /// Carried levels already form an outermost prefix; keep the order.
    KeepOrder,
    /// A dependence is carried at an inner level while an outer level is
    /// parallel: move the carried loop outward by interchanging.
    Interchange {
        /// The inner loop (by iterator name) carrying the tight dependence.
        carried: String,
        /// The parallel outer loop to interchange it with.
        outer: String,
    },
    /// Every loop level carries a dependence: restructure with loop
    /// skewing (wavefront) of `inner` by `outer`.
    Skew {
        /// The outer loop of the wavefront.
        outer: String,
        /// The loop to skew.
        inner: String,
        /// Skew factor (the smallest making all dependences lexicographically
        /// carried by `outer`).
        factor: i64,
    },
    /// A non-uniform dependence was found: set an HLS `DEPENDENCE` pragma
    /// and keep the order (the paper's conservative guidance).
    DependencePragma,
}

impl fmt::Display for Hint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hint::KeepOrder => write!(f, "keep current loop order"),
            Hint::Interchange { carried, outer } => write!(
                f,
                "loop-carried dependence can be alleviated by interchanging the inner loop {carried} with the outer loop {outer}"
            ),
            Hint::Skew {
                outer,
                inner,
                factor,
            } => write!(f, "skew {inner} by {factor}*{outer} (wavefront)"),
            Hint::DependencePragma => {
                write!(f, "non-uniform dependence: set HLS DEPENDENCE pragma")
            }
        }
    }
}

/// The result of fine-grained analysis on one node.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeAnalysis {
    /// Iterator names of the nest, outermost first.
    pub dims: Vec<String>,
    /// Reduction dimensions (indices into `dims`), from the store pattern.
    pub reduction_dims: Vec<usize>,
    /// All self-dependences of the node (store↔load on the same array plus
    /// the store's output dependence).
    pub deps: Vec<Dependence>,
    /// Per loop level: the minimal carried distance, if any dependence is
    /// carried there (`None` = level is dependence-free / parallel).
    pub carried_by_level: Vec<Option<i64>>,
    /// The transformation hint.
    pub hint: Hint,
}

impl NodeAnalysis {
    /// Analyzes a compute.
    pub fn of(c: &Compute) -> NodeAnalysis {
        let dims = c.iter_names();
        let domain = c.domain();
        let an = DependenceAnalysis::new();
        let store = c.store();
        let mut deps: Vec<Dependence> = Vec::new();

        // Flow: store -> each later read of the same array.
        // Anti: each read -> store.
        for load in c.loads() {
            if load.array == store.array {
                deps.extend(an.analyze_pair(store, load, DepKind::Flow, &dims, &domain));
                deps.extend(an.analyze_pair(load, store, DepKind::Anti, &dims, &domain));
            }
        }
        // Output: store -> store.
        deps.extend(an.analyze_pair(store, store, DepKind::Output, &dims, &domain));

        let mut carried_by_level: Vec<Option<i64>> = vec![None; dims.len()];
        let mut non_uniform = false;
        for d in &deps {
            match (d.carried_level, &d.distance) {
                (Some(l), Some(dist)) => {
                    let v = dist.0[l];
                    carried_by_level[l] = Some(match carried_by_level[l] {
                        Some(cur) => cur.min(v),
                        None => v,
                    });
                }
                (Some(l), None) => {
                    non_uniform = true;
                    carried_by_level[l] = Some(carried_by_level[l].unwrap_or(1));
                }
                (None, _) => {}
            }
        }

        let hint = compute_hint(&dims, &carried_by_level, non_uniform, &deps);
        NodeAnalysis {
            dims,
            reduction_dims: c.reduction_dims(),
            deps,
            carried_by_level,
            hint,
        }
    }

    /// True when any loop level carries a dependence.
    pub fn has_carried_dependence(&self) -> bool {
        self.carried_by_level.iter().any(Option::is_some)
    }

    /// Loop levels with no carried dependence — freely parallelizable.
    pub fn parallel_levels(&self) -> Vec<usize> {
        self.carried_by_level
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// True when a dependence is carried at a level that has a *parallel*
    /// level above it — the misplaced "tight dependence" the stage-1 DSE
    /// moves outward (inner carried levels with everything parallel below
    /// them are the FPGA-friendly shape already).
    pub fn has_misplaced_carried_dependence(&self) -> bool {
        let mut seen_parallel = false;
        for c in &self.carried_by_level {
            match c {
                None => seen_parallel = true,
                Some(_) if seen_parallel => return true,
                Some(_) => {}
            }
        }
        false
    }
}

fn compute_hint(
    dims: &[String],
    carried: &[Option<i64>],
    non_uniform: bool,
    deps: &[Dependence],
) -> Hint {
    if non_uniform {
        return Hint::DependencePragma;
    }
    let n = dims.len();
    if n == 0 {
        return Hint::KeepOrder;
    }
    let carried_levels: Vec<usize> = (0..n).filter(|&l| carried[l].is_some()).collect();
    let parallel_levels: Vec<usize> = (0..n).filter(|&l| carried[l].is_none()).collect();

    if carried_levels.is_empty() {
        return Hint::KeepOrder;
    }
    if parallel_levels.is_empty() {
        // Every level carries a dependence (stencil-like): skew the
        // innermost by the outermost. The factor must make every
        // dependence distance lexicographically carried by the outer loop
        // with a non-negative inner entry.
        let mut factor = 1i64;
        for d in deps {
            if let (Some(dist), Some(_)) = (&d.distance, d.carried_level) {
                if dist.0.len() >= 2 {
                    let (d_outer, d_inner) = (dist.0[0], dist.0[dist.0.len() - 1]);
                    if d_outer > 0 && d_inner < 0 {
                        let needed = (-d_inner + d_outer - 1) / d_outer;
                        factor = factor.max(needed);
                    }
                }
            }
        }
        return Hint::Skew {
            outer: dims[0].clone(),
            inner: dims[n - 1].clone(),
            factor,
        };
    }
    // Carried-prefix check: the FPGA-friendly shape.
    let prefix_ok = carried_levels
        .iter()
        .zip(0..)
        .all(|(&l, expect)| l == expect);
    if prefix_ok {
        return Hint::KeepOrder;
    }
    // Some parallel level sits above a carried level: move the innermost
    // such carried loop outward past the outermost parallel loop.
    let carried_inner = *carried_levels.last().expect("non-empty");
    let parallel_outer = *parallel_levels.first().expect("non-empty");
    Hint::Interchange {
        carried: dims[carried_inner].clone(),
        outer: dims[parallel_outer].clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{DataType, Function};

    #[test]
    fn gemm_reduction_outermost_keeps_order() {
        // GEMM written (k, i, j) as in the paper's Fig. 4: the carried
        // reduction loop is already outermost — keep.
        let mut f = Function::new("gemm");
        let k = f.var("k", 0, 16);
        let i = f.var("i", 0, 16);
        let j = f.var("j", 0, 16);
        let a = f.placeholder("A", &[16, 16], DataType::F32);
        let b = f.placeholder("B", &[16, 16], DataType::F32);
        let c = f.placeholder("C", &[16, 16], DataType::F32);
        f.compute(
            "s",
            &[k.clone(), i.clone(), j.clone()],
            c.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
            c.access(&[&i, &j]),
        );
        let an = NodeAnalysis::of(f.find_compute("s").unwrap());
        assert_eq!(an.reduction_dims, vec![0]);
        assert_eq!(an.carried_by_level, vec![Some(1), None, None]);
        assert_eq!(an.hint, Hint::KeepOrder);
        assert!(!an.has_misplaced_carried_dependence());
        assert_eq!(an.parallel_levels(), vec![1, 2]);
    }

    #[test]
    fn gemm_reduction_innermost_hints_interchange_outward() {
        // Paper Fig. 8: the inner loop k with tight dependences should be
        // swapped with the outer loop.
        let mut f = Function::new("gemm");
        let i = f.var("i", 0, 16);
        let j = f.var("j", 0, 16);
        let k = f.var("k", 0, 16);
        let a = f.placeholder("A", &[16, 16], DataType::F32);
        let b = f.placeholder("B", &[16, 16], DataType::F32);
        let c = f.placeholder("C", &[16, 16], DataType::F32);
        f.compute(
            "s",
            &[i.clone(), j.clone(), k.clone()],
            c.at(&[&i, &j]) + a.at(&[&i, &k]) * b.at(&[&k, &j]),
            c.access(&[&i, &j]),
        );
        let an = NodeAnalysis::of(f.find_compute("s").unwrap());
        assert_eq!(an.carried_by_level, vec![None, None, Some(1)]);
        assert!(an.has_misplaced_carried_dependence());
        match &an.hint {
            Hint::Interchange { carried, outer } => {
                assert_eq!(carried, "k");
                assert_eq!(outer, "i");
            }
            other => panic!("expected interchange hint, got {other:?}"),
        }
    }

    #[test]
    fn bicg_statements_have_asymmetric_hints() {
        // S1: s[j] += r[i]*A[i][j] -> carried at i (outer): keep.
        // S2: q[i] += A[i][j]*p[j] -> carried at j (inner): interchange.
        let mut f = Function::new("bicg");
        let i = f.var("i", 0, 16);
        let j = f.var("j", 0, 16);
        let a = f.placeholder("A", &[16, 16], DataType::F32);
        let p = f.placeholder("p", &[16], DataType::F32);
        let q = f.placeholder("q", &[16], DataType::F32);
        let r = f.placeholder("r", &[16], DataType::F32);
        let s = f.placeholder("s", &[16], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone()],
            s.at(&[&j]) + r.at(&[&i]) * a.at(&[&i, &j]),
            s.access(&[&j]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone()],
            q.at(&[&i]) + a.at(&[&i, &j]) * p.at(&[&j]),
            q.access(&[&i]),
        );
        let a1 = NodeAnalysis::of(f.find_compute("S1").unwrap());
        let a2 = NodeAnalysis::of(f.find_compute("S2").unwrap());
        assert_eq!(a1.hint, Hint::KeepOrder);
        assert_eq!(a1.carried_by_level, vec![Some(1), None]);
        assert!(!a1.has_misplaced_carried_dependence());
        match &a2.hint {
            Hint::Interchange { carried, outer } => {
                assert_eq!(carried, "j");
                assert_eq!(outer, "i");
            }
            other => panic!("expected interchange, got {other:?}"),
        }
        assert!(a2.has_misplaced_carried_dependence());
    }

    #[test]
    fn seidel_hints_skew() {
        let mut f = Function::new("seidel");
        let i = f.var("i", 1, 15);
        let j = f.var("j", 1, 15);
        let a = f.placeholder("A", &[16, 16], DataType::F32);
        let im1 = i.expr() - 1;
        let jm1 = j.expr() - 1;
        f.compute(
            "s",
            &[i.clone(), j.clone()],
            (a.at(&[im1.clone(), j.expr()]) + a.at(&[i.expr(), jm1.clone()]) + a.at(&[&i, &j]))
                / 3.0,
            a.access(&[&i, &j]),
        );
        let an = NodeAnalysis::of(f.find_compute("s").unwrap());
        assert_eq!(an.carried_by_level, vec![Some(1), Some(1)]);
        match &an.hint {
            Hint::Skew {
                outer,
                inner,
                factor,
            } => {
                assert_eq!(outer, "i");
                assert_eq!(inner, "j");
                assert_eq!(*factor, 1);
            }
            other => panic!("expected skew, got {other:?}"),
        }
    }

    #[test]
    fn jacobi_time_stencil_keeps_time_outermost() {
        // B[t][i] = f(B[t-1][i-1..i+1]): carried only at t, which is
        // already outermost — the FPGA-friendly shape.
        let mut f = Function::new("jacobi");
        let t = f.var("t", 1, 8);
        let i = f.var("i", 1, 15);
        let b = f.placeholder("B", &[9, 16], DataType::F32);
        let tm1 = t.expr() - 1;
        let im1 = i.expr() - 1;
        let ip1 = i.expr() + 1;
        f.compute(
            "s",
            &[t.clone(), i.clone()],
            (b.at(&[tm1.clone(), im1.clone()])
                + b.at(&[tm1.clone(), i.expr()])
                + b.at(&[tm1.clone(), ip1.clone()]))
                / 3.0,
            b.access(&[&t, &i]),
        );
        let an = NodeAnalysis::of(f.find_compute("s").unwrap());
        assert_eq!(an.carried_by_level[0], Some(1));
        assert_eq!(an.carried_by_level[1], None);
        assert_eq!(an.hint, Hint::KeepOrder);
        assert!(!an.has_misplaced_carried_dependence());
    }

    #[test]
    fn elementwise_is_fully_parallel() {
        let mut f = Function::new("scale");
        let i = f.var("i", 0, 16);
        let a = f.placeholder("A", &[16], DataType::F32);
        let b = f.placeholder("B", &[16], DataType::F32);
        f.compute(
            "s",
            std::slice::from_ref(&i),
            a.at(&[&i]) * 2.0,
            b.access(&[&i]),
        );
        let an = NodeAnalysis::of(f.find_compute("s").unwrap());
        assert!(!an.has_carried_dependence());
        assert_eq!(an.hint, Hint::KeepOrder);
        assert_eq!(an.parallel_levels(), vec![0]);
    }

    #[test]
    fn hint_display() {
        let h = Hint::Interchange {
            carried: "k".into(),
            outer: "i".into(),
        };
        assert!(h.to_string().contains("inner loop k with the outer loop i"));
        assert!(Hint::KeepOrder.to_string().contains("keep"));
    }
}
