//! Coarse-grained dependence graph construction and data-path collection
//! (Fig. 8①: load/store extraction, dependence reservation, graph
//! construction, DFS path collection).

use crate::analysis::NodeAnalysis;
use pom_dsl::Function;
use std::collections::BTreeSet;
use std::fmt;

/// A node: one compute (loop nest), with its fine-grained analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct DepNode {
    /// Index in the graph.
    pub index: usize,
    /// Compute name.
    pub name: String,
    /// Arrays loaded by the compute.
    pub loads: Vec<String>,
    /// Array stored by the compute.
    pub store: String,
    /// Fine-grained analysis results (Fig. 8③).
    pub analysis: NodeAnalysis,
}

/// A coarse-grained producer→consumer edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// Array through which data flows.
    pub array: String,
}

/// The dependence graph IR.
#[derive(Clone, Debug, PartialEq)]
pub struct DepGraph {
    nodes: Vec<DepNode>,
    edges: Vec<DepEdge>,
}

impl DepGraph {
    /// Builds the graph from a function: extracts loads/stores, reserves
    /// dependences in a map, creates edges, and analyzes each node.
    pub fn build(f: &Function) -> DepGraph {
        let mut nodes = Vec::new();
        for (index, c) in f.computes().iter().enumerate() {
            let loads: Vec<String> = {
                let mut seen = BTreeSet::new();
                c.loads()
                    .iter()
                    .filter(|a| seen.insert(a.array.clone()))
                    .map(|a| a.array.clone())
                    .collect()
            };
            nodes.push(DepNode {
                index,
                name: c.name().to_string(),
                loads,
                store: c.store().array.clone(),
                analysis: NodeAnalysis::of(c),
            });
        }
        // Dependence map: producer S_a (stores X) before consumer S_b
        // (loads X). WAW between stores to the same array also sequences.
        let mut edges = Vec::new();
        for a in 0..nodes.len() {
            for b in (a + 1)..nodes.len() {
                if nodes[b].loads.contains(&nodes[a].store) {
                    edges.push(DepEdge {
                        from: a,
                        to: b,
                        array: nodes[a].store.clone(),
                    });
                } else if nodes[b].store == nodes[a].store
                    || nodes[a].loads.contains(&nodes[b].store)
                {
                    // Output or anti dependence between nests.
                    edges.push(DepEdge {
                        from: a,
                        to: b,
                        array: nodes[b].store.clone(),
                    });
                }
            }
        }
        DepGraph { nodes, edges }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[DepNode] {
        &self.nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Node lookup by name.
    pub fn node(&self, name: &str) -> Option<&DepNode> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// The coarse-grained dependence map `map[a][b] == true` when `a`
    /// produces data consumed by `b` (Fig. 8①, step 2).
    pub fn dependence_map(&self) -> Vec<Vec<bool>> {
        let n = self.nodes.len();
        let mut m = vec![vec![false; n]; n];
        for e in &self.edges {
            m[e.from][e.to] = true;
        }
        m
    }

    /// Direct successors of a node.
    pub fn successors(&self, idx: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.from == idx)
            .map(|e| e.to)
            .collect()
    }

    /// Direct predecessors of a node.
    pub fn predecessors(&self, idx: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|e| e.to == idx)
            .map(|e| e.from)
            .collect()
    }

    /// Collects all data paths (source→sink) with the DFS traversal of
    /// Fig. 8① step 4. Isolated nodes form singleton paths.
    pub fn data_paths(&self) -> Vec<Vec<usize>> {
        let sources: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.predecessors(i).is_empty())
            .collect();
        let mut paths = Vec::new();
        for s in sources {
            let mut stack = vec![s];
            self.dfs_paths(&mut stack, &mut paths);
        }
        paths
    }

    fn dfs_paths(&self, stack: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        let cur = *stack.last().expect("non-empty stack");
        let succs = self.successors(cur);
        if succs.is_empty() {
            out.push(stack.clone());
            return;
        }
        for s in succs {
            if stack.contains(&s) {
                continue; // cycle guard (cannot occur with ordered edges)
            }
            stack.push(s);
            self.dfs_paths(stack, out);
            stack.pop();
        }
    }

    /// Names along a path, for display and reports.
    pub fn path_names(&self, path: &[usize]) -> Vec<&str> {
        path.iter().map(|&i| self.nodes[i].name.as_str()).collect()
    }

    /// Graphviz DOT rendering of the dependence graph: nodes labelled with
    /// their store array and carried-dependence summary, edges with the
    /// array they flow through.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph dependence_graph {\n  rankdir=TB;\n");
        for n in &self.nodes {
            let carried: Vec<String> = n
                .analysis
                .carried_by_level
                .iter()
                .map(|c| match c {
                    Some(d) => d.to_string(),
                    None => "-".into(),
                })
                .collect();
            let _ = writeln!(
                out,
                "  {} [shape=box, label=\"{}\\nstore {}\\ncarried [{}]\"];",
                n.name,
                n.name,
                n.store,
                carried.join(", ")
            );
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\"];",
                self.nodes[e.from].name, self.nodes[e.to].name, e.array
            );
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for DepGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dependence graph:")?;
        for n in &self.nodes {
            writeln!(
                f,
                "  {}: loads {{{}}} stores {} — {}",
                n.name,
                n.loads.join(", "),
                n.store,
                n.analysis.hint
            )?;
        }
        for e in &self.edges {
            writeln!(
                f,
                "  {} -> {} (via {})",
                self.nodes[e.from].name, self.nodes[e.to].name, e.array
            )?;
        }
        for p in self.data_paths() {
            writeln!(f, "  path: {}", self.path_names(&p).join("-"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{DataType, Function};

    /// The paper's Fig. 8 example:
    /// S1: A = A*beta; S2: B = A+B; S3: C = A+C; S4: D = B*C.
    fn fig8_function() -> Function {
        let mut f = Function::new("fig8");
        let i = f.var("i", 0, 8);
        let j = f.var("j", 0, 8);
        let k = f.var("k", 0, 8);
        let a = f.placeholder("A", &[8, 8], DataType::F32);
        let b = f.placeholder("B", &[8, 8], DataType::F32);
        let c = f.placeholder("C", &[8, 8], DataType::F32);
        let d = f.placeholder("D", &[8, 8], DataType::F32);
        f.compute(
            "S1",
            &[i.clone(), j.clone(), k.clone()],
            a.at(&[&i, &j]) * 0.5,
            a.access(&[&i, &j]),
        );
        f.compute(
            "S2",
            &[i.clone(), j.clone(), k.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &j]),
            b.access(&[&i, &j]),
        );
        f.compute(
            "S3",
            &[i.clone(), j.clone(), k.clone()],
            a.at(&[&i, &j]) + c.at(&[&i, &j]),
            c.access(&[&i, &j]),
        );
        f.compute(
            "S4",
            &[i.clone(), j.clone(), k.clone()],
            d.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            d.access(&[&i, &j]),
        );
        f
    }

    #[test]
    fn fig8_loads_and_stores() {
        let g = DepGraph::build(&fig8_function());
        let s2 = g.node("S2").unwrap();
        assert_eq!(s2.loads, vec!["A".to_string(), "B".to_string()]);
        assert_eq!(s2.store, "B");
        let s4 = g.node("S4").unwrap();
        assert_eq!(
            s4.loads,
            vec!["D".to_string(), "B".to_string(), "C".to_string()]
        );
        assert_eq!(s4.store, "D");
    }

    #[test]
    fn fig8_dependence_map() {
        let g = DepGraph::build(&fig8_function());
        let m = g.dependence_map();
        // Paper: map[S1][S2], map[S1][S3], map[S2][S4], map[S3][S4].
        assert!(m[0][1]);
        assert!(m[0][2]);
        assert!(m[1][3]);
        assert!(m[2][3]);
        assert!(!m[1][2]);
        assert!(!m[0][3]);
    }

    #[test]
    fn fig8_data_paths() {
        let g = DepGraph::build(&fig8_function());
        let paths: Vec<Vec<&str>> = g.data_paths().iter().map(|p| g.path_names(p)).collect();
        // Paper: Path 1 = S1-S2-S4, Path 2 = S1-S3-S4.
        assert!(paths.contains(&vec!["S1", "S2", "S4"]));
        assert!(paths.contains(&vec!["S1", "S3", "S4"]));
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn fig8_s4_fine_grained() {
        // Paper Fig. 8③: S4's distance vector is (0, 0, 1): loop-carried
        // in k, with reduction dimension k.
        let g = DepGraph::build(&fig8_function());
        let s4 = g.node("S4").unwrap();
        assert_eq!(s4.analysis.reduction_dims, vec![2]);
        assert_eq!(s4.analysis.carried_by_level, vec![None, None, Some(1)]);
    }

    #[test]
    fn independent_nests_have_no_edges() {
        let mut f = Function::new("indep");
        let i = f.var("i", 0, 4);
        let a = f.placeholder("A", &[4], DataType::F32);
        let b = f.placeholder("B", &[4], DataType::F32);
        let c = f.placeholder("C", &[4], DataType::F32);
        let d = f.placeholder("D", &[4], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            a.at(&[&i]) * 2.0,
            b.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            c.at(&[&i]) * 3.0,
            d.access(&[&i]),
        );
        let g = DepGraph::build(&f);
        assert!(g.edges().is_empty());
        assert_eq!(g.data_paths().len(), 2);
    }

    #[test]
    fn anti_dependence_between_nests_sequences() {
        // S1 loads X, S2 stores X: S1 must run before S2.
        let mut f = Function::new("anti");
        let i = f.var("i", 0, 4);
        let x = f.placeholder("X", &[4], DataType::F32);
        let y = f.placeholder("Y", &[4], DataType::F32);
        f.compute(
            "S1",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f.compute(
            "S2",
            std::slice::from_ref(&i),
            y.at(&[&i]) + 1.0,
            x.access(&[&i]),
        );
        let g = DepGraph::build(&f);
        // S1 -> S2 via flow on Y (and anti on X collapses to one edge since
        // the flow edge is found first).
        assert!(g.dependence_map()[0][1]);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let g = DepGraph::build(&fig8_function());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"), "{dot}");
        for n in ["S1", "S2", "S3", "S4"] {
            assert!(dot.contains(&format!("{n} [shape=box")), "{dot}");
        }
        assert!(dot.contains("S1 -> S2"), "{dot}");
        assert!(dot.contains("S2 -> S4"), "{dot}");
    }

    #[test]
    fn display_includes_paths() {
        let g = DepGraph::build(&fig8_function());
        let s = g.to_string();
        assert!(s.contains("path: S1-S2-S4"), "got: {s}");
    }
}
