//! # pom-graph — the dependence graph IR (layer 1, Section V-A)
//!
//! The first of POM's three IR layers. From a [`pom_dsl::Function`] it
//! builds a graph whose nodes are loop nests (computes) and whose edges
//! are coarse-grained producer→consumer relations extracted from load and
//! store operations (Fig. 8①②). On each node it runs the *fine-grained*
//! analysis (Fig. 8③): reduction dimensions, loop-carried dependences with
//! distance/direction vectors, and a transformation hint consumed by the
//! DSE engine's first stage (interchange for a movable carried level,
//! skewing when every level is carried).
//!
//! ```
//! use pom_dsl::{DataType, Function};
//! use pom_graph::DepGraph;
//!
//! let mut f = Function::new("ex");
//! let i = f.var("i", 0, 16);
//! let j = f.var("j", 0, 16);
//! let a = f.placeholder("A", &[16, 16], DataType::F32);
//! let q = f.placeholder("q", &[16], DataType::F32);
//! f.compute("S1", &[i.clone(), j.clone()],
//!           q.at(&[&i]) + a.at(&[&i, &j]), q.access(&[&i]));
//! let g = DepGraph::build(&f);
//! assert_eq!(g.nodes().len(), 1);
//! // q[i] is re-read along j: a tight carried dependence at level 1.
//! assert!(g.node("S1").unwrap().analysis.has_carried_dependence());
//! ```

pub mod analysis;
pub mod graph;

pub use analysis::{Hint, NodeAnalysis};
pub use graph::{DepEdge, DepGraph, DepNode};
