//! Synthesizable HLS C emission from the annotated affine dialect.
//!
//! Every HLS attribute becomes its `#pragma HLS` spelling, matching the
//! equivalent code the paper shows in Fig. 6.

use pom_dsl::{BinOp, Expr, UnOp};
use pom_ir::{AffineFunc, AffineOp};
use pom_poly::{Bound, ConstraintKind, LinearExpr};
use std::fmt::Write as _;

/// Emits HLS C for a function.
pub fn emit_hls_c(func: &AffineFunc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#include <math.h>");
    let _ = writeln!(out, "#include <stdint.h>");
    let _ = writeln!(out);
    // Top-level function signature: arrays as reference parameters.
    let params: Vec<String> = func
        .memrefs
        .iter()
        .map(|m| {
            let dims: Vec<String> = m.shape.iter().map(|d| format!("[{d}]")).collect();
            format!("{} {}{}", m.dtype.c_name(), m.name, dims.join(""))
        })
        .collect();
    let _ = writeln!(out, "void {}({}) {{", func.name, params.join(", "));
    for m in &func.memrefs {
        if let Some(p) = &m.partition {
            for (dim, f) in p.factors.iter().enumerate() {
                if *f > 1 {
                    let _ = writeln!(
                        out,
                        "#pragma HLS array_partition variable={} {} factor={} dim={}",
                        m.name,
                        p.style.pragma_name(),
                        f,
                        dim + 1
                    );
                }
            }
        }
    }
    emit_ops(&func.body, &mut out, 1);
    let _ = writeln!(out, "}}");
    out
}

/// Lines of code of the emitted HLS C (non-empty lines) — the Fig. 15
/// metric for generated code.
pub fn hls_c_loc(func: &AffineFunc) -> usize {
    emit_hls_c(func)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .count()
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_ops(ops: &[AffineOp], out: &mut String, depth: usize) {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "for (int {iv} = {lb}; {iv} <= {ub}; ++{iv}) {{",
                    iv = l.iv,
                    lb = bounds_c(&l.lbs, true),
                    ub = bounds_c(&l.ubs, false)
                );
                if let Some(ii) = l.attrs.pipeline_ii {
                    indent(out, depth);
                    let _ = writeln!(out, "#pragma HLS pipeline II={ii}");
                }
                if let Some(u) = l.attrs.unroll_factor {
                    indent(out, depth);
                    let _ = writeln!(out, "#pragma HLS unroll factor={u}");
                }
                if l.attrs.dependence_free {
                    indent(out, depth);
                    let _ = writeln!(out, "#pragma HLS dependence variable=auto type=inter false");
                }
                emit_ops(&l.body, out, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
            AffineOp::If(i) => {
                let conds: Vec<String> = i
                    .conds
                    .iter()
                    .map(|c| match c.kind {
                        ConstraintKind::Eq => format!("({}) == 0", expr_c(&c.expr)),
                        ConstraintKind::GeZero => format!("({}) >= 0", expr_c(&c.expr)),
                    })
                    .collect();
                indent(out, depth);
                let _ = writeln!(out, "if ({}) {{", conds.join(" && "));
                emit_ops(&i.body, out, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
            AffineOp::Store(s) => {
                indent(out, depth);
                let idx: Vec<String> = s
                    .dest
                    .indices
                    .iter()
                    .map(|e| format!("[{}]", expr_c(e)))
                    .collect();
                let _ = writeln!(
                    out,
                    "{}{} = {};",
                    s.dest.array,
                    idx.join(""),
                    value_c(&s.value)
                );
            }
        }
    }
}

fn bounds_c(bs: &[Bound], lower: bool) -> String {
    let one = |b: &Bound| -> String {
        if b.div == 1 {
            expr_c(&b.expr)
        } else if lower {
            // ceil(e / d) for integers with d > 0: floor((e + d - 1) / d);
            // correct for negative e too when written with floor division,
            // but loop bounds here are non-negative by construction.
            format!("(({} + {}) / {})", expr_c(&b.expr), b.div - 1, b.div)
        } else {
            format!("(({}) / {})", expr_c(&b.expr), b.div)
        }
    };
    match bs.len() {
        0 => "0".to_string(),
        1 => one(&bs[0]),
        _ => {
            let parts: Vec<String> = bs.iter().map(one).collect();
            let f = if lower { "max" } else { "min" };
            let mut it = parts.into_iter();
            let first = it.next().expect("non-empty");
            it.fold(first, |acc, p| format!("{f}({acc}, {p})"))
        }
    }
}

fn expr_c(e: &LinearExpr) -> String {
    e.to_string()
}

fn value_c(e: &Expr) -> String {
    match e {
        Expr::Load(a) => {
            let idx: Vec<String> = a
                .indices
                .iter()
                .map(|x| format!("[{}]", expr_c(x)))
                .collect();
            format!("{}{}", a.array, idx.join(""))
        }
        Expr::Affine(x) => format!("({})", expr_c(x)),
        Expr::Const(v) => {
            if v.fract() == 0.0 {
                format!("{v}.0f")
            } else {
                format!("{v}f")
            }
        }
        Expr::Binary(op, l, r) => {
            if op.is_call() {
                format!("{}({}, {})", op.c_spelling(), value_c(l), value_c(r))
            } else {
                format!("({} {} {})", value_c(l), op.c_spelling(), value_c(r))
            }
        }
        Expr::Unary(UnOp::Neg, x) => format!("(-{})", value_c(x)),
    }
}

/// C spelling helper exposed for tests.
pub fn binop_c(op: BinOp) -> &'static str {
    op.c_spelling()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{DataType, PartitionStyle};
    use pom_ir::{ForOp, HlsAttrs, MemRefDecl, PartitionInfo, StoreOp};
    use pom_poly::AccessFn;

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn fig6_like_func() -> AffineFunc {
        let mut f = AffineFunc::new("gemm");
        let mut a = MemRefDecl::new("A", &[32, 32], DataType::F32);
        a.partition = Some(PartitionInfo {
            factors: vec![4, 4],
            style: PartitionStyle::Cyclic,
        });
        f.memrefs.push(a);
        let store = StoreOp {
            stmt: "s".into(),
            dest: AccessFn::new(
                "A",
                vec![
                    LinearExpr::term("i0", 4) + LinearExpr::var("i1"),
                    LinearExpr::term("j0", 4) + LinearExpr::var("j1"),
                ],
            ),
            value: Expr::Load(AccessFn::new(
                "A",
                vec![
                    LinearExpr::term("i0", 4) + LinearExpr::var("i1"),
                    LinearExpr::term("j0", 4) + LinearExpr::var("j1"),
                ],
            )) * 2.0,
        };
        let j1 = ForOp {
            extra: Vec::new(),
            iv: "j1".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs {
                unroll_factor: Some(4),
                ..Default::default()
            },
            body: vec![AffineOp::Store(store)],
        };
        let i1 = ForOp {
            extra: Vec::new(),
            iv: "i1".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs {
                unroll_factor: Some(4),
                ..Default::default()
            },
            body: vec![AffineOp::For(j1)],
        };
        let j0 = ForOp {
            extra: Vec::new(),
            iv: "j0".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::For(i1)],
        };
        let i0 = ForOp {
            extra: Vec::new(),
            iv: "i0".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(j0)],
        };
        f.body.push(AffineOp::For(i0));
        f
    }

    #[test]
    fn emits_pragmas_like_fig6() {
        let c = emit_hls_c(&fig6_like_func());
        assert!(c.contains("#pragma HLS array_partition variable=A cyclic factor=4 dim=1"));
        assert!(c.contains("#pragma HLS array_partition variable=A cyclic factor=4 dim=2"));
        assert!(c.contains("#pragma HLS pipeline II=1"));
        assert!(c.contains("#pragma HLS unroll factor=4"));
        assert!(c.contains("for (int i0 = 0; i0 <= 7; ++i0)"));
        assert!(c.contains("A[4*i0 + i1][4*j0 + j1]"));
    }

    #[test]
    fn emits_function_signature() {
        let c = emit_hls_c(&fig6_like_func());
        assert!(c.contains("void gemm(float A[32][32])"), "got:\n{c}");
    }

    #[test]
    fn loc_counts_nonempty_lines() {
        let f = fig6_like_func();
        let loc = hls_c_loc(&f);
        assert!(loc >= 15, "expected substantial C, got {loc} lines");
    }

    #[test]
    fn max_min_bounds() {
        let lbs = vec![cb(0), Bound::new(LinearExpr::var("t") - 3, 1)];
        let s = bounds_c(&lbs, true);
        assert_eq!(s, "max(0, t - 3)");
        let ubs = vec![cb(9), Bound::new(LinearExpr::var("t"), 2)];
        let s = bounds_c(&ubs, false);
        assert_eq!(s, "min(9, ((t) / 2))");
    }

    #[test]
    fn constants_render_as_floats() {
        assert_eq!(value_c(&Expr::Const(3.0)), "3.0f");
        assert_eq!(value_c(&Expr::Const(0.5)), "0.5f");
    }
}
