//! Per-operation cost tables for the QoR model.
//!
//! Values approximate Vitis HLS characterization of 32-bit floating-point
//! operators on 7-series fabric at a 10 ns clock; the DSE only needs their
//! *relative* magnitudes to reproduce the paper's comparisons.

use crate::device::ResourceUsage;
use pom_dsl::expr::OpCounts;

/// Latency and resource cost of one hardware operator instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCost {
    /// Latency in cycles.
    pub latency: u64,
    /// Resources of one instance.
    pub resources: ResourceUsage,
}

impl OpCost {
    /// Creates a cost entry.
    pub const fn new(latency: u64, dsp: u64, ff: u64, lut: u64) -> Self {
        OpCost {
            latency,
            resources: ResourceUsage {
                dsp,
                ff,
                lut,
                bram18k: 0,
            },
        }
    }
}

/// The operator cost model.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Floating add/sub.
    pub fadd: OpCost,
    /// Floating multiply.
    pub fmul: OpCost,
    /// Floating divide.
    pub fdiv: OpCost,
    /// Floating compare (max/min).
    pub fcmp: OpCost,
    /// BRAM read latency (cycles).
    pub load_latency: u64,
    /// BRAM write latency (cycles).
    pub store_latency: u64,
    /// Read/write ports per BRAM bank (true dual-port).
    pub ports_per_bank: u64,
    /// Loop control overhead in cycles per non-pipelined iteration.
    pub loop_overhead: u64,
    /// Control FF/LUT per loop in the design.
    pub loop_control: ResourceUsage,
    /// Power proxy coefficients: `base + c_dsp*DSP + c_ff*FF + c_lut*LUT`.
    pub power_base: f64,
    /// Watts per DSP.
    pub power_per_dsp: f64,
    /// Watts per FF.
    pub power_per_ff: f64,
    /// Watts per LUT.
    pub power_per_lut: f64,
}

impl CostModel {
    /// Vitis-flavoured defaults for 32-bit float at 100 MHz.
    pub fn vitis_f32() -> Self {
        CostModel {
            fadd: OpCost::new(4, 2, 205, 390),
            fmul: OpCost::new(3, 3, 143, 321),
            fdiv: OpCost::new(14, 0, 761, 994),
            fcmp: OpCost::new(1, 0, 66, 239),
            load_latency: 2,
            store_latency: 1,
            ports_per_bank: 2,
            loop_overhead: 2,
            loop_control: ResourceUsage {
                dsp: 0,
                ff: 64,
                lut: 96,
                bram18k: 0,
            },
            power_base: 0.04,
            power_per_dsp: 1.5e-3,
            power_per_ff: 2.0e-6,
            power_per_lut: 4.0e-6,
        }
    }

    /// Critical-path latency of a statement body given its operator
    /// counts are chained as `depth` levels plus one load and one store.
    /// (A coarse chain model: the expression-tree depth times the mean
    /// operator latency; exact chaining is computed in `estimate` from the
    /// expression itself.)
    pub fn op_latency(&self, op: pom_dsl::BinOp) -> u64 {
        match op {
            pom_dsl::BinOp::Add | pom_dsl::BinOp::Sub => self.fadd.latency,
            pom_dsl::BinOp::Mul => self.fmul.latency,
            pom_dsl::BinOp::Div => self.fdiv.latency,
            pom_dsl::BinOp::Max | pom_dsl::BinOp::Min => self.fcmp.latency,
        }
    }

    /// Resources of the operator instances for one copy of a statement
    /// body with the given operator counts.
    pub fn body_resources(&self, c: &OpCounts) -> ResourceUsage {
        let mut r = ResourceUsage::zero();
        for _ in 0..c.add + c.sub {
            r = r.plus(&self.fadd.resources);
        }
        for _ in 0..c.mul {
            r = r.plus(&self.fmul.resources);
        }
        for _ in 0..c.div {
            r = r.plus(&self.fdiv.resources);
        }
        for _ in 0..c.cmp {
            r = r.plus(&self.fcmp.resources);
        }
        r
    }

    /// Loop-control resources for a counter narrowed to `bits` bits.
    ///
    /// The stock [`CostModel::loop_control`] entry prices a full 32-bit
    /// counter/comparator pair; a bitwidth-narrowing hint from
    /// `pom-verify` (`narrowing_hints`) proves a smaller width, and the
    /// counter FF/LUT shrink proportionally. Opt-in — the estimator
    /// keeps pricing `loop_control` unless a caller substitutes this —
    /// so default QoR figures are unchanged.
    pub fn loop_control_for_bits(&self, bits: u32) -> ResourceUsage {
        let bits = u64::from(bits.clamp(1, 32));
        ResourceUsage {
            dsp: self.loop_control.dsp,
            ff: (self.loop_control.ff * bits).div_ceil(32),
            lut: (self.loop_control.lut * bits).div_ceil(32),
            bram18k: self.loop_control.bram18k,
        }
    }

    /// The power proxy.
    pub fn power(&self, r: &ResourceUsage) -> f64 {
        self.power_base
            + self.power_per_dsp * r.dsp as f64
            + self.power_per_ff * r.ff as f64
            + self.power_per_lut * r.lut as f64
    }
}

impl CostModel {
    /// A cost model for a given element type — the backbone of the DSL's
    /// data-type customization (Table I): integers are cheap single-cycle
    /// adders and DSP multipliers; doubles roughly double every float
    /// cost.
    pub fn for_dtype(dtype: pom_dsl::DataType) -> Self {
        use pom_dsl::DataType as D;
        let mut m = Self::vitis_f32();
        match dtype {
            D::F32 => {}
            D::F64 => {
                m.fadd = OpCost::new(7, 3, 445, 790);
                m.fmul = OpCost::new(6, 11, 299, 654);
                m.fdiv = OpCost::new(30, 0, 1710, 3291);
                m.fcmp = OpCost::new(2, 0, 107, 301);
            }
            D::I32 | D::U32 => {
                m.fadd = OpCost::new(1, 0, 32, 39);
                m.fmul = OpCost::new(3, 3, 90, 20);
                m.fdiv = OpCost::new(18, 0, 450, 520);
                m.fcmp = OpCost::new(1, 0, 0, 39);
            }
            D::I16 | D::U16 => {
                m.fadd = OpCost::new(1, 0, 16, 20);
                m.fmul = OpCost::new(1, 1, 40, 10);
                m.fdiv = OpCost::new(10, 0, 230, 270);
                m.fcmp = OpCost::new(1, 0, 0, 20);
            }
            D::I8 | D::U8 => {
                m.fadd = OpCost::new(1, 0, 8, 11);
                m.fmul = OpCost::new(1, 0, 24, 40);
                m.fdiv = OpCost::new(6, 0, 120, 140);
                m.fcmp = OpCost::new(1, 0, 0, 11);
            }
            D::I64 | D::U64 => {
                m.fadd = OpCost::new(1, 0, 64, 78);
                m.fmul = OpCost::new(5, 10, 190, 60);
                m.fdiv = OpCost::new(36, 0, 900, 1040);
                m.fcmp = OpCost::new(1, 0, 0, 78);
            }
        }
        m
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::vitis_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_vitis_f32() {
        let m = CostModel::default();
        assert_eq!(m.fadd.latency, 4);
        assert_eq!(m.fmul.resources.dsp, 3);
        assert_eq!(m.ports_per_bank, 2);
    }

    #[test]
    fn body_resources_accumulate() {
        let m = CostModel::vitis_f32();
        let c = OpCounts {
            add: 1,
            mul: 1,
            ..Default::default()
        };
        let r = m.body_resources(&c);
        assert_eq!(r.dsp, 2 + 3);
        assert_eq!(r.ff, 205 + 143);
    }

    #[test]
    fn loop_control_scales_with_counter_width() {
        let m = CostModel::vitis_f32();
        // Full width reproduces the stock table entry.
        assert_eq!(m.loop_control_for_bits(32), m.loop_control);
        // A 6-bit counter (trip 64 loop) needs ~1/5 of the control fabric.
        let narrow = m.loop_control_for_bits(6);
        assert_eq!(narrow.ff, (64u64 * 6).div_ceil(32));
        assert_eq!(narrow.lut, (96u64 * 6).div_ceil(32));
        // Degenerate widths stay within [1, 32] bits.
        assert_eq!(m.loop_control_for_bits(0), m.loop_control_for_bits(1));
        assert_eq!(m.loop_control_for_bits(99), m.loop_control);
    }

    #[test]
    fn power_scales_with_resources() {
        let m = CostModel::vitis_f32();
        let small = m.power(&ResourceUsage::zero());
        let big = m.power(&ResourceUsage {
            dsp: 166,
            ff: 23_067,
            lut: 30_966,
            bram18k: 0,
        });
        assert!(small < 0.1);
        // POM GEMM in Table III reports 0.459 W.
        assert!((big - 0.459).abs() < 0.1, "power proxy {big}");
    }

    #[test]
    fn op_latencies() {
        let m = CostModel::vitis_f32();
        assert_eq!(m.op_latency(pom_dsl::BinOp::Add), 4);
        assert_eq!(m.op_latency(pom_dsl::BinOp::Div), 14);
        assert_eq!(m.op_latency(pom_dsl::BinOp::Max), 1);
    }

    #[test]
    fn dtype_cost_ordering() {
        use pom_dsl::{BinOp, DataType};
        let i8_ = CostModel::for_dtype(DataType::I8);
        let i16 = CostModel::for_dtype(DataType::I16);
        let f32 = CostModel::for_dtype(DataType::F32);
        let f64 = CostModel::for_dtype(DataType::F64);
        // Narrow integers are cheapest, doubles the most expensive.
        assert!(i8_.op_latency(BinOp::Add) <= i16.op_latency(BinOp::Add));
        assert!(i16.op_latency(BinOp::Add) < f32.op_latency(BinOp::Add));
        assert!(f32.op_latency(BinOp::Add) < f64.op_latency(BinOp::Add));
        assert!(i16.fmul.resources.dsp < f64.fmul.resources.dsp);
        assert_eq!(
            CostModel::for_dtype(DataType::F32).fadd,
            CostModel::vitis_f32().fadd
        );
    }
}
