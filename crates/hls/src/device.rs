//! FPGA device specifications and resource accounting.

use std::fmt;

/// Resources available on (or consumed from) an FPGA device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// DSP48 slices.
    pub dsp: u64,
    /// Flip-flops.
    pub ff: u64,
    /// Look-up tables.
    pub lut: u64,
    /// 18Kb block-RAM units.
    pub bram18k: u64,
}

impl ResourceUsage {
    /// Zero usage.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Element-wise sum (spatial composition: both circuits exist).
    pub fn plus(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp + other.dsp,
            ff: self.ff + other.ff,
            lut: self.lut + other.lut,
            bram18k: self.bram18k + other.bram18k,
        }
    }

    /// Element-wise max (temporal composition with resource reuse: the
    /// circuits run at different times and share hardware).
    pub fn max(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp.max(other.dsp),
            ff: self.ff.max(other.ff),
            lut: self.lut.max(other.lut),
            bram18k: self.bram18k.max(other.bram18k),
        }
    }

    /// Multiplies compute resources by a replication factor (unrolling).
    pub fn scaled(&self, factor: u64) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp * factor,
            ff: self.ff * factor,
            lut: self.lut * factor,
            bram18k: self.bram18k,
        }
    }

    /// True when every figure is within `other`'s — the equal-envelope
    /// comparison of the dataflow DSE refinement, which may only trade
    /// resources between stages, never grow the winner's total.
    pub fn within(&self, other: &ResourceUsage) -> bool {
        self.dsp <= other.dsp
            && self.ff <= other.ff
            && self.lut <= other.lut
            && self.bram18k <= other.bram18k
    }

    /// True when usage fits within `device` (BRAM included).
    pub fn fits(&self, device: &DeviceSpec) -> bool {
        self.dsp <= device.dsp
            && self.ff <= device.ff
            && self.lut <= device.lut
            && self.bram18k <= device.bram18k
    }

    /// Utilization percentages `(dsp, ff, lut, bram)` against a device.
    pub fn utilization(&self, device: &DeviceSpec) -> (f64, f64, f64, f64) {
        (
            100.0 * self.dsp as f64 / device.dsp as f64,
            100.0 * self.ff as f64 / device.ff as f64,
            100.0 * self.lut as f64 / device.lut as f64,
            100.0 * self.bram18k as f64 / device.bram18k as f64,
        )
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP={} FF={} LUT={} BRAM18K={}",
            self.dsp, self.ff, self.lut, self.bram18k
        )
    }
}

/// An FPGA device envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Device name.
    pub name: String,
    /// DSP48 slices.
    pub dsp: u64,
    /// Flip-flops.
    pub ff: u64,
    /// Look-up tables.
    pub lut: u64,
    /// 18Kb BRAM units.
    pub bram18k: u64,
    /// Target clock period in nanoseconds.
    pub clock_ns: f64,
}

impl DeviceSpec {
    /// The paper's target: Xilinx XC7Z020 (220 DSPs, 53,200 LUTs, 106,400
    /// FFs, 4.9 Mb of memory) at a 10 ns target clock (100 MHz).
    pub fn xc7z020() -> Self {
        DeviceSpec {
            name: "xc7z020".into(),
            dsp: 220,
            ff: 106_400,
            lut: 53_200,
            bram18k: 280, // 280 x 18Kb = 5,040 Kb ≈ 4.9 Mb
            clock_ns: 10.0,
        }
    }

    /// A copy of the device scaled to a percentage of its resources —
    /// used by the resource-constraint sweep of Fig. 11.
    pub fn scaled_to(&self, percent: u64) -> DeviceSpec {
        DeviceSpec {
            name: format!("{}@{percent}%", self.name),
            dsp: self.dsp * percent / 100,
            ff: self.ff * percent / 100,
            lut: self.lut * percent / 100,
            bram18k: self.bram18k * percent / 100,
            clock_ns: self.clock_ns,
        }
    }

    /// Frequency in MHz.
    pub fn freq_mhz(&self) -> f64 {
        1000.0 / self.clock_ns
    }
}

impl fmt::Display for DeviceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (DSP {}, FF {}, LUT {}, BRAM18K {}, {:.0} MHz)",
            self.name,
            self.dsp,
            self.ff,
            self.lut,
            self.bram18k,
            self.freq_mhz()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xc7z020_matches_paper() {
        let d = DeviceSpec::xc7z020();
        assert_eq!(d.dsp, 220);
        assert_eq!(d.lut, 53_200);
        assert_eq!(d.ff, 106_400);
        assert!((d.freq_mhz() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn composition_semantics() {
        let a = ResourceUsage {
            dsp: 10,
            ff: 100,
            lut: 200,
            bram18k: 2,
        };
        let b = ResourceUsage {
            dsp: 4,
            ff: 300,
            lut: 100,
            bram18k: 1,
        };
        let sum = a.plus(&b);
        assert_eq!((sum.dsp, sum.ff, sum.lut, sum.bram18k), (14, 400, 300, 3));
        let mx = a.max(&b);
        assert_eq!((mx.dsp, mx.ff, mx.lut, mx.bram18k), (10, 300, 200, 2));
    }

    #[test]
    fn scaling_replicates_compute_not_memory() {
        let a = ResourceUsage {
            dsp: 3,
            ff: 10,
            lut: 20,
            bram18k: 5,
        };
        let s = a.scaled(4);
        assert_eq!((s.dsp, s.ff, s.lut), (12, 40, 80));
        assert_eq!(s.bram18k, 5, "memory is not replicated by unrolling");
    }

    #[test]
    fn fits_and_utilization() {
        let d = DeviceSpec::xc7z020();
        let u = ResourceUsage {
            dsp: 220,
            ff: 0,
            lut: 0,
            bram18k: 0,
        };
        assert!(u.fits(&d));
        let over = ResourceUsage {
            dsp: 221,
            ..ResourceUsage::zero()
        };
        assert!(!over.fits(&d));
        let (dsp_pct, _, _, _) = u.utilization(&d);
        assert!((dsp_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn constraint_scaling() {
        let d = DeviceSpec::xc7z020().scaled_to(50);
        assert_eq!(d.dsp, 110);
        assert_eq!(d.lut, 26_600);
    }
}
