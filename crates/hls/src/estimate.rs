//! The analytical QoR estimator — the paper's in-house performance model
//! (Section VI-B cites the ScaleHLS/COMBA model \[35\]\[38\]).
//!
//! Core equations:
//!
//! * Pipelined loop: `II = max(RecMII, ResMII, 1)` with
//!   `RecMII = ceil(chain_latency / dependence_distance)` over dependences
//!   carried at the pipelined level, and `ResMII` from memory-port
//!   pressure `ceil(accesses / (banks × ports))` per array;
//!   `latency = (trip - 1) * II + depth`.
//! * Loops inside a pipelined loop are fully unrolled (Vitis semantics);
//!   inner carried dependences serialize into the pipeline depth.
//! * Sequential composition sums latencies; resources compose by `max`
//!   under resource *reuse* (POM's temporal sharing) or by `+` under
//!   *dataflow* (ScaleHLS's DNN mapping, Fig. 13).

use crate::cost::CostModel;
use crate::device::ResourceUsage;
use pom_dsl::expr::OpCounts;
use pom_dsl::Expr;
use pom_ir::{AffineFunc, AffineOp, ForOp};
use std::collections::HashMap;

/// A loop-carried dependence at some loop, as seen by the estimator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CarriedDep {
    /// The array the dependence flows through.
    pub array: String,
    /// Minimal carried distance (iterations).
    pub distance: u64,
    /// Latency of the operation chain that must complete between the
    /// dependent iterations.
    pub chain_latency: u64,
}

/// Per-loop dependence summary keyed by induction-variable name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DepSummary {
    carried: HashMap<String, CarriedDep>,
}

impl DepSummary {
    /// No known dependences.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a carried dependence at loop `iv`, keeping the most
    /// constraining one (max `chain/distance`).
    pub fn insert(&mut self, iv: impl Into<String>, dep: CarriedDep) {
        let iv = iv.into();
        match self.carried.get(&iv) {
            Some(cur) if cur.chain_latency * dep.distance >= dep.chain_latency * cur.distance => {}
            _ => {
                self.carried.insert(iv, dep);
            }
        }
    }

    /// The dependence carried at loop `iv`, if any.
    pub fn carried_at(&self, iv: &str) -> Option<&CarriedDep> {
        self.carried.get(iv)
    }

    /// The names of all loops that carry a dependence.
    pub fn loops(&self) -> impl Iterator<Item = &str> {
        self.carried.keys().map(String::as_str)
    }
}

/// Latency of the operation chain from a load of `array` to the statement
/// result — the recurrence chain for a dependence flowing through
/// `array`. `None` when the expression never loads `array`.
pub fn dep_chain_latency(expr: &Expr, array: &str, model: &CostModel) -> Option<u64> {
    match expr {
        Expr::Load(a) => (a.array == array).then_some(0),
        Expr::Affine(_) | Expr::Const(_) => None,
        Expr::Binary(op, l, r) => {
            let lat = model.op_latency(*op);
            match (
                dep_chain_latency(l, array, model),
                dep_chain_latency(r, array, model),
            ) {
                (Some(a), Some(b)) => Some(a.max(b) + lat),
                (Some(a), None) | (None, Some(a)) => Some(a + lat),
                (None, None) => None,
            }
        }
        Expr::Unary(_, e) => dep_chain_latency(e, array, model).map(|c| c + model.fadd.latency),
    }
}

/// Critical-path latency of a statement body expression.
pub fn expr_latency(expr: &Expr, model: &CostModel) -> u64 {
    match expr {
        Expr::Load(_) => model.load_latency,
        Expr::Affine(_) | Expr::Const(_) => 0,
        Expr::Binary(op, l, r) => {
            model.op_latency(*op) + expr_latency(l, model).max(expr_latency(r, model))
        }
        Expr::Unary(_, e) => model.fadd.latency + expr_latency(e, model),
    }
}

/// How resources compose across sequentially executed loop nests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sharing {
    /// Temporal reuse: nests share hardware (`max`) — POM's policy.
    #[default]
    Reuse,
    /// Dataflow: every nest gets its own hardware (`+`) — ScaleHLS's DNN
    /// mapping.
    Dataflow,
}

/// Per-pipelined-loop results.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopQoR {
    /// Induction variable.
    pub iv: String,
    /// Achieved initiation interval — the effective issue-to-issue
    /// distance, including any per-iteration port slide.
    pub achieved_ii: u64,
    /// Per-iteration issue slide from overloaded memory banks (part of
    /// `achieved_ii`). No declared II absorbs it, so the DSE retarget
    /// excludes it; only repartitioning the offending array removes it.
    pub port_slide: u64,
    /// Trip count of the pipelined loop.
    pub trip: u64,
    /// Pipeline depth (cycles).
    pub depth: u64,
    /// Unrolled copies executing per pipeline iteration.
    pub unrolled_copies: u64,
    /// Statements stored inside the loop body. Induction-variable names
    /// repeat across sibling nests (every stage of a fused image pipeline
    /// pipelines an `i`), so per-loop consumers key on these, not on `iv`.
    pub stmts: Vec<String>,
}

/// Quality-of-result estimate for a function.
#[derive(Clone, Debug, PartialEq)]
pub struct QoR {
    /// Total latency in clock cycles.
    pub latency: u64,
    /// Resource usage.
    pub resources: ResourceUsage,
    /// Power proxy in watts.
    pub power: f64,
    /// Pipelined loops encountered, outer-to-inner, left-to-right.
    pub loops: Vec<LoopQoR>,
}

impl QoR {
    /// Speedup of `self` over `baseline` in cycles.
    pub fn speedup_over(&self, baseline: &QoR) -> f64 {
        baseline.latency as f64 / self.latency.max(1) as f64
    }
}

/// BRAM18K units one array occupies: `bits` spread over `banks` banks,
/// each bank rounded up to whole 18-kbit blocks (at least one block per
/// bank). The single accounting shared by the estimator, pom-lint's
/// POM003 budget check, and the DSE's BRAM prescreen.
pub fn bram18k_units(bits: u64, banks: u64) -> u64 {
    let b = banks.max(1);
    b * bits.div_ceil(b).div_ceil(18 * 1024).max(1)
}

/// Estimates the QoR of an annotated affine function.
pub fn estimate(func: &AffineFunc, deps: &DepSummary, model: &CostModel, sharing: Sharing) -> QoR {
    let banks: HashMap<String, u64> = func
        .memrefs
        .iter()
        .map(|m| (m.name.clone(), m.banks().max(1) as u64))
        .collect();
    // Per-iteration port slide per pipelined loop, where pom-bank can
    // enumerate the per-iteration accesses exactly. Keyed by the loop's
    // statements — sibling nests reuse iv names.
    let bank_slides: Vec<(Vec<String>, u64)> = pom_bank::analyze_func(func)
        .into_iter()
        .filter_map(|r| {
            r.analysis
                .port_slide(model.ports_per_bank)
                .map(|s| (r.stmts, s))
        })
        .collect();
    let mut est = Estimator {
        model,
        deps,
        banks: &banks,
        bank_slides: &bank_slides,
        sharing,
        loops: Vec::new(),
    };
    let mut env = HashMap::new();
    let (latency, compute_res) = est.seq(&func.body, &mut env);

    // Memory resources: BRAM banks per array, plus partition muxing.
    let mut res = compute_res;
    for m in &func.memrefs {
        let b = m.banks().max(1) as u64;
        res.bram18k += bram18k_units(m.bits(), b);
        if b > 1 {
            // Bank-selection muxing overhead.
            res.lut += b * 8;
            res.ff += b * 4;
        }
    }
    let power = model.power(&res);
    QoR {
        latency,
        resources: res,
        power,
        loops: est.loops,
    }
}

struct Estimator<'a> {
    model: &'a CostModel,
    deps: &'a DepSummary,
    banks: &'a HashMap<String, u64>,
    /// Exact per-iteration port slide per pipelined loop (keyed by the
    /// loop's statements), from pom-bank.
    bank_slides: &'a [(Vec<String>, u64)],
    sharing: Sharing,
    loops: Vec<LoopQoR>,
}

impl Estimator<'_> {
    /// Sequential composition of sibling ops.
    fn seq(&mut self, ops: &[AffineOp], env: &mut HashMap<String, i64>) -> (u64, ResourceUsage) {
        let mut latency = 0u64;
        let mut res = ResourceUsage::zero();
        for op in ops {
            let (l, r) = self.one(op, env);
            latency += l;
            res = match self.sharing {
                Sharing::Reuse => res.max(&r),
                Sharing::Dataflow => res.plus(&r),
            };
        }
        (latency, res)
    }

    fn one(&mut self, op: &AffineOp, env: &mut HashMap<String, i64>) -> (u64, ResourceUsage) {
        match op {
            AffineOp::Store(s) => {
                let lat = expr_latency(&s.value, self.model) + self.model.store_latency;
                let counts = s.value.op_counts();
                (lat, self.model.body_resources(&counts))
            }
            AffineOp::If(i) => self.seq(&i.body, env),
            AffineOp::For(l) => {
                if l.attrs.pipeline_ii.is_some() {
                    self.pipelined(l, env)
                } else {
                    self.sequential_loop(l, env)
                }
            }
        }
    }

    fn loop_range(&self, l: &ForOp, env: &HashMap<String, i64>) -> (i64, i64) {
        let lb = l.lbs.iter().map(|b| b.eval_lower(env)).max().unwrap_or(0);
        let ub = l.ubs.iter().map(|b| b.eval_upper(env)).min().unwrap_or(lb);
        (lb, ub.max(lb))
    }

    /// The trip count used for costing, next to the (clamped)
    /// representative range. A loop with **constant** bounds gets its
    /// exact trip — possibly 0, in which case it contributes no latency.
    /// Symbolic bounds are evaluated under representative outer-iv values
    /// (nest midpoints), which can spuriously look empty at tile edges,
    /// so those keep the historical clamp to at least 1.
    fn loop_trip(&self, l: &ForOp, env: &HashMap<String, i64>) -> (i64, i64, u64) {
        let (lb, ub) = self.loop_range(l, env);
        let constant = l.lbs.iter().all(|b| b.expr.is_constant())
            && l.ubs.iter().all(|b| b.expr.is_constant());
        let raw = l
            .ubs
            .iter()
            .map(|b| b.eval_upper(env))
            .min()
            .unwrap_or(lb)
            .saturating_sub(lb)
            .saturating_add(1);
        let trip = if constant { raw.max(0) } else { raw.max(1) } as u64;
        (lb, ub, trip)
    }

    /// Loop flattening (Vitis `loop_flatten`): a perfect nest of plain
    /// loops ending in a pipelined loop flushes once per *outer* entry,
    /// not once per tile — model it by multiplying the pipelined trip.
    /// Flattening is blocked by unrolling and by dependences carried at
    /// the flattened loop (Vitis refuses those too).
    fn try_flatten(
        &mut self,
        l: &ForOp,
        env: &mut HashMap<String, i64>,
    ) -> Option<(u64, u64, u64, ResourceUsage)> {
        // Returns (ii, depth, flattened_trip, resources).
        let (lb, ub, trip) = self.loop_trip(l, env);
        if l.attrs.pipeline_ii.is_some() {
            env.insert(l.iv.clone(), (lb + ub) / 2);
            let (ii, depth, res) = self.pipelined_parts(l, env);
            env.remove(&l.iv);
            return Some((ii, depth, trip, res));
        }
        if l.attrs.unroll_factor.is_some() || self.deps.carried_at(&l.iv).is_some() {
            return None;
        }
        let [AffineOp::For(inner)] = &l.body[..] else {
            return None;
        };
        env.insert(l.iv.clone(), (lb + ub) / 2);
        let result = self.try_flatten(inner, env);
        env.remove(&l.iv);
        let (ii, depth, inner_trip, res) = result?;
        Some((ii, depth, trip * inner_trip, res))
    }

    fn sequential_loop(
        &mut self,
        l: &ForOp,
        env: &mut HashMap<String, i64>,
    ) -> (u64, ResourceUsage) {
        if let Some((ii, depth, trip, res)) = self.try_flatten(l, env) {
            return (pipeline_latency(trip, ii, depth), res);
        }
        let (lb, ub, trip) = self.loop_trip(l, env);
        if trip == 0 {
            // A constant-bounds empty loop runs zero iterations: no
            // latency, no datapath — only its control logic exists.
            return (0, self.model.loop_control);
        }
        env.insert(l.iv.clone(), (lb + ub) / 2);
        let (body_lat, body_res) = self.seq(&l.body, env);
        env.remove(&l.iv);

        let unroll = l.attrs.unroll_factor.unwrap_or(1).max(1) as u64;
        let u = unroll.min(trip);
        let iters = trip.div_ceil(u);
        let carried = self.deps.carried_at(&l.iv);
        let per_iter = if carried.is_some() && u > 1 {
            // Unrolled copies serialize through the carried dependence.
            body_lat * u + self.model.loop_overhead
        } else {
            body_lat + self.model.loop_overhead
        };
        let latency = iters * per_iter;
        let res = body_res.scaled(u).plus(&self.model.loop_control);
        (latency, res)
    }

    fn pipelined(&mut self, l: &ForOp, env: &mut HashMap<String, i64>) -> (u64, ResourceUsage) {
        let (lb, ub, trip) = self.loop_trip(l, env);
        env.insert(l.iv.clone(), (lb + ub) / 2);
        let (ii, depth, res) = self.pipelined_parts(l, env);
        env.remove(&l.iv);
        (pipeline_latency(trip, ii, depth), res)
    }

    /// The II, depth, and resources of a pipelined loop body (`env` must
    /// already bind the loop's own iv to a representative value).
    fn pipelined_parts(
        &mut self,
        l: &ForOp,
        env: &mut HashMap<String, i64>,
    ) -> (u64, u64, ResourceUsage) {
        let (_, _, trip) = self.loop_trip(l, env);

        let mut body = PipeBody::default();
        self.collect_pipe_body(&l.body, 1, env, &mut body);

        // Pipeline depth: longest statement chain + the longest reduction
        // tree among the unrolled inner loops.
        let max_serial = body.serial_chains.values().copied().max().unwrap_or(0);
        let depth = body.max_stmt_latency + max_serial + self.model.loop_overhead;

        // RecMII from dependences carried at this loop. When the unrolled
        // body also chains through the same array (a reduction whose
        // result feeds back across pipeline iterations), the whole
        // reduction tree is on the recurrence.
        let rec_mii = self
            .deps
            .carried_at(&l.iv)
            .map(|d| {
                let serial = body.serial_chains.get(&d.array).copied().unwrap_or(0);
                (d.chain_latency + serial).div_ceil(d.distance.max(1))
            })
            .unwrap_or(1)
            .max(1);

        // ResMII from memory ports: the even-spread bound
        // `ceil(accesses / (banks × ports))` assumes accesses distribute
        // uniformly over banks...
        let mut res_mii = 1u64;
        for (array, accesses) in &body.accesses {
            let banks = self.banks.get(array).copied().unwrap_or(1);
            let ports = banks * self.model.ports_per_bank;
            res_mii = res_mii.max(accesses.div_ceil(ports.max(1)));
        }
        let base = rec_mii.max(res_mii);

        // ...which windowed stencil re-reads violate: accesses sharing a
        // residue class pile into one bank. The simulator's calendars
        // grant all of an iteration's reads at the issue cycle, so an
        // overloaded bank slides the issue by `ceil(demand/ports) - 1`
        // cycles past the *declared* II on every iteration. Where
        // pom-bank enumerated the accesses exactly, floor the effective
        // II at `declared + slide`; the excess over `base` is reported as
        // `port_slide` and kept out of the declared-II retarget (no II
        // absorbs it — only repartitioning removes it).
        let declared = l.attrs.pipeline_ii.unwrap_or(1).max(1) as u64;
        let ii = self
            .bank_slides
            .iter()
            .find(|(stmts, _)| body.stmts.iter().any(|s| stmts.contains(s)))
            .map_or(base, |&(_, s)| base.max(declared + s));

        // Resources: unrolled operator instances are spatial — every copy
        // gets its own operators (Vitis only time-shares across iterations
        // of the *pipelined* loop, which the II already accounts for).
        let c = &body.counts;
        let mut res = ResourceUsage::zero();
        let scale = |cost: &crate::cost::OpCost, n: u64| cost.resources.scaled(n);
        res = res.plus(&scale(&self.model.fadd, (c.add + c.sub) as u64));
        res = res.plus(&scale(&self.model.fmul, c.mul as u64));
        res = res.plus(&scale(&self.model.fdiv, c.div as u64));
        res = res.plus(&scale(&self.model.fcmp, c.cmp as u64));
        res = res.plus(&self.model.loop_control);

        self.loops.push(LoopQoR {
            iv: l.iv.clone(),
            achieved_ii: ii,
            port_slide: ii - base,
            trip,
            depth,
            unrolled_copies: body.copies,
            stmts: body.stmts,
        });
        (ii, depth, res)
    }

    /// Collects the fully-unrolled body of a pipelined loop: operator
    /// counts, per-array access counts, the longest statement latency, and
    /// the serialization chains of inner carried dependences.
    fn collect_pipe_body(
        &self,
        ops: &[AffineOp],
        mult: u64,
        env: &mut HashMap<String, i64>,
        out: &mut PipeBody,
    ) {
        for op in ops {
            match op {
                AffineOp::Store(s) => {
                    if !out.stmts.contains(&s.stmt) {
                        out.stmts.push(s.stmt.clone());
                    }
                    let lat = expr_latency(&s.value, self.model) + self.model.store_latency;
                    out.max_stmt_latency = out.max_stmt_latency.max(lat);
                    let c = s.value.op_counts();
                    out.counts.add += c.add * mult as usize;
                    out.counts.sub += c.sub * mult as usize;
                    out.counts.mul += c.mul * mult as usize;
                    out.counts.div += c.div * mult as usize;
                    out.counts.cmp += c.cmp * mult as usize;
                    out.copies = out.copies.max(mult);
                    // Distinct memory accesses: a reference not varying
                    // with an unrolled loop is a broadcast, not an extra
                    // port demand.
                    let distinct = |a: &pom_poly::AccessFn| -> u64 {
                        out.unrolled
                            .iter()
                            .filter(|(iv, _)| a.indices.iter().any(|e| e.uses(iv)))
                            .map(|(_, t)| *t)
                            .product::<u64>()
                            .max(1)
                    };
                    *out.accesses.entry(s.dest.array.clone()).or_insert(0) += distinct(&s.dest);
                    for load in s.value.loads() {
                        *out.accesses.entry(load.array.clone()).or_insert(0) += distinct(load);
                    }
                }
                AffineOp::If(i) => self.collect_pipe_body(&i.body, mult, env, out),
                AffineOp::For(l) => {
                    let (lb, ub, trip) = self.loop_trip(l, env);
                    if trip == 0 {
                        // Constant-bounds empty loop: no unrolled copies,
                        // no accesses, no reduction chain.
                        continue;
                    }
                    if let Some(dep) = self.deps.carried_at(&l.iv) {
                        // The unrolled copies along this loop form a
                        // balanced reduction tree plus one accumulate:
                        // depth = ceil(log2(copies)) * chain + chain.
                        let copies = (trip / dep.distance.max(1)).max(1);
                        if copies > 1 {
                            let tree_levels = 64 - (copies - 1).leading_zeros() as u64;
                            let serial = (tree_levels + 1) * dep.chain_latency;
                            let e = out.serial_chains.entry(dep.array.clone()).or_insert(0);
                            *e = (*e).max(serial);
                        }
                    }
                    env.insert(l.iv.clone(), (lb + ub) / 2);
                    out.unrolled.push((l.iv.clone(), trip));
                    self.collect_pipe_body(&l.body, mult * trip, env, out);
                    out.unrolled.pop();
                    env.remove(&l.iv);
                }
            }
        }
    }
}

/// `(trip - 1) * II + depth`, hardened for degenerate trips: an empty
/// pipeline (trip 0, possible once constant-bounds loops report exact
/// trips) costs nothing, and trip 1 pays the depth alone — `depth > trip`
/// is fine because the fill/drain cost is depth-, not trip-, shaped.
fn pipeline_latency(trip: u64, ii: u64, depth: u64) -> u64 {
    if trip == 0 {
        0
    } else {
        (trip - 1) * ii + depth
    }
}

#[derive(Default)]
struct PipeBody {
    counts: OpCounts,
    accesses: HashMap<String, u64>,
    max_stmt_latency: u64,
    serial_chains: HashMap<String, u64>,
    copies: u64,
    /// Stack of enclosing unrolled loops `(iv, trip)` during collection.
    unrolled: Vec<(String, u64)>,
    /// Statement names stored in the body, in program order.
    stmts: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::{DataType, PartitionStyle};
    use pom_ir::{HlsAttrs, MemRefDecl, PartitionInfo, StoreOp};
    use pom_poly::{AccessFn, Bound, LinearExpr};

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn accumulate_loop(n: i64, pipeline: bool) -> AffineFunc {
        // for i in 0..n: acc[0] = acc[0] + x[i]
        let mut f = AffineFunc::new("acc");
        f.memrefs.push(MemRefDecl::new("acc", &[1], DataType::F32));
        f.memrefs
            .push(MemRefDecl::new("x", &[n as usize], DataType::F32));
        let body = pom_dsl::Expr::Load(AccessFn::new("acc", vec![LinearExpr::zero()]))
            + pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("i")]));
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(n - 1)],
            attrs: HlsAttrs {
                pipeline_ii: pipeline.then_some(1),
                ..Default::default()
            },
            body: vec![AffineOp::Store(StoreOp {
                stmt: "S".into(),
                dest: AccessFn::new("acc", vec![LinearExpr::zero()]),
                value: body,
            })],
        }));
        f
    }

    #[test]
    fn chain_latency_of_accumulation_is_fadd() {
        let m = CostModel::vitis_f32();
        let e = pom_dsl::Expr::Load(AccessFn::new("acc", vec![LinearExpr::zero()]))
            + pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("i")]));
        assert_eq!(dep_chain_latency(&e, "acc", &m), Some(4));
        assert_eq!(dep_chain_latency(&e, "y", &m), None);
    }

    #[test]
    fn recurrence_limits_ii() {
        // Accumulation carried at i with distance 1, chain 4 -> II = 4.
        let m = CostModel::vitis_f32();
        let f = accumulate_loop(100, true);
        let mut deps = DepSummary::new();
        deps.insert(
            "i",
            CarriedDep {
                array: "acc".into(),
                distance: 1,
                chain_latency: 4,
            },
        );
        let q = estimate(&f, &deps, &m, Sharing::Reuse);
        assert_eq!(q.loops.len(), 1);
        assert_eq!(q.loops[0].achieved_ii, 4);
        // Larger distance relaxes the recurrence: d=2 -> II = 2.
        let mut deps2 = DepSummary::new();
        deps2.insert(
            "i",
            CarriedDep {
                array: "acc".into(),
                distance: 2,
                chain_latency: 4,
            },
        );
        let q2 = estimate(&f, &deps2, &m, Sharing::Reuse);
        assert_eq!(q2.loops[0].achieved_ii, 2);
        assert!(q2.latency < q.latency);
    }

    #[test]
    fn pipelining_beats_sequential() {
        let m = CostModel::vitis_f32();
        let seq = estimate(
            &accumulate_loop(1000, false),
            &DepSummary::new(),
            &m,
            Sharing::Reuse,
        );
        let pip = estimate(
            &accumulate_loop(1000, true),
            &DepSummary::new(),
            &m,
            Sharing::Reuse,
        );
        assert!(
            pip.latency * 3 < seq.latency,
            "pipelined {} vs sequential {}",
            pip.latency,
            seq.latency
        );
    }

    #[test]
    fn ports_limit_ii_without_partitioning() {
        // Pipelined outer loop with a fully unrolled inner loop of 32
        // iterations, all loading from the same unpartitioned array:
        // 32 reads + ... through 2 ports -> ResMII ~ 32/2 = 16+.
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("x", &[1024], DataType::F32));
        f.memrefs.push(MemRefDecl::new("y", &[1024], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("y", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("j")])) * 2.0,
        };
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(31)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(31)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::For(inner)],
        };
        f.body.push(AffineOp::For(outer));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q.loops[0].achieved_ii, 16, "32 accesses over 2 ports");

        // Partitioning x and y by 16 restores II = 1.
        let mut f2 = f.clone();
        for a in ["x", "y"] {
            f2.memref_mut(a).unwrap().partition = Some(PartitionInfo {
                factors: vec![16],
                style: PartitionStyle::Cyclic,
            });
        }
        let q2 = estimate(&f2, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q2.loops[0].achieved_ii, 1);
        assert!(q2.latency < q.latency);
    }

    #[test]
    fn bank_collisions_raise_res_mii_above_even_spread() {
        // b[i] = a[2i] + a[2i+2] + a[2i+4] with a partitioned cyclic(2):
        // all three reads are even — they share residue class 0 and pile
        // into one bank. Even-spread says ceil(3 / (2 banks × 2 ports)) =
        // 1; the exact per-bank demand is 3 → II = 2.
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("a", &[256], DataType::F32));
        f.memrefs.push(MemRefDecl::new("b", &[64], DataType::F32));
        f.memref_mut("a").unwrap().partition = Some(PartitionInfo {
            factors: vec![2],
            style: PartitionStyle::Cyclic,
        });
        let i = LinearExpr::var("i");
        let two_i = i.clone() * 2;
        let body = pom_dsl::Expr::Load(AccessFn::new("a", vec![two_i.clone()]))
            + pom_dsl::Expr::Load(AccessFn::new("a", vec![two_i.clone() + 2]))
            + pom_dsl::Expr::Load(AccessFn::new("a", vec![two_i.clone() + 4]));
        let l = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(63)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::Store(StoreOp {
                stmt: "S".into(),
                dest: AccessFn::new("b", vec![i.clone()]),
                value: body,
            })],
        };
        f.body.push(AffineOp::For(l));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q.loops[0].achieved_ii, 2, "per-bank demand 3 over 2 ports");
        // Factor 4 still maps the window onto two even banks (demand 2,
        // one cycle's worth of ports) — II returns to 1.
        let mut f2 = f.clone();
        f2.memref_mut("a").unwrap().partition = Some(PartitionInfo {
            factors: vec![4],
            style: PartitionStyle::Cyclic,
        });
        let q2 = estimate(&f2, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q2.loops[0].achieved_ii, 1);
    }

    #[test]
    fn unrolled_inner_reduction_serializes_depth_not_ii() {
        // Pipelined outer i; inner k (trip 8) carries the accumulation:
        // II stays 1, depth grows by 7 * chain.
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("a", &[64], DataType::F32));
        f.memrefs
            .push(MemRefDecl::new("x", &[64, 8], DataType::F32));
        f.memref_mut("x").unwrap().partition = Some(PartitionInfo {
            factors: vec![1, 8],
            style: PartitionStyle::Cyclic,
        });
        let body = pom_dsl::Expr::Load(AccessFn::new("a", vec![LinearExpr::var("i")]))
            + pom_dsl::Expr::Load(AccessFn::new(
                "x",
                vec![LinearExpr::var("i"), LinearExpr::var("k")],
            ));
        let inner = ForOp {
            extra: Vec::new(),
            iv: "k".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(StoreOp {
                stmt: "S".into(),
                dest: AccessFn::new("a", vec![LinearExpr::var("i")]),
                value: body,
            })],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(63)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::For(inner)],
        };
        f.body.push(AffineOp::For(outer));
        let mut deps = DepSummary::new();
        deps.insert(
            "k",
            CarriedDep {
                array: "a".into(),
                distance: 1,
                chain_latency: 4,
            },
        );
        let q = estimate(&f, &deps, &m, Sharing::Reuse);
        // a[i] does not vary with the unrolled k loop: the accumulation is
        // registered (one effective read + write per pipeline iteration),
        // so ports do not throttle the II.
        assert_eq!(q.loops[0].achieved_ii, 1);
        assert!(
            q.loops[0].depth >= 16,
            "reduction tree in the pipeline depth"
        );
    }

    #[test]
    fn perfect_nests_flatten_into_the_pipeline() {
        // k { i { j pipelined } } with no carried deps at k or i: the
        // pipeline flushes once, not once per (k, i) pair.
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("x", &[4096], DataType::F32));
        f.memrefs.push(MemRefDecl::new("y", &[4096], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("y", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("j")])) * 2.0,
        };
        let j = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(15)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::Store(store)],
        };
        let i = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(15)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(j)],
        };
        let k = ForOp {
            extra: Vec::new(),
            iv: "k".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(15)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(i)],
        };
        f.body.push(AffineOp::For(k));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        // Flattened trip = 16^3 = 4096 at II = 1, one depth: ~4096 + depth,
        // far below the per-tile-flush model 16*16*(15 + depth).
        assert!(
            q.latency < 4096 + 100,
            "flattened latency expected, got {}",
            q.latency
        );

        // A carried dependence at `i` blocks flattening across it.
        let mut deps = DepSummary::new();
        deps.insert(
            "i",
            CarriedDep {
                array: "y".into(),
                distance: 1,
                chain_latency: 4,
            },
        );
        let q2 = estimate(&f, &deps, &m, Sharing::Reuse);
        assert!(
            q2.latency > q.latency,
            "carried dep must force per-i flushes: {} vs {}",
            q2.latency,
            q.latency
        );
    }

    #[test]
    fn empty_constant_loops_cost_nothing() {
        // Trip 0 with constant bounds: zero latency, sequential or
        // pipelined, alone or heading a flattenable nest.
        let m = CostModel::vitis_f32();
        for pipeline in [false, true] {
            let f = accumulate_loop(0, pipeline);
            let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
            assert_eq!(q.latency, 0, "pipeline={pipeline}");
        }
        // An empty outer loop over a pipelined inner: the flattened trip
        // is 0 * inner, and the whole nest must cost 0 (this used to
        // underflow `(trip - 1) * ii` before trips could be 0).
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("x", &[16], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("x", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("j")])) * 2.0,
        };
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(15)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(-1)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(inner)],
        };
        f.body.push(AffineOp::For(outer));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q.latency, 0);
    }

    #[test]
    fn empty_unrolled_inner_loop_contributes_nothing() {
        // A constant-empty loop inside a pipelined body must add no
        // copies, no port pressure, and no reduction chain.
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("x", &[64], DataType::F32));
        f.memrefs.push(MemRefDecl::new("y", &[64], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("y", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("j")])) * 2.0,
        };
        let empty = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(-1)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(31)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::For(empty)],
        };
        f.body.push(AffineOp::For(outer));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q.loops[0].achieved_ii, 1, "no accesses -> no ResMII");
        assert_eq!(q.loops[0].unrolled_copies, 0);
        assert_eq!(q.resources.dsp, 0, "no operator instances");
    }

    #[test]
    fn trip_one_pipeline_pays_depth_only() {
        // depth > trip: a single iteration costs exactly the pipeline
        // depth, with no issue-interval term.
        let m = CostModel::vitis_f32();
        let f = accumulate_loop(1, true);
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q.loops.len(), 1);
        assert_eq!(q.loops[0].trip, 1);
        assert_eq!(q.latency, q.loops[0].depth);
        assert!(q.loops[0].depth > 1, "depth exceeds the trip count");
    }

    #[test]
    fn symbolic_empty_bounds_keep_the_representative_clamp() {
        // Inner bounds depending on an outer iv evaluate under a
        // representative midpoint and can *look* empty at tile edges;
        // those keep trip >= 1 so tiled suite QoR is unchanged.
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("x", &[64], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("x", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("x", vec![LinearExpr::var("j")])) * 2.0,
        };
        // j in [i, 1]: at the representative i = (0+63)/2 this is empty,
        // but it does run for real i in {0, 1}.
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![Bound::new(LinearExpr::var("i"), 1)],
            ubs: vec![cb(1)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(63)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(inner)],
        };
        f.body.push(AffineOp::For(outer));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert!(q.latency > 0, "symbolic bounds must not zero out the nest");
    }

    #[test]
    fn sharing_policies_differ() {
        let m = CostModel::vitis_f32();
        let f1 = accumulate_loop(64, true);
        // Two copies of the nest in sequence.
        let mut f = f1.clone();
        let op = f.body[0].clone();
        f.body.push(op);
        let reuse = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        let dataflow = estimate(&f, &DepSummary::new(), &m, Sharing::Dataflow);
        assert!(dataflow.resources.dsp > reuse.resources.dsp);
        assert_eq!(dataflow.latency, reuse.latency);
    }

    #[test]
    fn bram_accounting() {
        let m = CostModel::vitis_f32();
        let mut f = AffineFunc::new("f");
        // 4096 floats = 131072 bits = 8 BRAM18K when unpartitioned...
        // 131072 / 18432 = 7.1 -> 8.
        f.memrefs
            .push(MemRefDecl::new("big", &[4096], DataType::F32));
        let q = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        assert_eq!(q.resources.bram18k, 8);
    }

    #[test]
    fn power_increases_with_parallelism() {
        let m = CostModel::vitis_f32();
        let f = accumulate_loop(64, false);
        let fp = accumulate_loop(64, true);
        let q_seq = estimate(&f, &DepSummary::new(), &m, Sharing::Reuse);
        let q_pip = estimate(&fp, &DepSummary::new(), &m, Sharing::Reuse);
        assert!(q_pip.power >= q_seq.power * 0.9);
        assert!(q_seq.power > 0.0);
    }

    #[test]
    fn speedup_over_baseline() {
        let m = CostModel::vitis_f32();
        let seq = estimate(
            &accumulate_loop(1000, false),
            &DepSummary::new(),
            &m,
            Sharing::Reuse,
        );
        let pip = estimate(
            &accumulate_loop(1000, true),
            &DepSummary::new(),
            &m,
            Sharing::Reuse,
        );
        assert!(pip.speedup_over(&seq) > 3.0);
        assert!((seq.speedup_over(&seq) - 1.0).abs() < 1e-9);
    }
}
