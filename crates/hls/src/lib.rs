//! # pom-hls — HLS backend: code generation and QoR estimation
//!
//! The reproduction's substitute for Xilinx Vitis HLS / Vivado:
//!
//! * [`codegen`] translates an annotated [`pom_ir::AffineFunc`] into
//!   synthesizable HLS C, turning every attribute into its `#pragma HLS`
//!   spelling (pipeline II, unroll factor, array_partition) — the final
//!   step of the paper's flow (Fig. 7, right).
//! * [`mod@estimate`] is the analytical QoR model in the spirit of the
//!   "in-house model from \[35\]\[38\]" (ScaleHLS / COMBA) that the paper's
//!   DSE engine itself uses: initiation interval `II = max(RecMII,
//!   ResMII)`, pipeline-depth-aware loop latency composition, and
//!   DSP/FF/LUT/BRAM accounting with a power proxy, against the
//!   [`DeviceSpec`] of the paper's Xilinx XC7Z020 target.
//!
//! Absolute cycle counts are a model, not silicon; the comparative shape
//! (who wins, achieved II, resource ceilings) is governed by the same
//! recurrence/port/resource arithmetic the vendor tools implement.

pub mod codegen;
pub mod cost;
pub mod device;
pub mod estimate;
pub mod report;
pub mod testbench;

pub use codegen::{emit_hls_c, hls_c_loc};
pub use cost::{CostModel, OpCost};
pub use device::{DeviceSpec, ResourceUsage};
pub use estimate::{bram18k_units, estimate, CarriedDep, DepSummary, LoopQoR, QoR};
pub use report::SynthesisReport;
pub use testbench::emit_testbench;
