//! Vitis-style synthesis report generation.
//!
//! The paper collects "performance and resource statistics … from HLS
//! synthesis reports" — this module renders our QoR estimate in the same
//! shape: a performance summary, a loop-hierarchy table with trip counts,
//! initiation intervals and latencies, and a resource-utilization table
//! against the target device.

use crate::cost::CostModel;
use crate::device::DeviceSpec;
use crate::estimate::{estimate, DepSummary, Sharing};
use crate::QoR;
use pom_ir::{AffineFunc, AffineOp, ForOp};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One row of the loop-hierarchy table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopRow {
    /// Indented loop label, e.g. `"- loop_i"` / `"  - loop_j"`.
    pub label: String,
    /// Trip count (midpoint estimate for non-rectangular loops).
    pub trip: u64,
    /// Pipelined?
    pub pipelined: bool,
    /// Achieved II (pipelined loops only).
    pub ii: Option<u64>,
    /// Unroll factor, when requested.
    pub unroll: Option<i64>,
}

/// A complete synthesis report.
#[derive(Clone, Debug)]
pub struct SynthesisReport {
    /// Function name.
    pub function: String,
    /// Target device.
    pub device: DeviceSpec,
    /// The QoR estimate backing the report.
    pub qor: QoR,
    /// Loop hierarchy rows.
    pub loops: Vec<LoopRow>,
}

impl SynthesisReport {
    /// Builds a report by estimating `func` against `device`.
    pub fn generate(
        func: &AffineFunc,
        deps: &DepSummary,
        model: &CostModel,
        device: &DeviceSpec,
        sharing: Sharing,
    ) -> SynthesisReport {
        let qor = estimate(func, deps, model, sharing);
        let ii_by_iv: HashMap<&str, u64> = qor
            .loops
            .iter()
            .map(|l| (l.iv.as_str(), l.achieved_ii))
            .collect();
        let mut loops = Vec::new();
        let mut env = HashMap::new();
        collect_rows(&func.body, 0, &ii_by_iv, &mut env, &mut loops);
        SynthesisReport {
            function: func.name.clone(),
            device: device.clone(),
            qor,
            loops,
        }
    }

    /// Estimated kernel time in microseconds at the device's clock.
    pub fn time_us(&self) -> f64 {
        self.qor.latency as f64 * self.device.clock_ns / 1000.0
    }

    /// Renders the textual report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Synthesis report: {} ==", self.function);
        let _ = writeln!(out, "Target device : {}", self.device);
        let _ = writeln!(out);
        let _ = writeln!(out, "-- Performance estimate --");
        let _ = writeln!(out, "Latency (cycles) : {}", self.qor.latency);
        let _ = writeln!(out, "Latency (time)   : {:.3} us", self.time_us());
        let _ = writeln!(out, "Power (proxy)    : {:.3} W", self.qor.power);
        let _ = writeln!(out);
        let _ = writeln!(out, "-- Loop hierarchy --");
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>8} {:>8}",
            "Loop", "Trip", "Pipelined", "II", "Unroll"
        );
        for l in &self.loops {
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>10} {:>8} {:>8}",
                l.label,
                l.trip,
                if l.pipelined { "yes" } else { "no" },
                l.ii.map(|x| x.to_string()).unwrap_or_else(|| "-".into()),
                l.unroll
                    .map(|x| x.to_string())
                    .unwrap_or_else(|| "-".into()),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "-- Utilization estimate --");
        let r = &self.qor.resources;
        let (dsp, ff, lut, bram) = r.utilization(&self.device);
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>8}",
            "Resource", "Used", "Available", "Util%"
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>7.0}%",
            "DSP48", r.dsp, self.device.dsp, dsp
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>7.0}%",
            "FF", r.ff, self.device.ff, ff
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>7.0}%",
            "LUT", r.lut, self.device.lut, lut
        );
        let _ = writeln!(
            out,
            "{:<10} {:>10} {:>12} {:>7.0}%",
            "BRAM18K", r.bram18k, self.device.bram18k, bram
        );
        out
    }
}

fn collect_rows(
    ops: &[AffineOp],
    depth: usize,
    ii_by_iv: &HashMap<&str, u64>,
    env: &mut HashMap<String, i64>,
    out: &mut Vec<LoopRow>,
) {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                let trip = loop_trip(l, env);
                out.push(LoopRow {
                    label: format!("{}- loop_{}", "  ".repeat(depth), l.iv),
                    trip,
                    pipelined: l.attrs.pipeline_ii.is_some(),
                    ii: ii_by_iv.get(l.iv.as_str()).copied(),
                    unroll: l.attrs.unroll_factor,
                });
                let (lb, ub) = bounds(l, env);
                env.insert(l.iv.clone(), (lb + ub) / 2);
                collect_rows(&l.body, depth + 1, ii_by_iv, env, out);
                env.remove(&l.iv);
            }
            AffineOp::If(i) => collect_rows(&i.body, depth, ii_by_iv, env, out),
            AffineOp::Store(_) => {}
        }
    }
}

fn bounds(l: &ForOp, env: &HashMap<String, i64>) -> (i64, i64) {
    let lb = l.lbs.iter().map(|b| b.eval_lower(env)).max().unwrap_or(0);
    let ub = l.ubs.iter().map(|b| b.eval_upper(env)).min().unwrap_or(lb);
    (lb, ub.max(lb))
}

fn loop_trip(l: &ForOp, env: &HashMap<String, i64>) -> u64 {
    let (lb, ub) = bounds(l, env);
    (ub - lb + 1).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;
    use pom_ir::{HlsAttrs, MemRefDecl, StoreOp};
    use pom_poly::{AccessFn, Bound, LinearExpr};

    fn sample_func() -> AffineFunc {
        let cb = |v: i64| Bound::new(LinearExpr::constant_expr(v), 1);
        let mut f = AffineFunc::new("kernel");
        f.memrefs.push(MemRefDecl::new("A", &[64], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("A", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("A", vec![LinearExpr::var("j")])) * 2.0,
        };
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(63)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(9)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(inner)],
        };
        f.body.push(AffineOp::For(outer));
        f
    }

    #[test]
    fn report_contains_hierarchy_and_utilization() {
        let f = sample_func();
        let report = SynthesisReport::generate(
            &f,
            &DepSummary::new(),
            &CostModel::vitis_f32(),
            &DeviceSpec::xc7z020(),
            Sharing::Reuse,
        );
        assert_eq!(report.loops.len(), 2);
        assert_eq!(report.loops[0].trip, 10);
        assert_eq!(report.loops[1].trip, 64);
        assert!(report.loops[1].pipelined);
        assert_eq!(report.loops[1].ii, Some(1));
        let text = report.render();
        assert!(text.contains("loop_i"), "{text}");
        assert!(text.contains("  - loop_j"), "{text}");
        assert!(text.contains("DSP48"), "{text}");
        assert!(text.contains("Latency (cycles)"), "{text}");
    }

    #[test]
    fn time_scales_with_clock() {
        let f = sample_func();
        let model = CostModel::vitis_f32();
        let deps = DepSummary::new();
        let d100 = DeviceSpec::xc7z020();
        let mut d200 = DeviceSpec::xc7z020();
        d200.clock_ns = 5.0;
        let r100 = SynthesisReport::generate(&f, &deps, &model, &d100, Sharing::Reuse);
        let r200 = SynthesisReport::generate(&f, &deps, &model, &d200, Sharing::Reuse);
        assert!((r100.time_us() - 2.0 * r200.time_us()).abs() < 1e-9);
    }
}
