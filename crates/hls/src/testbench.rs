//! C testbench generation for the emitted HLS kernel.
//!
//! Produces a self-checking `main()` that initializes every array with the
//! same deterministic pattern as [`pom_dsl::MemoryState::for_function_seeded`],
//! calls the kernel, and prints a checksum — the standard C simulation
//! harness one would hand to `vitis_hls -csim`.

use pom_ir::AffineFunc;
use std::fmt::Write as _;

/// Emits a self-checking testbench for `func` (to be compiled together
/// with the output of [`crate::emit_hls_c`]).
pub fn emit_testbench(func: &AffineFunc, seed: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "#include <stdio.h>");
    let _ = writeln!(out, "#include <stdint.h>");
    let _ = writeln!(out);
    let params: Vec<String> = func
        .memrefs
        .iter()
        .map(|m| {
            let dims: Vec<String> = m.shape.iter().map(|d| format!("[{d}]")).collect();
            format!("{} {}{}", m.dtype.c_name(), m.name, dims.join(""))
        })
        .collect();
    let _ = writeln!(out, "void {}({});", func.name, params.join(", "));
    let _ = writeln!(out);
    let _ = writeln!(out, "// Mirrors MemoryState::for_function_seeded({seed}).");
    let _ = writeln!(out, "static float init_value(uint64_t i, uint64_t salt) {{");
    let _ = writeln!(
        out,
        "  uint64_t x = i * 0x9E3779B97F4A7C15ULL + ({seed}ULL ^ salt);"
    );
    let _ = writeln!(out, "  x ^= x >> 29;");
    let _ = writeln!(out, "  x *= 0xBF58476D1CE4E5B9ULL;");
    let _ = writeln!(out, "  x ^= x >> 32;");
    let _ = writeln!(out, "  return ((float)(x % 1000)) / 100.0f - 5.0f;");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);
    let _ = writeln!(out, "int main(void) {{");
    for m in &func.memrefs {
        let dims: Vec<String> = m.shape.iter().map(|d| format!("[{d}]")).collect();
        let _ = writeln!(
            out,
            "  static {} {}{};",
            m.dtype.c_name(),
            m.name,
            dims.join("")
        );
    }
    for m in &func.memrefs {
        let salt: u64 = m.name.bytes().map(u64::from).sum();
        let total: usize = m.shape.iter().product();
        let _ = writeln!(
            out,
            "  for (uint64_t i = 0; i < {total}; ++i) (({}*){})[i] = init_value(i, {salt});",
            m.dtype.c_name(),
            m.name
        );
    }
    let args: Vec<&str> = func.memrefs.iter().map(|m| m.name.as_str()).collect();
    let _ = writeln!(out, "  {}({});", func.name, args.join(", "));
    let _ = writeln!(out, "  double checksum = 0.0;");
    for m in &func.memrefs {
        let total: usize = m.shape.iter().product();
        let _ = writeln!(
            out,
            "  for (uint64_t i = 0; i < {total}; ++i) checksum += (({}*){})[i];",
            m.dtype.c_name(),
            m.name
        );
    }
    let _ = writeln!(out, "  printf(\"checksum: %.6f\\n\", checksum);");
    let _ = writeln!(out, "  return 0;");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;
    use pom_ir::MemRefDecl;

    #[test]
    fn testbench_declares_and_calls_kernel() {
        let mut f = AffineFunc::new("gemm");
        f.memrefs.push(MemRefDecl::new("A", &[8, 8], DataType::F32));
        f.memrefs.push(MemRefDecl::new("B", &[8, 8], DataType::F32));
        let tb = emit_testbench(&f, 42);
        assert!(tb.contains("void gemm(float A[8][8], float B[8][8]);"));
        assert!(tb.contains("gemm(A, B);"));
        assert!(tb.contains("checksum"));
        assert!(tb.contains("init_value(i, "));
        let opens = tb.matches('{').count();
        assert_eq!(opens, tb.matches('}').count());
    }
}
