//! HLS attributes attached to loops and memrefs — the paper's explicit
//! representation of HLS pragmas in the affine dialect.

use pom_dsl::{DataType, PartitionStyle};
use std::fmt;

/// Hardware-optimization attributes on an `affine.for` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HlsAttrs {
    /// `#pragma HLS pipeline II=<target>` — target initiation interval.
    pub pipeline_ii: Option<i64>,
    /// `#pragma HLS unroll factor=<f>`.
    pub unroll_factor: Option<i64>,
    /// `#pragma HLS dependence ... false` — asserts no loop-carried
    /// dependence (emitted from analysis guidance).
    pub dependence_free: bool,
}

impl HlsAttrs {
    /// No attributes.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when any attribute is set.
    pub fn any(&self) -> bool {
        self.pipeline_ii.is_some() || self.unroll_factor.is_some() || self.dependence_free
    }
}

impl fmt::Display for HlsAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(ii) = self.pipeline_ii {
            parts.push(format!("pipeline_ii = {ii}"));
        }
        if let Some(u) = self.unroll_factor {
            parts.push(format!("unroll = {u}"));
        }
        if self.dependence_free {
            parts.push("dependence = false".to_string());
        }
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// An uninterpreted attribute on an `affine.for` op, as parsed from
/// hand-written IR or injected by external tooling. Typed HLS pragmas
/// live in [`HlsAttrs`]; raw attributes carry everything else. The
/// verifier rejects raw attributes in the `hls.` namespace it does not
/// understand, instead of silently ignoring a misspelled pragma.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawAttr {
    /// Attribute key, e.g. `hls.pipeline_ii` or `vendor.note`.
    pub key: String,
    /// Attribute value, verbatim.
    pub value: String,
}

impl RawAttr {
    /// Creates a raw attribute.
    pub fn new(key: impl Into<String>, value: impl Into<String>) -> Self {
        RawAttr {
            key: key.into(),
            value: value.into(),
        }
    }
}

impl fmt::Display for RawAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.key, self.value)
    }
}

/// Array-partitioning directive on a memref.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionInfo {
    /// One factor per array dimension (1 = unpartitioned).
    pub factors: Vec<i64>,
    /// Partition style.
    pub style: PartitionStyle,
}

impl PartitionInfo {
    /// Total number of memory banks after partitioning.
    pub fn banks(&self) -> i64 {
        self.factors.iter().product::<i64>().max(1)
    }
}

impl fmt::Display for PartitionInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs: Vec<String> = self.factors.iter().map(|x| x.to_string()).collect();
        write!(f, "partition<{} [{}]>", self.style, fs.join(", "))
    }
}

/// A memref declaration: the array storage of the function.
#[derive(Clone, Debug, PartialEq)]
pub struct MemRefDecl {
    /// Array name.
    pub name: String,
    /// Shape.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DataType,
    /// Optional partitioning.
    pub partition: Option<PartitionInfo>,
}

impl MemRefDecl {
    /// Creates an unpartitioned memref.
    pub fn new(name: impl Into<String>, shape: &[usize], dtype: DataType) -> Self {
        MemRefDecl {
            name: name.into(),
            shape: shape.to_vec(),
            dtype,
            partition: None,
        }
    }

    /// The number of banks (1 when unpartitioned).
    pub fn banks(&self) -> i64 {
        self.partition.as_ref().map_or(1, PartitionInfo::banks)
    }

    /// Memory bits occupied by the array.
    pub fn bits(&self) -> u64 {
        self.shape.iter().product::<usize>() as u64 * u64::from(self.dtype.bits())
    }
}

impl fmt::Display for MemRefDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.shape.iter().map(|d| d.to_string()).collect();
        write!(f, "memref<{}x{}>", dims.join("x"), self.dtype)?;
        if let Some(p) = &self.partition {
            write!(f, " {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attrs_display_and_any() {
        let mut a = HlsAttrs::none();
        assert!(!a.any());
        a.pipeline_ii = Some(1);
        a.unroll_factor = Some(4);
        assert!(a.any());
        assert_eq!(a.to_string(), "{pipeline_ii = 1, unroll = 4}");
    }

    #[test]
    fn partition_banks() {
        let p = PartitionInfo {
            factors: vec![4, 4],
            style: PartitionStyle::Cyclic,
        };
        assert_eq!(p.banks(), 16);
        let p1 = PartitionInfo {
            factors: vec![1],
            style: PartitionStyle::Block,
        };
        assert_eq!(p1.banks(), 1);
    }

    #[test]
    fn memref_properties() {
        let mut m = MemRefDecl::new("A", &[32, 32], DataType::F32);
        assert_eq!(m.banks(), 1);
        assert_eq!(m.bits(), 32 * 32 * 32);
        m.partition = Some(PartitionInfo {
            factors: vec![2, 8],
            style: PartitionStyle::Cyclic,
        });
        assert_eq!(m.banks(), 16);
        assert!(m.to_string().contains("memref<32x32xfloat>"));
    }
}
