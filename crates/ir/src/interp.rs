//! An interpreter for affine-dialect functions.
//!
//! Executes the IR against a [`pom_dsl::MemoryState`]. Used by the test
//! suite to prove that the *fully transformed* program (after any chain of
//! polyhedral transformations and lowering) computes exactly what the
//! reference DSL semantics compute.

use crate::ops::{AffineFunc, AffineOp};
use pom_dsl::{interp::eval_expr, MemoryState};
use std::collections::HashMap;

/// Executes a function, mutating `mem`.
///
/// # Panics
///
/// Panics on out-of-bounds accesses or references to missing arrays —
/// those are compiler bugs the tests are designed to surface.
pub fn execute_func(func: &AffineFunc, mem: &mut MemoryState) {
    let mut env: HashMap<String, i64> = HashMap::new();
    exec_ops(&func.body, &mut env, mem);
}

fn exec_ops(ops: &[AffineOp], env: &mut HashMap<String, i64>, mem: &mut MemoryState) {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                let lb = l
                    .lbs
                    .iter()
                    .map(|b| b.eval_lower(env))
                    .max()
                    .expect("loop without lower bound");
                let ub = l
                    .ubs
                    .iter()
                    .map(|b| b.eval_upper(env))
                    .min()
                    .expect("loop without upper bound");
                for v in lb..=ub {
                    env.insert(l.iv.clone(), v);
                    exec_ops(&l.body, env, mem);
                }
                env.remove(&l.iv);
            }
            AffineOp::If(i) => {
                if i.conds.iter().all(|c| c.satisfied(env)) {
                    exec_ops(&i.body, env, mem);
                }
            }
            AffineOp::Store(s) => {
                let v = eval_expr(&s.value, env, mem);
                mem.store(&s.dest, env, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::MemRefDecl;
    use crate::lower::{lower_to_affine, StmtBody};
    use pom_dsl::{reference_execute, DataType, Function};
    use pom_poly::AstBuilder;
    use std::collections::HashMap;

    /// End-to-end semantic equivalence: GEMM through split+interchange vs
    /// the reference interpreter.
    #[test]
    fn transformed_gemm_matches_reference() {
        let n = 6usize;
        let mut f = Function::new("gemm");
        let i = f.var("i", 0, n as i64);
        let j = f.var("j", 0, n as i64);
        let k = f.var("k", 0, n as i64);
        let a = f.placeholder("A", &[n, n], DataType::F32);
        let b = f.placeholder("B", &[n, n], DataType::F32);
        let c = f.placeholder("C", &[n, n], DataType::F32);
        f.compute(
            "s",
            &[i.clone(), j.clone(), k.clone()],
            a.at(&[&i, &j]) + b.at(&[&i, &k]) * c.at(&[&k, &j]),
            a.access(&[&i, &j]),
        );

        // Reference execution.
        let mut ref_mem = MemoryState::for_function_seeded(&f, 7);
        reference_execute(&f, &mut ref_mem);

        // Transformed execution: tile i,j by 2x3 then interchange intra-
        // tile loops; note GEMM is fully permutable in i and j, and k stays
        // innermost per statement instance ordering... k must keep relative
        // order w.r.t. itself only, which any reordering of (i, j) respects.
        let comp = f.find_compute("s").unwrap();
        let mut sp = comp.to_stmt_poly();
        sp.tile("i", "j", 2, 3, "i0", "j0", "i1", "j1");
        sp.interchange("i1", "j1");
        let mut builder = AstBuilder::new();
        builder.add_stmt(sp);
        let ast = builder.build();

        let bodies: HashMap<String, StmtBody> = [(
            "s".to_string(),
            StmtBody {
                name: "s".into(),
                orig_dims: comp.iter_names(),
                body: comp.body().clone(),
                store: comp.store().clone(),
            },
        )]
        .into();
        let memrefs = f
            .placeholders()
            .iter()
            .map(|p| MemRefDecl::new(p.name(), p.shape(), p.dtype()))
            .collect();
        let func = lower_to_affine("gemm", memrefs, &ast, &bodies);
        crate::verify::verify(&func).expect("valid IR");

        let mut ir_mem = MemoryState::for_function_seeded(&f, 7);
        execute_func(&func, &mut ir_mem);

        assert_eq!(
            ref_mem.array("A").unwrap().data(),
            ir_mem.array("A").unwrap().data()
        );
    }

    /// Skewing a Jacobi-style time stencil must preserve semantics.
    #[test]
    fn skewed_stencil_matches_reference() {
        let steps = 4i64;
        let width = 10i64;
        let mut f = Function::new("jacobi");
        let t = f.var("t", 1, steps);
        let i = f.var("i", 1, width - 1);
        let b = f.placeholder("B", &[steps as usize, width as usize], DataType::F32);
        let tm1 = t.expr() - 1;
        let im1 = i.expr() - 1;
        let ip1 = i.expr() + 1;
        f.compute(
            "s",
            &[t.clone(), i.clone()],
            (b.at(&[tm1.clone(), im1.clone()])
                + b.at(&[tm1.clone(), i.expr()])
                + b.at(&[tm1.clone(), ip1.clone()]))
                / 3.0,
            b.access(&[&t, &i]),
        );

        let mut ref_mem = MemoryState::for_function_seeded(&f, 3);
        reference_execute(&f, &mut ref_mem);

        let comp = f.find_compute("s").unwrap();
        let mut sp = comp.to_stmt_poly();
        sp.skew("t", "i", 1, "t2", "i2");
        let mut builder = AstBuilder::new();
        builder.add_stmt(sp);
        let bodies: HashMap<String, StmtBody> = [(
            "s".to_string(),
            StmtBody {
                name: "s".into(),
                orig_dims: comp.iter_names(),
                body: comp.body().clone(),
                store: comp.store().clone(),
            },
        )]
        .into();
        let memrefs = f
            .placeholders()
            .iter()
            .map(|p| MemRefDecl::new(p.name(), p.shape(), p.dtype()))
            .collect();
        let func = lower_to_affine("jacobi", memrefs, &builder.build(), &bodies);
        crate::verify::verify(&func).expect("valid IR");

        let mut ir_mem = MemoryState::for_function_seeded(&f, 3);
        execute_func(&func, &mut ir_mem);
        assert_eq!(
            ref_mem.array("B").unwrap().data(),
            ir_mem.array("B").unwrap().data()
        );
    }
}
