//! # pom-ir — the annotated affine dialect (layer 3, Section V-C)
//!
//! The reproduction's stand-in for MLIR's affine/arith/memref dialects,
//! extended with HLS pragma *attributes*. The polyhedral AST of layer 2
//! lowers onto this IR (`affine.for` / `affine.if` / `affine.store` ops
//! with `arith` expression bodies over `memref` declarations); hardware
//! optimizations then attach [`HlsAttrs`] (pipeline II, unroll factors)
//! to loops and [`PartitionInfo`] to memrefs, exactly where the paper
//! inserts its pragma-type operations (Fig. 9(d)).
//!
//! The crate also provides:
//!
//! * a verifier ([`mod@verify`]) enforcing structural invariants,
//! * an MLIR-flavoured printer (`Display` on [`AffineFunc`]),
//! * an interpreter ([`interp`]) executing the IR against a
//!   [`pom_dsl::MemoryState`], which powers the semantic-equivalence
//!   tests between reference DSL execution and fully transformed IR.

pub mod attrs;
pub mod interp;
pub mod lower;
pub mod ops;
pub mod passes;
pub mod verify;

pub use attrs::{HlsAttrs, MemRefDecl, PartitionInfo, RawAttr};
pub use interp::execute_func;
pub use lower::{lower_to_affine, StmtBody};
pub use ops::{AffineFunc, AffineOp, ForOp, IfOp, StoreOp};
pub use passes::{
    CheckHook, CollapseUnitLoops, LintHook, MaterializeUnroll, Pass, PassIssue, PassManager,
    SimplifyBounds,
};
pub use verify::{verify, VerifyError};

/// Floor division toward negative infinity.
pub(crate) fn floor_div_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    a.div_euclid(b)
}

/// Ceiling division toward positive infinity.
pub(crate) fn ceil_div_i64(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    -((-a).div_euclid(b))
}
