//! Lowering from the polyhedral AST (layer 2) to the affine dialect
//! (layer 3) — the mapping of Fig. 9(d): for-nodes become `affine.for`,
//! if-nodes become `affine.if`, and user-nodes are expanded into
//! `affine.store` ops by retrieving the statement information attached to
//! the AST (the paper's ⑥⑦).

use crate::attrs::MemRefDecl;
use crate::ops::{AffineFunc, AffineOp, ForOp, IfOp, StoreOp};
use pom_dsl::Expr;
use pom_poly::{AccessFn, AstNode, LinearExpr};
use std::collections::HashMap;

/// The computation statement attached to user nodes: the compute body and
/// store destination over the *original* iterator names.
#[derive(Clone, Debug, PartialEq)]
pub struct StmtBody {
    /// Statement name (matches the AST user nodes).
    pub name: String,
    /// Original iterator names, in the order of the user-node arguments.
    pub orig_dims: Vec<String>,
    /// The compute body over the original iterators.
    pub body: Expr,
    /// Store destination over the original iterators.
    pub store: AccessFn,
}

impl StmtBody {
    /// Instantiates the statement at concrete user-node arguments: every
    /// original iterator is replaced by its expression over the loop ivs.
    /// Substitution is capture-avoiding (original names may collide with
    /// loop iv names).
    pub fn instantiate(&self, args: &[LinearExpr]) -> (Expr, AccessFn) {
        assert_eq!(
            args.len(),
            self.orig_dims.len(),
            "statement {} expects {} args, got {}",
            self.name,
            self.orig_dims.len(),
            args.len()
        );
        let placeholders: Vec<String> = self
            .orig_dims
            .iter()
            .map(|d| format!("__stmt_{d}"))
            .collect();
        let mut body = self.body.clone();
        let mut store_idx: Vec<LinearExpr> = self.store.indices.clone();
        for (d, p) in self.orig_dims.iter().zip(&placeholders) {
            let pv = LinearExpr::var(p);
            body = body.substituted(d, &pv);
            for e in &mut store_idx {
                *e = e.substituted(d, &pv);
            }
        }
        for (p, a) in placeholders.iter().zip(args) {
            body = body.substituted(p, a);
            for e in &mut store_idx {
                *e = e.substituted(p, a);
            }
        }
        (body, AccessFn::new(self.store.array.clone(), store_idx))
    }
}

/// Lowers a polyhedral AST into an [`AffineFunc`].
///
/// # Panics
///
/// Panics if a user node references a statement missing from `bodies`.
pub fn lower_to_affine(
    name: &str,
    memrefs: Vec<MemRefDecl>,
    ast: &[AstNode],
    bodies: &HashMap<String, StmtBody>,
) -> AffineFunc {
    let mut func = AffineFunc::new(name);
    func.memrefs = memrefs;
    func.body = lower_nodes(ast, bodies);
    func
}

fn lower_nodes(nodes: &[AstNode], bodies: &HashMap<String, StmtBody>) -> Vec<AffineOp> {
    let mut out = Vec::new();
    for n in nodes {
        match n {
            AstNode::For { iv, lbs, ubs, body } => out.push(AffineOp::For(ForOp {
                extra: Vec::new(),
                iv: iv.clone(),
                lbs: lbs.clone(),
                ubs: ubs.clone(),
                attrs: Default::default(),
                body: lower_nodes(body, bodies),
            })),
            AstNode::If { conds, body } => out.push(AffineOp::If(IfOp {
                conds: conds.clone(),
                body: lower_nodes(body, bodies),
            })),
            AstNode::Block(body) => out.extend(lower_nodes(body, bodies)),
            AstNode::User { stmt, args } => {
                let sb = bodies
                    .get(stmt)
                    .unwrap_or_else(|| panic!("no statement body registered for {stmt}"));
                let (value, dest) = sb.instantiate(args);
                out.push(AffineOp::Store(StoreOp {
                    stmt: stmt.clone(),
                    dest,
                    value,
                }));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;
    use pom_poly::{AstBuilder, StmtPoly};

    fn gemm_body() -> StmtBody {
        // A[i][j] += B[i][k] * C[k][j]
        let load = |a: &str, x: LinearExpr, y: LinearExpr| Expr::Load(AccessFn::new(a, vec![x, y]));
        let i = LinearExpr::var("i");
        let j = LinearExpr::var("j");
        let k = LinearExpr::var("k");
        StmtBody {
            name: "s".into(),
            orig_dims: vec!["i".into(), "j".into(), "k".into()],
            body: load("A", i.clone(), j.clone())
                + load("B", i.clone(), k.clone()) * load("C", k.clone(), j.clone()),
            store: AccessFn::new("A", vec![i, j]),
        }
    }

    #[test]
    fn lower_identity_schedule() {
        let sp = StmtPoly::new("s", &[("i", 0, 7), ("j", 0, 7), ("k", 0, 7)]);
        let mut b = AstBuilder::new();
        b.add_stmt(sp);
        let ast = b.build();
        let mut bodies = HashMap::new();
        bodies.insert("s".to_string(), gemm_body());
        let memrefs = vec![
            MemRefDecl::new("A", &[8, 8], DataType::F32),
            MemRefDecl::new("B", &[8, 8], DataType::F32),
            MemRefDecl::new("C", &[8, 8], DataType::F32),
        ];
        let f = lower_to_affine("gemm", memrefs, &ast, &bodies);
        assert_eq!(f.body.len(), 1);
        assert_eq!(f.body[0].loop_depth(), 3);
        assert_eq!(f.stores().len(), 1);
        let s = &f.stores()[0];
        assert_eq!(s.dest.array, "A");
        assert_eq!(s.dest.indices[0], LinearExpr::var("i"));
    }

    #[test]
    fn lower_tiled_schedule_rewrites_indices() {
        let mut sp = StmtPoly::new("s", &[("i", 0, 7), ("j", 0, 7), ("k", 0, 7)]);
        sp.split("j", 4, "j0", "j1");
        let mut b = AstBuilder::new();
        b.add_stmt(sp);
        let ast = b.build();
        let mut bodies = HashMap::new();
        bodies.insert("s".to_string(), gemm_body());
        let f = lower_to_affine("gemm", vec![], &ast, &bodies);
        let s = &f.stores()[0];
        // A[i][4*j0 + j1]
        assert_eq!(s.dest.indices[1].coeff("j0"), 4);
        assert_eq!(s.dest.indices[1].coeff("j1"), 1);
        // Loads rewritten too.
        let loads = s.value.loads();
        let c_load = loads.iter().find(|l| l.array == "C").unwrap();
        assert_eq!(c_load.indices[1].coeff("j0"), 4);
    }

    #[test]
    fn instantiate_handles_name_collision() {
        // Statement over original dim "i", lowered into a loop also named
        // "i" but with arg i+1 (shifted schedule).
        let sb = StmtBody {
            name: "s".into(),
            orig_dims: vec!["i".into()],
            body: Expr::Load(AccessFn::new("A", vec![LinearExpr::var("i")])),
            store: AccessFn::new("B", vec![LinearExpr::var("i")]),
        };
        let (body, dest) = sb.instantiate(&[LinearExpr::var("i") + 1]);
        assert_eq!(dest.indices[0], LinearExpr::var("i") + 1);
        assert_eq!(body.loads()[0].indices[0], LinearExpr::var("i") + 1);
    }

    #[test]
    #[should_panic(expected = "no statement body registered")]
    fn missing_body_panics() {
        let sp = StmtPoly::new("ghost", &[("i", 0, 3)]);
        let mut b = AstBuilder::new();
        b.add_stmt(sp);
        lower_to_affine("f", vec![], &b.build(), &HashMap::new());
    }
}
