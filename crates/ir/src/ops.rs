//! The affine dialect operations.
//!
//! Structured ops in the style of MLIR's affine dialect: `affine.for`
//! (with HLS attributes), `affine.if`, and `affine.store` whose value is
//! an `arith` expression DAG ([`pom_dsl::Expr`]) containing `affine.load`
//! leaves.

use crate::attrs::{HlsAttrs, MemRefDecl, RawAttr};
use pom_poly::{AccessFn, Bound, Constraint};
use std::fmt;

/// An `affine.for` operation: `for iv = max(lbs) .. min(ubs) step 1`.
#[derive(Clone, Debug, PartialEq)]
pub struct ForOp {
    /// Induction variable.
    pub iv: String,
    /// Lower-bound candidates (max semantics, ceil division).
    pub lbs: Vec<Bound>,
    /// Upper-bound candidates (min semantics, floor division; inclusive).
    pub ubs: Vec<Bound>,
    /// HLS attributes.
    pub attrs: HlsAttrs,
    /// Uninterpreted attributes (unknown or vendor pragmas); the
    /// verifier rejects unknown keys in the `hls.` namespace.
    pub extra: Vec<RawAttr>,
    /// Loop body.
    pub body: Vec<AffineOp>,
}

impl ForOp {
    /// Constant trip count when both bounds are constants.
    pub fn const_trip_count(&self) -> Option<i64> {
        let env = std::collections::HashMap::new();
        if self.lbs.iter().any(|b| !b.expr.is_constant())
            || self.ubs.iter().any(|b| !b.expr.is_constant())
        {
            return None;
        }
        let lb = self.lbs.iter().map(|b| b.eval_lower(&env)).max()?;
        let ub = self.ubs.iter().map(|b| b.eval_upper(&env)).min()?;
        Some((ub - lb + 1).max(0))
    }
}

/// An `affine.if` operation guarding its body with affine conditions.
#[derive(Clone, Debug, PartialEq)]
pub struct IfOp {
    /// Conjunction of conditions.
    pub conds: Vec<Constraint>,
    /// Guarded body.
    pub body: Vec<AffineOp>,
}

/// An `affine.store` of an `arith` expression.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreOp {
    /// Originating statement name (for diagnostics and estimation).
    pub stmt: String,
    /// Destination access.
    pub dest: AccessFn,
    /// Value expression (contains `affine.load` leaves).
    pub value: pom_dsl::Expr,
}

/// Any affine-dialect operation.
#[derive(Clone, Debug, PartialEq)]
pub enum AffineOp {
    /// `affine.for`.
    For(ForOp),
    /// `affine.if`.
    If(IfOp),
    /// `affine.store`.
    Store(StoreOp),
}

impl AffineOp {
    /// Walks all ops depth-first, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a AffineOp)) {
        f(self);
        match self {
            AffineOp::For(op) => op.body.iter().for_each(|o| o.walk(f)),
            AffineOp::If(op) => op.body.iter().for_each(|o| o.walk(f)),
            AffineOp::Store(_) => {}
        }
    }

    /// Walks all ops depth-first with mutation.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut AffineOp)) {
        f(self);
        match self {
            AffineOp::For(op) => op.body.iter_mut().for_each(|o| o.walk_mut(f)),
            AffineOp::If(op) => op.body.iter_mut().for_each(|o| o.walk_mut(f)),
            AffineOp::Store(_) => {}
        }
    }

    /// Maximum loop depth under this op.
    pub fn loop_depth(&self) -> usize {
        match self {
            AffineOp::For(op) => 1 + op.body.iter().map(AffineOp::loop_depth).max().unwrap_or(0),
            AffineOp::If(op) => op.body.iter().map(AffineOp::loop_depth).max().unwrap_or(0),
            AffineOp::Store(_) => 0,
        }
    }
}

/// A function in the affine dialect: memref declarations plus a body.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct AffineFunc {
    /// Function name.
    pub name: String,
    /// Declared memrefs.
    pub memrefs: Vec<MemRefDecl>,
    /// Top-level ops.
    pub body: Vec<AffineOp>,
}

impl AffineFunc {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>) -> Self {
        AffineFunc {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Memref lookup by name.
    pub fn memref(&self, name: &str) -> Option<&MemRefDecl> {
        self.memrefs.iter().find(|m| m.name == name)
    }

    /// Mutable memref lookup by name.
    pub fn memref_mut(&mut self, name: &str) -> Option<&mut MemRefDecl> {
        self.memrefs.iter_mut().find(|m| m.name == name)
    }

    /// Walks every op in the function.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a AffineOp)) {
        for op in &self.body {
            op.walk(f);
        }
    }

    /// Walks every op mutably.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut AffineOp)) {
        for op in &mut self.body {
            op.walk_mut(f);
        }
    }

    /// Finds the loop with induction variable `iv` and applies `f` to it.
    /// Returns false when no such loop exists.
    pub fn with_loop_mut(&mut self, iv: &str, f: impl FnOnce(&mut ForOp)) -> bool {
        let mut f = Some(f);
        let mut found = false;
        self.walk_mut(&mut |op| {
            if let AffineOp::For(forop) = op {
                if forop.iv == iv && !found {
                    if let Some(f) = f.take() {
                        f(forop);
                        found = true;
                    }
                }
            }
        });
        found
    }

    /// Attaches a pipeline attribute (`s.pipeline(iv, ii)` lowering).
    pub fn set_pipeline(&mut self, iv: &str, ii: i64) -> bool {
        self.with_loop_mut(iv, |l| l.attrs.pipeline_ii = Some(ii))
    }

    /// Attaches an unroll attribute.
    pub fn set_unroll(&mut self, iv: &str, factor: i64) -> bool {
        self.with_loop_mut(iv, |l| l.attrs.unroll_factor = Some(factor))
    }

    /// Applies `f` to **every** loop named `iv` whose body contains a
    /// store of statement `stmt` — nests of different statements may reuse
    /// iterator names, so attribute application must be statement-scoped.
    /// Returns the number of loops updated.
    pub fn for_stmt_loops_mut(
        &mut self,
        iv: &str,
        stmt: &str,
        mut f: impl FnMut(&mut ForOp),
    ) -> usize {
        fn contains_stmt(ops: &[AffineOp], stmt: &str) -> bool {
            ops.iter().any(|op| match op {
                AffineOp::Store(s) => s.stmt == stmt,
                AffineOp::For(l) => contains_stmt(&l.body, stmt),
                AffineOp::If(i) => contains_stmt(&i.body, stmt),
            })
        }
        fn go(
            ops: &mut [AffineOp],
            iv: &str,
            stmt: &str,
            f: &mut impl FnMut(&mut ForOp),
            count: &mut usize,
        ) {
            for op in ops {
                match op {
                    AffineOp::For(l) => {
                        if l.iv == iv && contains_stmt(&l.body, stmt) {
                            f(l);
                            *count += 1;
                        }
                        go(&mut l.body, iv, stmt, f, count);
                    }
                    AffineOp::If(i) => go(&mut i.body, iv, stmt, f, count),
                    AffineOp::Store(_) => {}
                }
            }
        }
        let mut count = 0;
        go(&mut self.body, iv, stmt, &mut f, &mut count);
        count
    }

    /// Statement-scoped pipeline attribute.
    pub fn set_pipeline_for_stmt(&mut self, iv: &str, stmt: &str, ii: i64) -> bool {
        self.for_stmt_loops_mut(iv, stmt, |l| l.attrs.pipeline_ii = Some(ii)) > 0
    }

    /// Statement-scoped unroll attribute.
    pub fn set_unroll_for_stmt(&mut self, iv: &str, stmt: &str, factor: i64) -> bool {
        self.for_stmt_loops_mut(iv, stmt, |l| l.attrs.unroll_factor = Some(factor)) > 0
    }

    /// All store ops in the function.
    pub fn stores(&self) -> Vec<&StoreOp> {
        let mut out = Vec::new();
        self.walk(&mut |op| {
            if let AffineOp::Store(s) = op {
                out.push(s);
            }
        });
        out
    }
}

fn bound_text(bs: &[Bound], lower: bool) -> String {
    let parts: Vec<String> = bs
        .iter()
        .map(|b| {
            if b.div == 1 {
                format!("{}", b.expr)
            } else if lower {
                format!("ceildiv({}, {})", b.expr, b.div)
            } else {
                format!("floordiv({}, {})", b.expr, b.div)
            }
        })
        .collect();
    if parts.len() == 1 {
        parts.into_iter().next().expect("len checked")
    } else if lower {
        format!("max({})", parts.join(", "))
    } else {
        format!("min({})", parts.join(", "))
    }
}

fn fmt_ops(ops: &[AffineOp], f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    let pad = "  ".repeat(depth);
    for op in ops {
        match op {
            AffineOp::For(l) => {
                write!(
                    f,
                    "{pad}affine.for %{} = {} to {}",
                    l.iv,
                    bound_text(&l.lbs, true),
                    bound_text(&l.ubs, false)
                )?;
                if l.attrs.any() || !l.extra.is_empty() {
                    let mut attrs = l.attrs.to_string();
                    if !l.extra.is_empty() {
                        let raw: Vec<String> = l.extra.iter().map(RawAttr::to_string).collect();
                        let sep = if l.attrs.any() { ", " } else { "" };
                        attrs = format!(
                            "{{{}{}{}}}",
                            attrs.trim_start_matches('{').trim_end_matches('}'),
                            sep,
                            raw.join(", ")
                        );
                    }
                    write!(f, " attributes {attrs}")?;
                }
                writeln!(f, " {{")?;
                fmt_ops(&l.body, f, depth + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            AffineOp::If(i) => {
                let cs: Vec<String> = i.conds.iter().map(|c| c.to_string()).collect();
                writeln!(f, "{pad}affine.if ({}) {{", cs.join(" && "))?;
                fmt_ops(&i.body, f, depth + 1)?;
                writeln!(f, "{pad}}}")?;
            }
            AffineOp::Store(s) => {
                let idx: Vec<String> = s.dest.indices.iter().map(|e| format!("{e}")).collect();
                writeln!(
                    f,
                    "{pad}affine.store {} -> %{}[{}]  // stmt {}",
                    s.value,
                    s.dest.array,
                    idx.join(", "),
                    s.stmt
                )?;
            }
        }
    }
    Ok(())
}

impl fmt::Display for AffineFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func @{}() {{", self.name)?;
        for m in &self.memrefs {
            writeln!(f, "  %{} = memref.alloc() : {}", m.name, m)?;
        }
        fmt_ops(&self.body, f, 1)?;
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pom_dsl::DataType;
    use pom_poly::LinearExpr;

    fn simple_loop() -> AffineFunc {
        let mut func = AffineFunc::new("f");
        func.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("A", vec![LinearExpr::var("i")]),
            value: pom_dsl::Expr::Const(1.0),
        };
        func.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![Bound::new(LinearExpr::constant_expr(0), 1)],
            ubs: vec![Bound::new(LinearExpr::constant_expr(7), 1)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(store)],
        }));
        func
    }

    #[test]
    fn trip_count() {
        let f = simple_loop();
        if let AffineOp::For(l) = &f.body[0] {
            assert_eq!(l.const_trip_count(), Some(8));
        } else {
            panic!("expected for");
        }
    }

    #[test]
    fn non_constant_trip_count_is_none() {
        let l = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![Bound::new(LinearExpr::var("i"), 1)],
            ubs: vec![Bound::new(LinearExpr::constant_expr(7), 1)],
            attrs: HlsAttrs::none(),
            body: vec![],
        };
        assert_eq!(l.const_trip_count(), None);
    }

    #[test]
    fn set_attributes_by_iv() {
        let mut f = simple_loop();
        assert!(f.set_pipeline("i", 1));
        assert!(f.set_unroll("i", 4));
        assert!(!f.set_pipeline("missing", 1));
        if let AffineOp::For(l) = &f.body[0] {
            assert_eq!(l.attrs.pipeline_ii, Some(1));
            assert_eq!(l.attrs.unroll_factor, Some(4));
        }
    }

    #[test]
    fn walk_and_stores() {
        let f = simple_loop();
        let mut count = 0;
        f.walk(&mut |_| count += 1);
        assert_eq!(count, 2); // for + store
        assert_eq!(f.stores().len(), 1);
        assert_eq!(f.body[0].loop_depth(), 1);
    }

    #[test]
    fn printer_is_mlir_flavoured() {
        let mut f = simple_loop();
        f.set_pipeline("i", 1);
        let text = f.to_string();
        assert!(text.contains("affine.for %i = 0 to 7"), "got: {text}");
        assert!(text.contains("pipeline_ii = 1"), "got: {text}");
        assert!(text.contains("memref.alloc"), "got: {text}");
        assert!(text.contains("affine.store"), "got: {text}");
    }
}
