//! IR passes over the affine dialect, MLIR-style: a [`PassManager`]
//! running named rewrites with optional inter-pass verification.
//!
//! Shipped passes:
//!
//! * [`SimplifyBounds`] — interval analysis over the loop nest drops
//!   dominated bound candidates (`max(0, -4*i0)` → `0` when `i0 >= 0`),
//!   cleaning both the printed IR and the emitted HLS C.
//! * [`CollapseUnitLoops`] — loops with a constant single-iteration range
//!   are inlined by substituting the induction variable.
//! * [`MaterializeUnroll`] — fully unrolls loops whose unroll factor
//!   covers a constant trip count, replicating the body with the iv
//!   substituted (what the HLS tool does spatially, made explicit).

use crate::ops::{AffineFunc, AffineOp};
use crate::verify::{verify, VerifyError};
use pom_poly::{Bound, LinearExpr};
use std::collections::HashMap;
use std::fmt;

/// An IR rewrite.
pub trait Pass {
    /// The pass name (diagnostics).
    fn name(&self) -> &'static str;
    /// Rewrites the function in place.
    fn run(&self, func: &mut AffineFunc);
}

/// Why a pipeline stopped: a structural invariant broke, an attached
/// lint hook rejected the function, or a translation-validation hook
/// rejected a rewrite.
#[derive(Debug)]
pub enum PassIssue {
    /// The verifier found the IR structurally invalid.
    Verify(VerifyError),
    /// The lint hook reported error-severity diagnostics (rendered).
    Lint(String),
    /// The check hook rejected a pass's rewrite (rendered certificate).
    Check(String),
}

impl fmt::Display for PassIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassIssue::Verify(e) => write!(f, "{e}"),
            PassIssue::Lint(msg) => write!(f, "lint errors:\n{msg}"),
            PassIssue::Check(msg) => write!(f, "pass check failed:\n{msg}"),
        }
    }
}

/// A semantic check the pipeline runs alongside structural verification —
/// in practice `pom-lint`'s error-severity diagnostics. A hook rather
/// than a direct dependency: the lint crate sits *above* the IR crate.
pub type LintHook = Box<dyn Fn(&AffineFunc) -> Result<(), String>>;

/// A per-pass translation-validation hook: `(pass name, before, after)`.
/// In practice `pom-verify`'s checked mode, which proves each rewrite
/// preserves per-statement write footprints. A hook rather than a direct
/// dependency: the verify crate sits *above* the IR crate.
pub type CheckHook = Box<dyn Fn(&str, &AffineFunc, &AffineFunc) -> Result<(), String>>;

/// Runs a sequence of passes, optionally verifying after each.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    lint: Option<LintHook>,
    check: Option<CheckHook>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables verification after every pass.
    pub fn verify_each(mut self, on: bool) -> Self {
        self.verify_each = on;
        self
    }

    /// Attaches a lint hook, run after every pass (after verification)
    /// and once on the final function even when the pipeline is empty.
    /// An `Err` aborts the pipeline, naming the offending pass.
    pub fn lint_each(mut self, hook: LintHook) -> Self {
        self.lint = Some(hook);
        self
    }

    /// Attaches a translation-validation hook, called after every pass
    /// with the pass name and the function before/after the rewrite
    /// (checked mode). An `Err` aborts the pipeline, naming the pass.
    pub fn check_each(mut self, hook: CheckHook) -> Self {
        self.check = Some(hook);
        self
    }

    /// Appends a pass.
    #[allow(clippy::should_implement_trait)] // builder method, not arithmetic
    pub fn add(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// The standard cleanup pipeline.
    pub fn standard() -> Self {
        PassManager::new()
            .verify_each(true)
            .add(SimplifyBounds)
            .add(CollapseUnitLoops)
    }

    /// Runs all passes.
    ///
    /// # Errors
    ///
    /// Returns the failing pass name and the issue when `verify_each` is
    /// enabled and a pass breaks an invariant, or when the `lint_each`
    /// hook rejects the function.
    pub fn run(&self, func: &mut AffineFunc) -> Result<(), (String, PassIssue)> {
        for p in &self.passes {
            let before = self.check.as_ref().map(|_| func.clone());
            p.run(func);
            if self.verify_each {
                verify(func).map_err(|e| (p.name().to_string(), PassIssue::Verify(e)))?;
            }
            if let (Some(hook), Some(before)) = (&self.check, &before) {
                hook(p.name(), before, func)
                    .map_err(|m| (p.name().to_string(), PassIssue::Check(m)))?;
            }
            if let Some(hook) = &self.lint {
                hook(func).map_err(|m| (p.name().to_string(), PassIssue::Lint(m)))?;
            }
        }
        if self.passes.is_empty() {
            if let Some(hook) = &self.lint {
                hook(func).map_err(|m| ("<entry>".to_string(), PassIssue::Lint(m)))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// SimplifyBounds
// ---------------------------------------------------------------------

/// Drops loop-bound candidates dominated under interval analysis.
pub struct SimplifyBounds;

/// The `[min, max]` interval of an affine expression given iv ranges.
fn expr_interval(e: &LinearExpr, ranges: &HashMap<String, (i64, i64)>) -> Option<(i64, i64)> {
    let mut lo = e.constant();
    let mut hi = e.constant();
    for (v, c) in e.terms() {
        let &(vlo, vhi) = ranges.get(v)?;
        if c >= 0 {
            lo += c * vlo;
            hi += c * vhi;
        } else {
            lo += c * vhi;
            hi += c * vlo;
        }
    }
    Some((lo, hi))
}

fn bound_interval(
    b: &Bound,
    lower: bool,
    ranges: &HashMap<String, (i64, i64)>,
) -> Option<(i64, i64)> {
    let (lo, hi) = expr_interval(&b.expr, ranges)?;
    Some(if lower {
        (
            crate::ceil_div_i64(lo, b.div),
            crate::ceil_div_i64(hi, b.div),
        )
    } else {
        (
            crate::floor_div_i64(lo, b.div),
            crate::floor_div_i64(hi, b.div),
        )
    })
}

fn prune_bounds(bs: &mut Vec<Bound>, lower: bool, ranges: &HashMap<String, (i64, i64)>) {
    if bs.len() <= 1 {
        return;
    }
    let intervals: Vec<Option<(i64, i64)>> = bs
        .iter()
        .map(|b| bound_interval(b, lower, ranges))
        .collect();
    let mut keep = vec![true; bs.len()];
    for i in 0..bs.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..bs.len() {
            if i == j || !keep[j] {
                continue;
            }
            let (Some(a), Some(b)) = (intervals[i], intervals[j]) else {
                continue;
            };
            // For lower bounds (max semantics), i dominates j when
            // min(i) >= max(j); for upper bounds (min semantics), when
            // max(i) <= min(j). Break ties by index to keep one.
            let dominates = if lower { a.0 >= b.1 } else { a.1 <= b.0 };
            let strict_or_first = a != b || i < j;
            if dominates && strict_or_first {
                keep[j] = false;
            }
        }
    }
    let mut idx = 0;
    bs.retain(|_| {
        let k = keep[idx];
        idx += 1;
        k
    });
}

fn simplify_ops(ops: &mut [AffineOp], ranges: &mut HashMap<String, (i64, i64)>) {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                prune_bounds(&mut l.lbs, true, ranges);
                prune_bounds(&mut l.ubs, false, ranges);
                // Range of this iv for the inner scope.
                let lo = l
                    .lbs
                    .iter()
                    .filter_map(|b| bound_interval(b, true, ranges))
                    .map(|(lo, _)| lo)
                    .max();
                let hi = l
                    .ubs
                    .iter()
                    .filter_map(|b| bound_interval(b, false, ranges))
                    .map(|(_, hi)| hi)
                    .min();
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    ranges.insert(l.iv.clone(), (lo, hi.max(lo)));
                }
                simplify_ops(&mut l.body, ranges);
                ranges.remove(&l.iv);
            }
            AffineOp::If(i) => simplify_ops(&mut i.body, ranges),
            AffineOp::Store(_) => {}
        }
    }
}

impl Pass for SimplifyBounds {
    fn name(&self) -> &'static str {
        "simplify-bounds"
    }
    fn run(&self, func: &mut AffineFunc) {
        let mut ranges = HashMap::new();
        simplify_ops(&mut func.body, &mut ranges);
    }
}

// ---------------------------------------------------------------------
// CollapseUnitLoops
// ---------------------------------------------------------------------

/// Inlines loops with a constant one-iteration range.
pub struct CollapseUnitLoops;

fn substitute_ops(ops: &mut Vec<AffineOp>, name: &str, value: i64) {
    let rep = LinearExpr::constant_expr(value);
    for op in ops {
        match op {
            AffineOp::For(l) => {
                for b in l.lbs.iter_mut().chain(l.ubs.iter_mut()) {
                    b.expr = b.expr.substituted(name, &rep);
                }
                substitute_ops(&mut l.body, name, value);
            }
            AffineOp::If(i) => {
                for c in &mut i.conds {
                    *c = c.substituted(name, &rep);
                }
                substitute_ops(&mut i.body, name, value);
            }
            AffineOp::Store(s) => {
                for e in &mut s.dest.indices {
                    *e = e.substituted(name, &rep);
                }
                s.value = s.value.substituted(name, &rep);
            }
        }
    }
}

fn collapse_ops(ops: &mut Vec<AffineOp>) {
    let mut i = 0;
    while i < ops.len() {
        let replace = if let AffineOp::For(l) = &mut ops[i] {
            collapse_ops(&mut l.body);
            // Loops carrying HLS attributes are kept: the attribute is the
            // information (a pipelined trip-1 loop still pipelines its
            // body under flattening).
            match (!l.attrs.any()).then(|| l.const_trip_count()).flatten() {
                Some(1) => {
                    let env = HashMap::new();
                    let v = l.lbs.iter().map(|b| b.eval_lower(&env)).max().unwrap_or(0);
                    let mut body = std::mem::take(&mut l.body);
                    substitute_ops(&mut body, &l.iv, v);
                    Some(body)
                }
                _ => None,
            }
        } else {
            if let AffineOp::If(f) = &mut ops[i] {
                collapse_ops(&mut f.body);
            }
            None
        };
        match replace {
            Some(body) => {
                let n = body.len();
                ops.splice(i..=i, body);
                i += n;
            }
            None => i += 1,
        }
    }
}

impl Pass for CollapseUnitLoops {
    fn name(&self) -> &'static str {
        "collapse-unit-loops"
    }
    fn run(&self, func: &mut AffineFunc) {
        collapse_ops(&mut func.body);
    }
}

// ---------------------------------------------------------------------
// MaterializeUnroll
// ---------------------------------------------------------------------

/// Fully unrolls loops whose requested unroll factor covers their constant
/// trip count — making the spatial replication explicit in the IR.
pub struct MaterializeUnroll;

fn unroll_ops(ops: &mut Vec<AffineOp>) {
    let mut i = 0;
    while i < ops.len() {
        let replace = if let AffineOp::For(l) = &mut ops[i] {
            unroll_ops(&mut l.body);
            match (l.attrs.unroll_factor, l.const_trip_count()) {
                (Some(f), Some(trip)) if f >= trip && trip >= 1 => {
                    let env = HashMap::new();
                    let lb = l.lbs.iter().map(|b| b.eval_lower(&env)).max().unwrap_or(0);
                    let mut expanded = Vec::new();
                    for k in 0..trip {
                        let mut copy = l.body.clone();
                        substitute_ops(&mut copy, &l.iv, lb + k);
                        expanded.extend(copy);
                    }
                    Some(expanded)
                }
                _ => None,
            }
        } else {
            if let AffineOp::If(f) = &mut ops[i] {
                unroll_ops(&mut f.body);
            }
            None
        };
        match replace {
            Some(body) => {
                let n = body.len();
                ops.splice(i..=i, body);
                i += n;
            }
            None => i += 1,
        }
    }
}

impl Pass for MaterializeUnroll {
    fn name(&self) -> &'static str {
        "materialize-unroll"
    }
    fn run(&self, func: &mut AffineFunc) {
        unroll_ops(&mut func.body);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{HlsAttrs, MemRefDecl};
    use crate::ops::{ForOp, StoreOp};
    use pom_dsl::{DataType, MemoryState};
    use pom_poly::AccessFn;

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    /// `for i in 0..=3 { for j in max(0, i-10)..=min(7, i+100) { A[j] += 1 } }`
    fn redundant_bounds_func() -> AffineFunc {
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("A", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Load(AccessFn::new("A", vec![LinearExpr::var("j")])) + 1.0,
        };
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0), Bound::new(LinearExpr::var("i") - 10, 1)],
            ubs: vec![cb(7), Bound::new(LinearExpr::var("i") + 100, 1)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(inner)],
        };
        f.body.push(AffineOp::For(outer));
        f
    }

    #[test]
    fn simplify_bounds_drops_dominated_candidates() {
        let mut f = redundant_bounds_func();
        let before_exec = run_interp(&f);
        PassManager::standard().run(&mut f).expect("passes verify");
        if let AffineOp::For(outer) = &f.body[0] {
            if let AffineOp::For(inner) = &outer.body[0] {
                assert_eq!(inner.lbs.len(), 1, "i-10 dominated by 0: {:?}", inner.lbs);
                assert_eq!(inner.ubs.len(), 1, "i+100 dominated by 7: {:?}", inner.ubs);
            } else {
                panic!("inner loop missing");
            }
        }
        assert_eq!(run_interp(&f), before_exec, "semantics preserved");
    }

    #[test]
    fn collapse_unit_loops_inlines() {
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("A", vec![LinearExpr::var("i") + LinearExpr::var("one")]),
            value: pom_dsl::Expr::Const(1.0),
        };
        let unit = ForOp {
            extra: Vec::new(),
            iv: "one".into(),
            lbs: vec![cb(3)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(store)],
        };
        let outer = ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(2)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(unit)],
        };
        f.body.push(AffineOp::For(outer));
        let before = run_interp(&f);
        PassManager::new()
            .verify_each(true)
            .add(CollapseUnitLoops)
            .run(&mut f)
            .expect("verifies");
        // The unit loop is gone; the store index became i + 3.
        if let AffineOp::For(outer) = &f.body[0] {
            assert!(matches!(outer.body[0], AffineOp::Store(_)));
            if let AffineOp::Store(s) = &outer.body[0] {
                assert_eq!(s.dest.indices[0], LinearExpr::var("i") + 3);
            }
        }
        assert_eq!(run_interp(&f), before);
    }

    #[test]
    fn materialize_unroll_replicates_body() {
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("A", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Affine(LinearExpr::var("j") * 2),
        };
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs {
                unroll_factor: Some(4),
                ..Default::default()
            },
            body: vec![AffineOp::Store(store)],
        };
        f.body.push(AffineOp::For(inner));
        let before = run_interp(&f);
        PassManager::new()
            .verify_each(true)
            .add(MaterializeUnroll)
            .run(&mut f)
            .expect("verifies");
        assert_eq!(f.body.len(), 4, "four replicated stores");
        assert!(f.body.iter().all(|op| matches!(op, AffineOp::Store(_))));
        assert_eq!(run_interp(&f), before);
    }

    #[test]
    fn partial_unroll_is_left_alone() {
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        let store = StoreOp {
            stmt: "S".into(),
            dest: AccessFn::new("A", vec![LinearExpr::var("j")]),
            value: pom_dsl::Expr::Const(1.0),
        };
        let inner = ForOp {
            extra: Vec::new(),
            iv: "j".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs {
                unroll_factor: Some(2),
                ..Default::default()
            },
            body: vec![AffineOp::Store(store)],
        };
        f.body.push(AffineOp::For(inner));
        PassManager::new()
            .add(MaterializeUnroll)
            .run(&mut f)
            .unwrap();
        assert!(matches!(f.body[0], AffineOp::For(_)), "factor < trip kept");
    }

    #[test]
    fn check_hook_sees_before_and_after_and_can_reject() {
        let mut f = redundant_bounds_func();
        let err = PassManager::new()
            .add(SimplifyBounds)
            .check_each(Box::new(|pass, before, after| {
                assert_eq!(pass, "simplify-bounds");
                assert_ne!(before, after, "rewrite visible to the hook");
                Err("rejected by test hook".to_string())
            }))
            .run(&mut f)
            .unwrap_err();
        assert_eq!(err.0, "simplify-bounds");
        assert!(matches!(err.1, PassIssue::Check(ref m) if m.contains("rejected by test hook")));
        assert!(err.1.to_string().contains("pass check failed"));

        let mut f = redundant_bounds_func();
        PassManager::standard()
            .check_each(Box::new(|_, _, _| Ok(())))
            .run(&mut f)
            .expect("accepting hook does not abort");
    }

    fn run_interp(f: &AffineFunc) -> Vec<f64> {
        let mut mem = MemoryState::new();
        for m in &f.memrefs {
            mem.insert(m.name.clone(), pom_dsl::ArrayData::zeros(&m.shape));
        }
        crate::interp::execute_func(f, &mut mem);
        f.memrefs
            .iter()
            .flat_map(|m| mem.array(&m.name).unwrap().data().to_vec())
            .collect()
    }
}
