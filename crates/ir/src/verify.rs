//! Structural verification of affine-dialect functions.

use crate::ops::{AffineFunc, AffineOp};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError(pub String);

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies an [`AffineFunc`]:
///
/// * induction variables are unique along every nesting path,
/// * bound and condition expressions only reference in-scope ivs,
/// * loads/stores target declared memrefs with matching rank — including
///   loads nested inside `affine.if` bodies,
/// * store index expressions only reference in-scope ivs,
/// * HLS attributes are sane (II >= 1, unroll factor >= 1),
/// * array partitions are sane (one factor per dimension, factors >= 1).
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify(func: &AffineFunc) -> Result<(), VerifyError> {
    for m in &func.memrefs {
        if let Some(p) = &m.partition {
            if p.factors.len() != m.shape.len() {
                return Err(VerifyError(format!(
                    "memref {} has rank {}, partition has {} factors",
                    m.name,
                    m.shape.len(),
                    p.factors.len()
                )));
            }
            if let Some(f) = p.factors.iter().find(|&&f| f < 1) {
                return Err(VerifyError(format!(
                    "memref {} has non-positive partition factor {f}",
                    m.name
                )));
            }
        }
    }
    let memrefs: HashSet<&str> = func.memrefs.iter().map(|m| m.name.as_str()).collect();
    let mut scope: Vec<String> = Vec::new();
    verify_ops(func, &func.body, &mut scope, &memrefs)
}

fn check_expr_scope(
    e: &pom_poly::LinearExpr,
    scope: &[String],
    what: &str,
) -> Result<(), VerifyError> {
    for v in e.vars() {
        if !scope.iter().any(|s| s == v) {
            return Err(VerifyError(format!(
                "{what} references {v}, which is not an enclosing induction variable"
            )));
        }
    }
    Ok(())
}

fn verify_ops(
    func: &AffineFunc,
    ops: &[AffineOp],
    scope: &mut Vec<String>,
    memrefs: &HashSet<&str>,
) -> Result<(), VerifyError> {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                if scope.contains(&l.iv) {
                    return Err(VerifyError(format!(
                        "induction variable {} shadows an enclosing loop",
                        l.iv
                    )));
                }
                if l.lbs.is_empty() || l.ubs.is_empty() {
                    return Err(VerifyError(format!("loop {} lacks bounds", l.iv)));
                }
                for b in l.lbs.iter().chain(&l.ubs) {
                    if b.div < 1 {
                        return Err(VerifyError(format!(
                            "loop {} has non-positive bound divisor {}",
                            l.iv, b.div
                        )));
                    }
                    check_expr_scope(&b.expr, scope, &format!("bound of loop {}", l.iv))?;
                }
                if let Some(ii) = l.attrs.pipeline_ii {
                    if ii < 1 {
                        return Err(VerifyError(format!(
                            "loop {} has pipeline II {ii} < 1",
                            l.iv
                        )));
                    }
                }
                if let Some(u) = l.attrs.unroll_factor {
                    if u < 1 {
                        return Err(VerifyError(format!(
                            "loop {} has unroll factor {u} < 1",
                            l.iv
                        )));
                    }
                }
                scope.push(l.iv.clone());
                verify_ops(func, &l.body, scope, memrefs)?;
                scope.pop();
            }
            AffineOp::If(i) => {
                for c in &i.conds {
                    check_expr_scope(&c.expr, scope, "if condition")?;
                }
                verify_ops(func, &i.body, scope, memrefs)?;
            }
            AffineOp::Store(s) => {
                let check_access = |a: &pom_poly::AccessFn| -> Result<(), VerifyError> {
                    if !memrefs.contains(a.array.as_str()) {
                        return Err(VerifyError(format!(
                            "access to undeclared memref {}",
                            a.array
                        )));
                    }
                    let decl = func.memref(&a.array).expect("checked above");
                    if decl.shape.len() != a.indices.len() {
                        return Err(VerifyError(format!(
                            "memref {} has rank {}, access has {} indices",
                            a.array,
                            decl.shape.len(),
                            a.indices.len()
                        )));
                    }
                    for e in &a.indices {
                        check_expr_scope(e, scope, &format!("index of {}", a.array))?;
                    }
                    Ok(())
                };
                check_access(&s.dest)?;
                for l in s.value.loads() {
                    check_access(l)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{HlsAttrs, MemRefDecl};
    use crate::ops::{ForOp, StoreOp};
    use pom_dsl::{DataType, Expr};
    use pom_poly::{AccessFn, Bound, LinearExpr};

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn valid_func() -> AffineFunc {
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        f.body.push(AffineOp::For(ForOp {
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(StoreOp {
                stmt: "S".into(),
                dest: AccessFn::new("A", vec![LinearExpr::var("i")]),
                value: Expr::Const(1.0),
            })],
        }));
        f
    }

    #[test]
    fn valid_function_verifies() {
        assert_eq!(verify(&valid_func()), Ok(()));
    }

    #[test]
    fn undeclared_memref_fails() {
        let mut f = valid_func();
        f.memrefs.clear();
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("undeclared memref A"));
    }

    #[test]
    fn out_of_scope_index_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            if let AffineOp::Store(s) = &mut l.body[0] {
                s.dest = AccessFn::new("A", vec![LinearExpr::var("z")]);
            }
        }
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("references z"));
    }

    #[test]
    fn rank_mismatch_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            if let AffineOp::Store(s) = &mut l.body[0] {
                s.dest = AccessFn::new("A", vec![LinearExpr::var("i"), LinearExpr::var("i")]);
            }
        }
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("rank"));
    }

    #[test]
    fn shadowed_iv_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            let inner = ForOp {
                iv: "i".into(),
                lbs: vec![cb(0)],
                ubs: vec![cb(3)],
                attrs: HlsAttrs::none(),
                body: vec![],
            };
            l.body.push(AffineOp::For(inner));
        }
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("shadows"));
    }

    #[test]
    fn bad_attributes_fail() {
        let mut f = valid_func();
        f.set_pipeline("i", 0);
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("II 0"));

        let mut f = valid_func();
        f.set_unroll("i", -2);
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("unroll factor -2"));
    }

    #[test]
    fn rank_mismatched_load_inside_if_fails() {
        // for i { if (i >= 1) { A[i] = A[i][i] + 1 } } — the offending
        // access is a *load* nested inside an `affine.if` body.
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            let body = std::mem::take(&mut l.body);
            let mut guarded = body;
            if let AffineOp::Store(s) = &mut guarded[0] {
                s.value = Expr::Load(AccessFn::new(
                    "A",
                    vec![LinearExpr::var("i"), LinearExpr::var("i")],
                )) + 1.0;
            }
            l.body = vec![AffineOp::If(crate::ops::IfOp {
                conds: vec![pom_poly::Constraint::ge_zero(
                    LinearExpr::var("i") - LinearExpr::constant_expr(1),
                )],
                body: guarded,
            })];
        }
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("rank 1"), "{}", err.0);
        assert!(err.0.contains("2 indices"), "{}", err.0);
    }

    #[test]
    fn bad_partition_fails() {
        let mut f = valid_func();
        f.memrefs[0].partition = Some(crate::attrs::PartitionInfo {
            factors: vec![2, 2],
            style: pom_dsl::PartitionStyle::Cyclic,
        });
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("partition has 2 factors"), "{}", err.0);

        let mut f = valid_func();
        f.memrefs[0].partition = Some(crate::attrs::PartitionInfo {
            factors: vec![0],
            style: pom_dsl::PartitionStyle::Block,
        });
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("non-positive partition factor"), "{}", err.0);
    }

    #[test]
    fn missing_bounds_fail() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.ubs.clear();
        }
        let err = verify(&f).unwrap_err();
        assert!(err.0.contains("lacks bounds"));
    }
}
