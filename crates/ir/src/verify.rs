//! Structural verification of affine-dialect functions.

use crate::ops::{AffineFunc, AffineOp};
use std::collections::HashSet;
use std::fmt;

/// Raw `hls.`-namespace attribute keys the verifier understands. They
/// duplicate the typed [`crate::attrs::HlsAttrs`] fields, so even a
/// *known* key is rejected in raw form — the raw channel exists for
/// other namespaces (`vendor.*`, `debug.*`, ...).
const TYPED_HLS_KEYS: &[&str] = &[
    "hls.pipeline_ii",
    "hls.unroll_factor",
    "hls.dependence_free",
];

/// A verification failure with the op path it was found at.
///
/// `path` is the chain of enclosing induction variables; `stmt` is the
/// originating statement name when the failure is inside a store. Both
/// feed the rustc-style location line in the [`fmt::Display`] rendering.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// What went wrong.
    pub message: String,
    /// Enclosing loop path (outermost first), empty at function level.
    pub path: Vec<String>,
    /// Originating statement, when the failure is inside a store.
    pub stmt: Option<String>,
}

impl VerifyError {
    /// A failure at function level (no op path).
    pub fn new(message: impl Into<String>) -> Self {
        VerifyError {
            message: message.into(),
            path: Vec::new(),
            stmt: None,
        }
    }

    /// A failure at a loop path.
    pub fn at(message: impl Into<String>, path: &[String]) -> Self {
        VerifyError {
            message: message.into(),
            path: path.to_vec(),
            stmt: None,
        }
    }

    /// A failure inside statement `stmt` at a loop path.
    pub fn at_stmt(message: impl Into<String>, path: &[String], stmt: &str) -> Self {
        VerifyError {
            message: message.into(),
            path: path.to_vec(),
            stmt: Some(stmt.to_string()),
        }
    }

    /// Human-readable location, e.g. `for i / for j / S` or `<function>`.
    pub fn location(&self) -> String {
        let mut parts: Vec<String> = self.path.iter().map(|iv| format!("for {iv}")).collect();
        if let Some(s) = &self.stmt {
            parts.push(s.clone());
        }
        if parts.is_empty() {
            "<function>".to_string()
        } else {
            parts.join(" / ")
        }
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed: {}", self.message)?;
        if !self.path.is_empty() || self.stmt.is_some() {
            write!(f, "\n  --> {}", self.location())?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verifies an [`AffineFunc`]:
///
/// * induction variables are unique along every nesting path,
/// * bound and condition expressions only reference in-scope ivs,
/// * loads/stores target declared memrefs with matching rank — including
///   loads nested inside `affine.if` bodies,
/// * store index expressions only reference in-scope ivs,
/// * HLS attributes are sane (II >= 1, unroll factor >= 1),
/// * raw attributes in the `hls.` namespace are rejected — unknown keys
///   are likely misspelled pragmas, known keys must use the typed
///   [`crate::attrs::HlsAttrs`] fields,
/// * array partitions are sane (one factor per dimension, factors >= 1).
///
/// # Errors
///
/// Returns the first violation found, with the op path it occurred at.
pub fn verify(func: &AffineFunc) -> Result<(), VerifyError> {
    for m in &func.memrefs {
        if let Some(p) = &m.partition {
            if p.factors.len() != m.shape.len() {
                return Err(VerifyError::new(format!(
                    "memref {} has rank {}, partition has {} factors",
                    m.name,
                    m.shape.len(),
                    p.factors.len()
                )));
            }
            if let Some(f) = p.factors.iter().find(|&&f| f < 1) {
                return Err(VerifyError::new(format!(
                    "memref {} has non-positive partition factor {f}",
                    m.name
                )));
            }
        }
    }
    let memrefs: HashSet<&str> = func.memrefs.iter().map(|m| m.name.as_str()).collect();
    let mut scope: Vec<String> = Vec::new();
    verify_ops(func, &func.body, &mut scope, &memrefs)
}

/// The known `hls.*` key closest to `key` by edit distance, when close
/// enough to be a plausible typo (distance <= 1/3 of the key's length).
fn nearest_hls_key(key: &str) -> Option<&'static str> {
    TYPED_HLS_KEYS
        .iter()
        .map(|k| (edit_distance(key, k), *k))
        .min()
        .filter(|&(d, _)| d <= key.len().max(1) / 3)
        .map(|(_, k)| k)
}

/// Levenshtein distance over bytes (attribute keys are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn check_expr_scope(
    e: &pom_poly::LinearExpr,
    scope: &[String],
    what: &str,
) -> Result<(), VerifyError> {
    for v in e.vars() {
        if !scope.iter().any(|s| s == v) {
            return Err(VerifyError::at(
                format!("{what} references {v}, which is not an enclosing induction variable"),
                scope,
            ));
        }
    }
    Ok(())
}

fn verify_ops(
    func: &AffineFunc,
    ops: &[AffineOp],
    scope: &mut Vec<String>,
    memrefs: &HashSet<&str>,
) -> Result<(), VerifyError> {
    for op in ops {
        match op {
            AffineOp::For(l) => {
                if scope.contains(&l.iv) {
                    return Err(VerifyError::at(
                        format!("induction variable {} shadows an enclosing loop", l.iv),
                        scope,
                    ));
                }
                if l.lbs.is_empty() || l.ubs.is_empty() {
                    return Err(VerifyError::at(
                        format!("loop {} lacks bounds", l.iv),
                        scope,
                    ));
                }
                for b in l.lbs.iter().chain(&l.ubs) {
                    if b.div < 1 {
                        return Err(VerifyError::at(
                            format!("loop {} has non-positive bound divisor {}", l.iv, b.div),
                            scope,
                        ));
                    }
                    check_expr_scope(&b.expr, scope, &format!("bound of loop {}", l.iv))?;
                }
                if let Some(ii) = l.attrs.pipeline_ii {
                    if ii < 1 {
                        return Err(VerifyError::at(
                            format!("loop {} has pipeline II {ii} < 1", l.iv),
                            scope,
                        ));
                    }
                }
                if let Some(u) = l.attrs.unroll_factor {
                    if u < 1 {
                        return Err(VerifyError::at(
                            format!("loop {} has unroll factor {u} < 1", l.iv),
                            scope,
                        ));
                    }
                }
                for r in &l.extra {
                    if r.key.starts_with("hls.") {
                        let msg = if TYPED_HLS_KEYS.contains(&r.key.as_str()) {
                            format!(
                                "raw attribute {} on loop {} duplicates a typed HLS \
                                 attribute; set the HlsAttrs field instead",
                                r.key, l.iv
                            )
                        } else {
                            let mut msg = format!(
                                "unknown HLS pragma attribute {} on loop {} (known: {})",
                                r.key,
                                l.iv,
                                TYPED_HLS_KEYS.join(", ")
                            );
                            if let Some(near) = nearest_hls_key(&r.key) {
                                msg.push_str(&format!("; did you mean `{near}`?"));
                            }
                            msg
                        };
                        return Err(VerifyError::at(msg, scope));
                    }
                }
                scope.push(l.iv.clone());
                verify_ops(func, &l.body, scope, memrefs)?;
                scope.pop();
            }
            AffineOp::If(i) => {
                for c in &i.conds {
                    check_expr_scope(&c.expr, scope, "if condition")?;
                }
                verify_ops(func, &i.body, scope, memrefs)?;
            }
            AffineOp::Store(s) => {
                let check_access = |a: &pom_poly::AccessFn| -> Result<(), VerifyError> {
                    if !memrefs.contains(a.array.as_str()) {
                        return Err(VerifyError::at_stmt(
                            format!("access to undeclared memref {}", a.array),
                            scope,
                            &s.stmt,
                        ));
                    }
                    let decl = func.memref(&a.array).expect("checked above");
                    if decl.shape.len() != a.indices.len() {
                        return Err(VerifyError::at_stmt(
                            format!(
                                "memref {} has rank {}, access has {} indices",
                                a.array,
                                decl.shape.len(),
                                a.indices.len()
                            ),
                            scope,
                            &s.stmt,
                        ));
                    }
                    for e in &a.indices {
                        check_expr_scope(e, scope, &format!("index of {}", a.array)).map_err(
                            |mut err| {
                                err.stmt = Some(s.stmt.clone());
                                err
                            },
                        )?;
                    }
                    Ok(())
                };
                check_access(&s.dest)?;
                for l in s.value.loads() {
                    check_access(l)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{HlsAttrs, MemRefDecl, RawAttr};
    use crate::ops::{ForOp, StoreOp};
    use pom_dsl::{DataType, Expr};
    use pom_poly::{AccessFn, Bound, LinearExpr};

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn valid_func() -> AffineFunc {
        let mut f = AffineFunc::new("f");
        f.memrefs.push(MemRefDecl::new("A", &[8], DataType::F32));
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(StoreOp {
                stmt: "S".into(),
                dest: AccessFn::new("A", vec![LinearExpr::var("i")]),
                value: Expr::Const(1.0),
            })],
        }));
        f
    }

    #[test]
    fn valid_function_verifies() {
        assert_eq!(verify(&valid_func()), Ok(()));
    }

    #[test]
    fn undeclared_memref_fails() {
        let mut f = valid_func();
        f.memrefs.clear();
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("undeclared memref A"));
        assert_eq!(err.path, vec!["i".to_string()]);
        assert_eq!(err.stmt.as_deref(), Some("S"));
    }

    #[test]
    fn out_of_scope_index_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            if let AffineOp::Store(s) = &mut l.body[0] {
                s.dest = AccessFn::new("A", vec![LinearExpr::var("z")]);
            }
        }
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("references z"));
        assert_eq!(err.stmt.as_deref(), Some("S"));
    }

    #[test]
    fn rank_mismatch_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            if let AffineOp::Store(s) = &mut l.body[0] {
                s.dest = AccessFn::new("A", vec![LinearExpr::var("i"), LinearExpr::var("i")]);
            }
        }
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("rank"));
    }

    #[test]
    fn shadowed_iv_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            let inner = ForOp {
                extra: Vec::new(),
                iv: "i".into(),
                lbs: vec![cb(0)],
                ubs: vec![cb(3)],
                attrs: HlsAttrs::none(),
                body: vec![],
            };
            l.body.push(AffineOp::For(inner));
        }
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("shadows"));
        assert_eq!(err.path, vec!["i".to_string()]);
    }

    #[test]
    fn bad_attributes_fail() {
        let mut f = valid_func();
        f.set_pipeline("i", 0);
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("II 0"));

        let mut f = valid_func();
        f.set_unroll("i", -2);
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("unroll factor -2"));
    }

    #[test]
    fn unknown_hls_pragma_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.extra.push(RawAttr::new("hls.pipelin_ii", "2"));
        }
        let err = verify(&f).unwrap_err();
        assert!(
            err.message
                .contains("unknown HLS pragma attribute hls.pipelin_ii"),
            "{}",
            err.message
        );
        assert!(err.message.contains("hls.pipeline_ii"), "{}", err.message);
    }

    #[test]
    fn unknown_hls_pragma_suggests_nearest_key() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.extra.push(RawAttr::new("hls.pipelin_ii", "2"));
        }
        let err = verify(&f).unwrap_err();
        assert!(
            err.message.contains("did you mean `hls.pipeline_ii`?"),
            "{}",
            err.message
        );

        // A key nothing like any known pragma gets no suggestion.
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.extra.push(RawAttr::new("hls.qzx", "1"));
        }
        let err = verify(&f).unwrap_err();
        assert!(!err.message.contains("did you mean"), "{}", err.message);
    }

    #[test]
    fn raw_duplicate_of_typed_hls_attr_fails() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.extra.push(RawAttr::new("hls.pipeline_ii", "2"));
        }
        let err = verify(&f).unwrap_err();
        assert!(
            err.message.contains("duplicates a typed HLS"),
            "{}",
            err.message
        );
    }

    #[test]
    fn non_hls_raw_attrs_are_allowed() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.extra.push(RawAttr::new("vendor.note", "\"checked\""));
        }
        assert_eq!(verify(&f), Ok(()));
        assert!(f.to_string().contains("vendor.note = \"checked\""));
    }

    #[test]
    fn display_renders_location_line() {
        let mut f = valid_func();
        f.memrefs.clear();
        let err = verify(&f).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.starts_with("verification failed: "), "{rendered}");
        assert!(rendered.contains("\n  --> for i / S"), "{rendered}");
        assert_eq!(err.location(), "for i / S");

        let fn_level = VerifyError::new("bad partition");
        assert_eq!(fn_level.location(), "<function>");
        assert!(!fn_level.to_string().contains("-->"));
    }

    #[test]
    fn rank_mismatched_load_inside_if_fails() {
        // for i { if (i >= 1) { A[i] = A[i][i] + 1 } } — the offending
        // access is a *load* nested inside an `affine.if` body.
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            let body = std::mem::take(&mut l.body);
            let mut guarded = body;
            if let AffineOp::Store(s) = &mut guarded[0] {
                s.value = Expr::Load(AccessFn::new(
                    "A",
                    vec![LinearExpr::var("i"), LinearExpr::var("i")],
                )) + 1.0;
            }
            l.body = vec![AffineOp::If(crate::ops::IfOp {
                conds: vec![pom_poly::Constraint::ge_zero(
                    LinearExpr::var("i") - LinearExpr::constant_expr(1),
                )],
                body: guarded,
            })];
        }
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("rank 1"), "{}", err.message);
        assert!(err.message.contains("2 indices"), "{}", err.message);
    }

    #[test]
    fn bad_partition_fails() {
        let mut f = valid_func();
        f.memrefs[0].partition = Some(crate::attrs::PartitionInfo {
            factors: vec![2, 2],
            style: pom_dsl::PartitionStyle::Cyclic,
        });
        let err = verify(&f).unwrap_err();
        assert!(
            err.message.contains("partition has 2 factors"),
            "{}",
            err.message
        );

        let mut f = valid_func();
        f.memrefs[0].partition = Some(crate::attrs::PartitionInfo {
            factors: vec![0],
            style: pom_dsl::PartitionStyle::Block,
        });
        let err = verify(&f).unwrap_err();
        assert!(
            err.message.contains("non-positive partition factor"),
            "{}",
            err.message
        );
    }

    #[test]
    fn missing_bounds_fail() {
        let mut f = valid_func();
        if let AffineOp::For(l) = &mut f.body[0] {
            l.ubs.clear();
        }
        let err = verify(&f).unwrap_err();
        assert!(err.message.contains("lacks bounds"));
    }
}
