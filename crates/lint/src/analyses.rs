//! The shipped lint analyses (POM001–POM010).

use crate::context::{walk_loops, walk_stores, LintContext};
use crate::{Analysis, Diagnostic, LintCode, Location};
use pom_dsl::Compute;
use pom_ir::AffineOp;
use pom_poly::{fm, AccessFn, Constraint, DepKind, DependenceAnalysis, LinearExpr, StmtPoly};
use std::collections::{BTreeMap, BTreeSet};

fn path_ivs(path: &[crate::context::LoopFrame]) -> Vec<String> {
    path.iter().map(|f| f.iv.clone()).collect()
}

/// POM001: a declared `pipeline_ii` must be at least the recurrence MII
/// of any dependence carried at that loop — `ceil(chain / distance)`, the
/// same bound the estimator enforces (paper Section VI-A).
pub struct IiFeasibility;

impl Analysis for IiFeasibility {
    fn name(&self) -> &'static str {
        "ii-feasibility"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        walk_loops(cx.func, &mut |l, path| {
            let Some(ii) = l.attrs.pipeline_ii else {
                return;
            };
            let Some(dep) = cx.deps.carried_at(&l.iv) else {
                return;
            };
            let rec_mii = dep.chain_latency.div_ceil(dep.distance.max(1)).max(1);
            if (ii.max(1) as u64) < rec_mii {
                out.push(
                    Diagnostic::new(
                        LintCode::IiInfeasible,
                        Location::in_loops(&cx.func.name, &path_ivs(path)),
                        format!(
                            "loop %{} declares pipeline II = {ii}, but the dependence on \
                             `{}` carried at this loop (distance {}, chain latency {}) \
                             forces II >= {rec_mii}",
                            l.iv, dep.array, dep.distance, dep.chain_latency
                        ),
                    )
                    .with_suggestion(format!(
                        "declare pipeline II >= {rec_mii} on %{}, or lengthen the carried \
                         distance with a loop transformation (split/interchange/skew)",
                        l.iv
                    )),
                );
            }
        });
    }
}

/// POM002: every affine access must stay inside its memref's shape for
/// all points of the governing domain (loop bounds plus `if` guards),
/// proven by Fourier–Motzkin projection (paper Section V-B).
///
/// FM is exact over the rationals and tightens each constraint by its
/// coefficient gcd, but divided bounds that reference *outer ivs* (tile
/// edge loops such as `for x in ceil(j/2)..=floor(k/3)`) leave non-unit
/// coefficients the tightening cannot touch, and eliminating such an iv
/// keeps the dark-shadow sliver — a rational witness with no integer
/// point. The check therefore conjoins the integer interval facts of
/// `pom-verify`'s value-range analysis for the ivs in scope at each
/// store (including the contradictory pair of an empty loop),
/// eliminating false positives on min/max- and floor-clamped boundary
/// indices.
pub struct BoundsCheck;

impl Analysis for BoundsCheck {
    fn name(&self) -> &'static str {
        "bounds-check"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let ranges = pom_verify::analyze_ranges(cx.func);
        let mut reported: BTreeSet<(String, String, usize, bool)> = BTreeSet::new();
        walk_stores(cx.func, &mut |site| {
            // Integer interval facts for the ivs in scope at this store.
            // A bottom interval (`lo > hi`, both finite) contributes a
            // contradictory pair: the loop never runs, so no access in
            // its body can breach.
            let mut range_facts: Vec<Constraint> = Vec::new();
            for frame in site.loop_path {
                let Some(r) = ranges.iv_ranges.get(&frame.iv) else {
                    continue;
                };
                if r.lo != i64::MIN {
                    range_facts.push(Constraint::ge(
                        LinearExpr::var(&frame.iv),
                        LinearExpr::constant_expr(r.lo),
                    ));
                }
                if r.hi != i64::MAX {
                    range_facts.push(Constraint::le(
                        LinearExpr::var(&frame.iv),
                        LinearExpr::constant_expr(r.hi),
                    ));
                }
            }
            let mut accesses: Vec<&AccessFn> = vec![&site.store.dest];
            accesses.extend(site.store.value.loads());
            for acc in accesses {
                let Some(m) = cx.func.memref(&acc.array) else {
                    continue;
                };
                for (d, (idx, &size)) in acc.indices.iter().zip(&m.shape).enumerate() {
                    for (low_side, breach) in [
                        (
                            true,
                            Constraint::le(idx.clone(), LinearExpr::constant_expr(-1)),
                        ),
                        (
                            false,
                            Constraint::ge(idx.clone(), LinearExpr::constant_expr(size as i64)),
                        ),
                    ] {
                        let key = (site.store.stmt.clone(), acc.array.clone(), d, low_side);
                        if reported.contains(&key) {
                            continue;
                        }
                        let mut cs = site.constraints.to_vec();
                        cs.extend(range_facts.iter().cloned());
                        cs.push(breach);
                        if fm::feasible(&cs) {
                            reported.insert(key);
                            let bound_txt = if low_side {
                                "below 0".to_string()
                            } else {
                                format!("at or above the extent {size}")
                            };
                            out.push(
                                Diagnostic::new(
                                    LintCode::OutOfBounds,
                                    Location::in_loops(&cx.func.name, &path_ivs(site.loop_path))
                                        .with_stmt(&site.store.stmt),
                                    format!(
                                        "access `{}[...]` index {d} (`{idx}`) can evaluate \
                                         {bound_txt} within its loop domain",
                                        acc.array
                                    ),
                                )
                                .with_suggestion(format!(
                                    "shrink the loop bounds, guard the access with an \
                                     `affine.if`, or grow `{}` along dimension {d}",
                                    acc.array
                                )),
                            );
                        }
                    }
                }
            }
        });
    }
}

/// POM003: concurrent accesses of a pipelined/unrolled body must not
/// exceed the ports its array partition provides (`banks x
/// ports_per_bank`), and the partitioning itself must fit the device's
/// BRAM budget (paper Section VI-B). Mirrors the estimator's ResMII and
/// BRAM accounting, so a clean design is one whose declared II the
/// estimator can actually honour.
pub struct PortPressure;

impl Analysis for PortPressure {
    fn name(&self) -> &'static str {
        "port-pressure"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        // (a) Port demand per outermost pipelined loop.
        walk_loops(cx.func, &mut |l, path| {
            let Some(ii) = l.attrs.pipeline_ii else {
                return;
            };
            if path[..path.len() - 1]
                .iter()
                .any(|f| f.pipeline_ii.is_some())
            {
                return; // inner loops fold into the outer pipeline's body
            }
            let mut unrolled: Vec<(String, u64)> = Vec::new();
            let mut accesses: BTreeMap<String, u64> = BTreeMap::new();
            collect_concurrent_accesses(&l.body, &mut unrolled, &mut accesses);
            for (array, n) in &accesses {
                let banks = cx
                    .func
                    .memref(array)
                    .map(|m| m.banks().max(1) as u64)
                    .unwrap_or(1);
                let ports = (banks * cx.model.ports_per_bank).max(1);
                let res_mii = n.div_ceil(ports);
                if res_mii > ii.max(1) as u64 {
                    let want_banks = n.div_ceil(cx.model.ports_per_bank);
                    out.push(
                        Diagnostic::new(
                            LintCode::PortPressure,
                            Location::in_loops(&cx.func.name, &path_ivs(path)),
                            format!(
                                "`{array}` serves {n} concurrent accesses per iteration of \
                                 pipelined loop %{} through {banks} bank(s) x {} port(s); \
                                 memory alone forces II >= {res_mii} > declared {ii}",
                                l.iv, cx.model.ports_per_bank
                            ),
                        )
                        .with_suggestion(format!(
                            "cyclically partition `{array}` into >= {want_banks} banks to \
                             feed the unrolled units, or declare pipeline II >= {res_mii}"
                        )),
                    );
                }
            }
        });

        // (b) BRAM budget of the partitioning (the estimator's accounting).
        let mut bram = 0u64;
        for m in &cx.func.memrefs {
            bram += pom_hls::bram18k_units(m.bits(), m.banks().max(1) as u64);
        }
        if bram > cx.device.bram18k {
            out.push(
                Diagnostic::new(
                    LintCode::PortPressure,
                    Location::func_scope(&cx.func.name),
                    format!(
                        "the arrays and their partitions map to {bram} BRAM18K units, \
                         exceeding the device budget of {}",
                        cx.device.bram18k
                    ),
                )
                .with_suggestion(
                    "reduce array partition factors or array extents, or target a larger device",
                ),
            );
        }
    }
}

/// Counts per-array concurrent accesses of a pipelined body, treating
/// every inner loop as fully unrolled (Vitis pipeline semantics) — the
/// estimator's `distinct` access rule: a reference not varying with an
/// unrolled iv is a broadcast, not an extra port demand.
fn collect_concurrent_accesses(
    ops: &[AffineOp],
    unrolled: &mut Vec<(String, u64)>,
    out: &mut BTreeMap<String, u64>,
) {
    for op in ops {
        match op {
            AffineOp::Store(s) => {
                let distinct = |a: &AccessFn| -> u64 {
                    unrolled
                        .iter()
                        .filter(|(iv, _)| a.indices.iter().any(|e| e.uses(iv)))
                        .map(|(_, t)| *t)
                        .product::<u64>()
                        .max(1)
                };
                *out.entry(s.dest.array.clone()).or_insert(0) += distinct(&s.dest);
                for load in s.value.loads() {
                    *out.entry(load.array.clone()).or_insert(0) += distinct(load);
                }
            }
            AffineOp::If(i) => collect_concurrent_accesses(&i.body, unrolled, out),
            AffineOp::For(l) => {
                let trip = l.const_trip_count().unwrap_or(1).max(1) as u64;
                unrolled.push((l.iv.clone(), trip));
                collect_concurrent_accesses(&l.body, unrolled, out);
                unrolled.pop();
            }
        }
    }
}

/// POM004: every dependence must stay lexicographically non-negative
/// under the current schedule — the paper's stage-1 invariant, made
/// checkable on demand. Dependences are computed in the *original*
/// iteration space of each compute and re-expressed in the transformed
/// space through the statement's schedule map; Fourier–Motzkin then asks
/// whether any dependent instance pair executes in reversed order.
pub struct ScheduleLegality;

impl Analysis for ScheduleLegality {
    fn name(&self) -> &'static str {
        "schedule-legality"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(src) = cx.source else {
            return; // needs the scheduled DSL source
        };
        let f = src.function;
        let analysis = DependenceAnalysis::new();

        // Per-statement: self-dependences survive the schedule map.
        for (c, s) in f.computes().iter().zip(src.stmts) {
            let store = c.store();
            let dims = c.iter_names();
            let domain = c.domain();
            let mut deps = Vec::new();
            for l in c.loads() {
                if l.array == store.array {
                    deps.extend(analysis.analyze_pair(store, l, DepKind::Flow, &dims, &domain));
                    deps.extend(analysis.analyze_pair(l, store, DepKind::Anti, &dims, &domain));
                }
            }
            if c.loads().iter().any(|l| l.array == store.array) {
                deps.extend(analysis.analyze_pair(store, store, DepKind::Output, &dims, &domain));
            }
            for d in &deps {
                let Some(dist) = &d.distance else {
                    continue;
                };
                if dist.0.iter().all(|&x| x == 0) {
                    continue;
                }
                if let Some(level) = violated_level(s, &dims, &dist.0) {
                    out.push(
                        Diagnostic::new(
                            LintCode::IllegalSchedule,
                            Location::func_scope(&cx.func.name).with_stmt(c.name()),
                            format!(
                                "the {:?} dependence on `{}` with original distance {:?} \
                                 executes in reversed order at transformed loop %{} — the \
                                 schedule is illegal",
                                d.kind,
                                d.array,
                                dist.0,
                                s.dims()[level]
                            ),
                        )
                        .with_suggestion(
                            "undo the reordering (interchange/skew) of the carrying loop, or \
                             skew the nest until the dependence is non-negative again",
                        ),
                    );
                    break; // one finding per statement is enough
                }
            }
        }

        // Cross-statement program order: a consumer nest scheduled
        // entirely before the producer nest it reads from.
        let computes = f.computes();
        for (pi, p) in computes.iter().enumerate() {
            for (ci, c) in computes.iter().enumerate().skip(pi + 1) {
                let pa = p.store();
                let Some(ca) = c.loads().into_iter().find(|l| l.array == pa.array) else {
                    continue;
                };
                if src.stmts[ci].statics()[0] >= src.stmts[pi].statics()[0] {
                    continue; // still scheduled at or after the producer
                }
                if cells_overlap(p, pa, c, ca) {
                    out.push(
                        Diagnostic::new(
                            LintCode::IllegalSchedule,
                            Location::func_scope(&cx.func.name).with_stmt(c.name()),
                            format!(
                                "statement `{}` reads `{}` produced by `{}` but is scheduled \
                                 before it",
                                c.name(),
                                pa.array,
                                p.name()
                            ),
                        )
                        .with_suggestion(format!(
                            "schedule `{}` after `{}` (e.g. `{}.after({}, ...)`)",
                            c.name(),
                            p.name(),
                            c.name(),
                            p.name()
                        )),
                    );
                }
            }
        }
    }
}

/// Finds the first transformed loop level at which some instance pair
/// related by original-space distance `dist` executes in reversed order;
/// `None` means the schedule preserves the dependence.
fn violated_level(s: &StmtPoly, orig_dims: &[String], dist: &[i64]) -> Option<usize> {
    let cur_dims: Vec<String> = s.dims().to_vec();
    let prime = |n: &str| format!("{n}__snk");
    let rename_all = |mut e: LinearExpr| -> LinearExpr {
        for d in &cur_dims {
            e = e.renamed(d, &prime(d));
        }
        e
    };

    // Source and sink instances both range over the transformed domain.
    let mut sys: Vec<Constraint> = s.domain().constraints().to_vec();
    for c in s.domain().constraints() {
        sys.push(Constraint {
            expr: rename_all(c.expr.clone()),
            kind: c.kind,
        });
    }
    // The sink's original coordinates are the source's displaced by dist.
    for (k, od) in orig_dims.iter().enumerate() {
        let e = s.orig_expr(od)?;
        sys.push(Constraint::eq(
            rename_all(e.clone()) - e.clone(),
            LinearExpr::constant_expr(dist[k]),
        ));
    }

    // Violation at level l: equal above l, sink strictly earlier at l.
    for (l, dim) in cur_dims.iter().enumerate() {
        let mut cs = sys.clone();
        for above in &cur_dims[..l] {
            cs.push(Constraint::eq(
                LinearExpr::var(prime(above)),
                LinearExpr::var(above),
            ));
        }
        cs.push(Constraint::lt(
            LinearExpr::var(prime(dim)),
            LinearExpr::var(dim),
        ));
        if fm::feasible(&cs) {
            return Some(l);
        }
    }
    None
}

/// True when a producer access and a consumer access can touch the same
/// array cell for some pair of points in their (original) domains.
fn cells_overlap(p: &Compute, pa: &AccessFn, c: &Compute, ca: &AccessFn) -> bool {
    let prime = |n: &str| format!("{n}__c");
    let cdims = c.iter_names();
    let rename_all = |mut e: LinearExpr| -> LinearExpr {
        for d in &cdims {
            e = e.renamed(d, &prime(d));
        }
        e
    };
    let mut sys: Vec<Constraint> = p.domain().constraints().to_vec();
    for con in c.domain().constraints() {
        sys.push(Constraint {
            expr: rename_all(con.expr.clone()),
            kind: con.kind,
        });
    }
    for (ep, ec) in pa.indices.iter().zip(&ca.indices) {
        sys.push(Constraint::eq(ep.clone(), rename_all(ec.clone())));
    }
    fm::feasible(&sys)
}

/// POM005: dead code — memrefs never accessed at all, and stores to
/// never-read arrays that are provably overwritten by a later iteration
/// of an enclosing loop (the destination does not vary with it and no
/// guard makes the store conditional along it). Live-out stores — the
/// last write to each cell of an output array — are never flagged.
pub struct DeadCode;

impl Analysis for DeadCode {
    fn name(&self) -> &'static str {
        "dead-code"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let mut loaded: BTreeSet<&str> = BTreeSet::new();
        let mut stored: BTreeSet<&str> = BTreeSet::new();
        cx.func.walk(&mut |op| {
            if let AffineOp::Store(s) = op {
                stored.insert(&s.dest.array);
                for l in s.value.loads() {
                    loaded.insert(&l.array);
                }
            }
        });

        for m in &cx.func.memrefs {
            if !loaded.contains(m.name.as_str()) && !stored.contains(m.name.as_str()) {
                out.push(
                    Diagnostic::new(
                        LintCode::DeadCode,
                        Location::func_scope(&cx.func.name),
                        format!("memref `{}` is never accessed", m.name),
                    )
                    .with_suggestion(format!("remove the `{}` declaration", m.name)),
                );
            }
        }

        let loaded_owned: BTreeSet<String> = loaded.iter().map(|s| s.to_string()).collect();
        walk_stores(cx.func, &mut |site| {
            let array = &site.store.dest.array;
            if loaded_owned.contains(array) {
                return;
            }
            for frame in site.loop_path {
                let Some(trip) = frame.trip else {
                    continue;
                };
                if trip <= 1 || site.guarded_ivs.contains(&frame.iv) {
                    continue;
                }
                if !site.store.dest.indices.iter().any(|e| e.uses(&frame.iv)) {
                    out.push(
                        Diagnostic::new(
                            LintCode::DeadCode,
                            Location::in_loops(&cx.func.name, &path_ivs(site.loop_path))
                                .with_stmt(&site.store.stmt),
                            format!(
                                "store to `{array}` overwrites the same cells on every \
                                 iteration of %{} and `{array}` is never read — all but \
                                 the final iteration are dead",
                                frame.iv
                            ),
                        )
                        .with_suggestion(format!(
                            "hoist the store out of %{}, or remove it",
                            frame.iv
                        )),
                    );
                    break;
                }
            }
        });
    }
}

/// POM006: the declared pipeline II must survive pom-bank's *exact*
/// bank-conflict analysis. Where POM003 spreads raw access counts
/// evenly over the partition's banks, this analysis maps every access
/// through the declared `hls.array_partition` congruence classes —
/// discounting same-iteration forwarded reads and dead writes — and
/// flags loops whose worst per-bank demand provably cannot be served
/// within the declared II. The same condition is what fails a
/// conflict-freedom certificate in `pom_verify::bank_report`.
pub struct BankConflict;

impl Analysis for BankConflict {
    fn name(&self) -> &'static str {
        "bank-conflict"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let ports = cx.model.ports_per_bank.max(1);
        // Full loop paths for nicer locations; analyze_func only
        // reports the pipelined loop's own iv.
        let mut paths: BTreeMap<String, Vec<String>> = BTreeMap::new();
        walk_loops(cx.func, &mut |l, path| {
            paths.insert(l.iv.clone(), path_ivs(path));
        });
        for rep in pom_bank::analyze_func(cx.func) {
            let Some(min_ii) = rep.analysis.min_feasible_ii(ports) else {
                continue; // inexact: claim nothing
            };
            if min_ii <= rep.declared_ii {
                continue;
            }
            let Some(worst) = rep
                .analysis
                .profiles
                .iter()
                .filter(|p| p.exact)
                .max_by_key(|p| p.max_demand)
            else {
                continue;
            };
            let path = paths
                .get(&rep.iv)
                .cloned()
                .unwrap_or_else(|| vec![rep.iv.clone()]);
            let suggestion =
                match pom_bank::minimal_conflict_free_factors(cx.func, &worst.array, ports) {
                    Some(factors) => format!(
                        "cyclically partition `{}` with factors {factors:?} (the minimal \
                     conflict-free partitioning), or declare pipeline II >= {min_ii}",
                        worst.array
                    ),
                    None => format!(
                        "declare pipeline II >= {min_ii} on %{}; no partitioning of `{}` \
                     separates these accesses",
                        rep.iv, worst.array
                    ),
                };
            out.push(
                Diagnostic::new(
                    LintCode::BankConflict,
                    Location::in_loops(&cx.func.name, &path),
                    format!(
                        "`{}` is partitioned into {} bank(s) but {} same-cycle accesses \
                         of pipelined loop %{} provably collide in one bank; {} port(s) \
                         per bank force II >= {min_ii} > declared {}",
                        worst.array, worst.banks, worst.max_demand, rep.iv, ports, rep.declared_ii
                    ),
                )
                .with_suggestion(suggestion),
            );
        }
    }
}

/// POM007/POM008/POM009: pom-live's whole-function liveness analysis.
/// One polyhedral pass yields all three findings:
///
/// * **POM007** (warning) — an array's exact live windows are strictly
///   smaller than its declared extents; folding storage to
///   `e_d mod W_d` is proven behaviour-preserving and the claim can be
///   replayed as a `buffer-contracted` certificate through pom-verify.
/// * **POM008** (error) — every store of one statement to an array is
///   overwritten by a later statement before any read observes it.
/// * **POM009** (note) — the minimal buffer depth each
///   producer→consumer flow would need as a FIFO/stream.
pub struct Liveness;

impl Analysis for Liveness {
    fn name(&self) -> &'static str {
        "liveness"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let report = pom_live::analyze_func(cx.func);
        for al in &report.arrays {
            if !al.contracted() {
                continue;
            }
            let spelled = |v: &[i64]| {
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            };
            out.push(
                Diagnostic::new(
                    LintCode::OversizedBuffer,
                    Location::func_scope(&cx.func.name),
                    format!(
                        "array `{}` declares {} cell(s) ({} bits) but its live window \
                         is [{}] = {} cell(s) ({} bits); the contraction is \
                         certificate-checked (`pomc --emit verify`)",
                        al.array,
                        al.declared_cells(),
                        al.declared_bits(),
                        spelled(&al.windows),
                        al.contracted_cells(),
                        al.contracted_bits()
                    ),
                )
                .with_suggestion(format!(
                    "fold `{}` to [{}] storage indexed by `e mod W` per dimension",
                    al.array,
                    spelled(&al.windows)
                )),
            );
        }
        for ds in &report.dead_stores {
            out.push(Diagnostic::new(
                LintCode::DeadStoreToArray,
                Location::func_scope(&cx.func.name).with_stmt(&ds.stmt),
                format!(
                    "every store of `{}` to `{}` is overwritten by `{}` before \
                     any read observes it",
                    ds.stmt, ds.array, ds.killer
                ),
            ));
        }
        for fd in &report.depths {
            out.push(Diagnostic::new(
                LintCode::BufferDepth,
                Location::func_scope(&cx.func.name).with_stmt(&fd.producer),
                format!(
                    "flow `{}` -> `{}` through `{}` needs a buffer of depth {} \
                     element(s) if streamed",
                    fd.producer, fd.consumer, fd.array, fd.depth
                ),
            ));
        }
    }
}

/// A channel whose measured stall share of the dataflow makespan exceeds
/// this percentage draws a POM010 warning.
pub const CHANNEL_STALL_PCT: u64 = 10;

/// POM010: a dataflow channel spends more than [`CHANNEL_STALL_PCT`]% of
/// the simulated makespan blocked on push or pop. Unlike the static
/// POM009 sizing note, this is a *measured* claim — it only fires when
/// the caller attaches the per-channel figures of a `pom-sim` dataflow
/// co-simulation ([`LintContext::with_channels`]), so a purely static
/// lint run never reports it. The diagnostic names the channel and the
/// exact positional minimal deadlock-free depth `pom-dataflow` computed
/// for its element streams.
pub struct ChannelPressure;

impl Analysis for ChannelPressure {
    fn name(&self) -> &'static str {
        "channel-pressure"
    }

    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(channels) = cx.channels else {
            return;
        };
        for ch in channels {
            let stall = ch.stall_cycles();
            if ch.total_cycles == 0 || stall * 100 <= ch.total_cycles * CHANNEL_STALL_PCT {
                continue;
            }
            let pct = stall * 100 / ch.total_cycles;
            let kind = if ch.pingpong { "ping-pong" } else { "FIFO" };
            let d = Diagnostic::new(
                LintCode::ChannelPressure,
                Location::func_scope(&cx.func.name).with_stmt(&ch.producer),
                format!(
                    "dataflow channel `{}` ({} -> {}) stalls {stall} of {} simulated \
                     cycle(s) ({pct}%): {} pop-blocked, {} push-blocked on its \
                     depth-{} {kind}",
                    ch.array,
                    ch.producer,
                    ch.consumers.join(", "),
                    ch.total_cycles,
                    ch.stall_pop,
                    ch.stall_push,
                    ch.capacity
                ),
            );
            let d = if ch.pingpong {
                d.with_suggestion(format!(
                    "the stages around `{}` are rate-mismatched; rebalance their IIs \
                     (dataflow DSE rate-matching) — the buffer itself is deadlock-free \
                     at depth >= {}",
                    ch.array, ch.min_depth
                ))
            } else {
                d.with_suggestion(format!(
                    "deepen the `{}` FIFO beyond {} element(s) (minimal deadlock-free \
                     depth {}; try {})",
                    ch.array,
                    ch.capacity,
                    ch.min_depth,
                    (ch.capacity * 2).max(ch.min_depth)
                ))
            };
            out.push(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LintContext, Linter, Severity};
    use pom_dsl::{DataType, Function};
    use pom_hls::{CarriedDep, CostModel, DepSummary, DeviceSpec};
    use pom_ir::{AffineFunc, ForOp, HlsAttrs, IfOp, MemRefDecl, PartitionInfo, StoreOp};
    use pom_poly::Bound;

    fn cb(v: i64) -> Bound {
        Bound::new(LinearExpr::constant_expr(v), 1)
    }

    fn load(array: &str, idx: Vec<LinearExpr>) -> pom_dsl::Expr {
        pom_dsl::Expr::Load(AccessFn::new(array, idx))
    }

    /// The acceptance-criteria function: an infeasible pipeline II, an
    /// out-of-bounds access, and a dead store, all in one kernel.
    fn pathological() -> (AffineFunc, DepSummary) {
        let mut f = AffineFunc::new("bad");
        f.memrefs.push(MemRefDecl::new("acc", &[1], DataType::F32));
        f.memrefs.push(MemRefDecl::new("x", &[8], DataType::F32));
        f.memrefs.push(MemRefDecl::new("dbg", &[4], DataType::F32));
        f.memrefs
            .push(MemRefDecl::new("ghost", &[4], DataType::F32));

        // for i in 0..7 pipeline_ii=1:
        //   acc[0] = acc[0] + x[i + 2]   (OOB: i + 2 reaches 9 > 7;
        //                                 II: carried chain fadd=4, dist 1)
        //   dbg[0] = x[i]                (dead: dbg never read, invariant in i)
        let acc_store = StoreOp {
            stmt: "s".into(),
            dest: AccessFn::new("acc", vec![LinearExpr::zero()]),
            value: load("acc", vec![LinearExpr::zero()])
                + load("x", vec![LinearExpr::var("i") + 2]),
        };
        let dbg_store = StoreOp {
            stmt: "d".into(),
            dest: AccessFn::new("dbg", vec![LinearExpr::zero()]),
            value: load("x", vec![LinearExpr::var("i")]),
        };
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::Store(acc_store), AffineOp::Store(dbg_store)],
        }));

        let mut deps = DepSummary::new();
        deps.insert(
            "i",
            CarriedDep {
                array: "acc".into(),
                distance: 1,
                chain_latency: 4,
            },
        );
        (f, deps)
    }

    fn ctx<'a>(
        f: &'a AffineFunc,
        deps: &'a DepSummary,
        model: &'a CostModel,
        device: &'a DeviceSpec,
    ) -> LintContext<'a> {
        LintContext::new(f, deps, model, device)
    }

    #[test]
    fn pathological_function_yields_all_three_codes() {
        let (f, deps) = pathological();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::standard().run(&ctx(&f, &deps, &model, &device));

        let pom1 = report.with_code(LintCode::IiInfeasible);
        assert_eq!(pom1.len(), 1, "{}", report.render("bad"));
        assert_eq!(pom1[0].severity, Severity::Error);
        assert!(
            pom1[0].message.contains("forces II >= 4"),
            "{}",
            pom1[0].message
        );
        assert!(pom1[0].suggestion.as_deref().unwrap().contains(">= 4"));

        let pom2 = report.with_code(LintCode::OutOfBounds);
        assert_eq!(pom2.len(), 1, "{}", report.render("bad"));
        assert!(pom2[0].message.contains("`x[...]`"), "{}", pom2[0].message);
        assert!(pom2[0].message.contains("extent 8"), "{}", pom2[0].message);

        let pom5 = report.with_code(LintCode::DeadCode);
        assert_eq!(pom5.len(), 2, "{}", report.render("bad"));
        assert!(pom5
            .iter()
            .any(|d| d.message.contains("`ghost` is never accessed")));
        assert!(pom5.iter().any(|d| d.message.contains("store to `dbg`")));

        assert!(report.has_errors());
        let rendered = report.render("bad");
        assert!(rendered.contains("error[POM001]"), "{rendered}");
        assert!(rendered.contains("error[POM002]"), "{rendered}");
        assert!(rendered.contains("warning[POM005]"), "{rendered}");
    }

    #[test]
    fn feasible_ii_and_in_bounds_are_clean() {
        // Same shape but II = 4 declared, in-bounds access, no dead store.
        let mut f = AffineFunc::new("ok");
        f.memrefs.push(MemRefDecl::new("acc", &[1], DataType::F32));
        f.memrefs.push(MemRefDecl::new("x", &[8], DataType::F32));
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs {
                pipeline_ii: Some(4),
                ..Default::default()
            },
            body: vec![AffineOp::Store(StoreOp {
                stmt: "s".into(),
                dest: AccessFn::new("acc", vec![LinearExpr::zero()]),
                value: load("acc", vec![LinearExpr::zero()])
                    + load("x", vec![LinearExpr::var("i")]),
            })],
        }));
        let mut deps = DepSummary::new();
        deps.insert(
            "i",
            CarriedDep {
                array: "acc".into(),
                distance: 1,
                chain_latency: 4,
            },
        );
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::standard().run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("ok"));
    }

    #[test]
    fn channel_pressure_fires_only_above_threshold() {
        let f = AffineFunc::new("df");
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let obs = |stall_pop: u64, stall_push: u64, pingpong: bool| crate::ChannelObservation {
            array: "tmp".into(),
            producer: "s0".into(),
            consumers: vec!["s1".into()],
            capacity: 16,
            pingpong,
            stall_pop,
            stall_push,
            total_cycles: 1000,
            min_depth: 3,
        };

        // 5% stall share: below the 10% threshold, no finding.
        let quiet = [obs(30, 20, false)];
        let cx = ctx(&f, &deps, &model, &device).with_channels(&quiet);
        let report = Linter::standard().run(&cx);
        assert!(
            report.with_code(LintCode::ChannelPressure).is_empty(),
            "{}",
            report.render("df")
        );

        // 40% stall share on a FIFO: warns and suggests a deeper FIFO.
        let hot = [obs(250, 150, false)];
        let cx = ctx(&f, &deps, &model, &device).with_channels(&hot);
        let report = Linter::standard().run(&cx);
        let found = report.with_code(LintCode::ChannelPressure);
        assert_eq!(found.len(), 1, "{}", report.render("df"));
        assert_eq!(found[0].severity, Severity::Warning);
        assert!(found[0].message.contains("`tmp`"), "{}", found[0].message);
        assert!(found[0].message.contains("(40%)"), "{}", found[0].message);
        let help = found[0].suggestion.as_deref().unwrap();
        assert!(help.contains("deepen"), "{help}");
        assert!(help.contains("minimal deadlock-free depth 3"), "{help}");
        assert!(help.contains("try 32"), "{help}");

        // Same share on a ping-pong buffer: the fix is rate-matching,
        // not depth.
        let pp = [obs(250, 150, true)];
        let cx = ctx(&f, &deps, &model, &device).with_channels(&pp);
        let report = Linter::standard().run(&cx);
        let found = report.with_code(LintCode::ChannelPressure);
        assert_eq!(found.len(), 1, "{}", report.render("df"));
        let help = found[0].suggestion.as_deref().unwrap();
        assert!(help.contains("rate-mismatched"), "{help}");

        // Without observations attached the analysis is silent.
        let report = Linter::standard().run(&ctx(&f, &deps, &model, &device));
        assert!(report.with_code(LintCode::ChannelPressure).is_empty());
    }

    #[test]
    fn bounds_check_respects_if_guards() {
        // for i in 0..7 { if (i <= 5) { y[i + 2] = x[i] } } — guarded
        // access is in bounds; without the guard it would breach.
        let mut f = AffineFunc::new("guarded");
        f.memrefs.push(MemRefDecl::new("x", &[8], DataType::F32));
        f.memrefs.push(MemRefDecl::new("y", &[8], DataType::F32));
        let store = StoreOp {
            stmt: "s".into(),
            dest: AccessFn::new("y", vec![LinearExpr::var("i") + 2]),
            value: load("x", vec![LinearExpr::var("i")]),
        };
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::If(IfOp {
                conds: vec![Constraint::le(
                    LinearExpr::var("i"),
                    LinearExpr::constant_expr(5),
                )],
                body: vec![AffineOp::Store(store)],
            })],
        }));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(BoundsCheck)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("guarded"));

        // Drop the guard: now i + 2 reaches 9.
        let mut f2 = f.clone();
        f2.body = vec![AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(StoreOp {
                stmt: "s".into(),
                dest: AccessFn::new("y", vec![LinearExpr::var("i") + 2]),
                value: load("x", vec![LinearExpr::var("i")]),
            })],
        })];
        let report = Linter::new()
            .register(BoundsCheck)
            .run(&ctx(&f2, &deps, &model, &device));
        assert_eq!(report.error_count(), 1, "{}", report.render("unguarded"));
    }

    #[test]
    fn bounds_check_discharges_rational_only_breach_via_ranges() {
        // A tile-edge nest whose innermost loop is empty, but only
        // integrally so:
        //
        //   for t0 in 5..=5 { for t1 in 8..=8 {
        //     for i in ceil(t0/2)..=floor(t1/3) { A[3i - t0 - 2] = ... } } }
        //
        // FM sees `2i >= t0` and `3i <= t1` — non-unit coefficients on an
        // outer-iv bound that gcd tightening cannot touch — and keeps
        // the rational sliver i in [2.5, 8/3], where the overflow breach
        // `3i - t0 - 2 >= 1` of the extent-1 array holds at i = 8/3. The
        // integer interval facts (i in [ceil(5/2), floor(8/3)] = [3, 2],
        // an empty loop) discharge the false positive.
        let mut f = AffineFunc::new("clamped");
        f.memrefs.push(MemRefDecl::new("a", &[1], DataType::F32));
        f.memrefs.push(MemRefDecl::new("b", &[1], DataType::F32));
        let idx = LinearExpr::var("i") * 3 - LinearExpr::var("t0") - 2;
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "t0".into(),
            lbs: vec![cb(5)],
            ubs: vec![cb(5)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(ForOp {
                extra: Vec::new(),
                iv: "t1".into(),
                lbs: vec![cb(8)],
                ubs: vec![cb(8)],
                attrs: HlsAttrs::none(),
                body: vec![AffineOp::For(ForOp {
                    extra: Vec::new(),
                    iv: "i".into(),
                    lbs: vec![Bound::new(LinearExpr::var("t0"), 2)],
                    ubs: vec![Bound::new(LinearExpr::var("t1"), 3)],
                    attrs: HlsAttrs::none(),
                    body: vec![AffineOp::Store(StoreOp {
                        stmt: "s".into(),
                        dest: AccessFn::new("a", vec![idx.clone()]),
                        value: load("b", vec![idx]),
                    })],
                })],
            })],
        }));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();

        // The raw constraint stack alone is rationally feasible at the
        // breach — this is exactly the false positive being discharged.
        let raw = vec![
            Constraint::ge(LinearExpr::var("t0"), LinearExpr::constant_expr(5)),
            Constraint::le(LinearExpr::var("t0"), LinearExpr::constant_expr(5)),
            Constraint::ge(LinearExpr::var("t1"), LinearExpr::constant_expr(8)),
            Constraint::le(LinearExpr::var("t1"), LinearExpr::constant_expr(8)),
            Constraint::ge_zero(LinearExpr::var("i") * 2 - LinearExpr::var("t0")),
            Constraint::ge_zero(LinearExpr::var("t1") - LinearExpr::var("i") * 3),
            Constraint::ge(
                LinearExpr::var("i") * 3 - LinearExpr::var("t0") - 2,
                LinearExpr::constant_expr(1),
            ),
        ];
        assert!(pom_poly::fm::feasible(&raw), "rational witness exists");

        let report = Linter::new()
            .register(BoundsCheck)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("clamped"));
    }

    #[test]
    fn port_pressure_flags_underpartitioned_unroll() {
        // Pipelined i with inner fully-unrolled j of trip 8 accessing
        // x[j]: 8 concurrent reads on an unpartitioned 2-port array.
        let mut f = AffineFunc::new("ports");
        f.memrefs.push(MemRefDecl::new("x", &[64], DataType::F32));
        f.memrefs.push(MemRefDecl::new("y", &[64], DataType::F32));
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs {
                pipeline_ii: Some(1),
                ..Default::default()
            },
            body: vec![AffineOp::For(ForOp {
                extra: Vec::new(),
                iv: "j".into(),
                lbs: vec![cb(0)],
                ubs: vec![cb(7)],
                attrs: HlsAttrs {
                    unroll_factor: Some(8),
                    ..Default::default()
                },
                body: vec![AffineOp::Store(StoreOp {
                    stmt: "s".into(),
                    dest: AccessFn::new("y", vec![LinearExpr::var("j")]),
                    value: load("x", vec![LinearExpr::var("j")]),
                })],
            })],
        }));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(PortPressure)
            .run(&ctx(&f, &deps, &model, &device));
        assert_eq!(report.warning_count(), 2, "{}", report.render("ports"));
        assert!(report.diagnostics[0].message.contains("forces II >= 4"));

        // Partition both arrays by 4: 8 accesses / (4 banks x 2 ports) = 1.
        for m in &mut f.memrefs {
            m.partition = Some(PartitionInfo {
                factors: vec![4],
                style: pom_dsl::PartitionStyle::Cyclic,
            });
        }
        let report = Linter::new()
            .register(PortPressure)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("ports"));
    }

    #[test]
    fn bram_budget_overflow_warns() {
        let mut f = AffineFunc::new("big");
        // 512 x 512 x 32 bits, partitioned 16-way: 16 banks x 32 BRAM18K
        // each = 512 > 280.
        let mut m = MemRefDecl::new("A", &[512, 512], DataType::F32);
        m.partition = Some(PartitionInfo {
            factors: vec![16, 1],
            style: pom_dsl::PartitionStyle::Cyclic,
        });
        f.memrefs.push(m);
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(PortPressure)
            .run(&ctx(&f, &deps, &model, &device));
        assert_eq!(report.warning_count(), 1, "{}", report.render("big"));
        assert!(report.diagnostics[0].message.contains("BRAM18K"));
    }

    #[test]
    fn illegal_interchange_is_flagged() {
        // A[i][j] = A[i-1][j+1]: flow distance (1, -1). Interchanging
        // makes the dependence lexicographically negative.
        let n = 8i64;
        let mut f = Function::new("stencil");
        let i = f.var("i", 1, n);
        let j = f.var("j", 0, n - 1);
        let a = f.placeholder("A", &[n as usize, n as usize], DataType::F32);
        f.compute(
            "s",
            &[i.clone(), j.clone()],
            a.at(&[i.expr() - 1, j.expr() + 1]),
            a.access(&[&i, &j]),
        );

        let legal_stmts: Vec<StmtPoly> = f.computes().iter().map(|c| c.to_stmt_poly()).collect();

        f.interchange("s", "i", "j");
        let mut bad = f.computes()[0].to_stmt_poly();
        bad.interchange("i", "j");
        let bad_stmts = vec![bad];

        // A dummy affine func: POM004 reads only the DSL source + stmts.
        let af = AffineFunc::new("stencil");
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();

        let cx_ok = LintContext::new(&af, &deps, &model, &device).with_source(&f, &legal_stmts);
        let report = Linter::new().register(ScheduleLegality).run(&cx_ok);
        assert!(report.is_clean(), "{}", report.render("stencil"));

        let cx_bad = LintContext::new(&af, &deps, &model, &device).with_source(&f, &bad_stmts);
        let report = Linter::new().register(ScheduleLegality).run(&cx_bad);
        assert_eq!(report.error_count(), 1, "{}", report.render("stencil"));
        assert!(
            report.diagnostics[0].message.contains("reversed order"),
            "{}",
            report.diagnostics[0].message
        );
    }

    #[test]
    fn consumer_scheduled_before_producer_is_flagged() {
        let n = 8usize;
        let mut f = Function::new("pair");
        let i = f.var("i", 0, n as i64);
        let x = f.placeholder("X", &[n], DataType::F32);
        let y = f.placeholder("Y", &[n], DataType::F32);
        let z = f.placeholder("Z", &[n], DataType::F32);
        f.compute(
            "P",
            std::slice::from_ref(&i),
            x.at(&[&i]) * 2.0,
            y.access(&[&i]),
        );
        f.compute(
            "C",
            std::slice::from_ref(&i),
            y.at(&[&i]) + 1.0,
            z.access(&[&i]),
        );

        let mut p_stmt = f.computes()[0].to_stmt_poly();
        let mut c_stmt = f.computes()[1].to_stmt_poly();
        // Legal order: P at 0, C at 1.
        p_stmt.set_order(0);
        c_stmt.set_order(1);
        let af = AffineFunc::new("pair");
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let good = vec![p_stmt.clone(), c_stmt.clone()];
        let cx = LintContext::new(&af, &deps, &model, &device).with_source(&f, &good);
        assert!(Linter::new().register(ScheduleLegality).run(&cx).is_clean());

        // Illegal: C scheduled wholly before P.
        p_stmt.set_order(1);
        c_stmt.set_order(0);
        let bad = vec![p_stmt, c_stmt];
        let cx = LintContext::new(&af, &deps, &model, &device).with_source(&f, &bad);
        let report = Linter::new().register(ScheduleLegality).run(&cx);
        assert_eq!(report.error_count(), 1, "{}", report.render("pair"));
        assert!(report.diagnostics[0].message.contains("scheduled"));
    }

    #[test]
    fn reduction_store_is_not_dead() {
        // acc[0] = acc[0] + x[i]: the accumulator is read, so the
        // invariant destination is not a dead store.
        let mut f = AffineFunc::new("red");
        f.memrefs.push(MemRefDecl::new("acc", &[1], DataType::F32));
        f.memrefs.push(MemRefDecl::new("x", &[8], DataType::F32));
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(7)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::Store(StoreOp {
                stmt: "s".into(),
                dest: AccessFn::new("acc", vec![LinearExpr::zero()]),
                value: load("acc", vec![LinearExpr::zero()])
                    + load("x", vec![LinearExpr::var("i")]),
            })],
        }));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(DeadCode)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("red"));
    }

    /// b[i] = a[i] + a[i+1] + a[i+2] at the given II, with `a`
    /// cyclically partitioned by `factor` (0 = unpartitioned).
    fn bank_stencil(factor: i64, ii: i64) -> AffineFunc {
        let mut f = AffineFunc::new("st");
        f.memrefs.push(MemRefDecl::new("a", &[64], DataType::F32));
        f.memrefs.push(MemRefDecl::new("b", &[64], DataType::F32));
        if factor > 0 {
            f.memref_mut("a").unwrap().partition = Some(PartitionInfo {
                factors: vec![factor],
                style: pom_dsl::PartitionStyle::Cyclic,
            });
        }
        let v = LinearExpr::var("i");
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(31)],
            attrs: HlsAttrs {
                pipeline_ii: Some(ii),
                ..Default::default()
            },
            body: vec![AffineOp::Store(StoreOp {
                stmt: "s".into(),
                dest: AccessFn::new("b", vec![v.clone()]),
                value: load("a", vec![v.clone()])
                    + load("a", vec![v.clone() + 1])
                    + load("a", vec![v + 2]),
            })],
        }));
        f
    }

    #[test]
    fn bank_conflict_flags_infeasible_ii_and_suggests_the_minimal_factor() {
        // 3 same-cycle reads of one unpartitioned bank through 2 ports:
        // II >= 2, declared 1.
        let f = bank_stencil(0, 1);
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(BankConflict)
            .run(&ctx(&f, &deps, &model, &device));
        let pom6 = report.with_code(LintCode::BankConflict);
        assert_eq!(pom6.len(), 1, "{}", report.render("st"));
        assert_eq!(pom6[0].severity, Severity::Warning);
        assert!(
            pom6[0].message.contains("force II >= 2"),
            "{}",
            pom6[0].message
        );
        let help = pom6[0].suggestion.as_deref().unwrap();
        assert!(help.contains("factors [2]"), "{help}");
    }

    #[test]
    fn bank_conflict_is_silent_when_partitioned_or_feasible() {
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        // Cyclic factor 3 separates the window: conflict-free.
        let f = bank_stencil(3, 1);
        let report = Linter::new()
            .register(BankConflict)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("st"));
        // Middle band: the conflict exists but declared II = 2 absorbs it.
        let f = bank_stencil(0, 2);
        let report = Linter::new()
            .register(BankConflict)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("st"));
    }

    #[test]
    fn guarded_boundary_store_is_not_dead() {
        // for t in 0..3 { for i in 0..7 { if (i == t) out[0] = x[i] } }:
        // out never read, dest invariant in both loops, but the guard
        // makes the store conditional — not provably dead.
        let mut f = AffineFunc::new("bnd");
        f.memrefs.push(MemRefDecl::new("out", &[1], DataType::F32));
        f.memrefs.push(MemRefDecl::new("x", &[8], DataType::F32));
        f.body.push(AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "t".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(3)],
            attrs: HlsAttrs::none(),
            body: vec![AffineOp::For(ForOp {
                extra: Vec::new(),
                iv: "i".into(),
                lbs: vec![cb(0)],
                ubs: vec![cb(7)],
                attrs: HlsAttrs::none(),
                body: vec![AffineOp::If(IfOp {
                    conds: vec![Constraint::eq(LinearExpr::var("i"), LinearExpr::var("t"))],
                    body: vec![AffineOp::Store(StoreOp {
                        stmt: "s".into(),
                        dest: AccessFn::new("out", vec![LinearExpr::zero()]),
                        value: load("x", vec![LinearExpr::var("i")]),
                    })],
                })],
            })],
        }));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(DeadCode)
            .run(&ctx(&f, &deps, &model, &device));
        assert!(report.is_clean(), "{}", report.render("bnd"));
    }

    fn lv_loop(body: Vec<AffineOp>) -> AffineOp {
        AffineOp::For(ForOp {
            extra: Vec::new(),
            iv: "i".into(),
            lbs: vec![cb(0)],
            ubs: vec![cb(15)],
            attrs: HlsAttrs::none(),
            body,
        })
    }

    fn lv_memrefs(f: &mut AffineFunc) {
        f.memrefs.push(MemRefDecl::new("x", &[16], DataType::F32));
        f.memrefs.push(MemRefDecl::new("T", &[16], DataType::F32));
        f.memrefs.push(MemRefDecl::new("y", &[16], DataType::F32));
    }

    #[test]
    fn liveness_reports_contraction_and_depth() {
        // for i in 0..15 { T[i] = x[i] * 2; y[i] = T[i] + 1 }: each T
        // value dies in the iteration that made it — window [1],
        // stream depth 1.
        let mut f = AffineFunc::new("lv");
        lv_memrefs(&mut f);
        let i = LinearExpr::var("i");
        f.body.push(lv_loop(vec![
            AffineOp::Store(StoreOp {
                stmt: "s1".into(),
                dest: AccessFn::new("T", vec![i.clone()]),
                value: load("x", vec![i.clone()]) * 2.0,
            }),
            AffineOp::Store(StoreOp {
                stmt: "s2".into(),
                dest: AccessFn::new("y", vec![i.clone()]),
                value: load("T", vec![i.clone()]) + 1.0,
            }),
        ]));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(Liveness)
            .run(&ctx(&f, &deps, &model, &device));

        let pom7 = report.with_code(LintCode::OversizedBuffer);
        assert_eq!(pom7.len(), 1, "{}", report.render("lv"));
        assert!(pom7[0].message.contains("`T`"), "{}", pom7[0].message);
        assert!(
            pom7[0].message.contains("live window"),
            "{}",
            pom7[0].message
        );
        assert!(pom7[0].suggestion.as_deref().unwrap().contains("e mod W"));

        assert!(report.with_code(LintCode::DeadStoreToArray).is_empty());
        let pom9 = report.with_code(LintCode::BufferDepth);
        assert!(
            pom9.iter()
                .any(|d| d.message.contains("`s1` -> `s2`") && d.message.contains("depth 1")),
            "{}",
            report.render("lv")
        );
    }

    #[test]
    fn liveness_reports_covered_dead_store() {
        // p: for i { T[i] = 7.0 }   — every store overwritten by s1's
        // own nest before any read; s2 then consumes T.
        let mut f = AffineFunc::new("lv");
        lv_memrefs(&mut f);
        let i = LinearExpr::var("i");
        f.body.push(lv_loop(vec![AffineOp::Store(StoreOp {
            stmt: "p".into(),
            dest: AccessFn::new("T", vec![i.clone()]),
            value: pom_dsl::Expr::from(7.0f64),
        })]));
        f.body.push(lv_loop(vec![AffineOp::Store(StoreOp {
            stmt: "s1".into(),
            dest: AccessFn::new("T", vec![i.clone()]),
            value: load("x", vec![i.clone()]) * 2.0,
        })]));
        f.body.push(lv_loop(vec![AffineOp::Store(StoreOp {
            stmt: "s2".into(),
            dest: AccessFn::new("y", vec![i.clone()]),
            value: load("T", vec![i.clone()]) + 1.0,
        })]));
        let deps = DepSummary::new();
        let model = CostModel::vitis_f32();
        let device = DeviceSpec::xc7z020();
        let report = Linter::new()
            .register(Liveness)
            .run(&ctx(&f, &deps, &model, &device));
        let pom8 = report.with_code(LintCode::DeadStoreToArray);
        assert_eq!(pom8.len(), 1, "{}", report.render("lv"));
        assert_eq!(pom8[0].severity, Severity::Error);
        assert!(
            pom8[0].message.contains("`p`") && pom8[0].message.contains("`s1`"),
            "{}",
            pom8[0].message
        );
    }
}
